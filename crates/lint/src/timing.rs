//! `P5L014` — true static timing analysis over the mapped netlist.
//!
//! Where `P5L007` flags single nets whose fanout delay alone blows the
//! budget, this pass prices whole paths: topological arrival-time
//! propagation (the exact recurrence of [`p5_fpga::timing::analyze`],
//! with the argmax predecessor recorded per LUT), per-endpoint required
//! times and slack, and a critical-path report with the gate-by-gate
//! breakdown — what a designer reads off a real timing analyzer before
//! deciding whether to pipeline deeper or replicate a driver.
//!
//! Endpoints are every flip-flop data/CE/SR pin and every primary
//! output bit; the start of every path is a register Q (or a primary
//! input, assumed registered upstream) at `t_cq`.  A negative worst
//! slack is an **error**: the netlist cannot run at the requested clock
//! on the requested device.

use std::collections::HashMap;

use p5_fpga::{Device, MappedNetlist, Netlist, NodeKind, Sig};

use crate::report::{json_string, Finding, Rule, Severity};

/// One hop of a critical path: a mapped LUT (or the endpoint leaf),
/// with the delay added at this hop and the cumulative arrival.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// The signal this hop produces.
    pub sig: Sig,
    /// Human label of the driver (`flip-flop 3 Q`, `input in_data[2]`…).
    pub through: String,
    /// Net + LUT delay added by this hop, ns.
    pub incr_ns: f64,
    /// Arrival time after this hop, ns.
    pub arrival_ns: f64,
}

/// Slack at one endpoint, with the worst path into it.
#[derive(Debug, Clone)]
pub struct TimingPath {
    /// What the path ends at (`flip-flop 7 D`, `output out_data[0]`).
    pub endpoint: String,
    /// The signal feeding that endpoint.
    pub endpoint_sig: Sig,
    pub arrival_ns: f64,
    pub required_ns: f64,
    pub slack_ns: f64,
    /// Source-to-endpoint hops (first entry is the launching leaf).
    pub steps: Vec<PathStep>,
}

/// Whole-netlist STA result at one clock on one device.
#[derive(Debug, Clone)]
pub struct StaReport {
    pub module: String,
    pub device: &'static str,
    pub clock_mhz: f64,
    pub period_ns: f64,
    /// Most negative endpoint slack, ns.
    pub worst_slack_ns: f64,
    /// The clock this netlist could actually sustain.
    pub fmax_mhz: f64,
    pub endpoints: usize,
    /// Endpoints with negative slack.
    pub violations: usize,
    /// The worst `N` paths, most critical first.
    pub paths: Vec<TimingPath>,
}

fn driver_label(n: &Netlist, sig: Sig) -> String {
    for bus in &n.inputs {
        if let Some(bit) = bus.sigs.iter().position(|&s| s == sig) {
            return format!("input {}[{bit}]", bus.name);
        }
    }
    match n.nodes.get(sig as usize) {
        Some(NodeKind::FfOutput(idx)) => format!("flip-flop {idx} Q"),
        Some(NodeKind::Const(v)) => format!("constant {v}"),
        Some(NodeKind::Input) => format!("input node {sig}"),
        _ => format!("LUT {sig}"),
    }
}

/// Run STA: arrival times over the mapped LUT network (post-layout net
/// model), slack per endpoint against `clock_mhz`, and the worst
/// `keep_paths` critical paths fully traced.
pub fn static_timing(
    n: &Netlist,
    m: &MappedNetlist,
    dev: &Device,
    clock_mhz: f64,
    keep_paths: usize,
) -> StaReport {
    let period_ns = 1000.0 / clock_mhz;

    // Arrival per LUT root, plus the predecessor leaf that set it — the
    // same recurrence as `p5_fpga::timing::analyze`, so slack here and
    // fMax there always agree.
    let mut arrival: HashMap<Sig, f64> = HashMap::new();
    let mut argmax: HashMap<Sig, Sig> = HashMap::new();
    for lut in &m.luts {
        let mut t = dev.t_cq;
        let mut from = None;
        for &leaf in &lut.leaves {
            let leaf_arrival = arrival.get(&leaf).copied().unwrap_or(dev.t_cq);
            let cand = leaf_arrival + m.net_delay(dev, leaf, true);
            if cand > t {
                t = cand;
                from = Some(leaf);
            }
        }
        t += dev.t_lut;
        arrival.insert(lut.root, t);
        if let Some(f) = from {
            argmax.insert(lut.root, f);
        }
    }
    let arrival_of = |sig: Sig| arrival.get(&sig).copied().unwrap_or(dev.t_cq);

    // Endpoints: FF D/CE/SR pins and primary output bits.  The capture
    // cost (`t_su`) is charged at the endpoint, so required = T − t_su.
    let mut endpoints: Vec<(String, Sig)> = Vec::new();
    for (i, dff) in n.dffs.iter().enumerate() {
        for (pin, sig) in [("D", dff.d), ("CE", dff.en), ("SR", dff.sr)] {
            if let Some(s) = sig {
                endpoints.push((format!("flip-flop {i} {pin}"), s));
            }
        }
    }
    for bus in &n.outputs {
        for (bit, &s) in bus.sigs.iter().enumerate() {
            endpoints.push((format!("output {}[{bit}]", bus.name), s));
        }
    }

    let required_ns = period_ns - dev.t_su;
    let mut slacks: Vec<(f64, String, Sig)> = endpoints
        .iter()
        .map(|(name, sig)| (required_ns - arrival_of(*sig), name.clone(), *sig))
        .collect();
    // Most critical first; name then sig breaks ties deterministically.
    slacks.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });

    let worst_slack_ns = slacks.first().map_or(required_ns - dev.t_cq, |s| s.0);
    let worst_arrival = slacks
        .first()
        .map_or(dev.t_cq, |&(_, _, sig)| arrival_of(sig));
    let violations = slacks.iter().filter(|s| s.0 < 0.0).count();

    let paths = slacks
        .iter()
        .take(keep_paths)
        .map(|(slack, name, sig)| {
            // Walk the argmax chain back to the launching leaf, then
            // replay it forward to accumulate per-hop delays.
            let mut chain = vec![*sig];
            let mut cur = *sig;
            while let Some(&prev) = argmax.get(&cur) {
                chain.push(prev);
                cur = prev;
            }
            chain.reverse();
            let mut steps = Vec::with_capacity(chain.len());
            let mut t = dev.t_cq;
            for (i, &hop) in chain.iter().enumerate() {
                let incr = if i == 0 {
                    0.0 // launch point: t_cq already charged
                } else {
                    m.net_delay(dev, chain[i - 1], true) + dev.t_lut
                };
                t += incr;
                steps.push(PathStep {
                    sig: hop,
                    through: driver_label(n, hop),
                    incr_ns: incr,
                    arrival_ns: t,
                });
            }
            TimingPath {
                endpoint: name.clone(),
                endpoint_sig: *sig,
                arrival_ns: arrival_of(*sig),
                required_ns,
                slack_ns: *slack,
                steps,
            }
        })
        .collect();

    StaReport {
        module: n.name.clone(),
        device: dev.name,
        clock_mhz,
        period_ns,
        worst_slack_ns,
        fmax_mhz: 1000.0 / (worst_arrival + dev.t_su),
        endpoints: slacks.len(),
        violations,
        paths,
    }
}

/// `P5L014` — one error per module whose worst slack is negative, with
/// the critical path spelled out hop by hop.
pub fn check_timing(sta: &StaReport, findings: &mut Vec<Finding>) {
    if sta.worst_slack_ns >= 0.0 {
        return;
    }
    let worst = sta.paths.first();
    let route = worst.map_or(String::new(), |p| {
        let hops: Vec<&str> = p.steps.iter().map(|s| s.through.as_str()).collect();
        format!(" via {}", hops.join(" → "))
    });
    let endpoint = worst.map_or("<none>".to_string(), |p| p.endpoint.clone());
    findings.push(
        Finding::new(
            Rule::TimingViolation,
            Severity::Error,
            format!(
                "worst slack {:.2} ns at {} MHz on {}: {} of {} endpoint(s) violate; \
                 critical path ends at {endpoint}{route}",
                sta.worst_slack_ns, sta.clock_mhz, sta.device, sta.violations, sta.endpoints,
            ),
        )
        .with_nodes(worst.map(|p| vec![p.endpoint_sig]).unwrap_or_default()),
    );
}

impl StaReport {
    /// The `results/TIMING_<netlist>.json` document: summary plus the
    /// worst paths with their gate-by-gate breakdown.  Fixed-precision
    /// floats keep the bytes stable across runs.
    pub fn to_json(&self) -> String {
        let ns = |x: f64| format!("{x:.4}");
        let mut out = String::from("{");
        out.push_str(&format!("\"module\":{},", json_string(&self.module)));
        out.push_str(&format!("\"device\":{},", json_string(self.device)));
        out.push_str(&format!("\"clock_mhz\":{},", ns(self.clock_mhz)));
        out.push_str(&format!("\"period_ns\":{},", ns(self.period_ns)));
        out.push_str(&format!("\"worst_slack_ns\":{},", ns(self.worst_slack_ns)));
        out.push_str(&format!("\"fmax_mhz\":{},", ns(self.fmax_mhz)));
        out.push_str(&format!("\"endpoints\":{},", self.endpoints));
        out.push_str(&format!("\"violations\":{},", self.violations));
        out.push_str("\"paths\":[");
        for (i, p) in self.paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"endpoint\":{},\"arrival_ns\":{},\"required_ns\":{},\"slack_ns\":{},\"steps\":[",
                json_string(&p.endpoint),
                ns(p.arrival_ns),
                ns(p.required_ns),
                ns(p.slack_ns),
            ));
            for (j, s) in p.steps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"through\":{},\"incr_ns\":{},\"arrival_ns\":{}}}",
                    json_string(&s.through),
                    ns(s.incr_ns),
                    ns(s.arrival_ns),
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}
