//! Pipeline-protocol rules over the valid/ready ("stall") handshake the
//! P⁵ stages use (paper §4: the escape-insertion stage inflates the
//! stream, so backpressure must reach every upstream register).
//!
//! The checks key off the bus-naming convention every `p5-rtl` builder
//! follows — `in_data`/`in_valid`/`in_ready` upstream, `out_data`/
//! `out_valid`/`out_ready` downstream — and each rule applies only when
//! the pins it talks about exist, because the convention is deliberately
//! partial: `escape_detect` is always-ready (a shrinking stream needs no
//! `in_ready`), and `tx_control` exposes a Mealy `out_valid` gated by
//! `out_ready`, which is legal precisely because its `out_data` is
//! registered.

use p5_fpga::{Netlist, Sig};

use crate::graph;
use crate::report::{Finding, Rule, Severity};

/// The handshake pins a module exposes, resolved by bus name.
struct Interface {
    in_data: Vec<Sig>,
    in_valid: Option<Sig>,
    in_ready: Vec<Sig>,
    out_data: Vec<Sig>,
    out_ready: Option<Sig>,
}

fn interface(n: &Netlist) -> Interface {
    let single = |bus: Option<&p5_fpga::netlist::Bus>| bus.and_then(|b| b.sigs.first().copied());
    Interface {
        in_data: n
            .input_bus("in_data")
            .map(|b| b.sigs.clone())
            .unwrap_or_default(),
        in_valid: single(n.input_bus("in_valid")),
        in_ready: n
            .output_bus("in_ready")
            .map(|b| b.sigs.clone())
            .unwrap_or_default(),
        out_data: n
            .output_bus("out_data")
            .map(|b| b.sigs.clone())
            .unwrap_or_default(),
        out_ready: single(n.input_bus("out_ready")),
    }
}

/// Run every protocol rule that applies to this module's interface.
pub fn check_handshake(n: &Netlist, findings: &mut Vec<Finding>) {
    let iface = interface(n);
    check_ready_comb_loop(n, &iface, findings);
    check_ungated_capture(n, &iface, findings);
    check_stall_stability(n, &iface, findings);
    check_self_gated_enables(n, findings);
}

/// `P5L008` — `in_ready` must not depend combinationally on `in_valid`.
/// Composed with an upstream stage whose `valid` looks at our `ready`
/// (the dual Mealy convention), that closes a combinational loop across
/// module boundaries — invisible to any per-module cycle check.
fn check_ready_comb_loop(n: &Netlist, iface: &Interface, findings: &mut Vec<Finding>) {
    let Some(valid) = iface.in_valid else { return };
    for &ready in &iface.in_ready {
        if graph::cone_contains(n, ready, valid) {
            findings.push(
                Finding::new(
                    Rule::HandshakeCombLoop,
                    Severity::Error,
                    "in_ready depends combinationally on in_valid: composing with a \
                     valid-follows-ready upstream closes a combinational loop",
                )
                .with_nodes(vec![ready, valid]),
            );
        }
    }
}

/// `P5L009` — any register whose next-state cone reads `in_data` must be
/// qualified by `in_valid`, either through its CE pin or through a mux
/// in its D cone.  An unqualified capture register clocks in garbage on
/// every idle cycle.
fn check_ungated_capture(n: &Netlist, iface: &Interface, findings: &mut Vec<Finding>) {
    let Some(valid) = iface.in_valid else { return };
    if iface.in_data.is_empty() {
        return;
    }
    for (i, dff) in n.dffs.iter().enumerate() {
        let Some(d) = dff.d else { continue };
        let d_cone = graph::comb_cone(n, d);
        if !iface.in_data.iter().any(|s| d_cone.contains(s)) {
            continue;
        }
        let gated_by_d = d_cone.contains(&valid);
        let gated_by_en = dff.en.is_some_and(|en| graph::cone_contains(n, en, valid));
        if !gated_by_d && !gated_by_en {
            findings.push(
                Finding::new(
                    Rule::UngatedCapture,
                    Severity::Warning,
                    format!(
                        "flip-flop {i} captures in_data but neither its CE nor its D cone \
                         consults in_valid: it reloads on idle cycles"
                    ),
                )
                .with_nodes(vec![dff.q]),
            );
        }
    }
}

/// `P5L010` — `out_data` must be stable while the consumer stalls: no
/// combinational path from `out_ready` into an `out_data` bit.  (A Mealy
/// `out_valid` gated by `out_ready` is fine — it is the *data* that the
/// downstream stage latches late.)
fn check_stall_stability(n: &Netlist, iface: &Interface, findings: &mut Vec<Finding>) {
    let Some(ready) = iface.out_ready else { return };
    let unstable: Vec<Sig> = iface
        .out_data
        .iter()
        .copied()
        .filter(|&bit| graph::cone_contains(n, bit, ready))
        .collect();
    if !unstable.is_empty() {
        findings.push(
            Finding::new(
                Rule::UnstableUnderStall,
                Severity::Warning,
                format!(
                    "{} out_data bit(s) depend combinationally on out_ready and can glitch \
                     mid-stall",
                    unstable.len()
                ),
            )
            .with_nodes(unstable),
        );
    }
}

/// `P5L011` — a register whose clock-enable cone contains its own Q can
/// latch itself shut: once Q reaches the value that deasserts CE,
/// nothing inside the module can ever change it again (the classic
/// stall-deadlock wiring slip).
fn check_self_gated_enables(n: &Netlist, findings: &mut Vec<Finding>) {
    for (i, dff) in n.dffs.iter().enumerate() {
        let Some(en) = dff.en else { continue };
        if graph::cone_contains(n, en, dff.q) {
            findings.push(
                Finding::new(
                    Rule::SelfGatedEnable,
                    Severity::Warning,
                    format!(
                        "flip-flop {i} gates its own clock-enable through Q (node {})",
                        dff.q
                    ),
                )
                .with_nodes(vec![dff.q, en]),
            );
        }
    }
}
