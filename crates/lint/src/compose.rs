//! `P5L015` — link-level handshake composition.
//!
//! The per-module rules (P5L008–P5L011) check each stage against the
//! valid/ready convention in isolation; they provably cannot see
//! hazards that only exist once stages are *wired together*.  This pass
//! abstracts every stage to a [`StageContract`] — which boundary
//! signals it couples combinationally — composes the contracts over a
//! stage topology (a [`LinkGraph`], exportable from
//! `p5_stream::Stack`/`p5-link` via [`LinkGraph::from_topology`]), and
//! looks for two composition-only failures:
//!
//! * a **combinational ready/valid cycle** across module boundaries: a
//!   closed dependency loop through transparent ready paths and Mealy
//!   valid outputs, e.g. `A.out_valid ← A.out_ready` composed with
//!   `B.in_ready ← B.in_valid`;
//! * a **capacity-0 deadlock ring**: a directed cycle of stages in
//!   which every stage passes data combinationally (no register, no
//!   elastic buffer anywhere on the ring), so no transfer on the ring
//!   can ever complete.

use p5_fpga::Netlist;

use crate::graph;
use crate::report::{Finding, Report, Rule, Severity};

/// What one stage does, combinationally, at its handshake boundary —
/// the whole per-module story composition needs.
#[derive(Debug, Clone)]
pub struct StageContract {
    pub name: String,
    /// `in_ready` depends combinationally on `in_valid`.
    pub ready_on_valid: bool,
    /// `in_ready` depends combinationally on `out_ready` (transparent
    /// backpressure: a stall at the output is a stall at the input in
    /// the same cycle).
    pub ready_transparent: bool,
    /// `out_valid` depends combinationally on `out_ready` (Mealy valid).
    pub valid_on_ready: bool,
    /// `out_valid` depends combinationally on `in_valid` (transparent
    /// forwarding: a beat crosses the stage without a register).
    pub valid_transparent: bool,
    /// Some `out_data` bit depends combinationally on `in_data`: the
    /// stage holds no beat of its own — capacity 0.
    pub comb_through_data: bool,
}

impl StageContract {
    /// The contract of a fully registered (or software, elastic-buffer)
    /// stage: nothing crosses its boundary combinationally.
    pub fn buffered(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ready_on_valid: false,
            ready_transparent: false,
            valid_on_ready: false,
            valid_transparent: false,
            comb_through_data: false,
        }
    }

    /// Compose a linear `stages[0] → … → stages[n-1]` chain into the
    /// contract of the *fused* super-stage: the boundary couplings an
    /// outside observer sees when the whole chain executes as one
    /// operation (the software fast path does exactly this — one call
    /// carries a frame from encap to wire bytes).  Computed by
    /// reachability over the chain's boundary-signal dependency graph,
    /// so indirect couplings (e.g. `in_ready ← out_ready` only via a
    /// middle stage) are found, not just per-flag conjunctions.
    pub fn compose_chain(name: impl Into<String>, stages: &[StageContract]) -> Self {
        let n = stages.len();
        if n == 0 {
            return Self::buffered(name);
        }
        // Boundaries 0..=n; nodes per boundary b: V=3b, R=3b+1, D=3b+2.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 3 * (n + 1)];
        let (v, r, d) = (|b: usize| 3 * b, |b: usize| 3 * b + 1, |b: usize| 3 * b + 2);
        for (i, s) in stages.iter().enumerate() {
            if s.ready_on_valid {
                adj[v(i)].push(r(i));
            }
            if s.ready_transparent {
                adj[r(i + 1)].push(r(i));
            }
            if s.valid_on_ready {
                adj[r(i + 1)].push(v(i + 1));
            }
            if s.valid_transparent {
                adj[v(i)].push(v(i + 1));
            }
            if s.comb_through_data {
                adj[d(i)].push(d(i + 1));
            }
        }
        let reach = |from: usize, to: usize| -> bool {
            let mut seen = vec![false; adj.len()];
            let mut stack = vec![from];
            seen[from] = true;
            while let Some(x) = stack.pop() {
                if x == to {
                    return true;
                }
                for &y in &adj[x] {
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
            false
        };
        Self {
            name: name.into(),
            ready_on_valid: reach(v(0), r(0)),
            ready_transparent: reach(r(n), r(0)),
            valid_on_ready: reach(r(n), v(n)),
            valid_transparent: reach(v(0), v(n)),
            comb_through_data: reach(d(0), d(n)),
        }
    }

    /// Extract the contract of an RTL stage by cone analysis over its
    /// conventional buses (`in_data`/`in_valid`/`in_ready`,
    /// `out_data`/`out_valid`/`out_ready`).  Pins the module does not
    /// expose contribute no coupling.
    pub fn extract(n: &Netlist) -> Self {
        let single_in = |name: &str| {
            n.input_bus(name)
                .and_then(|b| (b.sigs.len() == 1).then(|| b.sigs[0]))
        };
        let single_out = |name: &str| {
            n.output_bus(name)
                .and_then(|b| (b.sigs.len() == 1).then(|| b.sigs[0]))
        };
        let bus_out = |name: &str| {
            n.output_bus(name)
                .map(|b| b.sigs.clone())
                .unwrap_or_default()
        };
        let bus_in = |name: &str| {
            n.input_bus(name)
                .map(|b| b.sigs.clone())
                .unwrap_or_default()
        };

        let in_valid = single_in("in_valid");
        let out_ready = single_in("out_ready");
        let in_ready = bus_out("in_ready");
        let out_valid = single_out("out_valid");
        let in_data = bus_in("in_data");
        let out_data = bus_out("out_data");

        let depends = |roots: &[u32], on: Option<u32>| -> bool {
            on.is_some_and(|target| {
                roots
                    .iter()
                    .any(|&root| graph::cone_contains(n, root, target))
            })
        };
        let out_valid_s = out_valid.map(|s| vec![s]).unwrap_or_default();
        Self {
            name: n.name.clone(),
            ready_on_valid: depends(&in_ready, in_valid),
            ready_transparent: depends(&in_ready, out_ready),
            valid_on_ready: depends(&out_valid_s, out_ready),
            valid_transparent: depends(&out_valid_s, in_valid),
            comb_through_data: out_data
                .iter()
                .any(|&bit| in_data.iter().any(|&src| graph::cone_contains(n, bit, src))),
        }
    }
}

/// A composed pipeline: stages plus directed `upstream → downstream`
/// edges between them.
#[derive(Debug, Clone)]
pub struct LinkGraph {
    pub name: String,
    pub stages: Vec<StageContract>,
    pub edges: Vec<(usize, usize)>,
}

impl LinkGraph {
    /// A linear source→sink chain.
    pub fn chain(name: impl Into<String>, stages: Vec<StageContract>) -> Self {
        let edges = (1..stages.len()).map(|i| (i - 1, i)).collect();
        Self {
            name: name.into(),
            stages,
            edges,
        }
    }

    /// Build from an exported `p5_stream` topology: `resolve` supplies
    /// the contract for stages with analyzable RTL; everything else is
    /// assumed [`StageContract::buffered`] (the software stages sit
    /// behind `WireBuf` elastic buffers).
    pub fn from_topology<F>(topo: &p5_stream::Topology, resolve: F) -> Self
    where
        F: Fn(&str) -> Option<StageContract>,
    {
        let stages = topo
            .stages
            .iter()
            .map(|name| resolve(name).unwrap_or_else(|| StageContract::buffered(name.clone())))
            .collect();
        Self {
            name: topo.name.clone(),
            stages,
            edges: topo.edges.clone(),
        }
    }

    /// Run the composition checks, as a [`Report`] named after the graph.
    pub fn check(&self) -> Report {
        let mut findings = Vec::new();
        self.check_ready_valid_cycle(&mut findings);
        self.check_capacity_deadlock(&mut findings);
        Report::new(self.name.clone(), findings)
    }

    /// The boundary-signal dependency graph: per inter-stage edge `e`,
    /// nodes `V_e` (valid) and `R_e` (ready); per stage, dependency arcs
    /// between its boundary signals as declared by the contract.  Any
    /// directed cycle is a combinational loop no per-module pass saw.
    fn check_ready_valid_cycle(&self, findings: &mut Vec<Finding>) {
        let ne = self.edges.len();
        // Node ids: valid of edge e = 2e, ready of edge e = 2e+1.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * ne];
        for (si, stage) in self.stages.iter().enumerate() {
            let ins: Vec<usize> = (0..ne).filter(|&e| self.edges[e].1 == si).collect();
            let outs: Vec<usize> = (0..ne).filter(|&e| self.edges[e].0 == si).collect();
            for &i in &ins {
                if stage.ready_on_valid {
                    adj[2 * i].push(2 * i + 1); // V_i feeds R_i
                }
                for &o in &outs {
                    if stage.ready_transparent {
                        adj[2 * o + 1].push(2 * i + 1); // R_o feeds R_i
                    }
                    if stage.valid_transparent {
                        adj[2 * i].push(2 * o); // V_i feeds V_o
                    }
                }
            }
            for &o in &outs {
                if stage.valid_on_ready {
                    adj[2 * o + 1].push(2 * o); // R_o feeds V_o
                }
            }
        }
        if let Some(cyclic) = kahn_residue(&adj) {
            let mut names: Vec<String> = cyclic
                .iter()
                .map(|&node| {
                    let e = node / 2;
                    let sig = if node % 2 == 0 { "valid" } else { "ready" };
                    let (a, b) = self.edges[e];
                    format!("{sig}@{}→{}", self.stages[a].name, self.stages[b].name)
                })
                .collect();
            names.sort();
            names.dedup();
            findings.push(Finding::new(
                Rule::ComposeHazard,
                Severity::Error,
                format!(
                    "combinational ready/valid cycle across module boundaries \
                     through {}: per-module rules cannot see this loop",
                    names.join(", ")
                ),
            ));
        }
    }

    /// A directed stage cycle in which *every* stage forwards data
    /// combinationally has nowhere to hold a beat: capacity 0, so the
    /// ring deadlocks on the first transfer.
    fn check_capacity_deadlock(&self, findings: &mut Vec<Finding>) {
        let ns = self.stages.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ns];
        for &(a, b) in &self.edges {
            if a < ns
                && b < ns
                && self.stages[a].comb_through_data
                && self.stages[b].comb_through_data
            {
                adj[a].push(b);
            }
        }
        if let Some(ring) = kahn_residue(&adj) {
            let mut names: Vec<&str> = ring.iter().map(|&s| self.stages[s].name.as_str()).collect();
            names.sort_unstable();
            findings.push(Finding::new(
                Rule::ComposeHazard,
                Severity::Error,
                format!(
                    "capacity-0 deadlock ring: every stage on the cycle [{}] passes \
                     data combinationally, so no transfer can ever complete",
                    names.join(", ")
                ),
            ));
        }
    }
}

/// Kahn's algorithm residue: `None` when the graph is acyclic, else the
/// (sorted) nodes left with unresolved in-degree — exactly the nodes on
/// directed cycles (plus their cyclic successors).
fn kahn_residue(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut indeg = vec![0usize; n];
    for targets in adj {
        for &t in targets {
            indeg[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &t in &adj[v] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if removed == n {
        return None;
    }
    Some((0..n).filter(|&i| indeg[i] > 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transparent(name: &str) -> StageContract {
        StageContract {
            name: name.into(),
            ready_on_valid: true,
            ready_transparent: true,
            valid_on_ready: false,
            valid_transparent: true,
            comb_through_data: true,
        }
    }

    #[test]
    fn buffered_chain_is_clean() {
        let g = LinkGraph::chain(
            "chain",
            vec![
                StageContract::buffered("a"),
                StageContract::buffered("b"),
                StageContract::buffered("c"),
            ],
        );
        assert!(g.check().is_clean());
    }

    #[test]
    fn transparent_chain_is_clean_but_transparent_ring_deadlocks() {
        // A linear chain of combinational stages is legal (slow, but
        // legal); close it into a ring and there is no storage anywhere.
        let stages = vec![transparent("a"), transparent("b")];
        let chain = LinkGraph::chain("open", stages.clone());
        assert!(chain.check().is_clean(), "{}", chain.check().render_human());
        let ring = LinkGraph {
            name: "ring".into(),
            stages,
            edges: vec![(0, 1), (1, 0)],
        };
        let r = ring.check();
        assert!(!r.is_clean());
        assert!(r.findings.iter().any(|f| f.message.contains("capacity-0")));
    }

    #[test]
    fn mealy_valid_meeting_ready_on_valid_closes_a_cycle() {
        // Stage a: out_valid ← out_ready (Mealy).  Stage b: in_ready ←
        // in_valid (P5L008 style) and transparent backpressure.  At the
        // a→b boundary: V ← R (a) and R ← V (b): a combinational loop.
        let mut a = StageContract::buffered("a");
        a.valid_on_ready = true;
        let mut b = StageContract::buffered("b");
        b.ready_on_valid = true;
        let g = LinkGraph::chain("x", vec![a, b]);
        let r = g.check();
        assert!(!r.is_clean());
        assert!(
            r.findings
                .iter()
                .any(|f| f.message.contains("ready/valid cycle")),
            "{}",
            r.render_human()
        );
    }

    #[test]
    fn composing_buffered_stages_stays_buffered() {
        let c = StageContract::compose_chain(
            "fused",
            &[StageContract::buffered("a"), StageContract::buffered("b")],
        );
        assert!(!c.ready_on_valid);
        assert!(!c.ready_transparent);
        assert!(!c.valid_on_ready);
        assert!(!c.valid_transparent);
        assert!(!c.comb_through_data);
    }

    #[test]
    fn composing_transparent_stages_stays_transparent() {
        let c = StageContract::compose_chain("fused", &[transparent("a"), transparent("b")]);
        assert!(c.ready_on_valid);
        assert!(c.ready_transparent);
        assert!(c.valid_transparent);
        assert!(c.comb_through_data);
    }

    #[test]
    fn one_buffered_stage_breaks_the_composed_coupling() {
        // a (transparent) → b (buffered): b's register hides every
        // combinational path, so the fused super-stage is buffered too.
        let c = StageContract::compose_chain(
            "fused",
            &[transparent("a"), StageContract::buffered("b")],
        );
        assert!(!c.ready_transparent);
        assert!(!c.valid_transparent);
        assert!(!c.comb_through_data);
        // …except the input-side Mealy coupling, which only involves
        // stage a's own boundary: V_in → R_in needs no path through b.
        assert!(c.ready_on_valid);
    }

    #[test]
    fn indirect_ready_on_valid_is_found_by_reachability() {
        // a forwards valid and backpressure transparently but has no
        // direct V→R arc; b couples in_ready to in_valid.  Composed:
        // V_0 → V_1 (a) → R_1 (b) → R_0 (a) — a three-arc path a naive
        // per-flag conjunction would miss.
        let mut a = StageContract::buffered("a");
        a.valid_transparent = true;
        a.ready_transparent = true;
        let mut b = StageContract::buffered("b");
        b.ready_on_valid = true;
        let c = StageContract::compose_chain("fused", &[a, b]);
        assert!(c.ready_on_valid);
        assert!(!c.valid_on_ready);
    }

    #[test]
    fn backpressure_transparency_alone_is_legal() {
        // Every stage forwards ready combinationally (wired-through
        // stall, as the paper's Figure 3 pipeline does) — fine, since
        // no valid path runs the other way.
        let mut s = StageContract::buffered("s");
        s.ready_transparent = true;
        let g = LinkGraph::chain("bp", vec![s.clone(), s.clone(), s]);
        assert!(g.check().is_clean());
    }
}
