//! `p5-lint` — static analysis for the P⁵ structural netlists.
//!
//! The generated logic at the heart of the paper — the 32-bit
//! escape-generate/detect byte-sorting networks with their
//! resynchronisation buffers and backpressure (Figs. 5–6) — is exactly
//! where silent wiring bugs (unbound flip-flop inputs, combinational
//! loops through a stall path, undriven nets) survive until simulation
//! mysteriously diverges.  This crate analyses the [`p5_fpga::Netlist`]
//! IR and the mapped form *without simulating*, the way real FPGA
//! packet-pipeline flows pair generation with static checking.
//!
//! # Rule catalogue
//!
//! | id       | name                    | severity | what it catches |
//! |----------|-------------------------|----------|-----------------|
//! | `P5L001` | `comb-loop`             | error    | combinational cycles (incl. through stall logic) |
//! | `P5L002` | `unbound-dff`           | error    | flip-flops whose D input was never connected |
//! | `P5L003` | `invalid-sig`           | error    | out-of-range `Sig` refs, broken FF cross-links, orphan inputs |
//! | `P5L004` | `bus-alias`             | warning  | the same driver named twice inside one bus (info across buses) |
//! | `P5L005` | `dead-logic`            | info     | gates/FFs unreachable from every output |
//! | `P5L006` | `reset-coverage`        | warning  | partial `sr` domains, constant-false `sr`/`en` pins |
//! | `P5L007` | `fanout-hotspot`        | warning  | nets whose fanout delay term alone blows the clock budget |
//! | `P5L008` | `handshake-comb-loop`   | error    | combinational `in_valid` → `in_ready` paths |
//! | `P5L009` | `ungated-capture`       | warning  | input-capturing registers not gated by the valid/stall handshake |
//! | `P5L010` | `unstable-under-stall`  | warning  | `out_data` combinationally dependent on the stall input |
//! | `P5L011` | `self-gated-enable`     | warning  | a register's CE cone containing its own Q (stall deadlock) |
//! | `P5L012` | `x-leak`                | error    | stale (reset-uncovered) register state reaching `out_data`/`out_valid` before the first valid beat |
//! | `P5L013` | `const-logic`           | info     | registers/gates provably constant under every input sequence |
//! | `P5L014` | `timing-violation`      | error    | negative worst slack from whole-netlist static timing analysis |
//! | `P5L015` | `compose-hazard`        | error    | cross-module combinational ready/valid cycles and capacity-0 deadlock rings |
//!
//! A module is **clean** when it has no findings at warning or error
//! severity (`P5L005` dead gates are informational: discarded carry
//! chains from word-level operators are normal synthesis residue).
//!
//! ```
//! use p5_fpga::Builder;
//!
//! let mut b = Builder::new("demo");
//! let x = b.input("x");
//! let q = b.reg(x, false);
//! b.output("q", &[q]);
//! let report = p5_lint::lint_netlist(&b.finish());
//! assert!(report.is_clean(), "{}", report.render_human());
//! ```

pub mod absint;
pub mod baseline;
pub mod compose;
pub mod fanout;
pub mod graph;
pub mod handshake;
pub mod report;
pub mod sarif;
pub mod structural;
pub mod timing;

use p5_fpga::{map, Device, MapMode, Netlist};

pub use baseline::{Baseline, BaselineEntry, BaselineError};
pub use compose::{LinkGraph, StageContract};
pub use report::{Finding, Report, Rule, Severity};
pub use sarif::to_sarif;
pub use timing::{static_timing, StaReport};

/// The line clock both datapath widths must meet (2.5 Gbps / 32 bit).
pub const LINE_CLOCK_MHZ: f64 = 78.125;

/// Run every structural and protocol rule over a netlist.
///
/// Never panics, even on deliberately corrupted netlists — that is the
/// point: every reference is bounds-checked before use.
pub fn lint_netlist(n: &Netlist) -> Report {
    let mut findings = Vec::new();
    structural::check_sig_validity(n, &mut findings);
    structural::check_unbound_dffs(n, &mut findings);
    // Deeper traversals only make sense on a netlist whose references
    // resolve; on reference errors we stop rather than chase wild sigs.
    if findings.iter().any(|f| f.severity == Severity::Error) {
        return Report::new(n.name.clone(), findings);
    }
    structural::check_comb_loops(n, &mut findings);
    let has_loop = findings.iter().any(|f| f.rule == Rule::CombLoop);
    structural::check_bus_aliases(n, &mut findings);
    if !has_loop {
        structural::check_dead_logic(n, &mut findings);
        structural::check_reset_coverage(n, &mut findings);
        handshake::check_handshake(n, &mut findings);
        absint::check_x_leak(n, &mut findings);
        absint::check_const_logic(n, &mut findings);
    }
    Report::new(n.name.clone(), findings)
}

/// Full lint: structural/protocol/dataflow rules plus the mapped
/// timing cross-checks on `device` at `clock_mhz` — the P5L007 fanout
/// heuristic and the P5L014 whole-netlist static timing analysis.
///
/// Mapping requires a well-formed netlist, so the mapped rules are
/// skipped (with the structural findings returned as-is) when any
/// error-severity finding is present.
pub fn lint_full(n: &Netlist, device: &Device, clock_mhz: f64) -> Report {
    let mut report = lint_netlist(n);
    if report.max_severity() >= Some(Severity::Error) {
        return report;
    }
    let mapped = map(n, MapMode::Area);
    fanout::check_fanout_hotspots(n, &mapped, device, clock_mhz, &mut report.findings);
    let sta = timing::static_timing(n, &mapped, device, clock_mhz, 1);
    timing::check_timing(&sta, &mut report.findings);
    report.sort_findings();
    report
}

/// The full STA report for one netlist (the `--report-timing` payload):
/// per-endpoint slack against `clock_mhz` with the `keep_paths` worst
/// paths traced gate by gate.  Returns `None` when the netlist has
/// error-severity findings (it cannot be mapped).
pub fn timing_report(
    n: &Netlist,
    device: &Device,
    clock_mhz: f64,
    keep_paths: usize,
) -> Option<StaReport> {
    if lint_netlist(n).max_severity() >= Some(Severity::Error) {
        return None;
    }
    let mapped = map(n, MapMode::Area);
    Some(timing::static_timing(
        n, &mapped, device, clock_mhz, keep_paths,
    ))
}

/// Every netlist the builders export (the same set as the
/// `export_netlists` binary), deduplicated by module name: the 8- and
/// 32-bit tx/rx pipelines, both escape sorter styles at width 4, the
/// FCS-16 CRC unit and the OAM register file.  This is the set `p5lint`
/// and the lint-clean integration tests run over.
pub fn shipped_netlists() -> Vec<Netlist> {
    use p5_rtl::{
        build_crc_unit, build_escape_detect, build_escape_gen, build_oam_regfile, system_modules,
        SorterStyle,
    };
    let mut modules = Vec::new();
    modules.extend(system_modules(1));
    modules.extend(system_modules(4));
    modules.push(build_escape_gen(4, SorterStyle::OneHot));
    modules.push(build_escape_detect(4, SorterStyle::OneHot));
    modules.push(build_crc_unit(p5_crc::FCS16, 2));
    modules.push(build_oam_regfile());
    let mut seen = std::collections::HashSet::new();
    modules.retain(|n| seen.insert(n.name.clone()));
    modules
}

/// The shipped pipeline compositions the P5L015 pass verifies: for each
/// datapath width, the transmit chain (control → CRC → escape-generate)
/// and the receive chain (escape-detect → CRC → control), with each
/// stage's handshake contract extracted from its netlist — plus the
/// *fused* fast paths, where each chain executes as one composed
/// operation and must therefore stand as a single contract
/// ([`StageContract::compose_chain`]).
pub fn shipped_link_graphs() -> Vec<LinkGraph> {
    let mut graphs = Vec::new();
    for width in [1usize, 4] {
        let modules = p5_rtl::system_modules(width);
        let contracts: Vec<StageContract> = modules.iter().map(StageContract::extract).collect();
        let bits = width * 8;
        let mut it = contracts.into_iter();
        let tx: Vec<StageContract> = it.by_ref().take(3).collect();
        let rx: Vec<StageContract> = it.collect();
        let fused_tx = StageContract::compose_chain(format!("fused {bits}-bit tx"), &tx);
        let fused_rx = StageContract::compose_chain(format!("fused {bits}-bit rx"), &rx);
        graphs.push(LinkGraph::chain(format!("P5 {bits}-bit tx chain"), tx));
        graphs.push(LinkGraph::chain(format!("P5 {bits}-bit rx chain"), rx));
        graphs.push(LinkGraph::chain(
            format!("P5 {bits}-bit fused tx path"),
            vec![fused_tx],
        ));
        graphs.push(LinkGraph::chain(
            format!("P5 {bits}-bit fused rx path"),
            vec![fused_rx],
        ));
    }
    graphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::{devices, Builder};

    #[test]
    fn trivial_register_pipeline_is_clean() {
        let mut b = Builder::new("ok");
        let x = b.input_bus("x", 4);
        let en = b.input("en");
        let q = b.reg_word_en(&x, en, 0);
        b.output("q", &q);
        let r = lint_full(&b.finish(), &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn reports_carry_the_module_name() {
        let b = Builder::new("named module");
        let r = lint_netlist(&b.finish());
        assert_eq!(r.module, "named module");
    }
}
