//! Finding/report types, the rule catalogue, and the two output
//! formats: a human-readable report and machine-readable JSON (written
//! by hand — the workspace resolves offline, so no serde).

use std::fmt;

/// Stable identifiers for every lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    CombLoop,
    UnboundDff,
    InvalidSig,
    BusAlias,
    DeadLogic,
    ResetCoverage,
    FanoutHotspot,
    HandshakeCombLoop,
    UngatedCapture,
    UnstableUnderStall,
    SelfGatedEnable,
    XLeak,
    ConstLogic,
    TimingViolation,
    ComposeHazard,
}

impl Rule {
    /// The stable machine-readable code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::CombLoop => "P5L001",
            Rule::UnboundDff => "P5L002",
            Rule::InvalidSig => "P5L003",
            Rule::BusAlias => "P5L004",
            Rule::DeadLogic => "P5L005",
            Rule::ResetCoverage => "P5L006",
            Rule::FanoutHotspot => "P5L007",
            Rule::HandshakeCombLoop => "P5L008",
            Rule::UngatedCapture => "P5L009",
            Rule::UnstableUnderStall => "P5L010",
            Rule::SelfGatedEnable => "P5L011",
            Rule::XLeak => "P5L012",
            Rule::ConstLogic => "P5L013",
            Rule::TimingViolation => "P5L014",
            Rule::ComposeHazard => "P5L015",
        }
    }

    /// The short human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::CombLoop => "comb-loop",
            Rule::UnboundDff => "unbound-dff",
            Rule::InvalidSig => "invalid-sig",
            Rule::BusAlias => "bus-alias",
            Rule::DeadLogic => "dead-logic",
            Rule::ResetCoverage => "reset-coverage",
            Rule::FanoutHotspot => "fanout-hotspot",
            Rule::HandshakeCombLoop => "handshake-comb-loop",
            Rule::UngatedCapture => "ungated-capture",
            Rule::UnstableUnderStall => "unstable-under-stall",
            Rule::SelfGatedEnable => "self-gated-enable",
            Rule::XLeak => "x-leak",
            Rule::ConstLogic => "const-logic",
            Rule::TimingViolation => "timing-violation",
            Rule::ComposeHazard => "compose-hazard",
        }
    }

    /// Every rule, for catalogue listings and coverage tests.
    pub const ALL: [Rule; 15] = [
        Rule::CombLoop,
        Rule::UnboundDff,
        Rule::InvalidSig,
        Rule::BusAlias,
        Rule::DeadLogic,
        Rule::ResetCoverage,
        Rule::FanoutHotspot,
        Rule::HandshakeCombLoop,
        Rule::UngatedCapture,
        Rule::UnstableUnderStall,
        Rule::SelfGatedEnable,
        Rule::XLeak,
        Rule::ConstLogic,
        Rule::TimingViolation,
        Rule::ComposeHazard,
    ];
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a rule violation anchored to concrete netlist nodes.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub severity: Severity,
    pub message: String,
    /// Node indices (`Sig` values) the finding is anchored to, when any.
    pub nodes: Vec<u32>,
}

impl Finding {
    pub fn new(rule: Rule, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            rule,
            severity,
            message: message.into(),
            nodes: Vec::new(),
        }
    }

    pub fn with_nodes(mut self, nodes: Vec<u32>) -> Self {
        self.nodes = nodes;
        self
    }
}

/// All findings for one module.
#[derive(Debug, Clone)]
pub struct Report {
    pub module: String,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn new(module: String, findings: Vec<Finding>) -> Self {
        let mut r = Self { module, findings };
        r.sort_findings();
        r
    }

    /// Highest severity present, `None` for an empty report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Clean = nothing at warning severity or above.
    pub fn is_clean(&self) -> bool {
        self.max_severity() < Some(Severity::Warning)
    }

    pub fn count_at_least(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= sev).count()
    }

    /// Most severe first, then by rule code, message and anchor nodes — a
    /// *total* order, so reports (and the golden fixture JSON derived
    /// from them) are byte-stable regardless of pass execution order.
    pub fn sort_findings(&mut self) {
        self.findings.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.rule.cmp(&b.rule))
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
    }

    /// Human-readable block, one line per finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let verdict = match self.max_severity() {
            Some(Severity::Error) => "FAIL",
            Some(Severity::Warning) => "WARN",
            _ => "clean",
        };
        out.push_str(&format!("{}: {verdict}\n", self.module));
        for f in &self.findings {
            out.push_str(&format!(
                "  [{} {}] {}: {}",
                f.rule.code(),
                f.severity,
                f.rule.name(),
                f.message
            ));
            if !f.nodes.is_empty() {
                let shown: Vec<String> = f.nodes.iter().take(8).map(|n| n.to_string()).collect();
                let ellipsis = if f.nodes.len() > 8 { ", …" } else { "" };
                out.push_str(&format!("  (nodes {}{ellipsis})", shown.join(", ")));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON object for this module.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"module\":{},", json_string(&self.module)));
        out.push_str("\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"message\":{},\"nodes\":[{}]}}",
                f.rule.code(),
                f.rule.name(),
                f.severity,
                json_string(&f.message),
                f.nodes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Rule::ALL.len(), "duplicate rule code");
        assert!(codes.iter().all(|c| c.starts_with("P5L")));
    }

    #[test]
    fn severity_ordering_drives_cleanliness() {
        let mut r = Report::new("m".into(), vec![]);
        assert!(r.is_clean());
        r.findings
            .push(Finding::new(Rule::DeadLogic, Severity::Info, "x"));
        assert!(r.is_clean(), "info does not dirty a module");
        r.findings
            .push(Finding::new(Rule::BusAlias, Severity::Warning, "y"));
        assert!(!r.is_clean());
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report::new("mod \"a\"\n".into(), vec![]);
        r.findings
            .push(Finding::new(Rule::CombLoop, Severity::Error, "cycle").with_nodes(vec![1, 2]));
        let j = r.to_json();
        assert!(j.contains("\"module\":\"mod \\\"a\\\"\\n\""), "{j}");
        assert!(j.contains("\"rule\":\"P5L001\""));
        assert!(j.contains("\"nodes\":[1,2]"));
    }
}
