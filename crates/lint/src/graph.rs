//! Bounds-checked graph traversals over the netlist IR.
//!
//! Everything here must hold on *malformed* netlists — the lint runs
//! before anyone is allowed to call [`Netlist::validate`] (which
//! panics).  So every node reference is range-checked and cycles are
//! found by SCC decomposition instead of the panicking `topo_order`.

use std::collections::HashSet;

use p5_fpga::{Netlist, NodeKind, Sig};

/// Like [`Netlist::fanins`] but returns no fanins for an out-of-range
/// signal instead of panicking.
pub fn fanins_checked(n: &Netlist, sig: Sig) -> [Option<Sig>; 2] {
    match n.nodes.get(sig as usize) {
        None | Some(NodeKind::Input) | Some(NodeKind::Const(_)) | Some(NodeKind::FfOutput(_)) => {
            [None, None]
        }
        Some(&NodeKind::Not(a)) => [Some(a), None],
        Some(&NodeKind::And(a, b)) | Some(&NodeKind::Or(a, b)) | Some(&NodeKind::Xor(a, b)) => {
            [Some(a), Some(b)]
        }
    }
}

/// Is this signal a combinational leaf (input, constant, FF output, or
/// out of range — which stops traversal either way)?
pub fn is_leaf_checked(n: &Netlist, sig: Sig) -> bool {
    matches!(
        n.nodes.get(sig as usize),
        None | Some(NodeKind::Input) | Some(NodeKind::Const(_)) | Some(NodeKind::FfOutput(_))
    )
}

/// The backward combinational cone of `root`: every node reachable from
/// it through gate fanins, stopping at (but including) leaves.  `root`
/// itself is always in the cone.
pub fn comb_cone(n: &Netlist, root: Sig) -> HashSet<Sig> {
    let mut cone = HashSet::new();
    let mut stack = vec![root];
    while let Some(s) = stack.pop() {
        if !cone.insert(s) {
            continue;
        }
        for f in fanins_checked(n, s).into_iter().flatten() {
            if !cone.contains(&f) {
                stack.push(f);
            }
        }
    }
    cone
}

/// Does the backward combinational cone of `root` contain `target`?
/// Early-exits without materialising the full cone.
pub fn cone_contains(n: &Netlist, root: Sig, target: Sig) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![root];
    while let Some(s) = stack.pop() {
        if s == target {
            return true;
        }
        if !seen.insert(s) {
            continue;
        }
        for f in fanins_checked(n, s).into_iter().flatten() {
            stack.push(f);
        }
    }
    false
}

/// All combinational cycles, as strongly connected components of the
/// gate graph: every SCC with more than one node, plus single nodes
/// with a self-edge.  Uses an iterative Tarjan so corrupted netlists of
/// any depth cannot blow the stack.
pub fn comb_cycles(n: &Netlist) -> Vec<Vec<Sig>> {
    let num = n.nodes.len();
    // Tarjan state.
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; num];
    let mut lowlink = vec![0u32; num];
    let mut on_stack = vec![false; num];
    let mut scc_stack: Vec<Sig> = Vec::new();
    let mut next_index = 0u32;
    let mut cycles = Vec::new();

    for start in 0..num as Sig {
        if index[start as usize] != UNSEEN {
            continue;
        }
        // Explicit DFS frame: (node, next fanin slot to visit).
        let mut frames: Vec<(Sig, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut slot)) = frames.last_mut() {
            if *slot == 0 {
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                scc_stack.push(v);
                on_stack[v as usize] = true;
            }
            let fanins = fanins_checked(n, v);
            if let Some(w) = fanins.iter().skip(*slot).flatten().next().copied() {
                *slot += 1;
                // Skip edges to out-of-range sigs (reported elsewhere).
                if (w as usize) < num {
                    if index[w as usize] == UNSEEN {
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                }
                continue;
            }
            // v is fully expanded.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
            }
            if lowlink[v as usize] == index[v as usize] {
                let mut scc = Vec::new();
                while let Some(w) = scc_stack.pop() {
                    on_stack[w as usize] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                let self_loop = scc.len() == 1
                    && fanins_checked(n, scc[0])
                        .into_iter()
                        .flatten()
                        .any(|f| f == scc[0]);
                if scc.len() > 1 || self_loop {
                    scc.sort_unstable();
                    cycles.push(scc);
                }
            }
        }
    }
    cycles.sort();
    cycles
}

/// Every node and flip-flop alive from the primary outputs: fixpoint of
/// backward reachability where reaching a flip-flop's Q pulls in its D,
/// CE and SR cones.  Returns `(live_nodes, live_dffs)`.
pub fn live_from_outputs(n: &Netlist) -> (HashSet<Sig>, HashSet<usize>) {
    let mut live = HashSet::new();
    let mut live_dffs = HashSet::new();
    let mut stack: Vec<Sig> = n
        .outputs
        .iter()
        .flat_map(|b| b.sigs.iter().copied())
        .collect();
    while let Some(s) = stack.pop() {
        if !live.insert(s) {
            continue;
        }
        for f in fanins_checked(n, s).into_iter().flatten() {
            stack.push(f);
        }
        if let Some(NodeKind::FfOutput(idx)) = n.nodes.get(s as usize) {
            if let Some(dff) = n.dffs.get(*idx as usize) {
                if live_dffs.insert(*idx as usize) {
                    stack.extend([dff.d, dff.en, dff.sr].into_iter().flatten());
                }
            }
        }
    }
    (live, live_dffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::Builder;

    #[test]
    fn checked_helpers_tolerate_wild_sigs() {
        let b = Builder::new("empty");
        let n = b.finish();
        assert_eq!(fanins_checked(&n, 999), [None, None]);
        assert!(is_leaf_checked(&n, 999));
        assert!(!cone_contains(&n, 999, 3));
        assert!(comb_cone(&n, 999).contains(&999));
    }

    #[test]
    fn cone_stops_at_registers() {
        let mut b = Builder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        let q = b.reg(g, false);
        let z = b.not(q);
        b.output("z", &[z]);
        let n = b.finish();
        let cone = comb_cone(&n, z);
        assert!(cone.contains(&q), "FF output is a leaf of the cone");
        assert!(!cone.contains(&g), "cone must not cross the register");
        assert!(cone_contains(&n, z, q));
        assert!(!cone_contains(&n, z, x));
    }

    #[test]
    fn scc_finds_a_planted_cycle() {
        let mut b = Builder::new("s");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.or2(g1, x);
        b.output("o", &[g2]);
        let mut n = b.finish();
        assert!(comb_cycles(&n).is_empty());
        // Rewire g1 to read g2: g1 ↔ g2 cycle.
        n.nodes[g1 as usize] = NodeKind::And(g2, y);
        let cycles = comb_cycles(&n);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], {
            let mut v = vec![g1, g2];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn liveness_follows_ff_control_pins() {
        let mut b = Builder::new("l");
        let x = b.input("x");
        let en = b.input("en");
        let nen = b.not(en);
        let q = b.reg_en(x, nen, false);
        b.output("q", &[q]);
        let n = b.finish();
        let (live, live_dffs) = live_from_outputs(&n);
        assert!(live.contains(&nen), "CE cone is live");
        assert_eq!(live_dffs.len(), 1);
    }
}
