//! Ternary (0/1/X) dataflow analysis — the abstract interpreter behind
//! `P5L012` (x-leak) and `P5L013` (const-logic).
//!
//! The netlist is evaluated over Kleene three-valued logic, where `X`
//! means "unknown this cycle" and the gate operators are the strongest
//! sound abstractions (`0 AND X = 0`, `1 AND X = X`, `X XOR anything
//! known = X`).  Two fixpoints run over the same machinery:
//!
//! * **X-leak** starts from the *post-reset* state — registers with an
//!   SR pin hold their init value, the rest hold `X` (stale) — holds the
//!   activation inputs (`in_valid`, `start`) deasserted, and steps the
//!   clock.  If `out_valid` ever evaluates to `X`, or asserts while an
//!   `out_data` bit is `X`, unknown register state reaches the wire
//!   before the first valid beat: the downstream stage latches garbage.
//! * **Const-logic** starts from the *power-on* state (every register's
//!   configuration init is defined) with every input `X`, and widens the
//!   register state by ternary join each step until it stabilises.
//!   Registers and live gates still at a known value in the fixpoint are
//!   provably constant under *every* input sequence — logic the
//!   synthesizer should have folded away.
//!
//! Both passes run only after the structural gates (valid sigs, bound
//! D inputs, no combinational loops), so traversal here may assume
//! resolvable references — but everything is still bounds-checked.

use std::collections::HashSet;

use p5_fpga::{Netlist, NodeKind, Sig};

use crate::graph;
use crate::report::{Finding, Rule, Severity};

/// Kleene three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tern {
    Zero,
    One,
    X,
}

impl Tern {
    pub fn from_bool(b: bool) -> Tern {
        if b {
            Tern::One
        } else {
            Tern::Zero
        }
    }

    pub fn is_known(self) -> bool {
        self != Tern::X
    }

    pub fn and(self, other: Tern) -> Tern {
        match (self, other) {
            (Tern::Zero, _) | (_, Tern::Zero) => Tern::Zero,
            (Tern::One, Tern::One) => Tern::One,
            _ => Tern::X,
        }
    }

    pub fn or(self, other: Tern) -> Tern {
        match (self, other) {
            (Tern::One, _) | (_, Tern::One) => Tern::One,
            (Tern::Zero, Tern::Zero) => Tern::Zero,
            _ => Tern::X,
        }
    }

    pub fn xor(self, other: Tern) -> Tern {
        match (self, other) {
            (Tern::X, _) | (_, Tern::X) => Tern::X,
            (a, b) => Tern::from_bool(a != b),
        }
    }

    /// Lattice join: agreeing values stay, disagreement widens to `X`.
    pub fn join(self, other: Tern) -> Tern {
        if self == other {
            self
        } else {
            Tern::X
        }
    }
}

impl std::ops::Not for Tern {
    type Output = Tern;

    fn not(self) -> Tern {
        match self {
            Tern::Zero => Tern::One,
            Tern::One => Tern::Zero,
            Tern::X => Tern::X,
        }
    }
}

/// A topological order of every combinational node, built with checked
/// fanins (nodes on cycles or with wild references simply keep their
/// default `X` — the callers are gated behind P5L001/P5L003 anyway).
fn topo_order_checked(n: &Netlist) -> Vec<Sig> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let num = n.nodes.len();
    let mut marks = vec![Mark::White; num];
    let mut order = Vec::with_capacity(num);
    for start in 0..num as Sig {
        if marks[start as usize] != Mark::White {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((s, expanded)) = stack.pop() {
            if expanded {
                if marks[s as usize] == Mark::Grey {
                    marks[s as usize] = Mark::Black;
                    order.push(s);
                }
                continue;
            }
            if marks[s as usize] != Mark::White {
                continue;
            }
            marks[s as usize] = Mark::Grey;
            stack.push((s, true));
            for f in graph::fanins_checked(n, s).into_iter().flatten() {
                if (f as usize) < num && marks[f as usize] == Mark::White {
                    stack.push((f, false));
                }
            }
        }
    }
    order
}

/// The evaluation context: a fixed topological order plus the per-Input
/// assignment, reused across clock steps.
struct Interp {
    order: Vec<Sig>,
    /// Per-node value for `Input` nodes (`X` for everything else).
    input_vals: Vec<Tern>,
}

impl Interp {
    fn new(n: &Netlist, input_vals: Vec<Tern>) -> Self {
        Self {
            order: topo_order_checked(n),
            input_vals,
        }
    }

    /// Evaluate every combinational node under register state `state`.
    fn eval(&self, n: &Netlist, state: &[Tern]) -> Vec<Tern> {
        let mut v = vec![Tern::X; n.nodes.len()];
        for &s in &self.order {
            let i = s as usize;
            let get = |sig: Sig| v.get(sig as usize).copied().unwrap_or(Tern::X);
            v[i] = match n.nodes[i] {
                NodeKind::Input => self.input_vals[i],
                NodeKind::Const(b) => Tern::from_bool(b),
                NodeKind::Not(a) => !get(a),
                NodeKind::And(a, b) => get(a).and(get(b)),
                NodeKind::Or(a, b) => get(a).or(get(b)),
                NodeKind::Xor(a, b) => get(a).xor(get(b)),
                NodeKind::FfOutput(idx) => state.get(idx as usize).copied().unwrap_or(Tern::X),
            };
        }
        v
    }

    /// One clock edge: the next register state under node values `v`.
    /// Mirrors the simulator's pin priority — SR (loads init) over CE.
    fn next_state(&self, n: &Netlist, v: &[Tern], state: &[Tern]) -> Vec<Tern> {
        let get = |sig: Option<Sig>| -> Tern {
            sig.and_then(|s| v.get(s as usize).copied())
                .unwrap_or(Tern::X)
        };
        n.dffs
            .iter()
            .enumerate()
            .map(|(i, dff)| {
                let d = get(dff.d);
                let held = state.get(i).copied().unwrap_or(Tern::X);
                let loaded = match dff.en {
                    None => d,
                    Some(en) => match get(Some(en)) {
                        Tern::One => d,
                        Tern::Zero => held,
                        Tern::X => d.join(held),
                    },
                };
                match dff.sr {
                    None => loaded,
                    Some(sr) => match get(Some(sr)) {
                        Tern::One => Tern::from_bool(dff.init),
                        Tern::Zero => loaded,
                        Tern::X => loaded.join(Tern::from_bool(dff.init)),
                    },
                }
            })
            .collect()
    }
}

/// Single-bit input buses held at 0 during the X-leak run: the
/// activation strobes of the stage convention.  Everything else
/// (data, controls we know nothing about) starts `X`.
const HELD_LOW: [&str; 4] = ["in_valid", "start", "en", "wr"];

fn input_assignment(n: &Netlist, all_x: bool) -> Vec<Tern> {
    let mut vals = vec![Tern::X; n.nodes.len()];
    if all_x {
        return vals;
    }
    for bus in &n.inputs {
        if bus.sigs.len() == 1 && HELD_LOW.contains(&bus.name.as_str()) {
            if let Some(v) = vals.get_mut(bus.sigs[0] as usize) {
                *v = Tern::Zero;
            }
        }
    }
    vals
}

/// Bound on the clock steps explored before declaring the state space
/// cyclic (the seen-state set usually closes far earlier).
const MAX_STEPS: usize = 256;

/// `P5L012` — from the post-reset state, with activation inputs held
/// low, `out_valid` must stay a known 0/1 and `out_data` must be fully
/// known whenever `out_valid` asserts.  Anything else lets stale
/// register contents (registers the reset does not cover) reach the
/// downstream stage as a "valid" beat.
pub fn check_x_leak(n: &Netlist, findings: &mut Vec<Finding>) {
    let Some(out_valid) = n
        .output_bus("out_valid")
        .and_then(|b| (b.sigs.len() == 1).then(|| b.sigs[0]))
    else {
        return; // no valid strobe: the rule's contract does not apply
    };
    let out_data: Vec<Sig> = n
        .output_bus("out_data")
        .map(|b| b.sigs.clone())
        .unwrap_or_default();

    // Post-reset state: SR-covered registers are at their init value;
    // in a module with a reset domain the others are stale (X).  A
    // module with *no* SR pins is initialised purely by configuration,
    // so every register is at a defined power-on value.
    let resettable = n.has_reset_domain();
    let mut state: Vec<Tern> = n
        .dffs
        .iter()
        .map(|d| match d.reset_value() {
            Some(v) => Tern::from_bool(v),
            None if resettable => Tern::X,
            None => Tern::from_bool(d.init),
        })
        .collect();

    let interp = Interp::new(n, input_assignment(n, false));
    let mut seen: HashSet<Vec<Tern>> = HashSet::new();
    for cycle in 0..MAX_STEPS {
        if !seen.insert(state.clone()) {
            return; // state space closed without a leak
        }
        let v = interp.eval(n, &state);
        let violation = if v[out_valid as usize] == Tern::X {
            Some((
                out_valid,
                format!("out_valid is unknown (X) {cycle} cycle(s) after reset"),
            ))
        } else if v[out_valid as usize] == Tern::One {
            out_data
                .iter()
                .find(|&&bit| v.get(bit as usize).copied() == Some(Tern::X))
                .map(|&bit| {
                    let pos = out_data.iter().position(|&b| b == bit).unwrap_or(0);
                    (
                        bit,
                        format!(
                            "out_valid asserts {cycle} cycle(s) after reset while \
                             out_data[{pos}] is unknown (X)"
                        ),
                    )
                })
        } else {
            None
        };
        if let Some((sig, why)) = violation {
            // Anchor the finding to the stale registers feeding the
            // violating bit — the registers a fix must cover with SR.
            let cone = graph::comb_cone(n, sig);
            let mut stale: Vec<Sig> = n
                .dffs
                .iter()
                .enumerate()
                .filter(|(i, d)| state.get(*i).copied() == Some(Tern::X) && cone.contains(&d.q))
                .map(|(_, d)| d.q)
                .collect();
            stale.sort_unstable();
            findings.push(
                Finding::new(
                    Rule::XLeak,
                    Severity::Error,
                    format!(
                        "{why}: stale (reset-uncovered) register state reaches the \
                         output cone before the first valid beat"
                    ),
                )
                .with_nodes(stale),
            );
            return;
        }
        state = interp.next_state(n, &v, &state);
    }
}

/// `P5L013` — registers and live gates provably constant under every
/// input sequence from power-on.  The register state is widened by
/// ternary join each step, so the loop terminates after at most
/// `dffs + 1` iterations; whatever survives at a known value is logic
/// the synthesizer should have constant-folded.
pub fn check_const_logic(n: &Netlist, findings: &mut Vec<Finding>) {
    let interp = Interp::new(n, input_assignment(n, true));
    let mut state: Vec<Tern> = n.dffs.iter().map(|d| Tern::from_bool(d.init)).collect();
    for _ in 0..=n.dffs.len() {
        let v = interp.eval(n, &state);
        let next = interp.next_state(n, &v, &state);
        let widened: Vec<Tern> = state.iter().zip(&next).map(|(&a, &b)| a.join(b)).collect();
        if widened == state {
            break;
        }
        state = widened;
    }

    let (live, live_dffs) = graph::live_from_outputs(n);
    let mut const_ffs: Vec<Sig> = n
        .dffs
        .iter()
        .enumerate()
        .filter(|(i, _)| live_dffs.contains(i) && state[*i].is_known())
        .map(|(_, d)| d.q)
        .collect();
    const_ffs.sort_unstable();
    if !const_ffs.is_empty() {
        findings.push(
            Finding::new(
                Rule::ConstLogic,
                Severity::Info,
                format!(
                    "{} live flip-flop(s) hold a provably constant value under every \
                     input sequence: replace with constants",
                    const_ffs.len()
                ),
            )
            .with_nodes(const_ffs),
        );
    }

    let v = interp.eval(n, &state);
    let mut const_gates: Vec<Sig> = (0..n.nodes.len() as Sig)
        .filter(|&s| {
            live.contains(&s)
                && matches!(
                    n.nodes[s as usize],
                    NodeKind::Not(_) | NodeKind::And(..) | NodeKind::Or(..) | NodeKind::Xor(..)
                )
                && v[s as usize].is_known()
        })
        .collect();
    const_gates.sort_unstable();
    if !const_gates.is_empty() {
        findings.push(
            Finding::new(
                Rule::ConstLogic,
                Severity::Info,
                format!(
                    "{} live gate(s) evaluate to a constant under every input \
                     sequence: foldable logic",
                    const_gates.len()
                ),
            )
            .with_nodes(const_gates),
        );
    }
}
