//! `P5L007` — fanout hotspots, cross-checked against the device timing
//! model.
//!
//! The STA in `p5_fpga::timing` prices a post-layout net at
//! `t_net_base + t_net_fanout·log₂(1+fanout) + t_congestion·utilisation`.
//! A net whose priced delay, plus the *minimum possible* path overhead
//! around it (clock-to-Q, one LUT, setup), already exceeds the clock
//! period cannot be fixed by restructuring logic — only by replicating
//! the driver.  Flagging those nets separates "pipeline deeper" from
//! "duplicate this register" before anyone reads a full timing report.

use p5_fpga::{Device, MappedNetlist, Netlist, NodeKind, Sig};

use crate::report::{Finding, Rule, Severity};

/// Human label for the driver of a net, for actionable messages.
fn driver_label(n: &Netlist, sig: Sig) -> String {
    for bus in &n.inputs {
        if let Some(bit) = bus.sigs.iter().position(|&s| s == sig) {
            return format!("input {}[{bit}]", bus.name);
        }
    }
    match n.nodes.get(sig as usize) {
        Some(NodeKind::FfOutput(idx)) => format!("flip-flop {idx} Q"),
        Some(NodeKind::Const(v)) => format!("constant {v}"),
        _ => format!("node {sig}"),
    }
}

/// Flag nets whose fanout-priced delay alone blows the `clock_mhz`
/// budget on `device` (post-layout model, utilisation from the mapping).
pub fn check_fanout_hotspots(
    n: &Netlist,
    m: &MappedNetlist,
    device: &Device,
    clock_mhz: f64,
    findings: &mut Vec<Finding>,
) {
    let period_ns = 1000.0 / clock_mhz;
    let utilisation = (m.lut_count() as f64 / device.luts as f64).min(1.0);
    // The cheapest path any net can sit on: FF → net → LUT → FF.
    let overhead_ns = device.t_cq + device.t_lut + device.t_su;
    let mut nets: Vec<(Sig, usize)> = m.fanout.iter().map(|(&s, &fo)| (s, fo)).collect();
    nets.sort_unstable();
    for (sig, fo) in nets {
        let net_ns = device.t_net_base
            + device.t_net_fanout * ((1 + fo) as f64).log2()
            + device.t_congestion * utilisation;
        if overhead_ns + net_ns > period_ns {
            findings.push(
                Finding::new(
                    Rule::FanoutHotspot,
                    Severity::Warning,
                    format!(
                        "net driven by {} (fanout {fo}) needs {:.2} ns on {} at {:.0}% \
                         utilisation; with {:.2} ns register+LUT overhead it exceeds the \
                         {:.2} ns period of {clock_mhz} MHz — replicate the driver",
                        driver_label(n, sig),
                        net_ns,
                        device.name,
                        utilisation * 100.0,
                        overhead_ns,
                        period_ns,
                    ),
                )
                .with_nodes(vec![sig]),
            );
        }
    }
}
