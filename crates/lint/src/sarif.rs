//! SARIF 2.1.0 output — the static-analysis interchange format CI
//! systems (GitHub code scanning, among others) ingest natively.
//!
//! One run, one `tool.driver` describing every rule in the catalogue,
//! one `result` per finding.  Netlist modules have no file/line, so
//! each result carries a *logical* location (`kind: "module"`) plus the
//! anchor nodes in `properties` — enough for a reviewer to jump from
//! the CI annotation to `p5lint`'s human report.

use crate::report::{json_string, Report, Rule, Severity};

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Info => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Serialise lint reports as one SARIF 2.1.0 log.
pub fn to_sarif(reports: &[Report]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"p5lint\",\"rules\":[",
    );
    for (i, rule) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"name\":{}}}",
            rule.code(),
            json_string(rule.name()),
        ));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for r in reports {
        for f in &r.findings {
            if !first {
                out.push(',');
            }
            first = false;
            let nodes = f
                .nodes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":{}}},\
                 \"locations\":[{{\"logicalLocations\":[{{\"name\":{},\
                 \"kind\":\"module\"}}]}}],\"properties\":{{\"nodes\":[{nodes}]}}}}",
                f.rule.code(),
                level(f.severity),
                json_string(&f.message),
                json_string(&r.module),
            ));
        }
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    #[test]
    fn sarif_shape_and_rule_catalogue() {
        let reports = vec![Report::new(
            "mod".into(),
            vec![
                Finding::new(Rule::CombLoop, Severity::Error, "loop").with_nodes(vec![3, 4]),
                Finding::new(Rule::DeadLogic, Severity::Info, "dead"),
            ],
        )];
        let s = to_sarif(&reports);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"version\":\"2.1.0\""));
        for rule in Rule::ALL {
            assert!(
                s.contains(&format!("\"id\":\"{}\"", rule.code())),
                "{rule:?}"
            );
        }
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\"level\":\"note\""));
        assert!(s.contains("\"nodes\":[3,4]"));
        assert!(s.contains("\"name\":\"mod\""));
    }

    #[test]
    fn empty_reports_are_valid_sarif() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\":[]"));
    }
}
