//! Structural wiring rules: reference validity, unbound flip-flops,
//! combinational loops, bus aliasing, dead logic and reset coverage.

use std::collections::HashMap;

use p5_fpga::{Netlist, NodeKind, Sig};

use crate::graph;
use crate::report::{Finding, Rule, Severity};

fn in_range(n: &Netlist, s: Sig) -> bool {
    (s as usize) < n.nodes.len()
}

/// `P5L003` — every `Sig` must resolve: gate fanins, flip-flop pins and
/// bus bits in range, FF ↔ node cross-links consistent, and no `Input`
/// node orphaned outside every input bus.
pub fn check_sig_validity(n: &Netlist, findings: &mut Vec<Finding>) {
    for (i, kind) in n.nodes.iter().enumerate() {
        for f in graph::fanins_checked(n, i as Sig).into_iter().flatten() {
            if !in_range(n, f) {
                findings.push(
                    Finding::new(
                        Rule::InvalidSig,
                        Severity::Error,
                        format!(
                            "node {i} reads out-of-range signal {f} (only {} nodes exist)",
                            n.nodes.len()
                        ),
                    )
                    .with_nodes(vec![i as Sig]),
                );
            }
        }
        if let NodeKind::FfOutput(idx) = kind {
            match n.dffs.get(*idx as usize) {
                None => findings.push(
                    Finding::new(
                        Rule::InvalidSig,
                        Severity::Error,
                        format!("node {i} claims to be the output of nonexistent flip-flop {idx}"),
                    )
                    .with_nodes(vec![i as Sig]),
                ),
                Some(dff) if dff.q != i as Sig => findings.push(
                    Finding::new(
                        Rule::InvalidSig,
                        Severity::Error,
                        format!(
                            "broken cross-link: node {i} points at flip-flop {idx}, whose Q is node {}",
                            dff.q
                        ),
                    )
                    .with_nodes(vec![i as Sig, dff.q]),
                ),
                _ => {}
            }
        }
    }
    for (i, dff) in n.dffs.iter().enumerate() {
        for (pin, sig) in [
            ("Q", Some(dff.q)),
            ("D", dff.d),
            ("CE", dff.en),
            ("SR", dff.sr),
        ] {
            if let Some(s) = sig {
                if !in_range(n, s) {
                    findings.push(Finding::new(
                        Rule::InvalidSig,
                        Severity::Error,
                        format!("flip-flop {i} {pin} pin references out-of-range signal {s}"),
                    ));
                }
            }
        }
        if in_range(n, dff.q)
            && !matches!(n.nodes[dff.q as usize], NodeKind::FfOutput(idx) if idx as usize == i)
        {
            findings.push(
                Finding::new(
                    Rule::InvalidSig,
                    Severity::Error,
                    format!(
                        "flip-flop {i} Q points at node {} which is not its FfOutput",
                        dff.q
                    ),
                )
                .with_nodes(vec![dff.q]),
            );
        }
    }
    for (dir, buses) in [("input", &n.inputs), ("output", &n.outputs)] {
        for bus in buses.iter() {
            for (bit, &s) in bus.sigs.iter().enumerate() {
                if !in_range(n, s) {
                    findings.push(Finding::new(
                        Rule::InvalidSig,
                        Severity::Error,
                        format!(
                            "{dir} bus `{}` bit {bit} references out-of-range signal {s}",
                            bus.name
                        ),
                    ));
                } else if dir == "input" && !matches!(n.nodes[s as usize], NodeKind::Input) {
                    findings.push(
                        Finding::new(
                            Rule::InvalidSig,
                            Severity::Error,
                            format!(
                                "input bus `{}` bit {bit} is driven by node {s}, which is not an Input node",
                                bus.name
                            ),
                        )
                        .with_nodes(vec![s]),
                    );
                }
            }
        }
    }
    // Orphan inputs: an Input node no bus names is unreachable from the
    // outside world, so nothing can ever drive it in simulation.
    let mut named: Vec<bool> = vec![false; n.nodes.len()];
    for bus in &n.inputs {
        for &s in &bus.sigs {
            if in_range(n, s) {
                named[s as usize] = true;
            }
        }
    }
    let orphans: Vec<Sig> = n
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, k)| matches!(k, NodeKind::Input) && !named[*i])
        .map(|(i, _)| i as Sig)
        .collect();
    if !orphans.is_empty() {
        findings.push(
            Finding::new(
                Rule::InvalidSig,
                Severity::Error,
                format!(
                    "{} Input node(s) belong to no input bus and can never be driven",
                    orphans.len()
                ),
            )
            .with_nodes(orphans),
        );
    }
}

/// `P5L002` — a flip-flop whose D input was never bound latches
/// nothing; `connect_dff` was forgotten.
pub fn check_unbound_dffs(n: &Netlist, findings: &mut Vec<Finding>) {
    for (i, dff) in n.dffs.iter().enumerate() {
        if dff.d.is_none() {
            findings.push(
                Finding::new(
                    Rule::UnboundDff,
                    Severity::Error,
                    format!("flip-flop {i} (Q = node {}) has an unbound D input", dff.q),
                )
                .with_nodes(vec![dff.q]),
            );
        }
    }
}

/// `P5L001` — combinational cycles, one finding per strongly connected
/// component of the gate graph.
pub fn check_comb_loops(n: &Netlist, findings: &mut Vec<Finding>) {
    for cycle in graph::comb_cycles(n) {
        findings.push(
            Finding::new(
                Rule::CombLoop,
                Severity::Error,
                format!("combinational loop through {} node(s)", cycle.len()),
            )
            .with_nodes(cycle),
        );
    }
}

/// `P5L004` — the same driver named more than once.  Within a single
/// bus this is a warning (two "different" bits of a word share one
/// driver — almost always a copy-paste index bug); the same signal
/// appearing in several buses is informational (deliberate re-export).
/// Constants are exempt: tying many bits to 0/1 is normal.
pub fn check_bus_aliases(n: &Netlist, findings: &mut Vec<Finding>) {
    let is_const = |s: Sig| matches!(n.nodes.get(s as usize), Some(NodeKind::Const(_)));
    for (dir, buses) in [("input", &n.inputs), ("output", &n.outputs)] {
        let mut seen_across: HashMap<Sig, &str> = HashMap::new();
        for bus in buses.iter() {
            let mut seen_in_bus: HashMap<Sig, usize> = HashMap::new();
            for (bit, &s) in bus.sigs.iter().enumerate() {
                if is_const(s) {
                    continue;
                }
                if let Some(&first) = seen_in_bus.get(&s) {
                    findings.push(
                        Finding::new(
                            Rule::BusAlias,
                            Severity::Warning,
                            format!(
                                "{dir} bus `{}` bits {first} and {bit} are the same signal {s}",
                                bus.name
                            ),
                        )
                        .with_nodes(vec![s]),
                    );
                } else {
                    seen_in_bus.insert(s, bit);
                }
            }
            for &s in bus.sigs.iter() {
                if is_const(s) {
                    continue;
                }
                if let Some(&other) = seen_across.get(&s) {
                    if other != bus.name {
                        findings.push(
                            Finding::new(
                                Rule::BusAlias,
                                Severity::Info,
                                format!(
                                    "{dir} buses `{other}` and `{}` share signal {s}",
                                    bus.name
                                ),
                            )
                            .with_nodes(vec![s]),
                        );
                    }
                } else {
                    seen_across.insert(s, &bus.name);
                }
            }
        }
    }
}

/// `P5L005` — gates and flip-flops no primary output can observe.
/// Informational: word-level operators (`add`/`sub`) discard carry
/// chains, so shipped netlists legitimately carry a little residue.
pub fn check_dead_logic(n: &Netlist, findings: &mut Vec<Finding>) {
    let (live, live_dffs) = graph::live_from_outputs(n);
    let dead_gates: Vec<Sig> = (0..n.nodes.len() as Sig)
        .filter(|&s| {
            !live.contains(&s)
                && matches!(
                    n.nodes[s as usize],
                    NodeKind::Not(_) | NodeKind::And(..) | NodeKind::Or(..) | NodeKind::Xor(..)
                )
        })
        .collect();
    if !dead_gates.is_empty() {
        findings.push(
            Finding::new(
                Rule::DeadLogic,
                Severity::Info,
                format!(
                    "{} of {} gates are unreachable from every output",
                    dead_gates.len(),
                    n.gate_count()
                ),
            )
            .with_nodes(dead_gates),
        );
    }
    let dead_ffs: Vec<Sig> = n
        .dffs
        .iter()
        .enumerate()
        .filter(|(i, _)| !live_dffs.contains(i))
        .map(|(_, d)| d.q)
        .collect();
    if !dead_ffs.is_empty() {
        findings.push(
            Finding::new(
                Rule::DeadLogic,
                Severity::Info,
                format!(
                    "{} of {} flip-flops are unreachable from every output",
                    dead_ffs.len(),
                    n.ff_count()
                ),
            )
            .with_nodes(dead_ffs),
        );
    }
}

/// `P5L006` — reset/init hygiene: a module that resets *some* state must
/// reset all of it (a partial SR domain desynchronises an FSM from its
/// datapath on reframe), an SR tied to constant-false can never fire,
/// one tied to constant-true holds the register in reset forever, and a
/// constant-false CE describes a register that never loads.
pub fn check_reset_coverage(n: &Netlist, findings: &mut Vec<Finding>) {
    let const_val = |s: Sig| match n.nodes.get(s as usize) {
        Some(NodeKind::Const(v)) => Some(*v),
        _ => None,
    };
    let with_sr = n.dffs.iter().filter(|d| d.sr.is_some()).count();
    if with_sr > 0 && with_sr < n.dffs.len() {
        let uncovered: Vec<Sig> = n
            .dffs
            .iter()
            .filter(|d| d.sr.is_none())
            .map(|d| d.q)
            .collect();
        findings.push(
            Finding::new(
                Rule::ResetCoverage,
                Severity::Warning,
                format!(
                    "partial reset domain: {with_sr} of {} flip-flops have an SR pin; the rest keep stale state across a reset",
                    n.dffs.len()
                ),
            )
            .with_nodes(uncovered),
        );
    }
    for (i, dff) in n.dffs.iter().enumerate() {
        if let Some(v) = dff.sr.and_then(const_val) {
            let msg = if v {
                format!(
                    "flip-flop {i} SR is tied to constant true: permanently held at its init value"
                )
            } else {
                format!("flip-flop {i} SR is tied to constant false: the reset can never assert")
            };
            findings.push(
                Finding::new(Rule::ResetCoverage, Severity::Warning, msg).with_nodes(vec![dff.q]),
            );
        }
        if dff.en.and_then(const_val) == Some(false) {
            findings.push(
                Finding::new(
                    Rule::ResetCoverage,
                    Severity::Warning,
                    format!("flip-flop {i} CE is tied to constant false: the register never loads"),
                )
                .with_nodes(vec![dff.q]),
            );
        }
    }
}
