//! `p5lint` — lint every builder-exported P⁵ netlist.
//!
//! ```text
//! p5lint [--json] [--device NAME] [--clock MHZ] [--strict]
//! ```
//!
//! Human-readable report by default, one JSON array with `--json`.
//! Exits 1 when any module has a finding at warning severity or above
//! (`--strict` lowers the bar to info).

use std::process::ExitCode;

use p5_fpga::{devices, Device};
use p5_lint::{lint_full, shipped_netlists, Severity, LINE_CLOCK_MHZ};

const USAGE: &str = "usage: p5lint [--json] [--device NAME] [--clock MHZ] [--strict]";

struct Options {
    json: bool,
    strict: bool,
    help: bool,
    device: Device,
    clock_mhz: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        strict: false,
        help: false,
        device: devices::XC2V1000_6,
        clock_mhz: LINE_CLOCK_MHZ,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--device" => {
                let name = args.next().ok_or("--device needs a device name")?;
                opts.device = *devices::ALL
                    .iter()
                    .find(|d| d.name.eq_ignore_ascii_case(&name))
                    .ok_or_else(|| {
                        let known: Vec<&str> = devices::ALL.iter().map(|d| d.name).collect();
                        format!("unknown device `{name}` (known: {})", known.join(", "))
                    })?;
            }
            "--clock" => {
                let mhz = args.next().ok_or("--clock needs a frequency in MHz")?;
                opts.clock_mhz = mhz
                    .parse::<f64>()
                    .ok()
                    .filter(|f| *f > 0.0)
                    .ok_or_else(|| format!("bad clock frequency `{mhz}`"))?;
            }
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let bar = if opts.strict {
        Severity::Info
    } else {
        Severity::Warning
    };
    let reports: Vec<_> = shipped_netlists()
        .iter()
        .map(|n| lint_full(n, &opts.device, opts.clock_mhz))
        .collect();
    let failing = reports
        .iter()
        .filter(|r| r.max_severity() >= Some(bar))
        .count();

    if opts.json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for r in &reports {
            print!("{}", r.render_human());
        }
        println!(
            "p5lint: {} module(s) on {} at {} MHz, {failing} failing",
            reports.len(),
            opts.device.name,
            opts.clock_mhz
        );
    }
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
