//! `p5lint` — lint every builder-exported P⁵ netlist.
//!
//! ```text
//! p5lint [--json] [--device NAME] [--clock MHZ] [--strict]
//! ```
//!
//! Human-readable report by default, one JSON array with `--json`.
//! Exits 1 when any module has a finding at warning severity or above
//! (`--strict` lowers the bar to info).

use std::error::Error;
use std::fmt;
use std::process::ExitCode;

use p5_fpga::{devices, Device};
use p5_lint::{lint_full, shipped_netlists, Severity, LINE_CLOCK_MHZ};

const USAGE: &str = "usage: p5lint [--json] [--device NAME] [--clock MHZ] [--strict]";

/// Why the command line was rejected (workspace error convention:
/// `<Noun>Error`, `#[non_exhaustive]`, structured fields — DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
enum CliError {
    /// A flag that takes a value appeared last on the line.
    MissingValue {
        flag: &'static str,
        what: &'static str,
    },
    /// `--device` named no known part.
    UnknownDevice { name: String },
    /// `--clock` carried something that is not a positive frequency.
    BadClock { value: String },
    /// An argument no flag matches.
    UnknownArgument { arg: String },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag, what } => write!(f, "{flag} needs {what}"),
            CliError::UnknownDevice { name } => {
                let known: Vec<&str> = devices::ALL.iter().map(|d| d.name).collect();
                write!(f, "unknown device `{name}` (known: {})", known.join(", "))
            }
            CliError::BadClock { value } => write!(f, "bad clock frequency `{value}`"),
            CliError::UnknownArgument { arg } => {
                write!(f, "unknown argument `{arg}` (see --help)")
            }
        }
    }
}

impl Error for CliError {}

struct Options {
    json: bool,
    strict: bool,
    help: bool,
    device: Device,
    clock_mhz: f64,
}

fn parse_args() -> Result<Options, CliError> {
    let mut opts = Options {
        json: false,
        strict: false,
        help: false,
        device: devices::XC2V1000_6,
        clock_mhz: LINE_CLOCK_MHZ,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--device" => {
                let name = args.next().ok_or(CliError::MissingValue {
                    flag: "--device",
                    what: "a device name",
                })?;
                opts.device = *devices::ALL
                    .iter()
                    .find(|d| d.name.eq_ignore_ascii_case(&name))
                    .ok_or(CliError::UnknownDevice { name })?;
            }
            "--clock" => {
                let mhz = args.next().ok_or(CliError::MissingValue {
                    flag: "--clock",
                    what: "a frequency in MHz",
                })?;
                opts.clock_mhz = mhz
                    .parse::<f64>()
                    .ok()
                    .filter(|f| *f > 0.0)
                    .ok_or(CliError::BadClock { value: mhz })?;
            }
            "--help" | "-h" => opts.help = true,
            other => {
                return Err(CliError::UnknownArgument {
                    arg: other.to_string(),
                })
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let bar = if opts.strict {
        Severity::Info
    } else {
        Severity::Warning
    };
    let reports: Vec<_> = shipped_netlists()
        .iter()
        .map(|n| lint_full(n, &opts.device, opts.clock_mhz))
        .collect();
    let failing = reports
        .iter()
        .filter(|r| r.max_severity() >= Some(bar))
        .count();

    if opts.json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for r in &reports {
            print!("{}", r.render_human());
        }
        println!(
            "p5lint: {} module(s) on {} at {} MHz, {failing} failing",
            reports.len(),
            opts.device.name,
            opts.clock_mhz
        );
    }
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
