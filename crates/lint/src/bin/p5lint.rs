//! `p5lint` — static analysis driver for the P⁵ netlists.
//!
//! With no file arguments it lints every builder-exported netlist plus
//! the shipped link compositions; with `.p5n` files (see
//! [`p5_fpga::text`]) it lints their modules, treating any multi-module
//! file as a source→sink chain for the composition pass.

use std::error::Error;
use std::fmt;
use std::process::ExitCode;

use p5_fpga::{devices, Device};
use p5_lint::{
    lint_full, shipped_link_graphs, shipped_netlists, timing_report, Baseline, LinkGraph, Report,
    Severity, StageContract, LINE_CLOCK_MHZ,
};

const USAGE: &str = "\
usage: p5lint [OPTIONS] [FILE...]

Lint the shipped P5 netlists (default) or the modules of .p5n netlist
files; a file holding several modules is also checked as a composed
source->sink chain.

options:
  --json                 machine-readable JSON array, one object per module
  --sarif                SARIF 2.1.0 log for CI ingestion
  --device NAME          timing device (default XC2V1000-6)
  --clock MHZ            clock budget in MHz (default 78.125)
  --strict               info findings count toward the exit code
  --deny-warnings        warning findings exit 2 instead of 1
  --baseline PATH        suppress baselined info/warning findings
  --write-baseline PATH  record current sub-error findings as a baseline
  --report-timing        write per-module results/TIMING_<module>.json
  --timing-out DIR       destination directory for --report-timing
  -h, --help             this text

exit codes:
  0  clean (nothing at warning severity or above)
  1  warning findings (info too, under --strict)
  2  error findings, warnings under --deny-warnings, or a usage error";

/// Why the command line was rejected (workspace error convention:
/// `<Noun>Error`, `#[non_exhaustive]`, structured fields — DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
enum CliError {
    /// A flag that takes a value appeared last on the line.
    MissingValue {
        flag: &'static str,
        what: &'static str,
    },
    /// `--device` named no known part.
    UnknownDevice { name: String },
    /// `--clock` carried something that is not a positive frequency.
    BadClock { value: String },
    /// An argument no flag matches.
    UnknownArgument { arg: String },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag, what } => write!(f, "{flag} needs {what}"),
            CliError::UnknownDevice { name } => {
                let known: Vec<&str> = devices::ALL.iter().map(|d| d.name).collect();
                write!(f, "unknown device `{name}` (known: {})", known.join(", "))
            }
            CliError::BadClock { value } => write!(f, "bad clock frequency `{value}`"),
            CliError::UnknownArgument { arg } => {
                write!(f, "unknown argument `{arg}` (see --help)")
            }
        }
    }
}

impl Error for CliError {}

struct Options {
    json: bool,
    sarif: bool,
    strict: bool,
    deny_warnings: bool,
    help: bool,
    report_timing: bool,
    timing_out: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    device: Device,
    clock_mhz: f64,
    files: Vec<String>,
}

fn parse_args() -> Result<Options, CliError> {
    let mut opts = Options {
        json: false,
        sarif: false,
        strict: false,
        deny_warnings: false,
        help: false,
        report_timing: false,
        timing_out: "results".to_string(),
        baseline: None,
        write_baseline: None,
        device: devices::XC2V1000_6,
        clock_mhz: LINE_CLOCK_MHZ,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &'static str, what: &'static str| {
            args.next().ok_or(CliError::MissingValue { flag, what })
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--strict" => opts.strict = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--report-timing" => opts.report_timing = true,
            "--timing-out" => opts.timing_out = value("--timing-out", "a directory")?,
            "--baseline" => opts.baseline = Some(value("--baseline", "a baseline file")?),
            "--write-baseline" => {
                opts.write_baseline = Some(value("--write-baseline", "an output path")?)
            }
            "--device" => {
                let name = value("--device", "a device name")?;
                opts.device = *devices::ALL
                    .iter()
                    .find(|d| d.name.eq_ignore_ascii_case(&name))
                    .ok_or(CliError::UnknownDevice { name })?;
            }
            "--clock" => {
                let mhz = value("--clock", "a frequency in MHz")?;
                opts.clock_mhz = mhz
                    .parse::<f64>()
                    .ok()
                    .filter(|f| *f > 0.0)
                    .ok_or(CliError::BadClock { value: mhz })?;
            }
            "--help" | "-h" => opts.help = true,
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => {
                return Err(CliError::UnknownArgument {
                    arg: other.to_string(),
                })
            }
        }
    }
    Ok(opts)
}

/// `TIMING_<module>.json` slug: lowercase alphanumerics, runs of
/// anything else collapsed to one `-`.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut dash = false;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    out.trim_end_matches('-').to_string()
}

fn fail(msg: impl fmt::Display) -> ExitCode {
    eprintln!("p5lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("p5lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    // The lint targets: shipped set + shipped compositions, or the
    // modules (and per-file chains) of the named .p5n files.
    let mut netlists = Vec::new();
    let mut graphs: Vec<LinkGraph> = Vec::new();
    if opts.files.is_empty() {
        netlists = shipped_netlists();
        graphs = shipped_link_graphs();
    } else {
        for path in &opts.files {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            let modules = match p5_fpga::parse_modules(&text) {
                Ok(m) => m,
                Err(e) => return fail(format_args!("{path}: {e}")),
            };
            if modules.len() > 1 {
                graphs.push(LinkGraph::chain(
                    format!("{path}:chain"),
                    modules.iter().map(StageContract::extract).collect(),
                ));
            }
            netlists.extend(modules);
        }
    }

    let mut reports: Vec<Report> = netlists
        .iter()
        .map(|n| lint_full(n, &opts.device, opts.clock_mhz))
        .collect();
    reports.extend(graphs.iter().map(|g| g.check()));

    if let Some(path) = &opts.write_baseline {
        let b = Baseline::from_reports(&reports, "accepted by --write-baseline");
        if let Err(e) = std::fs::write(path, b.to_json()) {
            return fail(format_args!("{path}: {e}"));
        }
        eprintln!(
            "p5lint: wrote {} baseline entr(ies) to {path}",
            b.entries.len()
        );
    }

    let mut suppressed = 0usize;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(format_args!("{path}: {e}")),
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return fail(format_args!("{path}: {e}")),
        };
        for stale in baseline.stale(&reports) {
            eprintln!(
                "p5lint: stale baseline entry {}/{} ({}) — delete it",
                stale.module, stale.rule, stale.reason
            );
        }
        for r in &mut reports {
            suppressed += baseline.apply(r);
        }
    }

    if opts.report_timing {
        if let Err(e) = std::fs::create_dir_all(&opts.timing_out) {
            return fail(format_args!("{}: {e}", opts.timing_out));
        }
        for n in &netlists {
            let Some(sta) = timing_report(n, &opts.device, opts.clock_mhz, 5) else {
                continue; // unmappable: the lint report already says why
            };
            let path = format!("{}/TIMING_{}.json", opts.timing_out, slug(&n.name));
            if let Err(e) = std::fs::write(&path, sta.to_json()) {
                return fail(format_args!("{path}: {e}"));
            }
            if !opts.json && !opts.sarif {
                println!(
                    "timing {}: worst slack {:+.2} ns, fmax {:.1} MHz ({} endpoints) -> {path}",
                    n.name, sta.worst_slack_ns, sta.fmax_mhz, sta.endpoints
                );
            }
        }
    }

    let worst = reports.iter().filter_map(|r| r.max_severity()).max();
    if opts.json {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else if opts.sarif {
        println!("{}", p5_lint::to_sarif(&reports));
    } else {
        for r in &reports {
            print!("{}", r.render_human());
        }
        let bar = if opts.strict {
            Severity::Info
        } else {
            Severity::Warning
        };
        let failing = reports
            .iter()
            .filter(|r| r.max_severity() >= Some(bar))
            .count();
        println!(
            "p5lint: {} module(s) on {} at {} MHz, {failing} failing, {suppressed} \
             baseline-suppressed finding(s)",
            reports.len(),
            opts.device.name,
            opts.clock_mhz
        );
    }

    match worst {
        Some(Severity::Error) => ExitCode::from(2),
        Some(Severity::Warning) if opts.deny_warnings => ExitCode::from(2),
        Some(Severity::Warning) => ExitCode::from(1),
        Some(Severity::Info) if opts.strict => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}
