//! Lint baselines: a committed suppression file so `p5lint
//! --deny-warnings` can gate CI forever without a flag-day.
//!
//! A baseline entry names a `(module, rule)` pair and a human reason;
//! matching findings at **info or warning** severity are suppressed
//! (and counted).  Error findings are never suppressed — a baseline
//! must not be able to bury a broken netlist.  Entries that match
//! nothing are *stale* and reported, so the file shrinks as the RTL
//! improves instead of fossilising.
//!
//! The workspace resolves offline (no serde), so the file format is
//! parsed by the minimal JSON reader in this module:
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     {"module": "rx-control", "rule": "P5L005",
//!      "reason": "discarded carry chains from word-level subtraction"}
//!   ]
//! }
//! ```

use crate::report::{json_string, Report, Severity};

/// One suppression: all info/warning findings of `rule` in `module`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub module: String,
    /// Rule code, e.g. `P5L005`.
    pub rule: String,
    /// Why this finding is accepted — required, and surfaced in output.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// Why a baseline file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Not parseable as JSON at byte `at`.
    Syntax { at: usize, detail: String },
    /// Parsed, but not shaped like a baseline document.
    Shape { detail: String },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Syntax { at, detail } => {
                write!(f, "baseline JSON syntax error at byte {at}: {detail}")
            }
            BaselineError::Shape { detail } => write!(f, "bad baseline shape: {detail}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parse a baseline document.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let doc = Json::parse(text).map_err(|(at, detail)| BaselineError::Syntax { at, detail })?;
        let shape = |detail: &str| BaselineError::Shape {
            detail: detail.to_string(),
        };
        let obj = doc
            .as_obj()
            .ok_or_else(|| shape("top level must be an object"))?;
        let entries = obj
            .iter()
            .find(|(k, _)| k == "entries")
            .and_then(|(_, v)| v.as_arr())
            .ok_or_else(|| shape("missing `entries` array"))?;
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let eo = e.as_obj().ok_or_else(|| shape("entries must be objects"))?;
            let field = |name: &str| -> Result<String, BaselineError> {
                eo.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| shape(&format!("entry missing string field `{name}`")))
            };
            out.push(BaselineEntry {
                module: field("module")?,
                rule: field("rule")?,
                reason: field("reason")?,
            });
        }
        Ok(Baseline { entries: out })
    }

    /// Serialise (the exact on-disk format, one entry per line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"module\": {}, \"rule\": {}, \"reason\": {}}}{}\n",
                json_string(&e.module),
                json_string(&e.rule),
                json_string(&e.reason),
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Remove suppressed findings from `report`, returning how many were
    /// dropped.  Only info/warning findings can be suppressed.
    pub fn apply(&self, report: &mut Report) -> usize {
        let before = report.findings.len();
        report.findings.retain(|f| {
            f.severity >= Severity::Error
                || !self
                    .entries
                    .iter()
                    .any(|e| e.module == report.module && e.rule == f.rule.code())
        });
        before - report.findings.len()
    }

    /// Entries that matched no finding in `reports` — candidates for
    /// deletion now that the underlying netlist is clean.
    pub fn stale<'a>(&'a self, reports: &[Report]) -> Vec<&'a BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !reports.iter().any(|r| {
                    r.module == e.module && r.findings.iter().any(|f| f.rule.code() == e.rule)
                })
            })
            .collect()
    }

    /// A baseline accepting every currently sub-error finding in
    /// `reports` (the `--write-baseline` bootstrap), one entry per
    /// `(module, rule)` pair.
    pub fn from_reports(reports: &[Report], reason: &str) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for r in reports {
            for f in &r.findings {
                if f.severity >= Severity::Error {
                    continue;
                }
                let entry = BaselineEntry {
                    module: r.module.clone(),
                    rule: f.rule.code().to_string(),
                    reason: reason.to_string(),
                };
                if !entries.contains(&entry) {
                    entries.push(entry);
                }
            }
        }
        entries.sort_by(|a, b| a.module.cmp(&b.module).then(a.rule.cmp(&b.rule)));
        Baseline { entries }
    }
}

/// The minimal JSON value model the baseline reader needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse one JSON document; errors carry `(byte offset, detail)`.
    fn parse(text: &str) -> Result<Json, (usize, String)> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err((pos, "trailing content after document".into()));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), (usize, String)> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err((*pos, format!("expected `{}`", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err((*pos, "unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err((*pos, "expected `,` or `}`".into())),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err((*pos, "expected `,` or `]`".into())),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or((start, "bad literal".to_string()))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, (usize, String)> {
    if b.get(*pos) != Some(&b'"') {
        return Err((*pos, "expected string".into()));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| (*pos, "invalid UTF-8".into()));
            }
            b'\\' => {
                let esc = b
                    .get(*pos)
                    .copied()
                    .ok_or((*pos, "bad escape".to_string()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or((*pos, "bad \\u escape".to_string()))?;
                        *pos += 4;
                        let ch = char::from_u32(hex).ok_or((*pos, "bad codepoint".to_string()))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err((*pos, format!("bad escape `\\{}`", other as char))),
                }
            }
            other => out.push(other),
        }
    }
    Err((*pos, "unterminated string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Finding, Rule};

    fn report_with(module: &str, rule: Rule, sev: Severity) -> Report {
        Report::new(module.into(), vec![Finding::new(rule, sev, "msg")])
    }

    #[test]
    fn round_trips_and_applies() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                module: "m".into(),
                rule: "P5L005".into(),
                reason: "carry residue".into(),
            }],
        };
        let parsed = Baseline::parse(&b.to_json()).expect("parse");
        assert_eq!(parsed.entries, b.entries);

        let mut r = report_with("m", Rule::DeadLogic, Severity::Info);
        assert_eq!(parsed.apply(&mut r), 1);
        assert!(r.findings.is_empty());
        // Different module: untouched.
        let mut other = report_with("other", Rule::DeadLogic, Severity::Info);
        assert_eq!(parsed.apply(&mut other), 0);
    }

    #[test]
    fn errors_are_never_suppressed() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                module: "m".into(),
                rule: "P5L001".into(),
                reason: "nope".into(),
            }],
        };
        let mut r = report_with("m", Rule::CombLoop, Severity::Error);
        assert_eq!(b.apply(&mut r), 0);
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn stale_entries_surface() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    module: "m".into(),
                    rule: "P5L005".into(),
                    reason: "live".into(),
                },
                BaselineEntry {
                    module: "gone".into(),
                    rule: "P5L004".into(),
                    reason: "fixed long ago".into(),
                },
            ],
        };
        let reports = vec![report_with("m", Rule::DeadLogic, Severity::Info)];
        let stale = b.stale(&reports);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].module, "gone");
    }

    #[test]
    fn from_reports_skips_errors_and_dedups() {
        let reports = vec![Report::new(
            "m".into(),
            vec![
                Finding::new(Rule::DeadLogic, Severity::Info, "a"),
                Finding::new(Rule::DeadLogic, Severity::Info, "b"),
                Finding::new(Rule::CombLoop, Severity::Error, "c"),
            ],
        )];
        let b = Baseline::from_reports(&reports, "bootstrap");
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule, "P5L005");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(matches!(
            Baseline::parse("[1,2]"),
            Err(BaselineError::Shape { .. })
        ));
        assert!(matches!(
            Baseline::parse("{\"entries\": [{\"module\": 3}]}"),
            Err(BaselineError::Shape { .. })
        ));
        assert!(matches!(
            Baseline::parse("{\"entries\": ["),
            Err(BaselineError::Syntax { .. })
        ));
    }
}
