//! The acceptance gate for the builders: every netlist we ship — both
//! datapath widths of the tx/rx pipelines, the width-4 escape sorters,
//! the FCS-16 CRC unit and the OAM register file — must lint clean
//! (no warning- or error-severity finding) on every device in the
//! library at the 78.125 MHz line clock.

use p5_fpga::devices;
use p5_lint::{lint_full, lint_netlist, shipped_netlists, LINE_CLOCK_MHZ};

#[test]
fn shipped_set_is_substantial_and_uniquely_named() {
    let modules = shipped_netlists();
    assert!(
        modules.len() >= 6,
        "expected the full export set, got {} modules",
        modules.len()
    );
    let mut names: Vec<&str> = modules.iter().map(|n| n.name.as_str()).collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate module names in shipped set");
}

#[test]
fn every_shipped_netlist_lints_clean_structurally() {
    for n in shipped_netlists() {
        let r = lint_netlist(&n);
        assert!(r.is_clean(), "{}", r.render_human());
    }
}

#[test]
fn every_shipped_netlist_lints_clean_with_timing_on_every_device() {
    for n in shipped_netlists() {
        for dev in &devices::ALL {
            let r = lint_full(&n, dev, LINE_CLOCK_MHZ);
            assert!(r.is_clean(), "on {}: {}", dev.name, r.render_human());
        }
    }
}

#[test]
fn reports_serialise_for_the_whole_shipped_set() {
    for n in shipped_netlists() {
        let r = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"module\":"), "{json}");
        assert!(!r.render_human().is_empty());
    }
}
