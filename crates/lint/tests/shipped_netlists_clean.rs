//! The acceptance gate for the builders: every netlist we ship — both
//! datapath widths of the tx/rx pipelines, the width-4 escape sorters,
//! the FCS-16 CRC unit and the OAM register file — must lint clean
//! (no warning- or error-severity finding) on the paper's target part
//! (XC2V1000-6) at the 78.125 MHz line clock, and the shipped chain
//! compositions must pass the P5L015 pass.  On the older Virtex -4
//! parts the P5L014 static-timing rule must *fire* — the paper's
//! stated reason for moving to Virtex-II.

use p5_fpga::devices;
use p5_lint::{
    lint_full, lint_netlist, shipped_link_graphs, shipped_netlists, Rule, LINE_CLOCK_MHZ,
};

#[test]
fn shipped_set_is_substantial_and_uniquely_named() {
    let modules = shipped_netlists();
    assert!(
        modules.len() >= 6,
        "expected the full export set, got {} modules",
        modules.len()
    );
    let mut names: Vec<&str> = modules.iter().map(|n| n.name.as_str()).collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate module names in shipped set");
}

#[test]
fn every_shipped_netlist_lints_clean_structurally() {
    for n in shipped_netlists() {
        let r = lint_netlist(&n);
        assert!(r.is_clean(), "{}", r.render_human());
    }
}

#[test]
fn every_shipped_netlist_lints_clean_with_timing_on_the_target_device() {
    for n in shipped_netlists() {
        let r = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        assert!(r.is_clean(), "{}", r.render_human());
    }
}

/// The paper's device-selection story, reproduced by the STA rule: the
/// wide pipelines close 78.125 MHz on the Virtex-II -6 part but miss it
/// on the -4 Virtex parts, which is why the design targets Virtex-II.
#[test]
fn virtex_minus_4_parts_miss_the_line_clock_and_p5l014_says_so() {
    for dev in [&devices::XCV50_4, &devices::XCV600_4] {
        let failing = shipped_netlists()
            .iter()
            .filter(|n| {
                lint_full(n, dev, LINE_CLOCK_MHZ)
                    .findings
                    .iter()
                    .any(|f| f.rule == Rule::TimingViolation)
            })
            .count();
        assert!(
            failing > 0,
            "expected P5L014 timing violations on {}",
            dev.name
        );
    }
}

#[test]
fn shipped_chain_compositions_pass_the_p5l015_pass() {
    let graphs = shipped_link_graphs();
    assert_eq!(
        graphs.len(),
        8,
        "tx+rx chains plus fused tx+rx paths at both widths"
    );
    // The fused fast paths export as single composed contracts.
    for bits in [8, 32] {
        for dir in ["tx", "rx"] {
            let name = format!("P5 {bits}-bit fused {dir} path");
            let g = graphs
                .iter()
                .find(|g| g.name == name)
                .unwrap_or_else(|| panic!("missing graph {name}"));
            assert_eq!(g.stages.len(), 1, "{name} is one composed contract");
        }
    }
    for g in graphs {
        let r = g.check();
        assert!(r.is_clean(), "{}: {}", g.name, r.render_human());
    }
}

#[test]
fn reports_serialise_for_the_whole_shipped_set() {
    for n in shipped_netlists() {
        let r = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"module\":"), "{json}");
        assert!(!r.render_human().is_empty());
    }
}
