//! Cross-crate composition: export real stage topologies from
//! `p5-link`/`p5-stream` and run the P5L015 pass over them — the
//! link-level counterpart of the per-netlist integration tests.

use p5_core::DatapathWidth;
use p5_link::LinkBuilder;
use p5_lint::{shipped_link_graphs, LinkGraph, StageContract};

#[test]
fn simplex_link_topology_composes_clean() {
    for width in [DatapathWidth::W8, DatapathWidth::W32] {
        let link = LinkBuilder::new().width(width).build().expect("build link");
        let topo = link.topology();
        assert!(topo.is_linear(), "a simplex link is a chain");
        assert!(topo.stages.len() >= 2, "{:?}", topo.stages);
        // Software stages sit behind elastic buffers: all buffered.
        let g = LinkGraph::from_topology(&topo, |_| None);
        let r = g.check();
        assert!(r.is_clean(), "{}", r.render_human());
    }
}

#[test]
fn duplex_link_topology_is_a_ring_and_stays_clean_when_buffered() {
    let duplex = LinkBuilder::new()
        .width(DatapathWidth::W32)
        .build_duplex()
        .expect("build duplex");
    let topo = duplex.topology();
    assert!(!topo.is_linear(), "duplex is a ring through both wires");
    let g = LinkGraph::from_topology(&topo, |_| None);
    assert!(g.check().is_clean());
}

#[test]
fn duplex_ring_of_transparent_stages_deadlocks() {
    // Resolve every stage of the same duplex ring as combinationally
    // transparent: with no storage anywhere on the ring, P5L015 must
    // report the capacity-0 deadlock the buffered variant avoids.
    let duplex = LinkBuilder::new()
        .width(DatapathWidth::W8)
        .build_duplex()
        .expect("build duplex");
    let topo = duplex.topology();
    let g = LinkGraph::from_topology(&topo, |name| {
        let mut c = StageContract::buffered(name);
        c.comb_through_data = true;
        Some(c)
    });
    let r = g.check();
    assert!(!r.is_clean());
    assert!(
        r.findings.iter().any(|f| f.message.contains("capacity-0")),
        "{}",
        r.render_human()
    );
}

#[test]
fn shipped_chain_contracts_are_extracted_not_defaulted() {
    // The extraction must actually see into the RTL: the tx-control
    // stages drive out_valid from out_ready (registered-data Mealy
    // valid), so at least one shipped contract has a true flag.
    let graphs = shipped_link_graphs();
    assert!(graphs
        .iter()
        .flat_map(|g| &g.stages)
        .any(|s| s.valid_on_ready));
}
