//! Seeded-fault tests: for every rule ID, corrupt a known-good netlist
//! in exactly the way the rule describes and prove the rule — and only
//! a rule of at least that severity — fires.  The `Netlist` IR keeps
//! its fields public precisely so faults can be injected post-build.

use p5_fpga::{devices, Builder, Netlist, NodeKind, Sig};
use p5_lint::{
    lint_full, lint_netlist, LinkGraph, Report, Rule, Severity, StageContract, LINE_CLOCK_MHZ,
};

fn findings_for(r: &Report, rule: Rule) -> usize {
    r.findings.iter().filter(|f| f.rule == rule).count()
}

fn assert_fires(r: &Report, rule: Rule, severity: Severity) {
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == rule && f.severity == severity),
        "expected {} at {severity}, got:\n{}",
        rule.code(),
        r.render_human()
    );
}

/// A small known-clean module with a full handshake on both sides.
fn clean_stage() -> Netlist {
    let mut b = Builder::new("stage");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    let out_ready = b.input("out_ready");
    let data_q = b.reg_word_en(&in_data, in_valid, 0);
    let valid_q = b.reg(in_valid, false);
    b.output("out_data", &data_q);
    b.output("out_valid", &[valid_q]);
    b.output("in_ready", &[out_ready]);
    b.finish()
}

#[test]
fn clean_stage_is_clean() {
    let n = clean_stage();
    let r = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn p5l001_comb_loop_fires_on_a_rewired_gate() {
    let mut b = Builder::new("loopy");
    let x = b.input("x");
    let y = b.input("y");
    let g1 = b.and2(x, y);
    let g2 = b.or2(g1, y);
    b.output("o", &[g2]);
    let mut n = b.finish();
    n.nodes[g1 as usize] = NodeKind::And(g2, y);
    let r = lint_netlist(&n);
    assert_fires(&r, Rule::CombLoop, Severity::Error);
    let cyc = r
        .findings
        .iter()
        .find(|f| f.rule == Rule::CombLoop)
        .unwrap();
    assert_eq!(cyc.nodes, {
        let mut v = vec![g1, g2];
        v.sort_unstable();
        v
    });
}

#[test]
fn p5l001_comb_loop_fires_on_a_self_loop() {
    let mut b = Builder::new("self");
    let x = b.input("x");
    let y = b.input("y");
    let g = b.and2(x, y);
    b.output("o", &[g]);
    let mut n = b.finish();
    n.nodes[g as usize] = NodeKind::And(g, g);
    assert_fires(&lint_netlist(&n), Rule::CombLoop, Severity::Error);
}

#[test]
fn p5l002_unbound_dff_fires() {
    let mut n = clean_stage();
    n.dffs[0].d = None;
    assert_fires(&lint_netlist(&n), Rule::UnboundDff, Severity::Error);
}

#[test]
fn p5l003_invalid_sig_fires_on_out_of_range_refs() {
    // Out-of-range output bus bit.
    let mut n = clean_stage();
    n.outputs[0].sigs.push(u32::MAX);
    assert_fires(&lint_netlist(&n), Rule::InvalidSig, Severity::Error);

    // Out-of-range flip-flop CE.
    let mut n = clean_stage();
    n.dffs[0].en = Some(9999);
    assert_fires(&lint_netlist(&n), Rule::InvalidSig, Severity::Error);

    // Broken FF cross-link.
    let mut n = clean_stage();
    n.dffs[0].q = n.dffs[1].q;
    assert_fires(&lint_netlist(&n), Rule::InvalidSig, Severity::Error);

    // Orphan input node: member of no input bus.
    let mut n = clean_stage();
    n.nodes.push(NodeKind::Input);
    assert_fires(&lint_netlist(&n), Rule::InvalidSig, Severity::Error);
}

#[test]
fn p5l004_bus_alias_fires_on_a_doubled_bit() {
    let mut b = Builder::new("alias");
    let x = b.input("x");
    let y = b.input("y");
    let g = b.xor2(x, y);
    b.output("o", &[g, g]);
    let r = lint_netlist(&b.finish());
    assert_fires(&r, Rule::BusAlias, Severity::Warning);
}

#[test]
fn p5l004_cross_bus_sharing_is_only_informational() {
    let mut b = Builder::new("share");
    let x = b.input("x");
    let q = b.reg(x, false);
    b.output("q", &[q]);
    b.output("q_mirror", &[q]);
    let r = lint_netlist(&b.finish());
    assert_fires(&r, Rule::BusAlias, Severity::Info);
    assert!(r.is_clean(), "deliberate re-export must stay clean");
}

#[test]
fn p5l005_dead_logic_fires_on_an_orphan_gate() {
    let mut b = Builder::new("dead");
    let x = b.input("x");
    let y = b.input("y");
    let _orphan = b.and2(x, y);
    let g = b.or2(x, y);
    b.output("o", &[g]);
    let r = lint_netlist(&b.finish());
    assert_fires(&r, Rule::DeadLogic, Severity::Info);
    assert!(r.is_clean(), "dead logic alone must not fail a module");
}

#[test]
fn p5l005_dead_logic_fires_on_an_unobservable_flip_flop() {
    let mut b = Builder::new("deadff");
    let x = b.input("x");
    let _q = b.reg(x, false);
    let g = b.not(x);
    b.output("o", &[g]);
    let r = lint_netlist(&b.finish());
    let ff_finding = r
        .findings
        .iter()
        .find(|f| f.rule == Rule::DeadLogic && f.message.contains("flip-flops"));
    assert!(ff_finding.is_some(), "{}", r.render_human());
}

#[test]
fn p5l006_reset_coverage_fires_on_a_partial_sr_domain() {
    let mut b = Builder::new("rst");
    let x = b.input_bus("x", 2);
    let rst = b.input("rst");
    let q0 = b.reg_ctrl(x[0], None, Some(rst), false);
    let q1 = b.reg_ctrl(x[1], None, Some(rst), false);
    b.output("q", &[q0, q1]);
    let mut n = b.finish();
    assert!(lint_netlist(&n).is_clean());
    n.dffs[1].sr = None;
    assert_fires(&lint_netlist(&n), Rule::ResetCoverage, Severity::Warning);
}

#[test]
fn p5l006_reset_coverage_fires_on_constant_control_pins() {
    // SR that can never assert.
    let mut b = Builder::new("rst_const");
    let x = b.input("x");
    let never = b.lit(false);
    let q = b.reg_ctrl(x, None, Some(never), false);
    b.output("q", &[q]);
    assert_fires(
        &lint_netlist(&b.finish()),
        Rule::ResetCoverage,
        Severity::Warning,
    );

    // CE that never enables.
    let mut b = Builder::new("en_const");
    let x = b.input("x");
    let never = b.lit(false);
    let q = b.reg_en(x, never, false);
    b.output("q", &[q]);
    assert_fires(
        &lint_netlist(&b.finish()),
        Rule::ResetCoverage,
        Severity::Warning,
    );
}

#[test]
fn p5l007_fanout_hotspot_fires_when_the_budget_shrinks() {
    // A register fanning out to 32 sinks: comfortably fine at the line
    // clock, impossible at 500 MHz on a -4 Virtex, where the priced net
    // delay plus FF+LUT overhead exceeds the 2 ns period.
    let mut b = Builder::new("hot");
    let x = b.input("x");
    let q = b.reg(x, false);
    let mut bits = Vec::new();
    for i in 0..32 {
        let other = b.input(&format!("y{i}"));
        bits.push(b.and2(q, other));
    }
    let folded = b.xor_many(&bits);
    b.output("o", &[folded]);
    let n = b.finish();
    let clean = lint_full(&n, &devices::XCV50_4, LINE_CLOCK_MHZ);
    assert!(
        findings_for(&clean, Rule::FanoutHotspot) == 0,
        "{}",
        clean.render_human()
    );
    let hot = lint_full(&n, &devices::XCV50_4, 500.0);
    assert_fires(&hot, Rule::FanoutHotspot, Severity::Warning);
}

#[test]
fn p5l008_handshake_comb_loop_fires_on_mealy_ready() {
    let mut b = Builder::new("mealy_ready");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    let full = b.input("full");
    let nfull = b.not(full);
    // in_ready = !full & in_valid — ready must never consult valid.
    let ready = b.and2(nfull, in_valid);
    let q = b.reg_word_en(&in_data, in_valid, 0);
    b.output("out_data", &q);
    b.output("in_ready", &[ready]);
    assert_fires(
        &lint_netlist(&b.finish()),
        Rule::HandshakeCombLoop,
        Severity::Error,
    );
}

#[test]
fn p5l009_ungated_capture_fires_on_a_free_running_register() {
    let mut b = Builder::new("ungated");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    // Captures every cycle, valid or not.
    let q = b.reg_word_en(&in_data, b.lit(true), 0);
    let vq = b.reg(in_valid, false);
    b.output("out_data", &q);
    b.output("out_valid", &[vq]);
    assert_fires(
        &lint_netlist(&b.finish()),
        Rule::UngatedCapture,
        Severity::Warning,
    );
}

#[test]
fn p5l010_unstable_under_stall_fires_on_ready_in_the_data_cone() {
    let mut b = Builder::new("unstable");
    let x = b.input_bus("x", 2);
    let out_ready = b.input("out_ready");
    let b0 = b.and2(x[0], out_ready);
    b.output("out_data", &[b0, x[1]]);
    assert_fires(
        &lint_netlist(&b.finish()),
        Rule::UnstableUnderStall,
        Severity::Warning,
    );
}

#[test]
fn p5l011_self_gated_enable_fires_on_a_q_gated_ce() {
    let mut b = Builder::new("selfgate");
    let x = b.input("x");
    let q = b.reg(x, false);
    b.output("q", &[q]);
    let mut n = b.finish();
    // Once Q goes low the register can never reload: CE = Q.
    n.dffs[0].en = Some(q);
    assert_fires(&lint_netlist(&n), Rule::SelfGatedEnable, Severity::Warning);
}

/// A module with a reset domain whose `out_valid` register the reset
/// does not cover: `out_valid` is `X` right out of reset.
fn leaky_valid() -> Netlist {
    let mut b = Builder::new("leaky valid");
    let in_valid = b.input("in_valid");
    let rst = b.input("rst");
    let covered = b.reg_ctrl(in_valid, None, Some(rst), false);
    let valid_q = b.reg(in_valid, false); // no SR: stale after reset
    b.output("out_valid", &[valid_q]);
    b.output("covered", &[covered]);
    b.finish()
}

#[test]
fn p5l012_x_leak_fires_when_out_valid_is_reset_uncovered() {
    let r = lint_netlist(&leaky_valid());
    assert_fires(&r, Rule::XLeak, Severity::Error);
    let f = r.findings.iter().find(|f| f.rule == Rule::XLeak).unwrap();
    assert!(f.message.contains("out_valid is unknown"), "{}", f.message);
    assert!(
        !f.nodes.is_empty(),
        "finding must anchor the stale registers"
    );
}

#[test]
fn p5l012_x_leak_fires_when_valid_asserts_over_stale_data() {
    // A free-running source: out_valid is constantly asserted, but the
    // data register keeps its stale post-reset contents.
    let mut b = Builder::new("stale data");
    let in_data = b.input_bus("in_data", 2);
    let in_valid = b.input("in_valid");
    let rst = b.input("rst");
    let covered = b.reg_ctrl(in_valid, None, Some(rst), false);
    let data_q: Vec<Sig> = in_data.iter().map(|&d| b.reg(d, false)).collect(); // no SR: stale
    let always = b.lit(true);
    b.output("out_valid", &[always]);
    b.output("out_data", &data_q);
    b.output("covered", &[covered]);
    let r = lint_netlist(&b.finish());
    assert_fires(&r, Rule::XLeak, Severity::Error);
    let f = r.findings.iter().find(|f| f.rule == Rule::XLeak).unwrap();
    assert!(
        f.message.contains("out_data[0] is unknown"),
        "{}",
        f.message
    );
}

#[test]
fn p5l012_does_not_fire_on_a_fully_covered_or_reset_free_module() {
    // Reset-free: every register is at its configuration init (the
    // clean_stage fixture). Fully covered: every register has SR.
    assert_eq!(findings_for(&lint_netlist(&clean_stage()), Rule::XLeak), 0);
    let mut b = Builder::new("covered");
    let in_valid = b.input("in_valid");
    let rst = b.input("rst");
    let valid_q = b.reg_ctrl(in_valid, None, Some(rst), false);
    b.output("out_valid", &[valid_q]);
    let r = lint_netlist(&b.finish());
    assert_eq!(findings_for(&r, Rule::XLeak), 0, "{}", r.render_human());
}

/// A module whose register and a live gate are provably constant.
fn const_module() -> Netlist {
    let mut b = Builder::new("consty");
    let x = b.input("x");
    let zero = b.lit(false);
    let q = b.reg(zero, false); // holds 0 under every input sequence
    let g = b.and2(q, x); // the builder cannot fold through a register
    b.output("q", &[q]);
    b.output("g", &[g]);
    b.finish()
}

#[test]
fn p5l013_const_logic_fires_on_foldable_registers_and_gates() {
    let r = lint_netlist(&const_module());
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == Rule::ConstLogic && f.message.contains("flip-flop")),
        "{}",
        r.render_human()
    );
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == Rule::ConstLogic && f.message.contains("gate")),
        "{}",
        r.render_human()
    );
    assert!(r.is_clean(), "const logic is informational, not failing");
}

#[test]
fn p5l013_does_not_fire_on_genuinely_input_driven_logic() {
    assert_eq!(
        findings_for(&lint_netlist(&clean_stage()), Rule::ConstLogic),
        0
    );
}

#[test]
fn p5l014_timing_violation_fires_when_the_clock_is_unreachable() {
    // clean_stage closes 78.125 MHz on every part, but no Virtex -4
    // register-to-register path makes a 1 ns period.
    let r = lint_full(&clean_stage(), &devices::XCV50_4, 1000.0);
    assert_fires(&r, Rule::TimingViolation, Severity::Error);
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == Rule::TimingViolation)
        .unwrap();
    assert!(f.message.contains("worst slack"), "{}", f.message);
    assert!(f.message.contains("critical path"), "{}", f.message);
}

#[test]
fn p5l014_does_not_fire_at_the_line_clock_on_the_target_part() {
    let r = lint_full(&clean_stage(), &devices::XC2V1000_6, LINE_CLOCK_MHZ);
    assert_eq!(
        findings_for(&r, Rule::TimingViolation),
        0,
        "{}",
        r.render_human()
    );
}

/// The composition hazard P5L008 cannot see: each stage is fine alone,
/// the a→b boundary closes a combinational ready/valid loop.
fn hazardous_pair() -> LinkGraph {
    let mut a = StageContract::buffered("a");
    a.valid_on_ready = true; // Mealy valid
    let mut b = StageContract::buffered("b");
    b.ready_on_valid = true; // ready consults valid
    LinkGraph::chain("a→b", vec![a, b])
}

#[test]
fn p5l015_compose_hazard_fires_on_a_cross_module_cycle() {
    let r = hazardous_pair().check();
    assert_fires(&r, Rule::ComposeHazard, Severity::Error);
}

#[test]
fn p5l015_does_not_fire_on_a_buffered_chain() {
    let g = LinkGraph::chain(
        "ok",
        vec![StageContract::buffered("a"), StageContract::buffered("b")],
    );
    assert!(g.check().is_clean());
}

/// Meta-coverage: the scenarios above exercise every rule in the
/// catalogue, so a new rule without a seeded fault fails this test.
#[test]
fn every_rule_id_has_a_firing_scenario() {
    let mut fired: Vec<Rule> = Vec::new();

    let mut loopy = clean_stage();
    let g = loopy.nodes.len() as Sig;
    loopy.nodes.push(NodeKind::And(g, 2));
    loopy.outputs[0].sigs[0] = g;
    fired.extend(lint_netlist(&loopy).findings.iter().map(|f| f.rule));

    let mut unbound = clean_stage();
    unbound.dffs[0].d = None;
    fired.extend(lint_netlist(&unbound).findings.iter().map(|f| f.rule));

    let mut wild = clean_stage();
    wild.outputs[0].sigs.push(u32::MAX);
    fired.extend(lint_netlist(&wild).findings.iter().map(|f| f.rule));

    let mut dirty = clean_stage();
    // Alias two out_data bits, orphan a gate, strip the CE gating, wire
    // ready→valid and ready→data, self-gate a CE, and unbalance resets.
    let in_valid = dirty.inputs[1].sigs[0];
    let out_ready = dirty.inputs[2].sigs[0];
    let q0 = dirty.dffs[0].q;
    dirty.outputs[0].sigs[1] = dirty.outputs[0].sigs[0];
    dirty.nodes.push(NodeKind::And(q0, out_ready)); // orphan gate: dead logic
    let ready_gate = dirty.nodes.len() as Sig;
    dirty.nodes.push(NodeKind::And(in_valid, out_ready));
    let ready_bus = dirty
        .outputs
        .iter_mut()
        .find(|b| b.name == "in_ready")
        .unwrap();
    ready_bus.sigs[0] = ready_gate;
    let data_gate = dirty.nodes.len() as Sig;
    dirty.nodes.push(NodeKind::Or(q0, out_ready));
    dirty.outputs[0].sigs[2] = data_gate;
    dirty.dffs[0].en = None; // ungated in_data capture
    dirty.dffs[1].en = Some(dirty.dffs[1].q); // self-gated CE
    dirty.dffs[1].sr = Some(in_valid); // partial reset domain
    fired.extend(lint_netlist(&dirty).findings.iter().map(|f| f.rule));

    let hot = lint_full(&clean_stage(), &devices::XCV50_4, 1000.0);
    fired.extend(hot.findings.iter().map(|f| f.rule));

    fired.extend(lint_netlist(&leaky_valid()).findings.iter().map(|f| f.rule));
    fired.extend(
        lint_netlist(&const_module())
            .findings
            .iter()
            .map(|f| f.rule),
    );
    fired.extend(hazardous_pair().check().findings.iter().map(|f| f.rule));

    for rule in Rule::ALL {
        assert!(
            fired.contains(&rule),
            "no seeded fault fired {} ({})",
            rule.code(),
            rule.name()
        );
    }
}
