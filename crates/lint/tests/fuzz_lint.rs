//! Fuzz the lint engine with randomly generated netlists: whatever the
//! generator (or the corruptor) produces, `lint_full` must never panic
//! and must report the same findings — byte for byte — every time.
//! Well-formed netlists additionally round-trip through the `.p5n` text
//! format without changing their lint verdict.

use p5_fpga::{devices, parse_modules, to_text, Builder, Netlist, NodeKind, Sig};
use p5_lint::{lint_full, timing_report, LINE_CLOCK_MHZ};
use proptest::prelude::*;

/// Deterministically grow a *well-formed* netlist from an op tape.
/// Every gate references an already-created signal, so the result is a
/// DAG with conventional handshake buses — structurally valid by
/// construction.
fn build_random(ops: &[(u8, u16, u16)]) -> Netlist {
    let mut b = Builder::new("fuzz module");
    let mut sigs: Vec<Sig> = Vec::new();
    sigs.push(b.input("in_valid"));
    sigs.extend(b.input_bus("in_data", 4));
    for &(op, a, c) in ops {
        let pick = |i: u16| sigs[i as usize % sigs.len()];
        let s = match op % 8 {
            0 => {
                let name = format!("aux{}", sigs.len());
                b.input(&name)
            }
            1 => b.not(pick(a)),
            2 => b.and2(pick(a), pick(c)),
            3 => b.or2(pick(a), pick(c)),
            4 => b.xor2(pick(a), pick(c)),
            5 => b.reg(pick(a), a & 1 == 0),
            6 => b.reg_en(pick(a), pick(c), false),
            _ => b.reg_ctrl(pick(a), None, Some(pick(c)), true),
        };
        sigs.push(s);
    }
    let tail: Vec<Sig> = sigs[sigs.len().saturating_sub(4)..].to_vec();
    b.output("out_data", &tail);
    let last = *sigs.last().unwrap();
    b.output("out_valid", &[last]);
    b.finish()
}

/// Break the netlist the way real generator bugs do: wild `Sig`
/// references, unbound or cross-linked flip-flops, orphan inputs,
/// rewired gates (possibly closing combinational loops).
fn corrupt(n: &mut Netlist, muts: &[(u8, u32)]) {
    for &(kind, v) in muts {
        match kind % 6 {
            0 => {
                if !n.nodes.is_empty() {
                    let i = v as usize % n.nodes.len();
                    n.nodes[i] = NodeKind::And(v, v / 2);
                }
            }
            1 => {
                if let Some(bus) = n.outputs.get_mut(0) {
                    bus.sigs.push(v);
                }
            }
            2 => {
                if !n.dffs.is_empty() {
                    let i = v as usize % n.dffs.len();
                    n.dffs[i].d = None;
                }
            }
            3 => {
                if !n.dffs.is_empty() {
                    let i = v as usize % n.dffs.len();
                    n.dffs[i].en = Some(v);
                }
            }
            4 => n.nodes.push(NodeKind::Input),
            _ => {
                if !n.dffs.is_empty() {
                    let i = v as usize % n.dffs.len();
                    n.dffs[i].q = v;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn well_formed_netlists_never_panic_and_report_deterministically(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        let n = build_random(&ops);
        let r1 = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        let r2 = lint_full(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ);
        prop_assert_eq!(r1.to_json(), r2.to_json());
        if let Some(sta) = timing_report(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ, 3) {
            let again = timing_report(&n, &devices::XC2V1000_6, LINE_CLOCK_MHZ, 3).unwrap();
            prop_assert_eq!(sta.to_json(), again.to_json());
        }
    }

    #[test]
    fn well_formed_netlists_round_trip_through_the_text_format(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..40),
    ) {
        let n = build_random(&ops);
        let parsed = parse_modules(&to_text(&[&n])).expect("well-formed must serialise");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(
            lint_full(&n, &devices::XCV600_4, LINE_CLOCK_MHZ).to_json(),
            lint_full(&parsed[0], &devices::XCV600_4, LINE_CLOCK_MHZ).to_json()
        );
    }

    #[test]
    fn malformed_netlists_never_panic_and_report_deterministically(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..40),
        muts in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..8),
    ) {
        let mut n = build_random(&ops);
        corrupt(&mut n, &muts);
        let r1 = lint_full(&n, &devices::XCV50_4, LINE_CLOCK_MHZ);
        let r2 = lint_full(&n, &devices::XCV50_4, LINE_CLOCK_MHZ);
        prop_assert_eq!(r1.to_json(), r2.to_json());
        // The corrupted netlist still serialises (the text format is
        // syntax-only) and the damage survives the round trip.
        let parsed = parse_modules(&to_text(&[&n])).expect("text format carries bad netlists");
        prop_assert_eq!(
            r1.to_json(),
            lint_full(&parsed[0], &devices::XCV50_4, LINE_CLOCK_MHZ).to_json()
        );
    }
}
