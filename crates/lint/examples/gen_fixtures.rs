//! Regenerate the known-bad fixture corpus under `tests/fixtures/`:
//! one `.p5n` netlist per rule in the catalogue, each seeded with
//! exactly the defect its rule describes.
//!
//! ```text
//! cargo run -p p5-lint --example gen_fixtures
//! ```
//!
//! then refresh the goldens by re-running `p5lint --json` per case with
//! the device/clock arguments listed in `tests/fixtures.rs` and saving
//! stdout as `<name>.expected.json` (the drift test there prints the
//! exact command when a golden mismatches).

use std::fs;

use p5_fpga::{to_text, Builder, Netlist, NodeKind};

fn comb_loop() -> Netlist {
    let mut b = Builder::new("comb loop");
    let x = b.input("x");
    let y = b.input("y");
    let g1 = b.and2(x, y);
    let g2 = b.or2(g1, y);
    b.output("o", &[g2]);
    let mut n = b.finish();
    n.nodes[g1 as usize] = NodeKind::And(g2, y); // g1 ↔ g2
    n
}

fn unbound_dff() -> Netlist {
    let mut b = Builder::new("unbound dff");
    let x = b.input("x");
    let q = b.reg(x, false);
    b.output("q", &[q]);
    let mut n = b.finish();
    n.dffs[0].d = None;
    n
}

fn invalid_sig() -> Netlist {
    let mut b = Builder::new("invalid sig");
    let x = b.input("x");
    let g = b.not(x);
    b.output("o", &[g]);
    let mut n = b.finish();
    n.outputs[0].sigs.push(9999);
    n
}

fn bus_alias() -> Netlist {
    let mut b = Builder::new("bus alias");
    let x = b.input("x");
    let y = b.input("y");
    let g = b.xor2(x, y);
    b.output("o", &[g, g]);
    b.finish()
}

fn dead_logic() -> Netlist {
    let mut b = Builder::new("dead logic");
    let x = b.input("x");
    let y = b.input("y");
    let _orphan = b.and2(x, y);
    let g = b.or2(x, y);
    b.output("o", &[g]);
    b.finish()
}

fn partial_reset() -> Netlist {
    let mut b = Builder::new("partial reset");
    let x = b.input_bus("x", 2);
    let rst = b.input("rst");
    let q0 = b.reg_ctrl(x[0], None, Some(rst), false);
    let q1 = b.reg(x[1], false); // the reset misses this one
    b.output("q", &[q0, q1]);
    b.finish()
}

fn fanout_hotspot() -> Netlist {
    let mut b = Builder::new("fanout hotspot");
    let x = b.input("x");
    let q = b.reg(x, false);
    let mut bits = Vec::new();
    for i in 0..32 {
        let other = b.input(&format!("y{i}"));
        bits.push(b.and2(q, other));
    }
    let folded = b.xor_many(&bits);
    b.output("o", &[folded]);
    b.finish()
}

fn mealy_ready() -> Netlist {
    let mut b = Builder::new("mealy ready");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    let full = b.input("full");
    let nfull = b.not(full);
    let ready = b.and2(nfull, in_valid); // in_ready must not consult in_valid
    let q = b.reg_word_en(&in_data, in_valid, 0);
    b.output("out_data", &q);
    b.output("in_ready", &[ready]);
    b.finish()
}

fn ungated_capture() -> Netlist {
    let mut b = Builder::new("ungated capture");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    let always = b.lit(true);
    let q = b.reg_word_en(&in_data, always, 0); // captures every cycle
    let vq = b.reg(in_valid, false);
    b.output("out_data", &q);
    b.output("out_valid", &[vq]);
    b.finish()
}

fn unstable_under_stall() -> Netlist {
    let mut b = Builder::new("unstable under stall");
    let x = b.input_bus("x", 2);
    let out_ready = b.input("out_ready");
    let b0 = b.and2(x[0], out_ready); // out_data moves when the stall does
    b.output("out_data", &[b0, x[1]]);
    b.finish()
}

fn self_gated_enable() -> Netlist {
    let mut b = Builder::new("self gated enable");
    let x = b.input("x");
    let q = b.reg(x, false);
    b.output("q", &[q]);
    let mut n = b.finish();
    n.dffs[0].en = Some(q); // once low, never reloads
    n
}

fn x_leak() -> Netlist {
    let mut b = Builder::new("x leak");
    let in_valid = b.input("in_valid");
    let rst = b.input("rst");
    let covered = b.reg_ctrl(in_valid, None, Some(rst), false);
    let valid_q = b.reg(in_valid, false); // stale after reset
    b.output("out_valid", &[valid_q]);
    b.output("covered", &[covered]);
    b.finish()
}

fn const_logic() -> Netlist {
    let mut b = Builder::new("const logic");
    let x = b.input("x");
    let zero = b.lit(false);
    let q = b.reg(zero, false);
    let g = b.and2(q, x); // constant, but opaque to the builder's folder
    b.output("q", &[q]);
    b.output("g", &[g]);
    b.finish()
}

fn timing_violation() -> Netlist {
    // Clean at the line clock; the fixture is linted at 1 GHz, which no
    // Virtex -4 register-to-register path can close.
    let mut b = Builder::new("timing violation");
    let in_data = b.input_bus("in_data", 4);
    let in_valid = b.input("in_valid");
    let out_ready = b.input("out_ready");
    let data_q = b.reg_word_en(&in_data, in_valid, 0);
    let valid_q = b.reg(in_valid, false);
    b.output("out_data", &data_q);
    b.output("out_valid", &[valid_q]);
    b.output("in_ready", &[out_ready]);
    b.finish()
}

/// Two modules that are legal alone (well — the downstream one also
/// trips P5L008) but close a combinational ready/valid loop at their
/// boundary once chained: upstream Mealy valid meets ready-on-valid.
fn compose_upstream() -> Netlist {
    let mut b = Builder::new("mealy valid source");
    let in_valid = b.input("in_valid");
    let out_ready = b.input("out_ready");
    let vq = b.reg(in_valid, false);
    let out_valid = b.and2(vq, out_ready); // out_valid ← out_ready
    b.output("out_valid", &[out_valid]);
    b.finish()
}

fn compose_downstream() -> Netlist {
    let mut b = Builder::new("ready on valid sink");
    let in_valid = b.input("in_valid");
    let full = b.input("full");
    let nfull = b.not(full);
    let ready = b.and2(nfull, in_valid); // in_ready ← in_valid
    b.output("in_ready", &[ready]);
    b.finish()
}

fn main() -> std::io::Result<()> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    fs::create_dir_all(dir)?;
    let cases: Vec<(&str, Vec<Netlist>)> = vec![
        ("p5l001_comb_loop", vec![comb_loop()]),
        ("p5l002_unbound_dff", vec![unbound_dff()]),
        ("p5l003_invalid_sig", vec![invalid_sig()]),
        ("p5l004_bus_alias", vec![bus_alias()]),
        ("p5l005_dead_logic", vec![dead_logic()]),
        ("p5l006_reset_coverage", vec![partial_reset()]),
        ("p5l007_fanout_hotspot", vec![fanout_hotspot()]),
        ("p5l008_handshake_comb_loop", vec![mealy_ready()]),
        ("p5l009_ungated_capture", vec![ungated_capture()]),
        ("p5l010_unstable_under_stall", vec![unstable_under_stall()]),
        ("p5l011_self_gated_enable", vec![self_gated_enable()]),
        ("p5l012_x_leak", vec![x_leak()]),
        ("p5l013_const_logic", vec![const_logic()]),
        ("p5l014_timing_violation", vec![timing_violation()]),
        (
            "p5l015_compose_hazard",
            vec![compose_upstream(), compose_downstream()],
        ),
    ];
    for (name, modules) in cases {
        let refs: Vec<&Netlist> = modules.iter().collect();
        let path = format!("{dir}/{name}.p5n");
        fs::write(&path, to_text(&refs))?;
        println!("wrote {path}");
    }
    Ok(())
}
