//! # p5-xport — real endpoints for the P⁵ wire
//!
//! Everything below the HDLC byte boundary is, on real equipment, a
//! SONET framer feeding a fibre.  This crate substitutes the pipes an
//! operating system actually offers — TCP and Unix-domain sockets, plus
//! a deterministic in-process pipe — so two *processes* (or two
//! threads) can run the full LCP → authentication → IPCP bring-up and
//! exchange IP datagrams over a real byte stream, complete with partial
//! reads, partial writes, `EWOULDBLOCK`, peer stalls and disconnects.
//!
//! The layering:
//!
//! * [`Transport`] ([`TcpTransport`], `UnixTransport`,
//!   [`PipeTransport`]) — a nonblocking byte pipe with explicit
//!   establishment, short-op and peer-loss semantics.
//! * [`ByteRing`] — the bounded staging ring between the device's wire
//!   boundary and a stalled kernel buffer.
//! * [`LinkEngine`] — one device + one PPP session + one transport,
//!   pumped by single `service()` passes; survives disconnects by
//!   running the session's Down/Up renegotiation.
//! * [`SessionDriver`] — a dedicated thread per link spinning the
//!   engine, with stall detection and clean handback.
//! * [`net`] — the shared nonblocking accept-loop/bounded-reader idiom
//!   (the observability scrape server is built on it).
//!
//! The fluent entry point lives in `p5-link`: `LinkBuilder::transport`
//! plus `build_remote()` returns a running [`SessionDriver`].

pub mod driver;
pub mod engine;
pub mod net;
pub mod ring;
pub mod transport;

pub use driver::SessionDriver;
pub use engine::{LinkEngine, XportCounters};
pub use ring::ByteRing;
#[cfg(unix)]
pub use transport::UnixTransport;
pub use transport::{IoOp, PipeControl, PipeTransport, TcpTransport, Transport};
