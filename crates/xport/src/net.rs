//! Shared nonblocking-socket plumbing: the accept loop and the bounded
//! request reader every TCP endpoint in the workspace kept reinventing.
//!
//! [`accept_loop`] owns the "bind, go nonblocking, poll-accept on a
//! dedicated thread, stop promptly on drop" idiom; [`read_head`] is the
//! bounded single-read request reader (enough for an HTTP request line
//! or any short line protocol, immune to slow-loris by construction).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running accept loop.  Dropping it stops the serving thread.
pub struct AcceptLoop {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl AcceptLoop {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AcceptLoop {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (port 0 for ephemeral), spawn `thread_name`, and hand
/// every accepted connection to `handler` until the returned
/// [`AcceptLoop`] is dropped.  Per-connection handler errors are the
/// handler's problem — the loop never dies with a client.
pub fn accept_loop(
    addr: impl ToSocketAddrs,
    thread_name: &str,
    mut handler: impl FnMut(TcpStream) + Send + 'static,
) -> std::io::Result<AcceptLoop> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name(thread_name.to_string())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handler(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        })?;
    Ok(AcceptLoop {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Read the head of a request — one bounded read, at most `max` bytes,
/// within `timeout` — and return it lossily decoded.  Enough for any
/// request line; a client that trickles bytes costs one timeout, not a
/// wedged thread.
pub fn read_head(stream: &mut TcpStream, max: usize, timeout: Duration) -> std::io::Result<String> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut buf = vec![0u8; max.max(1)];
    let n = stream.read(&mut buf)?;
    Ok(String::from_utf8_lossy(&buf[..n]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn accept_loop_hands_out_connections_and_stops() {
        let (tx, rx) = std::sync::mpsc::channel();
        let server = accept_loop("127.0.0.1:0", "net-test", move |mut stream| {
            let head = read_head(&mut stream, 256, Duration::from_millis(500)).unwrap();
            let _ = stream.write_all(head.to_uppercase().as_bytes());
            let _ = tx.send(());
        })
        .expect("bind");
        let addr = server.addr();
        let mut c = TcpStream::connect(addr).expect("connect");
        c.write_all(b"hello head\r\n").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        c.read_to_string(&mut out).unwrap();
        assert_eq!(out, "HELLO HEAD\r\n");
        rx.recv_timeout(Duration::from_secs(5)).expect("handled");
        server.stop();
    }
}
