//! [`SessionDriver`]: a dedicated thread pumping one [`LinkEngine`].
//!
//! The driver owns the engine behind a mutex and spins a service loop:
//! while the engine reports progress it services back-to-back; when the
//! link goes quiet it sleeps briefly, and a long run of fruitless
//! passes is tallied as a *driver stall* — the "is this endpoint
//! actually moving?" health signal.  The owning thread keeps the
//! ingress/delivery API and can take the engine back intact with
//! [`SessionDriver::shutdown`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use p5_ppp::SessionEvent;
use p5_stream::{Observable, Offer, Snapshot};
use parking_lot::Mutex;

use crate::engine::LinkEngine;

/// Idle passes before the loop sleeps instead of spinning.
const SPIN_PASSES: u32 = 64;
/// Sleep per quiet pass.
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// Consecutive fruitless passes that count as one driver stall.
const STALL_THRESHOLD: u32 = 256;

struct Inner {
    engine: Mutex<LinkEngine>,
    stop: AtomicBool,
    stalls: AtomicU64,
}

/// A per-link pump thread plus the handle the owner keeps.
pub struct SessionDriver {
    /// `None` only transiently during [`SessionDriver::shutdown`].
    inner: Option<Arc<Inner>>,
    thread: Option<thread::JoinHandle<()>>,
}

impl SessionDriver {
    /// Take ownership of `engine` and start pumping it.
    pub fn spawn(engine: LinkEngine) -> Self {
        let label = engine.describe();
        let inner = Arc::new(Inner {
            engine: Mutex::new(engine),
            stop: AtomicBool::new(false),
            stalls: AtomicU64::new(0),
        });
        let worker = inner.clone();
        let thread = thread::Builder::new()
            .name(format!("p5-xport {label}"))
            .spawn(move || {
                let mut quiet: u32 = 0;
                while !worker.stop.load(Ordering::Relaxed) {
                    let progress = worker.engine.lock().service();
                    if progress {
                        quiet = 0;
                        // Hand the core over between passes.  A bare
                        // relock wins the (unfair) mutex back almost
                        // every time, so on few-core hosts a busy
                        // driver convoys the owner thread's offer/
                        // delivery calls into scheduler-quantum
                        // latencies; the yield costs nothing when
                        // cores are plentiful and restores round-robin
                        // when they are not.
                        thread::yield_now();
                        continue;
                    }
                    quiet += 1;
                    if quiet.is_multiple_of(STALL_THRESHOLD) {
                        worker.stalls.fetch_add(1, Ordering::Relaxed);
                    }
                    if quiet >= SPIN_PASSES {
                        thread::sleep(IDLE_SLEEP);
                    }
                }
            })
            .expect("spawn p5-xport driver thread");
        SessionDriver {
            inner: Some(inner),
            thread: Some(thread),
        }
    }

    fn inner(&self) -> &Arc<Inner> {
        self.inner.as_ref().expect("inner present until shutdown")
    }

    /// Offer one frame at the admission boundary (see
    /// [`LinkEngine::offer`]).
    pub fn offer(&self, protocol: u16, payload: &[u8]) -> Offer {
        self.inner().engine.lock().offer(protocol, payload)
    }

    /// Frames delivered since the last call.
    pub fn take_deliveries(&self) -> Vec<(u16, Vec<u8>)> {
        self.inner().engine.lock().take_deliveries()
    }

    /// Session events since the last call.
    pub fn poll_events(&self) -> Vec<SessionEvent> {
        self.inner().engine.lock().poll_events()
    }

    /// IPCP open (session) / pipe up (transparent)?
    pub fn is_network_up(&self) -> bool {
        self.inner().engine.lock().is_network_up()
    }

    /// Block (politely) until the network phase opens, up to `limit`.
    pub fn await_network_up(&self, limit: Duration) -> bool {
        let deadline = Instant::now() + limit;
        loop {
            if self.is_network_up() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fruitless-spin episodes observed by the pump thread.
    pub fn driver_stalls(&self) -> u64 {
        self.inner().stalls.load(Ordering::Relaxed)
    }

    fn stop_and_join(&mut self) {
        if let Some(inner) = &self.inner {
            inner.stop.store(true, Ordering::Relaxed);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the pump thread and hand the engine back — counters,
    /// session state and transport intact.
    pub fn shutdown(mut self) -> LinkEngine {
        self.stop_and_join();
        let inner = self.inner.take().expect("first shutdown");
        let inner = Arc::try_unwrap(inner)
            .unwrap_or_else(|_| unreachable!("driver thread joined; no other refs"));
        inner.engine.into_inner()
    }
}

impl Observable for SessionDriver {
    fn snapshot(&self) -> Snapshot {
        let mut snap = self.inner().engine.lock().snapshot();
        snap.push_counter("driver_stalls", self.driver_stalls());
        snap
    }
}

impl Drop for SessionDriver {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PipeTransport;
    use p5_core::DatapathWidth;
    use p5_ppp::NegotiationProfile;

    #[test]
    fn paired_drivers_bring_the_network_up_and_exchange() {
        let (ta, tb) = PipeTransport::pair();
        let a = SessionDriver::spawn(LinkEngine::new(
            DatapathWidth::W32,
            &NegotiationProfile::new()
                .magic(0xA)
                .ip([10, 9, 0, 1])
                .restart_period(64)
                .max_configure(60),
            Box::new(ta),
        ));
        let b = SessionDriver::spawn(LinkEngine::new(
            DatapathWidth::W32,
            &NegotiationProfile::new()
                .magic(0xB)
                .ip([10, 9, 0, 2])
                .restart_period(64)
                .max_configure(60),
            Box::new(tb),
        ));
        assert!(a.await_network_up(Duration::from_secs(10)), "a negotiates");
        assert!(b.await_network_up(Duration::from_secs(10)), "b negotiates");

        let datagram = vec![0x45u8; 256];
        let mut sent = 0;
        while sent < 20 {
            if a.offer(0x0021, &datagram).is_admitted() {
                sent += 1;
            } else {
                thread::sleep(Duration::from_micros(100));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < 20 && Instant::now() < deadline {
            got.extend(b.take_deliveries());
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 20, "all admitted datagrams deliver");
        assert!(got.iter().all(|(_, p)| p == &datagram), "no corruption");

        let engine = a.shutdown();
        let snap = engine.snapshot();
        assert!(snap.get("bytes_out").unwrap() > 0);
        assert!(snap.get("delivered_bytes").is_some());
        drop(b);
    }
}
