//! [`ByteRing`]: the bounded staging ring between the device's wire
//! boundary and a nonblocking socket.
//!
//! A fixed-capacity circular byte buffer: pushes copy in as much as
//! fits (the caller learns how much and keeps the rest — that *is* the
//! backpressure), reads come out as at most two contiguous slices so a
//! partial `write(2)` can consume exactly what the kernel took.  No
//! reallocation ever: the capacity chosen at construction is the hard
//! bound on bytes staged toward a stalled peer.

/// Fixed-capacity circular byte buffer.
#[derive(Debug)]
pub struct ByteRing {
    buf: Box<[u8]>,
    head: usize,
    len: usize,
}

impl ByteRing {
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "a zero-capacity ring cannot stage anything");
        ByteRing {
            buf: vec![0u8; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes that can still be pushed.
    pub fn free(&self) -> usize {
        self.capacity() - self.len
    }

    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Copy in as much of `bytes` as fits; returns the count taken.
    pub fn push(&mut self, bytes: &[u8]) -> usize {
        let n = bytes.len().min(self.free());
        if n == 0 {
            return 0;
        }
        let cap = self.capacity();
        let tail = (self.head + self.len) % cap;
        let first = n.min(cap - tail);
        self.buf[tail..tail + first].copy_from_slice(&bytes[..first]);
        if n > first {
            self.buf[..n - first].copy_from_slice(&bytes[first..n]);
        }
        self.len += n;
        n
    }

    /// The buffered bytes as (up to) two contiguous slices, oldest
    /// first — hand the first to `write(2)`, then [`ByteRing::consume`]
    /// whatever the kernel took.
    pub fn as_slices(&self) -> (&[u8], &[u8]) {
        let cap = self.capacity();
        let first = self.len.min(cap - self.head);
        (
            &self.buf[self.head..self.head + first],
            &self.buf[..self.len - first],
        )
    }

    /// Drop the oldest `n` bytes (they reached the kernel).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        let n = n.min(self.len);
        self.head = (self.head + n) % self.capacity();
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_read_wraps_and_preserves_order() {
        let mut r = ByteRing::with_capacity(8);
        assert_eq!(r.push(b"abcdef"), 6);
        r.consume(4); // head now 4
        assert_eq!(r.push(b"ghijkl"), 6); // wraps
        assert_eq!(r.len(), 8);
        assert_eq!(r.free(), 0);
        assert_eq!(r.push(b"x"), 0);
        let mut out = Vec::new();
        let (a, b) = r.as_slices();
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        assert_eq!(out, b"efghijkl");
        r.consume(8);
        assert!(r.is_empty());
        assert_eq!(r.as_slices(), (&b""[..], &b""[..]));
    }

    #[test]
    fn partial_consume_tracks_the_oldest_bytes() {
        let mut r = ByteRing::with_capacity(4);
        r.push(b"abcd");
        r.consume(1);
        assert_eq!(r.as_slices().0, b"bcd");
        assert_eq!(r.push(b"e"), 1);
        let (a, b) = r.as_slices();
        assert_eq!([a, b].concat(), b"bcde");
    }
}
