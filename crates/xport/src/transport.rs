//! The [`Transport`] trait and its three implementations: the byte
//! pipe under the wire boundary.
//!
//! A transport is a *nonblocking* bidirectional octet stream with an
//! explicit establishment state.  The contract mirrors what a PPP
//! driver sees from a serial device or a socket:
//!
//! * [`Transport::send`]/[`Transport::recv`] never block — they move
//!   what the kernel will take ([`IoOp::Did`]), report a full buffer /
//!   empty pipe ([`IoOp::WouldBlock`]), or report peer loss
//!   ([`IoOp::Closed`], after which [`Transport::established`] is
//!   false).  Short reads and short writes are normal, not errors.
//! * [`Transport::establish`] (re)creates the pipe without blocking the
//!   driver: a client re-dials, a server re-accepts from its retained
//!   listener, an in-process pipe reopens.  The engine calls it until
//!   it succeeds, then runs the session's `lower_up` — which is what
//!   turns a reconnect into an RFC 1661 renegotiation.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Outcome of one nonblocking send/recv attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Moved this many bytes (possibly fewer than offered — a short
    /// op).
    Did(usize),
    /// The pipe is healthy but cannot move bytes right now
    /// (EWOULDBLOCK / full peer window / empty pipe).
    WouldBlock,
    /// The peer is gone (EOF, reset, broken pipe).  The transport has
    /// torn its stream down; re-establish before retrying.
    Closed,
}

/// A nonblocking byte pipe a [`crate::LinkEngine`] pumps the wire
/// through.
pub trait Transport: Send {
    /// A byte pipe currently exists.
    fn established(&self) -> bool;

    /// Try to (re)create the pipe.  Returns `Ok(true)` once connected;
    /// `Ok(false)` means "not yet, retry later" (peer not listening,
    /// no pending accept).  Must not block the driver for long.
    fn establish(&mut self) -> io::Result<bool>;

    /// Write as many of `buf`'s bytes as the pipe will take.
    fn send(&mut self, buf: &[u8]) -> io::Result<IoOp>;

    /// Read into `buf`, returning how many bytes arrived.
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<IoOp>;

    /// Human-readable endpoint description for labels and traces.
    fn describe(&self) -> String;
}

/// Map an I/O error to the nonblocking contract: would-block and
/// interrupt are flow control, connection-lifetime errors are
/// [`IoOp::Closed`], anything else propagates.
fn classify(e: io::Error) -> io::Result<IoOp> {
    use io::ErrorKind::*;
    match e.kind() {
        WouldBlock | Interrupted => Ok(IoOp::WouldBlock),
        ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof | NotConnected => {
            Ok(IoOp::Closed)
        }
        _ => Err(e),
    }
}

// ---------------------------------------------------------------- TCP

enum TcpRole {
    /// We dial; the address is retained for reconnects.
    Client(SocketAddr),
    /// We accept; the listener is retained so a reconnect is just the
    /// next accept.
    Server(TcpListener),
}

/// The wire over a TCP socket (loopback in tests, any route in
/// production).  Nagle is disabled: LCP packets are latency-sensitive
/// and the wire already batches.
pub struct TcpTransport {
    role: TcpRole,
    stream: Option<TcpStream>,
}

impl TcpTransport {
    /// Dial `addr` now (blocking once, at construction) and keep the
    /// address for nonblocking re-dials.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        Self::tune(&stream)?;
        Ok(TcpTransport {
            role: TcpRole::Client(peer),
            stream: Some(stream),
        })
    }

    /// Bind a listener on `addr` (port 0 for ephemeral) and accept the
    /// peer lazily from the driver loop.
    pub fn listen(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            role: TcpRole::Server(listener),
            stream: None,
        })
    }

    /// The bound (server) or dialled (client) address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match &self.role {
            TcpRole::Server(l) => l.local_addr(),
            TcpRole::Client(a) => Ok(*a),
        }
    }

    fn tune(stream: &TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)
    }
}

impl Transport for TcpTransport {
    fn established(&self) -> bool {
        self.stream.is_some()
    }

    fn establish(&mut self) -> io::Result<bool> {
        if self.stream.is_some() {
            return Ok(true);
        }
        match &self.role {
            TcpRole::Server(listener) => match listener.accept() {
                Ok((stream, _)) => {
                    Self::tune(&stream)?;
                    self.stream = Some(stream);
                    Ok(true)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
                Err(e) => Err(e),
            },
            TcpRole::Client(addr) => {
                // A short timeout keeps the driver responsive while the
                // peer is down; failure just means "retry next spin".
                match TcpStream::connect_timeout(addr, Duration::from_millis(25)) {
                    Ok(stream) => {
                        Self::tune(&stream)?;
                        self.stream = Some(stream);
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                }
            }
        }
    }

    fn send(&mut self, buf: &[u8]) -> io::Result<IoOp> {
        use std::io::Write;
        let Some(stream) = &mut self.stream else {
            return Ok(IoOp::Closed);
        };
        match stream.write(buf) {
            Ok(0) => {
                self.stream = None;
                Ok(IoOp::Closed)
            }
            Ok(n) => Ok(IoOp::Did(n)),
            Err(e) => {
                let op = classify(e)?;
                if op == IoOp::Closed {
                    self.stream = None;
                }
                Ok(op)
            }
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<IoOp> {
        use std::io::Read;
        let Some(stream) = &mut self.stream else {
            return Ok(IoOp::Closed);
        };
        match stream.read(buf) {
            // A zero-byte read on a readable TCP socket is EOF.
            Ok(0) => {
                self.stream = None;
                Ok(IoOp::Closed)
            }
            Ok(n) => Ok(IoOp::Did(n)),
            Err(e) => {
                let op = classify(e)?;
                if op == IoOp::Closed {
                    self.stream = None;
                }
                Ok(op)
            }
        }
    }

    fn describe(&self) -> String {
        match (&self.role, self.local_addr()) {
            (TcpRole::Client(_), Ok(a)) => format!("tcp->{a}"),
            (TcpRole::Server(_), Ok(a)) => format!("tcp@{a}"),
            _ => "tcp".into(),
        }
    }
}

// --------------------------------------------------------- Unix socket

#[cfg(unix)]
enum UnixRole {
    Client(std::path::PathBuf),
    Server(UnixListener),
}

/// The wire over a Unix-domain stream socket — same contract as
/// [`TcpTransport`], minus the IP stack.
#[cfg(unix)]
pub struct UnixTransport {
    role: UnixRole,
    stream: Option<UnixStream>,
}

#[cfg(unix)]
impl UnixTransport {
    pub fn connect(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let stream = UnixStream::connect(path.as_ref())?;
        stream.set_nonblocking(true)?;
        Ok(UnixTransport {
            role: UnixRole::Client(path.as_ref().to_path_buf()),
            stream: Some(stream),
        })
    }

    pub fn listen(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let listener = UnixListener::bind(path.as_ref())?;
        listener.set_nonblocking(true)?;
        Ok(UnixTransport {
            role: UnixRole::Server(listener),
            stream: None,
        })
    }
}

#[cfg(unix)]
impl Transport for UnixTransport {
    fn established(&self) -> bool {
        self.stream.is_some()
    }

    fn establish(&mut self) -> io::Result<bool> {
        if self.stream.is_some() {
            return Ok(true);
        }
        match &self.role {
            UnixRole::Server(listener) => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    self.stream = Some(stream);
                    Ok(true)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
                Err(e) => Err(e),
            },
            UnixRole::Client(path) => match UnixStream::connect(path) {
                Ok(stream) => {
                    stream.set_nonblocking(true)?;
                    self.stream = Some(stream);
                    Ok(true)
                }
                Err(_) => Ok(false),
            },
        }
    }

    fn send(&mut self, buf: &[u8]) -> io::Result<IoOp> {
        use std::io::Write;
        let Some(stream) = &mut self.stream else {
            return Ok(IoOp::Closed);
        };
        match stream.write(buf) {
            Ok(0) => {
                self.stream = None;
                Ok(IoOp::Closed)
            }
            Ok(n) => Ok(IoOp::Did(n)),
            Err(e) => {
                let op = classify(e)?;
                if op == IoOp::Closed {
                    self.stream = None;
                }
                Ok(op)
            }
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<IoOp> {
        use std::io::Read;
        let Some(stream) = &mut self.stream else {
            return Ok(IoOp::Closed);
        };
        match stream.read(buf) {
            Ok(0) => {
                self.stream = None;
                Ok(IoOp::Closed)
            }
            Ok(n) => Ok(IoOp::Did(n)),
            Err(e) => {
                let op = classify(e)?;
                if op == IoOp::Closed {
                    self.stream = None;
                }
                Ok(op)
            }
        }
    }

    fn describe(&self) -> String {
        match &self.role {
            UnixRole::Client(p) => format!("unix->{}", p.display()),
            UnixRole::Server(_) => "unix@listener".into(),
        }
    }
}

// ------------------------------------------------------ in-process pipe

/// One direction of the in-process pipe.
#[derive(Debug, Default)]
struct Lane {
    buf: std::collections::VecDeque<u8>,
    open: bool,
}

type SharedLane = Arc<Mutex<Lane>>;

/// A deterministic in-process transport: two bounded byte lanes shared
/// between the pair, with scriptable stalls and severs.  The test
/// double for the socket transports — every behaviour the engine must
/// survive (short ops, EWOULDBLOCK, peer loss mid-run, reconnect) can
/// be produced on demand, with no kernel timing in the loop.
pub struct PipeTransport {
    tx: SharedLane,
    rx: SharedLane,
    cap: usize,
    /// Remaining send/recv calls that report [`IoOp::WouldBlock`]
    /// regardless of lane state (a scripted peer stall).  Shared with
    /// [`PipeControl`] so a test can inject stalls after the transport
    /// has been boxed into an engine.
    stall_ops: Arc<Mutex<u64>>,
    /// Recorded copy of every byte sent, when tapping is enabled.
    tap: Option<Arc<Mutex<Vec<u8>>>>,
}

/// A remote control for one [`PipeTransport`] end, usable while the
/// transport itself is owned by an engine/driver: script stalls and
/// sever the connection from the test harness.
#[derive(Clone)]
pub struct PipeControl {
    tx: SharedLane,
    rx: SharedLane,
    stall_ops: Arc<Mutex<u64>>,
}

impl PipeControl {
    /// Make the controlled end's next `ops` send/recv calls report
    /// [`IoOp::WouldBlock`].
    pub fn stall(&self, ops: u64) {
        *self.stall_ops.lock() += ops;
    }

    /// Sever the connection: both lanes close and drop their bytes, so
    /// each end observes [`IoOp::Closed`] and must re-establish — the
    /// deterministic mid-run disconnect.
    pub fn sever(&self) {
        for lane in [&self.tx, &self.rx] {
            let mut l = lane.lock();
            l.open = false;
            l.buf.clear();
        }
    }
}

impl PipeTransport {
    /// A connected pair with the default 64 KiB lane capacity.
    pub fn pair() -> (PipeTransport, PipeTransport) {
        Self::pair_with_capacity(64 * 1024)
    }

    /// A connected pair whose lanes hold at most `cap` bytes — small
    /// capacities force short writes, exercising the staging rings.
    pub fn pair_with_capacity(cap: usize) -> (PipeTransport, PipeTransport) {
        let a2b: SharedLane = Arc::new(Mutex::new(Lane {
            buf: Default::default(),
            open: true,
        }));
        let b2a: SharedLane = Arc::new(Mutex::new(Lane {
            buf: Default::default(),
            open: true,
        }));
        let a = PipeTransport {
            tx: a2b.clone(),
            rx: b2a.clone(),
            cap,
            stall_ops: Arc::new(Mutex::new(0)),
            tap: None,
        };
        let b = PipeTransport {
            tx: b2a,
            rx: a2b,
            cap,
            stall_ops: Arc::new(Mutex::new(0)),
            tap: None,
        };
        (a, b)
    }

    /// Make the next `ops` send/recv calls report
    /// [`IoOp::WouldBlock`] — a scripted peer stall.
    pub fn stall(&mut self, ops: u64) {
        *self.stall_ops.lock() += ops;
    }

    /// Sever the connection: both lanes close and drop their bytes, so
    /// each end observes [`IoOp::Closed`] and must re-establish — the
    /// deterministic mid-run disconnect.
    pub fn sever(&self) {
        PipeControl {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            stall_ops: self.stall_ops.clone(),
        }
        .sever();
    }

    /// A remote control for this end, for scripting after the
    /// transport is boxed away.
    pub fn control(&self) -> PipeControl {
        PipeControl {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            stall_ops: self.stall_ops.clone(),
        }
    }

    /// Record every byte this end sends; returns the shared tap.
    pub fn tap_tx(&mut self) -> Arc<Mutex<Vec<u8>>> {
        let tap = Arc::new(Mutex::new(Vec::new()));
        self.tap = Some(tap.clone());
        tap
    }
}

impl Transport for PipeTransport {
    fn established(&self) -> bool {
        self.tx.lock().open && self.rx.lock().open
    }

    fn establish(&mut self) -> io::Result<bool> {
        // Reopening is symmetric and idempotent: each end marks both
        // lanes open; whichever end re-establishes first simply waits
        // for the other to start pumping.
        for lane in [&self.tx, &self.rx] {
            let mut l = lane.lock();
            if !l.open {
                l.open = true;
                l.buf.clear();
            }
        }
        Ok(true)
    }

    fn send(&mut self, buf: &[u8]) -> io::Result<IoOp> {
        {
            let mut stalls = self.stall_ops.lock();
            if *stalls > 0 {
                *stalls -= 1;
                return Ok(IoOp::WouldBlock);
            }
        }
        let mut lane = self.tx.lock();
        if !lane.open {
            return Ok(IoOp::Closed);
        }
        let free = self.cap - lane.buf.len().min(self.cap);
        let n = buf.len().min(free);
        if n == 0 {
            return Ok(IoOp::WouldBlock);
        }
        lane.buf.extend(&buf[..n]);
        drop(lane);
        if let Some(tap) = &self.tap {
            tap.lock().extend_from_slice(&buf[..n]);
        }
        Ok(IoOp::Did(n))
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<IoOp> {
        {
            let mut stalls = self.stall_ops.lock();
            if *stalls > 0 {
                *stalls -= 1;
                return Ok(IoOp::WouldBlock);
            }
        }
        let mut lane = self.rx.lock();
        let n = buf.len().min(lane.buf.len());
        if n == 0 {
            return Ok(if lane.open {
                IoOp::WouldBlock
            } else {
                IoOp::Closed
            });
        }
        for slot in buf.iter_mut().take(n) {
            *slot = lane.buf.pop_front().expect("checked length");
        }
        Ok(IoOp::Did(n))
    }

    fn describe(&self) -> String {
        "pipe".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_and_respects_capacity() {
        let (mut a, mut b) = PipeTransport::pair_with_capacity(4);
        assert!(a.established());
        assert_eq!(a.send(b"hello").unwrap(), IoOp::Did(4)); // short write
        assert_eq!(a.send(b"o").unwrap(), IoOp::WouldBlock); // lane full
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), IoOp::Did(4));
        assert_eq!(&buf[..4], b"hell");
        assert_eq!(b.recv(&mut buf).unwrap(), IoOp::WouldBlock);
    }

    #[test]
    fn pipe_stall_and_sever_follow_the_contract() {
        let (mut a, mut b) = PipeTransport::pair();
        a.stall(2);
        assert_eq!(a.send(b"x").unwrap(), IoOp::WouldBlock);
        assert_eq!(a.send(b"x").unwrap(), IoOp::WouldBlock);
        assert_eq!(a.send(b"x").unwrap(), IoOp::Did(1));
        a.sever();
        assert!(!a.established());
        let mut buf = [0u8; 4];
        assert_eq!(b.recv(&mut buf).unwrap(), IoOp::Closed);
        assert_eq!(b.send(b"y").unwrap(), IoOp::Closed);
        assert!(a.establish().unwrap());
        assert!(b.establish().unwrap());
        assert_eq!(a.send(b"z").unwrap(), IoOp::Did(1));
        assert_eq!(b.recv(&mut buf).unwrap(), IoOp::Did(1));
        assert_eq!(buf[0], b'z');
    }

    #[test]
    fn tcp_loopback_round_trips_under_the_contract() {
        let mut server = TcpTransport::listen("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        assert!(!server.established());
        assert!(!server.establish().expect("no pending accept"));
        let mut client = TcpTransport::connect(addr).expect("dial");
        assert!(client.established());
        // Accept may need a beat on a loaded host.
        for _ in 0..200 {
            if server.establish().expect("accept") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(server.established());
        assert_eq!(client.send(b"ping").unwrap(), IoOp::Did(4));
        let mut buf = [0u8; 8];
        let mut got = 0;
        for _ in 0..200 {
            match server.recv(&mut buf[got..]).unwrap() {
                IoOp::Did(n) => got += n,
                IoOp::WouldBlock => std::thread::sleep(Duration::from_millis(1)),
                IoOp::Closed => panic!("peer alive"),
            }
            if got == 4 {
                break;
            }
        }
        assert_eq!(&buf[..4], b"ping");
        // Drop the client: the server observes Closed, re-listens, and
        // a re-dial re-establishes.
        drop(client);
        loop {
            match server.recv(&mut buf).unwrap() {
                IoOp::Closed => break,
                IoOp::WouldBlock => std::thread::sleep(Duration::from_millis(1)),
                IoOp::Did(_) => {}
            }
        }
        assert!(!server.established());
        let client2 = TcpTransport::connect(addr).expect("re-dial");
        assert!(client2.established());
        for _ in 0..200 {
            if server.establish().expect("re-accept") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(server.established());
    }
}
