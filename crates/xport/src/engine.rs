//! [`LinkEngine`]: one P⁵ device, one PPP session and one
//! [`Transport`], pumped as a unit.
//!
//! The engine is the single-threaded heart of a real endpoint.  Each
//! [`LinkEngine::service`] call makes one pass over the whole path —
//!
//! ```text
//!   offer() ─→ ingress ─→ session ─→ ctl ─→ device ─→ wire out
//!                                                         │
//!            deliveries ←─ session ←─ device ←─ wire in   ▼
//!                 ▲                       ▲           ByteRing
//!                 │                       │               │
//!            take_deliveries()        WireBuf ←──── Transport (socket)
//! ```
//!
//! — and reports whether anything moved, so a driver can spin while
//! productive and sleep when the link is quiet.  All socket pathology
//! is absorbed here: short writes stage into the bounded [`ByteRing`],
//! short reads accumulate in a [`WireBuf`], `EWOULDBLOCK` just ends
//! the pass, and peer loss runs the session's `lower_down` so the next
//! successful [`Transport::establish`] renegotiates from scratch
//! (RFC 1661 Down → Up).

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use p5_core::p5::FUSED_WIRE_HIGH_WATER;
use p5_core::{DatapathWidth, TxQueueFull, P5};
use p5_ppp::{NegotiationProfile, Protocol, Session, SessionEvent};
use p5_stream::{Observable, Offer, Snapshot, WireBuf};

use crate::ring::ByteRing;
use crate::transport::{IoOp, Transport};

/// Bytes staged toward a stalled peer before egress backpressure
/// reaches the device (and from there the `offer` boundary).
const TX_RING_CAPACITY: usize = 64 * 1024;
/// Read granularity per transport recv.
const RECV_CHUNK: usize = 4096;
/// Staged-clock budget per service pass.
const CLOCK_BUDGET: u64 = 256 * 1024;
/// Flag octets pushed per idle-fill burst in session mode, keeping the
/// peer's delineation hunting and the pipe demonstrably alive.
const IDLE_FILL_BURST: usize = 4;
/// Minimum service passes between idle-fill bursts.  Filling every
/// starved pass floods the socket with flags (more fill than payload at
/// spin rates) and — worse — every burst arrives at the peer as
/// readable bytes, i.e. "progress", so a pair of spinning drivers keep
/// each other awake forever.  On a single-CPU host that feedback loop
/// convoys the driver threads against the offering thread and collapses
/// throughput two orders of magnitude.  A periodic burst preserves the
/// keep-alive semantic at a bandwidth that rounds to zero.
const IDLE_FILL_INTERVAL: u64 = 64;
/// Wall time per session-clock tick.  RFC 1661 restart timers assume
/// the restart period dwarfs the round-trip; with driver threads the
/// round-trip is *scheduling latency*, so the tick must be wall-time,
/// not pass-count — a pass-rate clock retransmits Configure-Requests
/// faster than the peer thread can answer, and each late duplicate
/// arriving after Opened renegotiates the link forever.  20 ms per
/// tick puts the default 3-tick restart period at 60 ms, comfortably
/// above any scheduler hiccup while keeping reconnect budgets snappy.
const TICK_LEN: Duration = Duration::from_millis(20);

/// Flow/IO accounting for one engine, all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XportCounters {
    /// Octets handed to the transport.
    pub bytes_out: u64,
    /// Octets taken from the transport.
    pub bytes_in: u64,
    /// Sends where the kernel took fewer bytes than offered.
    pub short_writes: u64,
    /// Recvs that returned fewer bytes than the chunk asked for.
    pub short_reads: u64,
    /// Times the pipe was re-established after a loss.
    pub reconnects: u64,
    /// Times the pipe was observed lost.
    pub disconnects: u64,
    /// Flag octets injected on transmit starvation.
    pub idle_fill_bytes: u64,
    /// Hard I/O errors (not would-block, not peer loss).
    pub io_errors: u64,
    /// Frames offered at the ingress boundary.
    pub offered: u64,
    /// Offered frames that entered the device.
    pub accepted: u64,
    /// Offered frames refused at the bounded ingress queue (or while
    /// the network phase is down).
    pub shed: u64,
    /// Offered frames refused with [`Offer::Rejected`] (wrong protocol
    /// for the session's network phase).
    pub rejected: u64,
    /// Frames delivered out of the device to this endpoint's owner.
    pub delivered: u64,
    /// Payload octets delivered.
    pub delivered_bytes: u64,
}

/// Does the device need staged clocking?  (Same predicate the fleet
/// runtime uses — fused paths don't need cycles.)
fn staged_busy(dev: &P5) -> bool {
    !dev.tx.idle() || !dev.rx.idle() || dev.wire_in_pending() > 0
}

/// One real endpoint: device + optional PPP session + transport.
pub struct LinkEngine {
    dev: P5,
    /// `None` is *transparent* mode: raw frames in, raw frames out, no
    /// control plane — the determinism harness and protocol-agnostic
    /// carriage.
    session: Option<Session>,
    transport: Box<dyn Transport>,
    /// Session/control frames awaiting a device slot.
    ctl: VecDeque<(u16, Vec<u8>)>,
    /// User frames admitted but not yet in the session/device.
    ingress: VecDeque<(u16, Vec<u8>)>,
    ingress_depth: usize,
    /// Device wire-out bytes that did not fit the ring this pass.
    tx_stage: WireBuf,
    tx_ring: ByteRing,
    wire_in: WireBuf,
    deliveries: VecDeque<(u16, Vec<u8>)>,
    events: VecDeque<SessionEvent>,
    pub counters: XportCounters,
    /// Service passes executed (the fine clock).
    passes: u64,
    /// Pass stamp of the last idle-fill burst.
    last_fill_pass: u64,
    /// Session-clock ticks (wall time since construction / [`TICK_LEN`]).
    now: u64,
    epoch: Instant,
    ever_established: bool,
    /// Our last knowledge of the pipe: lets a silent loss (the
    /// transport noticing on its own, or a scripted sever) run the
    /// Down transition exactly once before any re-establishment.
    pipe_open: bool,
}

impl LinkEngine {
    /// A session-mode endpoint negotiating `profile` over `transport`.
    pub fn new(
        width: DatapathWidth,
        profile: &NegotiationProfile,
        transport: Box<dyn Transport>,
    ) -> Self {
        Self::build(width, Some(Session::with_profile(profile)), transport)
    }

    /// A transparent endpoint: no PPP control plane, frames carried
    /// verbatim.  Deterministic by construction — what goes in one end
    /// comes out the other, byte-identical to an in-memory link.
    pub fn transparent(width: DatapathWidth, transport: Box<dyn Transport>) -> Self {
        Self::build(width, None, transport)
    }

    fn build(
        width: DatapathWidth,
        session: Option<Session>,
        transport: Box<dyn Transport>,
    ) -> Self {
        LinkEngine {
            dev: P5::new(width),
            session,
            transport,
            ctl: VecDeque::new(),
            ingress: VecDeque::new(),
            ingress_depth: 64,
            tx_stage: WireBuf::new(),
            tx_ring: ByteRing::with_capacity(TX_RING_CAPACITY),
            wire_in: WireBuf::new(),
            deliveries: VecDeque::new(),
            events: VecDeque::new(),
            counters: XportCounters::default(),
            passes: 0,
            last_fill_pass: 0,
            now: 0,
            epoch: Instant::now(),
            ever_established: false,
            pipe_open: false,
        }
    }

    /// Cap on frames admitted-but-unsent before `offer` sheds.
    pub fn set_ingress_depth(&mut self, depth: usize) {
        self.ingress_depth = depth.max(1);
    }

    /// Record this endpoint's frame-lifecycle events into `sink`.
    pub fn set_trace(&mut self, sink: Box<dyn p5_stream::TraceSink + Send>) {
        self.dev.set_trace(sink);
    }

    /// Where this endpoint's bytes go (transport description).
    pub fn describe(&self) -> String {
        self.transport.describe()
    }

    /// The transport, for test scripting (stalls, severs).
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// IPCP is open (session mode) / the pipe exists (transparent).
    pub fn is_network_up(&self) -> bool {
        match &self.session {
            Some(s) => s.is_network_up(),
            None => self.transport.established(),
        }
    }

    /// Session-clock ticks elapsed (the unit restart budgets are
    /// denominated in).
    pub fn ticks(&self) -> u64 {
        self.now
    }

    /// Service passes executed (the fine pump clock).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Offer one frame at the admission boundary.
    ///
    /// Session mode accepts only [`Protocol::Ipv4`] payloads
    /// ([`Offer::Rejected`] otherwise) and sheds while the network
    /// phase is down — PPP does not carry user traffic before IPCP
    /// opens.  Transparent mode carries any protocol.
    pub fn offer(&mut self, protocol: u16, payload: &[u8]) -> Offer {
        self.counters.offered += 1;
        if self.session.is_some() {
            if protocol != Protocol::Ipv4.number() {
                self.counters.rejected += 1;
                return Offer::Rejected;
            }
            if !self.is_network_up() {
                self.counters.shed += 1;
                return Offer::Shed;
            }
        }
        // Fast path: nothing queued ahead and the device's fused TX
        // will take it now.
        if self.ingress.is_empty()
            && self.ctl.is_empty()
            && self.tx_stage.is_empty()
            && self.dev.fused_submit_wire(protocol, payload, 0)
        {
            self.counters.accepted += 1;
            return Offer::Accepted;
        }
        if self.ingress.len() >= self.ingress_depth {
            self.counters.shed += 1;
            return Offer::Shed;
        }
        let mut buf = self.dev.lease_tx_buf();
        buf.extend_from_slice(payload);
        self.ingress.push_back((protocol, buf));
        Offer::Queued
    }

    /// Frames delivered to this endpoint since the last call — IPv4
    /// datagrams in session mode, raw `(protocol, payload)` frames in
    /// transparent mode.
    pub fn take_deliveries(&mut self) -> Vec<(u16, Vec<u8>)> {
        self.deliveries.drain(..).collect()
    }

    /// Session events (link up/down, network up, auth, rejects) since
    /// the last call.  Always empty in transparent mode.
    pub fn poll_events(&mut self) -> Vec<SessionEvent> {
        self.events.drain(..).collect()
    }

    /// Anything queued on our side of the socket?
    pub fn has_local_work(&self) -> bool {
        !self.ingress.is_empty()
            || !self.ctl.is_empty()
            || !self.tx_stage.is_empty()
            || !self.tx_ring.is_empty()
            || !self.wire_in.is_empty()
            || self.dev.has_wire_out()
            || staged_busy(&self.dev)
    }

    /// Administrative close: terminate the session (the Terminate
    /// exchange flushes on subsequent service passes).
    pub fn stop(&mut self) {
        if let Some(s) = &mut self.session {
            s.stop();
        }
    }

    /// One full pump pass.  Returns `true` if anything moved — the
    /// driver's spin/sleep signal.  Idle-fill injection deliberately
    /// does not count as progress.
    pub fn service(&mut self) -> bool {
        let mut progress = false;
        self.passes += 1;
        let elapsed = (self.epoch.elapsed().as_millis() / TICK_LEN.as_millis()) as u64;
        self.now = self.now.max(elapsed);

        if self.transport.established() {
            if !self.pipe_open {
                // Transport was born connected (dialled client,
                // in-process pipe): this pass discovers it.
                self.on_established();
                progress = true;
            }
        } else {
            if self.pipe_open {
                // The pipe died without us touching it (peer vanished,
                // scripted sever): run the Down transition first.
                self.on_closed();
            }
            match self.transport.establish() {
                Ok(true) => {
                    self.on_established();
                    progress = true;
                }
                Ok(false) => {}
                Err(_) => self.counters.io_errors += 1,
            }
        }

        // Control plane: admit datagrams, advance timers, collect
        // output and events.
        if let Some(session) = &mut self.session {
            while session.is_network_up() && !self.ingress.is_empty() {
                let (_, payload) = self.ingress.pop_front().expect("checked non-empty");
                session.send_datagram(payload);
                self.counters.accepted += 1;
                progress = true;
            }
            session.tick(self.now);
            for frame in session.poll_output() {
                self.ctl.push_back(frame);
            }
            for ev in session.poll_events() {
                match ev {
                    SessionEvent::Datagram(data) => {
                        self.counters.delivered += 1;
                        self.counters.delivered_bytes += data.len() as u64;
                        self.deliveries.push_back((Protocol::Ipv4.number(), data));
                    }
                    other => self.events.push_back(other),
                }
            }
        } else {
            // Transparent mode: user frames go straight to the device.
            while let Some((protocol, payload)) = self.ingress.pop_front() {
                self.ctl.push_back((protocol, payload));
                self.counters.accepted += 1;
                progress = true;
            }
        }

        progress |= self.flush_ctl();

        if staged_busy(&self.dev) {
            progress |= self.dev.run_until_idle(CLOCK_BUDGET) > 0;
        }

        progress |= self.stage_wire_out();
        self.idle_fill();
        progress |= self.pump_socket_out();
        progress |= self.pump_socket_in();
        progress |= self.ingest_wire_in();

        if staged_busy(&self.dev) {
            progress |= self.dev.run_until_idle(CLOCK_BUDGET) > 0;
        }

        progress |= self.collect_received();
        progress
    }

    /// Pipe (re)created.  First time starts the session; later times
    /// are reconnects and renegotiate via Down → Up.
    fn on_established(&mut self) {
        self.pipe_open = true;
        self.tx_ring.clear();
        self.tx_stage.clear();
        self.wire_in.clear();
        let reconnect = self.ever_established;
        if reconnect {
            self.counters.reconnects += 1;
        }
        self.ever_established = true;
        if let Some(session) = &mut self.session {
            if reconnect {
                session.lower_up();
            } else {
                session.start();
            }
        }
    }

    /// Pipe lost mid-flight: drop in-flight wire state (the peer will
    /// resync on flags anyway) and run the session's Down transition.
    fn on_closed(&mut self) {
        self.pipe_open = false;
        self.counters.disconnects += 1;
        self.tx_ring.clear();
        self.tx_stage.clear();
        self.wire_in.clear();
        if let Some(session) = &mut self.session {
            session.lower_down();
        }
    }

    /// Move queued control/user frames into the device — fused when
    /// clear, the staged TX queue as the degradation step, retrying
    /// (not dropping) when even that refuses.
    fn flush_ctl(&mut self) -> bool {
        let mut progress = false;
        while let Some((protocol, payload)) = self.ctl.pop_front() {
            if self.tx_stage.len() + self.tx_ring.len() >= TX_RING_CAPACITY {
                // Egress backlog: hold the queue, backpressure stands.
                self.ctl.push_front((protocol, payload));
                break;
            }
            if self.dev.fused_tx_ready() && self.dev.fused_submit_wire(protocol, &payload, 0) {
                self.dev.buf_pool().recycle_vec(payload);
                progress = true;
                continue;
            }
            match self.dev.submit(protocol, payload) {
                Ok(()) => progress = true,
                Err(TxQueueFull(desc)) => {
                    // Control frames are never dropped here: requeue
                    // and let the device drain first.
                    self.ctl.push_front((desc.protocol, desc.payload));
                    break;
                }
            }
        }
        progress
    }

    /// Device wire-out → ring (staging the overflow).
    fn stage_wire_out(&mut self) -> bool {
        let mut progress = false;
        // Stage backlog first: ring order must match wire order.
        let taken = self.tx_ring.push(self.tx_stage.as_slice());
        if taken > 0 {
            self.tx_stage.consume(taken);
            progress = true;
        }
        while self.dev.has_wire_out() {
            if !self.tx_stage.is_empty() || self.tx_ring.free() == 0 {
                break; // keep the backlog bounded at device side
            }
            let bytes = self.dev.take_wire_out();
            let taken = self.tx_ring.push(&bytes);
            if taken < bytes.len() {
                self.tx_stage.push_slice(&bytes[taken..]);
            }
            self.dev.recycle_wire_vec(bytes);
            progress = true;
        }
        progress
    }

    /// Transmit starvation in session mode: keep the line scrambling
    /// with inter-frame flags, like the hardware's idle-fill escape —
    /// but throttled to [`IDLE_FILL_INTERVAL`] (see there for why a
    /// per-pass fill is actively harmful over a real socket).
    fn idle_fill(&mut self) {
        if self.session.is_none()
            || !self.ever_established
            || !self.transport.established()
            || !self.tx_ring.is_empty()
            || !self.tx_stage.is_empty()
            || self.dev.has_wire_out()
            || self.passes.wrapping_sub(self.last_fill_pass) < IDLE_FILL_INTERVAL
        {
            return;
        }
        self.last_fill_pass = self.passes;
        let fill = [p5_hdlc::FLAG; IDLE_FILL_BURST];
        let n = self.tx_ring.push(&fill);
        self.counters.idle_fill_bytes += n as u64;
    }

    /// Ring → socket, consuming exactly what the kernel took.
    fn pump_socket_out(&mut self) -> bool {
        let mut progress = false;
        loop {
            let (first, _) = self.tx_ring.as_slices();
            if first.is_empty() {
                break;
            }
            let offered = first.len();
            match self.transport.send(first) {
                Ok(IoOp::Did(n)) => {
                    self.tx_ring.consume(n);
                    self.counters.bytes_out += n as u64;
                    progress = true;
                    if n < offered {
                        self.counters.short_writes += 1;
                        break;
                    }
                }
                Ok(IoOp::WouldBlock) => break,
                Ok(IoOp::Closed) => {
                    self.on_closed();
                    break;
                }
                Err(_) => {
                    self.counters.io_errors += 1;
                    break;
                }
            }
        }
        progress
    }

    /// Socket → wire-in buffer, bounded by the fused high-water mark.
    fn pump_socket_in(&mut self) -> bool {
        let mut progress = false;
        let mut chunk = [0u8; RECV_CHUNK];
        while self.wire_in.len() < FUSED_WIRE_HIGH_WATER && self.transport.established() {
            match self.transport.recv(&mut chunk) {
                Ok(IoOp::Did(n)) => {
                    self.wire_in.push_slice(&chunk[..n]);
                    self.counters.bytes_in += n as u64;
                    progress = true;
                    if n < chunk.len() {
                        self.counters.short_reads += 1;
                        break;
                    }
                }
                Ok(IoOp::WouldBlock) => break,
                Ok(IoOp::Closed) => {
                    self.on_closed();
                    break;
                }
                Err(_) => {
                    self.counters.io_errors += 1;
                    break;
                }
            }
        }
        progress
    }

    /// Wire-in buffer → device (fused bulk ingest when eligible).
    fn ingest_wire_in(&mut self) -> bool {
        if self.wire_in.is_empty() {
            return false;
        }
        let max = self.wire_in.len().min(FUSED_WIRE_HIGH_WATER);
        if self.dev.fused_ingest_wire(&mut self.wire_in, max).is_none() {
            self.dev.offer_wire_from(&mut self.wire_in, max);
        }
        true
    }

    /// Device deliveries → session (or straight out, transparent).
    fn collect_received(&mut self) -> bool {
        let mut progress = false;
        for frame in self.dev.take_received() {
            progress = true;
            match &mut self.session {
                Some(session) => {
                    session.receive(frame.protocol, &frame.payload);
                    self.dev.recycle_rx_payload(frame.payload);
                    // Surface what the receive produced without waiting
                    // for the next pass.
                    for out in session.poll_output() {
                        self.ctl.push_back(out);
                    }
                    for ev in session.poll_events() {
                        match ev {
                            SessionEvent::Datagram(data) => {
                                self.counters.delivered += 1;
                                self.counters.delivered_bytes += data.len() as u64;
                                self.deliveries.push_back((Protocol::Ipv4.number(), data));
                            }
                            other => self.events.push_back(other),
                        }
                    }
                }
                None => {
                    self.counters.delivered += 1;
                    self.counters.delivered_bytes += frame.payload.len() as u64;
                    self.deliveries.push_back((frame.protocol, frame.payload));
                }
            }
        }
        progress
    }
}

impl Observable for LinkEngine {
    fn snapshot(&self) -> Snapshot {
        let c = &self.counters;
        Snapshot::new("xport")
            .counter("bytes_out", c.bytes_out)
            .counter("bytes_in", c.bytes_in)
            .counter("short_writes", c.short_writes)
            .counter("short_reads", c.short_reads)
            .counter("reconnects", c.reconnects)
            .counter("disconnects", c.disconnects)
            .counter("idle_fill_bytes", c.idle_fill_bytes)
            .counter("io_errors", c.io_errors)
            .counter("offered", c.offered)
            .counter("accepted", c.accepted)
            .counter("shed", c.shed)
            .counter("rejected", c.rejected)
            .counter("delivered", c.delivered)
            .counter("delivered_bytes", c.delivered_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PipeTransport;

    fn pump(a: &mut LinkEngine, b: &mut LinkEngine, max: usize) {
        for _ in 0..max {
            let pa = a.service();
            let pb = b.service();
            if !pa && !pb {
                break;
            }
        }
    }

    #[test]
    fn transparent_engines_carry_frames_both_ways() {
        let (ta, tb) = PipeTransport::pair();
        let mut a = LinkEngine::transparent(DatapathWidth::W32, Box::new(ta));
        let mut b = LinkEngine::transparent(DatapathWidth::W32, Box::new(tb));
        assert_eq!(a.offer(0x0021, b"one small datagram"), Offer::Accepted);
        assert_eq!(b.offer(0x0057, b"and back again"), Offer::Accepted);
        pump(&mut a, &mut b, 64);
        let got_b = b.take_deliveries();
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].0, 0x0021);
        assert_eq!(got_b[0].1, b"one small datagram");
        let got_a = a.take_deliveries();
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0].0, 0x0057);
        assert_eq!(got_a[0].1, b"and back again");
        assert_eq!(a.counters.delivered, 1);
        assert_eq!(b.counters.delivered, 1);
    }

    #[test]
    fn sessions_negotiate_and_exchange_over_a_pipe() {
        let (ta, tb) = PipeTransport::pair();
        let prof_a = NegotiationProfile::new().magic(0x1111).ip([10, 0, 0, 1]);
        let prof_b = NegotiationProfile::new().magic(0x2222).ip([10, 0, 0, 2]);
        let mut a = LinkEngine::new(DatapathWidth::W32, &prof_a, Box::new(ta));
        let mut b = LinkEngine::new(DatapathWidth::W32, &prof_b, Box::new(tb));
        for _ in 0..200 {
            a.service();
            b.service();
            if a.is_network_up() && b.is_network_up() {
                break;
            }
        }
        assert!(a.is_network_up(), "LCP+IPCP should open over the pipe");
        assert!(b.is_network_up());
        assert!(a
            .poll_events()
            .iter()
            .any(|e| matches!(e, SessionEvent::NetworkUp(..))));

        assert_eq!(a.offer(0xBEEF, b"not ip"), Offer::Rejected);
        let datagram = vec![0x45u8; 96];
        assert!(a.offer(0x0021, &datagram).is_admitted());
        pump(&mut a, &mut b, 64);
        let got = b.take_deliveries();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, datagram);
    }

    #[test]
    fn sever_renegotiates_within_the_restart_budget() {
        let (ta, tb) = PipeTransport::pair();
        let ctl = ta.control();
        let mut a = LinkEngine::new(
            DatapathWidth::W32,
            &NegotiationProfile::new().magic(1).ip([10, 0, 0, 1]),
            Box::new(ta),
        );
        let mut b = LinkEngine::new(
            DatapathWidth::W32,
            &NegotiationProfile::new().magic(2).ip([10, 0, 0, 2]),
            Box::new(tb),
        );
        for _ in 0..200 {
            a.service();
            b.service();
            if a.is_network_up() && b.is_network_up() {
                break;
            }
        }
        assert!(a.is_network_up() && b.is_network_up());
        a.poll_events();
        b.poll_events();

        // Script the mid-run disconnect (closes both lanes).
        ctl.sever();
        let mut recovered = false;
        for _ in 0..400 {
            a.service();
            b.service();
            if a.counters.disconnects > 0 && a.is_network_up() && b.is_network_up() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "session should renegotiate after a sever");
        assert!(a.counters.reconnects >= 1);
        assert!(a
            .poll_events()
            .iter()
            .any(|e| matches!(e, SessionEvent::NetworkUp(..))));
    }
}
