//! p5-link — the one way to assemble a P⁵ link.
//!
//! Every example, integration test and bench binary used to hand-wire
//! its own stack: pick stage constructors, remember the idle-fill bit,
//! compute the cycles-per-frame budget, clone the OAM handle before the
//! device moves into the stack.  [`LinkBuilder`] owns that recipe once:
//!
//! ```
//! use p5_link::LinkBuilder;
//! use p5_core::DatapathWidth;
//! use p5_sonet::StmLevel;
//! use p5_fault::FaultSpec;
//!
//! let plan = FaultSpec::clean().ber(1e-6).compile(42).unwrap();
//! let mut link = LinkBuilder::new()
//!     .width(DatapathWidth::W32)
//!     .sonet(StmLevel::Stm16)     // OC-48
//!     .fault(plan)
//!     .build()
//!     .unwrap();
//! link.send(0x0021, &[0x45, 0x00, 0x00, 0x14]);
//! link.run(10_000).unwrap();
//! let got = link.deliveries();
//! assert_eq!(got.len() as u64 + link.rx_errors(), 1);
//! ```
//!
//! [`LinkBuilder::build`] yields a simplex [`Link`] (one `Stack`:
//! `TxStage → [OcPathStage] → [FaultStage] → RxStage`);
//! [`LinkBuilder::build_duplex`] yields a [`DuplexLink`] — two devices
//! and a seeded, optionally-impaired ferry between them — for the
//! control-plane (LCP/IPCP) scenarios that need traffic both ways.
//!
//! The raw `stack!` macro remains the supported low-level escape hatch
//! for custom topologies; this crate is the paved road.

use p5_core::oam::{regs, MmioBus, Oam, OamHandle};
use p5_core::{decap, encap, DatapathWidth, ReceivedFrame, RxStage, TxQueueFull, TxStage, P5};
use p5_fault::{FaultError, FaultPlan, FaultSpec, FaultStage, FaultStats};
use p5_ppp::NegotiationProfile;
use p5_sonet::{BitErrorChannel, ByteLink, OcPath, OcPathStage, StmLevel};
use p5_stream::{Offer, SharedRecorder, Snapshot, Stack, StageStats, StreamStage};
use p5_xport::{LinkEngine, SessionDriver, Transport};
use std::error::Error;
use std::fmt;

/// Why a link could not be built or run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinkError {
    /// The fault spec attached to the builder failed to compile.
    Fault(FaultError),
    /// The stack did not drain within the step budget.
    Stalled { steps: usize },
    /// [`LinkBuilder::build_remote`] needs a transport
    /// ([`LinkBuilder::transport`]).
    MissingTransport,
    /// The requested option combination isn't available on this
    /// topology (e.g. SONET carriage or fault injection on a remote
    /// endpoint — the OS pipe *is* the wire there).
    Unsupported(&'static str),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Fault(e) => write!(f, "link fault plan: {e}"),
            LinkError::Stalled { steps } => {
                write!(f, "link did not drain within {steps} steps")
            }
            LinkError::MissingTransport => {
                write!(f, "build_remote requires LinkBuilder::transport(...)")
            }
            LinkError::Unsupported(what) => write!(f, "unsupported on this topology: {what}"),
        }
    }
}

impl Error for LinkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LinkError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for LinkError {
    fn from(e: FaultError) -> Self {
        LinkError::Fault(e)
    }
}

/// Fluent description of a link, turned into a running assembly by
/// [`LinkBuilder::build`] (simplex) or [`LinkBuilder::build_duplex`].
#[derive(Default)]
pub struct LinkBuilder {
    width: Option<DatapathWidth>,
    sonet: Option<StmLevel>,
    fault: Option<FaultPlan>,
    trace: Option<SharedRecorder>,
    profile: Option<NegotiationProfile>,
    transport: Option<Box<dyn Transport>>,
}

impl LinkBuilder {
    pub fn new() -> Self {
        LinkBuilder::default()
    }

    /// Datapath width of both devices (default [`DatapathWidth::W32`]).
    pub fn width(mut self, width: DatapathWidth) -> Self {
        self.width = Some(width);
        self
    }

    /// Carry the wire over an STM-N path (scramble → frame → channel →
    /// delineate → descramble).  Also switches the transmitter to
    /// continuous (idle-fill) mode so the framer never pads mid-frame.
    pub fn sonet(mut self, level: StmLevel) -> Self {
        self.sonet = Some(level);
        self
    }

    /// Impair the wire with a compiled fault plan.  The length-
    /// preserving faults (BER, bursts) apply inside the transmission
    /// channel; structural faults and stall storms get a [`FaultStage`]
    /// on the delineated byte stream.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Record frame-lifecycle and fault events into `rec`.
    pub fn trace(mut self, rec: SharedRecorder) -> Self {
        self.trace = Some(rec);
        self
    }

    /// PPP negotiation posture for [`LinkBuilder::build_remote`]
    /// (magic number, IP address, auth policy, restart budgets).
    pub fn profile(mut self, profile: NegotiationProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Carry the wire over a real OS byte pipe
    /// ([`p5_xport::TcpTransport`], `UnixTransport`) or a deterministic
    /// in-process [`p5_xport::PipeTransport`].  Required by
    /// [`LinkBuilder::build_remote`].
    pub fn transport(mut self, transport: impl Transport + 'static) -> Self {
        self.transport = Some(Box::new(transport));
        self
    }

    fn width_or_default(&self) -> DatapathWidth {
        self.width.unwrap_or(DatapathWidth::W32)
    }

    /// Split the configured plan into its channel (bit-level) and stage
    /// (structural + stall) halves, each compiled from the plan's own
    /// seed on a distinct lane.
    fn split_fault(&self) -> Result<(Option<FaultPlan>, Option<FaultPlan>), LinkError> {
        let Some(plan) = &self.fault else {
            return Ok((None, None));
        };
        let spec = plan.spec().clone();
        let bit = if spec.ber > 0.0 || spec.burst.is_some() {
            let bit_spec = FaultSpec {
                ber: spec.ber,
                burst: spec.burst,
                ..FaultSpec::default()
            };
            Some(bit_spec.compile(plan.seed())?)
        } else {
            None
        };
        let structural = if spec.is_structural() || spec.stall.is_some() || spec.transfer_loss > 0.0
        {
            let st_spec = FaultSpec {
                ber: 0.0,
                burst: None,
                ..spec
            };
            Some(st_spec.compile(plan.seed().wrapping_add(1))?)
        } else {
            None
        };
        Ok((bit, structural))
    }

    fn new_device(&self, idle_fill: bool) -> (P5, OamHandle) {
        let mut dev = P5::new(self.width_or_default());
        dev.tx.escape.idle_fill = idle_fill;
        if let Some(rec) = &self.trace {
            dev.set_trace(Box::new(rec.clone()));
        }
        let oam = dev.oam.clone();
        (dev, oam)
    }

    /// One transmit device, one receive device, one `Stack` between
    /// them, assembled with the canonical line-rate clocking recipe.
    pub fn build(self) -> Result<Link, LinkError> {
        let (bit, structural) = self.split_fault()?;
        let (tx, tx_oam) = self.new_device(self.sonet.is_some());
        let (rx, rx_oam) = self.new_device(false);
        let mut stages: Vec<Box<dyn StreamStage>> = Vec::new();
        match self.sonet {
            Some(level) => {
                // Line-rate clocking: one SPE of wire bytes per 125 µs
                // frame, with a few surplus cycles to keep the SPE queue
                // primed through pipeline fill.
                let cpf = level
                    .payload_per_frame()
                    .div_ceil(self.width_or_default().bytes()) as u64
                    + 8;
                let channel = match bit {
                    Some(plan) => BitErrorChannel::from_plan(plan),
                    None => BitErrorChannel::clean(),
                };
                stages.push(Box::new(TxStage::with_burst(tx, cpf)));
                stages.push(Box::new(OcPathStage::new(OcPath::new(level, channel))));
                if let Some(plan) = structural {
                    stages.push(Box::new(self.faulted_stage(plan)));
                }
                stages.push(Box::new(RxStage::with_burst(rx, 2 * cpf)));
            }
            None => {
                stages.push(Box::new(TxStage::new(tx)));
                // No SONET path: the whole plan (bit + structural) acts
                // directly on the stuffed byte stream.
                match (bit, structural) {
                    (None, None) => {}
                    (bit, structural) => {
                        let mut merged = structural.unwrap_or_else(|| FaultPlan::clean(0));
                        if let Some(b) = bit {
                            // Recompose: one stage carrying the full spec.
                            let mut spec = merged.spec().clone();
                            spec.ber = b.spec().ber;
                            spec.burst = b.spec().burst;
                            merged = spec.compile(self.fault.as_ref().map_or(0, |p| p.seed()))?;
                        }
                        stages.push(Box::new(self.faulted_stage(merged)));
                    }
                }
                stages.push(Box::new(RxStage::new(rx)));
            }
        }
        Ok(Link {
            stack: Stack::compose(stages),
            tx_oam,
            rx_oam,
        })
    }

    fn faulted_stage(&self, plan: FaultPlan) -> FaultStage {
        let mut stage = FaultStage::new(plan);
        if let Some(rec) = &self.trace {
            stage.set_trace(Box::new(rec.clone()));
        }
        stage
    }

    /// Two devices and a seeded ferry between them, for control-plane
    /// scenarios (LCP/IPCP) where traffic flows both ways.  The fault
    /// plan, if any, is forked per direction; with [`LinkBuilder::sonet`]
    /// each direction carries its own STM-N path.
    pub fn build_duplex(self) -> Result<DuplexLink, LinkError> {
        let (bit, structural) = self.split_fault()?;
        let idle_fill = self.sonet.is_some();
        let (a, a_oam) = self.new_device(idle_fill);
        let (b, b_oam) = self.new_device(idle_fill);
        let mk_ferry = |lane: u64| -> Ferry {
            let path = self.sonet.map(|level| {
                let channel = match &bit {
                    Some(plan) => BitErrorChannel::from_plan(plan.fork(lane)),
                    None => BitErrorChannel::clean(),
                };
                OcPath::new(level, channel)
            });
            Ferry {
                path,
                plan: structural.as_ref().map(|p| p.fork(lane)),
                scratch: Vec::new(),
            }
        };
        let ab = mk_ferry(0);
        let ba = mk_ferry(1);
        Ok(DuplexLink {
            a: LinkEnd { p5: a, oam: a_oam },
            b: LinkEnd { p5: b, oam: b_oam },
            ab,
            ba,
        })
    }

    /// One *real* endpoint: a device plus a PPP session bound to the
    /// configured [`LinkBuilder::transport`], pumped by a dedicated
    /// thread.  The peer is whatever answers on the other end of the
    /// byte pipe — another thread, another process, another machine.
    ///
    /// SONET carriage and fault plans don't compose here (the OS pipe
    /// *is* the wire, and it misbehaves on its own schedule); asking
    /// for them is [`LinkError::Unsupported`] rather than silently
    /// ignored.
    pub fn build_remote(self) -> Result<SessionDriver, LinkError> {
        if self.sonet.is_some() {
            return Err(LinkError::Unsupported(
                "SONET carriage on a remote endpoint",
            ));
        }
        if self.fault.is_some() {
            return Err(LinkError::Unsupported(
                "fault injection on a remote endpoint",
            ));
        }
        let transport = self.transport.ok_or(LinkError::MissingTransport)?;
        let profile = self.profile.unwrap_or_default();
        let mut engine = LinkEngine::new(
            self.width.unwrap_or(DatapathWidth::W32),
            &profile,
            transport,
        );
        if let Some(rec) = self.trace {
            engine.set_trace(Box::new(rec));
        }
        Ok(SessionDriver::spawn(engine))
    }
}

/// A simplex link: transmit device → (optional SONET path, optional
/// fault stage) → receive device, as one composed [`Stack`].
pub struct Link {
    stack: Stack,
    tx_oam: OamHandle,
    rx_oam: OamHandle,
}

impl Link {
    /// Queue one datagram for transmission.
    pub fn send(&mut self, protocol: u16, payload: &[u8]) {
        encap(protocol, payload, self.stack.input());
    }

    /// Sweep the stack until it drains, then flush (SPE backlog plus
    /// flag fill).  Delivered frames wait in [`Link::deliveries`].
    pub fn run(&mut self, max_steps: usize) -> Result<(), LinkError> {
        if !self.stack.run_until_idle(max_steps) {
            return Err(LinkError::Stalled { steps: max_steps });
        }
        self.stack.finish();
        Ok(())
    }

    /// Everything delivered so far, decapsulated to `(protocol,
    /// payload)` in arrival order.
    pub fn deliveries(&mut self) -> Vec<(u16, Vec<u8>)> {
        let mut out = Vec::new();
        let mut frame = Vec::new();
        while self.stack.output().pop_frame_into(&mut frame).is_some() {
            if let Some((proto, payload)) = decap(&frame) {
                out.push((proto, payload.to_vec()));
            }
        }
        out
    }

    /// Register-bus view of the transmit device's OAM block.
    pub fn tx_oam(&self) -> Oam {
        Oam::new(self.tx_oam.clone())
    }

    /// Register-bus view of the receive device's OAM block.
    pub fn rx_oam(&self) -> Oam {
        Oam::new(self.rx_oam.clone())
    }

    /// Total receive-side error count, summed over the OAM error
    /// registers — the "counted drops" half of the paper's no-silent-
    /// corruption contract.
    pub fn rx_errors(&self) -> u64 {
        let bus = self.rx_oam();
        u64::from(
            bus.read(regs::FCS_ERRORS)
                + bus.read(regs::ABORTS)
                + bus.read(regs::RUNTS)
                + bus.read(regs::GIANTS)
                + bus.read(regs::HEADER_ERRORS)
                + bus.read(regs::ADDR_MISMATCHES),
        )
    }

    /// The health-relevant OAM counters in one read — the raw inputs a
    /// health scorer (`p5::obs::HealthSample`) windows into per-link
    /// verdicts.  Reads both ends' register buses; monotone.
    pub fn health_counters(&self) -> HealthCounters {
        let rx = self.rx_oam();
        let tx = self.tx_oam();
        HealthCounters {
            rx_frames: u64::from(rx.read(regs::RX_FRAMES)),
            rx_errors: self.rx_errors(),
            tx_frames: u64::from(tx.read(regs::TX_FRAMES)),
            tx_rejects: u64::from(tx.read(regs::TX_REJECTS)),
        }
    }

    /// Per-stage flow counters (name, stats) in pipeline order.
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        self.stack.stage_stats()
    }

    /// Metrics snapshot of every stage.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.stack.snapshots()
    }

    /// The stall-attribution table (DESIGN.md §13).
    pub fn stall_table(&self) -> String {
        self.stack.stall_table()
    }

    /// The stage topology of this link, for link-level static analysis
    /// (p5-lint composes per-stage handshake contracts over it).
    pub fn topology(&self) -> p5_stream::Topology {
        let mut t = self.stack.topology();
        t.name = "simplex link".into();
        t
    }

    /// The underlying stack — the escape hatch for custom sweeps.
    pub fn stack_mut(&mut self) -> &mut Stack {
        &mut self.stack
    }

    pub fn stack(&self) -> &Stack {
        &self.stack
    }
}

/// The health-relevant OAM counters of one link, read in one pass via
/// [`Link::health_counters`] / [`LinkEnd::health_counters`].  All
/// fields are monotone run totals; a health scorer diffs successive
/// reads into windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Frames accepted by the receive side.
    pub rx_frames: u64,
    /// Receive-side errors (FCS + aborts + runts + giants + header +
    /// address mismatches) — the counted-drop total.
    pub rx_errors: u64,
    /// Frames sent by the transmit side.
    pub tx_frames: u64,
    /// Submissions refused at the transmit queue (backpressure shed).
    pub tx_rejects: u64,
}

/// One side of a [`DuplexLink`]: a device plus its OAM handle, kept
/// reachable after the device is wired up.
pub struct LinkEnd {
    pub p5: P5,
    oam: OamHandle,
}

impl LinkEnd {
    pub fn submit(&mut self, protocol: u16, payload: Vec<u8>) -> Result<(), TxQueueFull> {
        self.p5.submit(protocol, payload)
    }

    /// [`LinkEnd::submit`] under the unified admission dialect: the
    /// device's bounded TX queue either takes the frame now
    /// ([`Offer::Accepted`]) or refuses it ([`Offer::Rejected`]), never
    /// blocks.  A refused payload is recycled into the device's buffer
    /// pool rather than handed back — same contract as the fleet and
    /// session-driver ingress boundaries.
    pub fn offer(&mut self, protocol: u16, payload: Vec<u8>) -> Offer {
        match self.p5.submit(protocol, payload) {
            Ok(()) => Offer::Accepted,
            Err(TxQueueFull(desc)) => {
                self.p5.buf_pool().recycle_vec(desc.payload);
                Offer::Rejected
            }
        }
    }

    pub fn run(&mut self, cycles: u64) {
        self.p5.run(cycles);
    }

    pub fn take_received(&mut self) -> Vec<ReceivedFrame> {
        self.p5.take_received()
    }

    /// Register-bus view of this end's OAM block.
    pub fn oam(&self) -> Oam {
        Oam::new(self.oam.clone())
    }

    /// The health-relevant OAM counters of this end (its own transmit
    /// and receive sides — the duplex peer has its own).
    pub fn health_counters(&self) -> HealthCounters {
        let bus = self.oam();
        let rx_errors = u64::from(
            bus.read(regs::FCS_ERRORS)
                + bus.read(regs::ABORTS)
                + bus.read(regs::RUNTS)
                + bus.read(regs::GIANTS)
                + bus.read(regs::HEADER_ERRORS)
                + bus.read(regs::ADDR_MISMATCHES),
        );
        HealthCounters {
            rx_frames: u64::from(bus.read(regs::RX_FRAMES)),
            rx_errors,
            tx_frames: u64::from(bus.read(regs::TX_FRAMES)),
            tx_rejects: u64::from(bus.read(regs::TX_REJECTS)),
        }
    }
}

/// One direction of the duplex wire: optional STM-N path, optional
/// structural fault plan.
struct Ferry {
    path: Option<OcPath>,
    plan: Option<FaultPlan>,
    scratch: Vec<u8>,
}

impl Ferry {
    fn carry(&mut self, wire: Vec<u8>, dst: &mut P5) {
        let bytes = match &mut self.path {
            Some(path) => {
                if !wire.is_empty() {
                    path.send(&wire);
                }
                let k = path.frames_to_drain();
                if k > 0 {
                    // +2: delineation hunts across a frame boundary.
                    path.run_frames(k + 2);
                }
                path.recv()
            }
            None => wire,
        };
        if bytes.is_empty() {
            return;
        }
        match &mut self.plan {
            None => dst.put_wire_in(&bytes),
            Some(plan) => {
                if plan.lose_transfer() {
                    return;
                }
                self.scratch.clear();
                plan.corrupt_into(&bytes, &mut self.scratch);
                dst.put_wire_in(&self.scratch);
            }
        }
    }

    fn stats(&self) -> FaultStats {
        let mut s = self.plan.as_ref().map(|p| p.stats()).unwrap_or_default();
        if let Some(path) = &self.path {
            s.absorb(&path.channel().plan().stats());
        }
        s
    }
}

/// Two devices and the (optionally impaired) wire between them.  The
/// ends are public so control-plane drivers can pump their own
/// endpoints; [`DuplexLink::exchange`] moves the wire both ways.
pub struct DuplexLink {
    pub a: LinkEnd,
    pub b: LinkEnd,
    ab: Ferry,
    ba: Ferry,
}

impl DuplexLink {
    /// Ferry pending wire bytes a → b and b → a, applying each
    /// direction's fault plan.
    pub fn exchange(&mut self) {
        let wire = self.a.p5.take_wire_out();
        self.ab.carry(wire, &mut self.b.p5);
        let wire = self.b.p5.take_wire_out();
        self.ba.carry(wire, &mut self.a.p5);
    }

    /// Impair both directions with forks of `plan` (deterministic per
    /// direction).  Replaces any existing plan — `clear_fault` heals the
    /// link mid-run, the "outage then recovery" scenario.
    pub fn set_fault(&mut self, plan: &FaultPlan) {
        self.ab.plan = Some(plan.fork(2));
        self.ba.plan = Some(plan.fork(3));
    }

    pub fn clear_fault(&mut self) {
        self.ab.plan = None;
        self.ba.plan = None;
    }

    /// Injected-fault counters summed over both directions (ferry plans
    /// plus the per-direction channel plans).
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.ab.stats();
        s.absorb(&self.ba.stats());
        s
    }

    /// The duplex stage topology: both devices and both wire ferries as
    /// a ring (`a → wire → b → wire → a`), for link-level static
    /// analysis.  The ferries hold whole transfers, so analysis treats
    /// them as buffered stages.
    pub fn topology(&self) -> p5_stream::Topology {
        let mut t = p5_stream::Topology::new("duplex link");
        let a = t.push_stage("device a");
        let ab = t.push_stage("wire a->b");
        let b = t.push_stage("device b");
        let ba = t.push_stage("wire b->a");
        t.connect(a, ab);
        t.connect(ab, b);
        t.connect(b, ba);
        t.connect(ba, a);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_remote_negotiates_over_a_pipe_pair() {
        use p5_xport::PipeTransport;
        let (ta, tb) = PipeTransport::pair();
        let a = LinkBuilder::new()
            .profile(NegotiationProfile::new().magic(0xA11CE).ip([10, 0, 0, 1]))
            .transport(ta)
            .build_remote()
            .unwrap();
        let b = LinkBuilder::new()
            .profile(NegotiationProfile::new().magic(0xB0B).ip([10, 0, 0, 2]))
            .transport(tb)
            .build_remote()
            .unwrap();
        assert!(a.await_network_up(std::time::Duration::from_secs(10)));
        assert!(b.await_network_up(std::time::Duration::from_secs(10)));
        let payload = vec![0x42u8; 128];
        assert!(a.offer(0x0021, &payload).is_admitted());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut got = Vec::new();
        while got.is_empty() && std::time::Instant::now() < deadline {
            got = b.take_deliveries();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, vec![(0x0021, payload)]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn build_remote_rejects_incoherent_topologies() {
        let (ta, _tb) = p5_xport::PipeTransport::pair();
        assert!(matches!(
            LinkBuilder::new().build_remote().err(),
            Some(LinkError::MissingTransport)
        ));
        assert!(matches!(
            LinkBuilder::new()
                .sonet(StmLevel::Stm1)
                .transport(ta)
                .build_remote()
                .err(),
            Some(LinkError::Unsupported(_))
        ));
    }

    #[test]
    fn simplex_clean_link_round_trips() {
        let mut link = LinkBuilder::new().build().unwrap();
        link.send(0x0021, &[0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x42]);
        link.run(2_000).unwrap();
        let got = link.deliveries();
        assert_eq!(
            got,
            vec![(0x0021, vec![0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x42])]
        );
        assert_eq!(link.rx_errors(), 0);
        assert_eq!(link.rx_oam().read(regs::RX_FRAMES), 1);
        assert_eq!(link.tx_oam().read(regs::TX_FRAMES), 1);
        let hc = link.health_counters();
        assert_eq!(
            hc,
            HealthCounters {
                rx_frames: 1,
                rx_errors: 0,
                tx_frames: 1,
                tx_rejects: 0,
            }
        );
    }

    #[test]
    fn sonet_link_uses_the_canonical_recipe() {
        let mut link = LinkBuilder::new()
            .width(DatapathWidth::W32)
            .sonet(StmLevel::Stm4)
            .build()
            .unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 50 + i as usize]).collect();
        for p in &payloads {
            link.send(0x0021, p);
        }
        link.run(5_000).unwrap();
        let got: Vec<Vec<u8>> = link.deliveries().into_iter().map(|(_, p)| p).collect();
        assert_eq!(got, payloads);
        assert_eq!(link.rx_errors(), 0);
    }

    #[test]
    fn faulted_link_counts_every_drop() {
        let plan = FaultSpec::clean().ber(5e-5).compile(11).unwrap();
        let mut link = LinkBuilder::new()
            .sonet(StmLevel::Stm4)
            .fault(plan)
            .build()
            .unwrap();
        let sent = 60u64;
        for i in 0..sent {
            link.send(0x0021, &[i as u8; 120]);
        }
        link.run(10_000).unwrap();
        let delivered = link.deliveries();
        let errors = link.rx_errors();
        assert!(errors > 0, "5e-5 BER over the line must break frames");
        // Corrupted idle fill adds spurious runts, so the error count can
        // exceed the shortfall — the contract is one-sided: nothing
        // vanishes unaccounted, and nothing corrupt is delivered.
        assert!(delivered.len() as u64 + errors >= sent - 4);
        for (_, p) in &delivered {
            assert!(p.iter().all(|&b| b == p[0]), "silent corruption");
        }
    }

    #[test]
    fn structural_faults_get_a_stage() {
        // Most line octets are flag fill (slipping a flag is harmless),
        // so the rate is set to hit payload bytes a handful of times.
        let plan = FaultSpec::clean().slip(2e-3).compile(3).unwrap();
        let mut link = LinkBuilder::new()
            .sonet(StmLevel::Stm4)
            .fault(plan)
            .build()
            .unwrap();
        for i in 0..40u8 {
            link.send(0x0021, &[i; 100]);
        }
        link.run(10_000).unwrap();
        let snaps = link.snapshots();
        let fault = snaps
            .iter()
            .find(|s| s.scope == "fault")
            .expect("fault stage present");
        assert!(fault.get("fault_slip").unwrap() > 0, "slips injected");
        assert!(link.rx_errors() > 0, "slips break frames");
    }

    #[test]
    fn duplex_link_carries_traffic_both_ways() {
        let mut link = LinkBuilder::new().build_duplex().unwrap();
        link.a.submit(0x0021, vec![1, 2, 3]).unwrap();
        link.b.submit(0x0021, vec![9, 8, 7]).unwrap();
        for _ in 0..50 {
            link.a.run(64);
            link.b.run(64);
            link.exchange();
        }
        let at_b = link.b.take_received();
        let at_a = link.a.take_received();
        assert_eq!(at_b.len(), 1);
        assert_eq!(at_b[0].payload, vec![1, 2, 3]);
        assert_eq!(at_a[0].payload, vec![9, 8, 7]);
    }

    #[test]
    fn duplex_transfer_loss_is_counted_and_healable() {
        let plan = FaultSpec::clean().transfer_loss(1.0).compile(4).unwrap();
        let mut link = LinkBuilder::new().fault(plan).build_duplex().unwrap();
        link.a.submit(0x0021, vec![5; 10]).unwrap();
        for _ in 0..20 {
            link.a.run(64);
            link.b.run(64);
            link.exchange();
        }
        assert!(link.b.take_received().is_empty(), "all transfers lost");
        assert!(link.fault_stats().transfers_lost > 0);
        link.clear_fault();
        link.a.submit(0x0021, vec![6; 10]).unwrap();
        for _ in 0..20 {
            link.a.run(64);
            link.b.run(64);
            link.exchange();
        }
        let got = link.b.take_received();
        assert_eq!(got.len(), 1, "healed link delivers");
        assert_eq!(got[0].payload, vec![6; 10]);
    }
}
