//! Tests for the path-layer supervision added to the SONET substrate:
//! B3 path parity, G1 REI/RDI far-end reporting, path AIS, and
//! J0/J1 trace policing.

use p5_sonet::frame::{FrameReceiver, FrameTransmitter, RxDefect, StmLevel};

fn fresh_pair() -> (FrameTransmitter, FrameReceiver) {
    (
        FrameTransmitter::new(StmLevel::Stm1),
        FrameReceiver::new(StmLevel::Stm1),
    )
}

#[test]
fn b3_is_clean_on_a_clean_path() {
    let (mut tx, mut rx) = fresh_pair();
    tx.offer_payload(&vec![0x42; 4000]);
    for _ in 0..4 {
        rx.push(&tx.emit_frame());
    }
    assert_eq!(rx.stats().b3_errors, 0);
    assert_eq!(rx.stats().b1_errors, 0);
}

#[test]
fn payload_corruption_trips_b3() {
    let (mut tx, mut rx) = fresh_pair();
    rx.push(&tx.emit_frame());
    let mut f = tx.emit_frame();
    f[1200] ^= 0x01; // payload-area hit
    rx.push(&f);
    rx.push(&tx.emit_frame());
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().b3_errors, 1);
    assert!(rx.poll_defects().contains(&RxDefect::B3Error));
}

#[test]
fn soh_corruption_trips_b1_but_not_b3() {
    let (mut tx, mut rx) = fresh_pair();
    rx.push(&tx.emit_frame());
    let mut f = tx.emit_frame();
    f[StmLevel::Stm1.row_bytes() * 8 + 2] ^= 0x01; // row 8, SOH column
    rx.push(&f);
    rx.push(&tx.emit_frame());
    rx.push(&tx.emit_frame());
    assert!(rx.stats().b1_errors >= 1);
    assert_eq!(rx.stats().b3_errors, 0, "B3 covers the SPE only");
}

#[test]
fn path_ais_is_detected() {
    let (mut tx, mut rx) = fresh_pair();
    rx.push(&tx.emit_frame());
    tx.send_path_ais(3);
    for _ in 0..3 {
        rx.push(&tx.emit_frame());
    }
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().path_ais_frames, 3);
    // Recovery: pointer back to normal.
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().path_ais_frames, 3);
}

#[test]
fn rei_carries_far_end_error_counts() {
    let (mut tx, mut rx) = fresh_pair();
    tx.report_remote_errors(11); // > 8: spread over two frames
    rx.push(&tx.emit_frame());
    rx.push(&tx.emit_frame());
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().remote_errors, 11);
}

#[test]
fn rdi_signals_remote_defect() {
    let (mut tx, mut rx) = fresh_pair();
    tx.send_rdi = true;
    rx.push(&tx.emit_frame());
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().remote_defect_frames, 2);
    tx.send_rdi = false;
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().remote_defect_frames, 2);
}

#[test]
fn trace_policing_catches_misconnection() {
    // A receiver provisioned for trace 0x55 connected to a transmitter
    // sending the default traces — the classic fibre-misconnect check.
    let (mut tx, mut rx) = fresh_pair();
    rx.expected_section_trace = Some(0x55);
    rx.expected_path_trace = Some(0x66);
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().section_trace_mismatches, 1);
    assert_eq!(rx.stats().path_trace_mismatches, 1);
    // Re-provision the transmitter: mismatches stop.
    tx.section_trace = 0x55;
    tx.path_trace = 0x66;
    rx.push(&tx.emit_frame());
    assert_eq!(rx.stats().section_trace_mismatches, 1);
    assert_eq!(rx.stats().path_trace_mismatches, 1);
}

#[test]
fn rei_rdi_do_not_disturb_payload() {
    let (mut tx, mut rx) = fresh_pair();
    tx.send_rdi = true;
    tx.report_remote_errors(3);
    let data: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
    tx.offer_payload(&data);
    let mut got = Vec::new();
    for _ in 0..3 {
        got.extend(rx.push(&tx.emit_frame()));
    }
    assert_eq!(&got[..data.len()], &data[..]);
}
