//! Property tests for the SONET substrate: transport transparency for
//! arbitrary payloads, at every supported level, from any stream offset.

use p5_sonet::{BitErrorChannel, ByteLink, FrameReceiver, FrameTransmitter, OcPath, StmLevel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn payload_is_transparent(
        data in proptest::collection::vec(any::<u8>(), 1..6000),
        scramble in any::<bool>(),
    ) {
        let mut path = OcPath::new(StmLevel::Stm1, BitErrorChannel::clean());
        if !scramble {
            path = path.without_payload_scrambling();
        }
        path.send(&data);
        path.run_frames(path.frames_to_drain() + 1);
        let got = path.recv();
        prop_assert!(got.len() >= data.len());
        prop_assert_eq!(&got[..data.len()], &data[..]);
        prop_assert_eq!(path.section_stats().b1_errors, 0);
        prop_assert_eq!(path.section_stats().b3_errors, 0);
    }

    #[test]
    fn receiver_locks_from_any_offset(
        offset in 0usize..4860,
        seed in any::<u8>(),
    ) {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        tx.offer_payload(&vec![seed; 2000]);
        let mut line = Vec::new();
        for _ in 0..4 {
            line.extend(tx.emit_frame());
        }
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        rx.push(&line[offset.min(line.len() - 1)..]);
        // From any starting offset within the first two frames, at least
        // one later frame must be recovered.
        prop_assert!(rx.stats().frames_ok >= 1, "offset {offset}");
    }

    #[test]
    fn levels_preserve_payload(level_sel in 0u8..3, data in proptest::collection::vec(any::<u8>(), 1..2000)) {
        let level = match level_sel {
            0 => StmLevel::Stm1,
            1 => StmLevel::Stm4,
            _ => StmLevel::Stm16,
        };
        let mut path = OcPath::new(level, BitErrorChannel::clean());
        path.send(&data);
        path.run_frames(path.frames_to_drain() + 1);
        let got = path.recv();
        prop_assert_eq!(&got[..data.len()], &data[..]);
    }
}
