//! Channelized SDH: N independent STM-1 tributary paths carried inside
//! one STM-N envelope over a *single* shared bit-error channel — the
//! carrier-side view of [`crate::mux`].  Where [`crate::OcPath`] models
//! one point-to-point line, a [`TributaryGroup`] models the line card's
//! reality: four OC-3s inside an OC-12, or sixteen inside an OC-48,
//! each tributary terminating its own P⁵ link while sharing the fibre.
//!
//! Because the envelope is byte-interleaved (G.707 columns), an error
//! burst on the line smears across *adjacent tributaries* rather than
//! running down one payload — the structural reason channelized SDH
//! degrades gracefully under burst noise, and a property the tests pin.

use crate::channel::BitErrorChannel;
use crate::frame::{FrameReceiver, FrameTransmitter, SectionStats, StmLevel};
use crate::mux::{deinterleave, interleave};
use crate::scramble::PayloadScrambler;
use p5_stream::{Observable, Snapshot};

/// One tributary's transmission-convergence state: the same
/// scramble → frame → delineate → descramble chain as an
/// [`crate::OcPath`], minus the channel (which the group owns).
struct Tributary {
    tx_scrambler: PayloadScrambler,
    rx_scrambler: PayloadScrambler,
    transmitter: FrameTransmitter,
    receiver: FrameReceiver,
    rx_out: Vec<u8>,
}

impl Tributary {
    fn new() -> Self {
        Tributary {
            tx_scrambler: PayloadScrambler::new(),
            rx_scrambler: PayloadScrambler::new(),
            transmitter: FrameTransmitter::new(StmLevel::Stm1),
            receiver: FrameReceiver::new(StmLevel::Stm1),
            rx_out: Vec::new(),
        }
    }
}

/// N STM-1 tributary paths multiplexed onto one STM-N envelope
/// (N = 4 or 16) over a shared [`BitErrorChannel`].  Time is
/// frame-quantised exactly like [`crate::OcPath`]: one
/// [`TributaryGroup::run_frames`] step moves 125 µs of line time for
/// *every* tributary at once — that simultaneity is what makes a
/// channel group a single schedulable unit in a multi-link runtime.
pub struct TributaryGroup {
    envelope: StmLevel,
    tribs: Vec<Tributary>,
    channel: BitErrorChannel,
}

impl TributaryGroup {
    /// Build a group carrying `envelope.n()` tributaries.
    ///
    /// # Panics
    ///
    /// Panics if `envelope` is [`StmLevel::Stm1`] — a single STM-1 has
    /// nothing to multiplex; use [`crate::OcPath`] for that.
    pub fn new(envelope: StmLevel, channel: BitErrorChannel) -> Self {
        assert!(
            envelope.n() > 1,
            "channelized carriage needs an STM-4 or STM-16 envelope"
        );
        TributaryGroup {
            envelope,
            tribs: (0..envelope.n()).map(|_| Tributary::new()).collect(),
            channel,
        }
    }

    pub fn envelope(&self) -> StmLevel {
        self.envelope
    }

    /// Number of STM-1 tributaries in the envelope (4 or 16).
    pub fn tributaries(&self) -> usize {
        self.tribs.len()
    }

    /// Per-tributary payload capacity per 125 µs frame, in bytes.
    pub fn payload_per_frame(&self) -> usize {
        StmLevel::Stm1.payload_per_frame()
    }

    pub fn channel(&self) -> &BitErrorChannel {
        &self.channel
    }

    /// Queue transmit bytes on tributary `trib`.
    pub fn send(&mut self, trib: usize, bytes: &[u8]) {
        self.tribs[trib].transmitter.offer_payload(bytes);
    }

    /// Collect bytes tributary `trib` has delivered.
    pub fn recv(&mut self, trib: usize) -> Vec<u8> {
        std::mem::take(&mut self.tribs[trib].rx_out)
    }

    /// Delineation/parity statistics for tributary `trib`.
    pub fn section_stats(&self, trib: usize) -> &SectionStats {
        self.tribs[trib].receiver.stats()
    }

    /// Advance the line by `k` frames (k × 125 µs).  Each step emits
    /// one scrambled STM-1 frame per tributary, column-interleaves them
    /// into the STM-N envelope, crosses the shared channel once, and
    /// de-interleaves back into per-tributary receivers.
    pub fn run_frames(&mut self, k: usize) {
        let n = self.tribs.len();
        for _ in 0..k {
            let frames: Vec<Vec<u8>> = self
                .tribs
                .iter_mut()
                .map(|t| {
                    t.transmitter
                        .emit_frame_scrambled(Some(&mut t.tx_scrambler))
                })
                .collect();
            let mut line = interleave(&frames);
            self.channel.transmit(&mut line);
            for (t, trib_frame) in self.tribs.iter_mut().zip(deinterleave(&line, n)) {
                let mut payload = t.receiver.push(&trib_frame);
                t.rx_scrambler.descramble(&mut payload);
                t.rx_out.extend(payload);
            }
        }
    }

    /// Frames needed to drain the worst tributary's transmit backlog.
    pub fn frames_to_drain(&self) -> usize {
        self.tribs
            .iter()
            .map(|t| {
                t.transmitter
                    .backlog()
                    .div_ceil(StmLevel::Stm1.payload_per_frame())
            })
            .max()
            .unwrap_or(0)
    }
}

impl Observable for TributaryGroup {
    /// One merged reading across all tributaries plus the shared
    /// channel (exact aggregation via [`Snapshot::merge`]).
    fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new(format!("stm{}-group", self.envelope.n()))
            .counter("tributaries", self.tribs.len() as u64);
        for t in &self.tribs {
            snap.merge(&t.receiver.stats().snapshot());
        }
        snap.merge(&self.channel.stats().snapshot());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fault::FaultSpec;

    #[test]
    fn clean_group_delivers_every_tributary_independently() {
        let mut g = TributaryGroup::new(StmLevel::Stm4, BitErrorChannel::clean());
        assert_eq!(g.tributaries(), 4);
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0x60 + i; 3000]).collect();
        for (i, d) in data.iter().enumerate() {
            g.send(i, d);
        }
        g.run_frames(g.frames_to_drain() + 2);
        for (i, d) in data.iter().enumerate() {
            let got = g.recv(i);
            assert_eq!(&got[..d.len()], &d[..], "tributary {i}");
            assert_eq!(g.section_stats(i).b1_errors, 0);
        }
    }

    #[test]
    fn stm16_envelope_carries_sixteen() {
        let mut g = TributaryGroup::new(StmLevel::Stm16, BitErrorChannel::clean());
        assert_eq!(g.tributaries(), 16);
        g.send(15, b"last tributary");
        g.run_frames(2);
        assert_eq!(&g.recv(15)[..14], b"last tributary");
        // The other fifteen stay clean — no crosstalk from trib 15.
        for i in 0..15 {
            assert_eq!(g.section_stats(i).b1_errors, 0, "tributary {i}");
        }
    }

    #[test]
    fn envelope_burst_smears_across_tributaries() {
        // A long burst on the shared line hits *interleaved columns*,
        // so with a burst much longer than the tributary count every
        // tributary sees parity errors — the channelized signature.
        let spec = FaultSpec::clean().burst(4e-4, 0.02, 0.5);
        let plan = spec.compile(11).expect("valid spec");
        let mut g = TributaryGroup::new(StmLevel::Stm4, BitErrorChannel::from_plan(plan));
        for i in 0..4 {
            g.send(i, &vec![0x55u8; 20_000]);
        }
        g.run_frames(g.frames_to_drain() + 2);
        let hit = (0..4)
            .filter(|&i| {
                let s = g.section_stats(i);
                s.b1_errors + s.b2_errors > 0
            })
            .count();
        assert!(hit >= 2, "burst stayed on {hit} tributary(s)");
    }

    #[test]
    fn group_matches_independent_stm1_paths_on_clean_line() {
        // On a clean channel the group is payload-identical to four
        // independent OC-3 paths — multiplexing is transparent.
        use crate::path::{ByteLink, OcPath};
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0xA0 | i; 5000]).collect();
        let mut g = TributaryGroup::new(StmLevel::Stm4, BitErrorChannel::clean());
        let mut paths: Vec<OcPath> = (0..4)
            .map(|_| OcPath::new(StmLevel::Stm1, BitErrorChannel::clean()))
            .collect();
        for (i, d) in data.iter().enumerate() {
            g.send(i, d);
            paths[i].send(d);
        }
        let k = g.frames_to_drain() + 2;
        g.run_frames(k);
        for (i, p) in paths.iter_mut().enumerate() {
            p.run_frames(k);
            assert_eq!(g.recv(i), p.recv(), "tributary {i}");
        }
    }

    #[test]
    fn snapshot_merges_tributaries() {
        let mut g = TributaryGroup::new(StmLevel::Stm4, BitErrorChannel::clean());
        g.send(0, b"x");
        g.run_frames(1);
        let snap = g.snapshot();
        assert_eq!(snap.get("tributaries"), Some(4));
        assert_eq!(snap.scope, "stm4-group");
    }

    #[test]
    #[should_panic(expected = "STM-4 or STM-16")]
    fn rejects_stm1_envelope() {
        TributaryGroup::new(StmLevel::Stm1, BitErrorChannel::clean());
    }
}
