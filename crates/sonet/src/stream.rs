//! [`StreamStage`] adapters for the PHY: the OC path and the bit-error
//! channel as composable stages, so a whole link —
//! `tx → sonet path → rx` — is one `Stack`.
//!
//! These stages carry *untagged* wire octets: below the HDLC layer there
//! are no frame boundaries, only a continuous byte stream (plus 125 µs
//! frame quantisation inside [`OcPathStage`]).

use crate::channel::BitErrorChannel;
use crate::path::{ByteLink, OcPath};
use p5_stream::{Observable, Poll, Snapshot, StageStats, StreamStage, WireBuf, WordStream};

/// A full OC-3N path (scramble → STM-N map → channel → delineate →
/// descramble) as a stage.  Each `drain` call advances the line by
/// `frames_per_step` × 125 µs.
pub struct OcPathStage {
    path: OcPath,
    frames_per_step: usize,
    stats: StageStats,
}

impl OcPathStage {
    pub fn new(path: OcPath) -> Self {
        Self::with_frames_per_step(path, 1)
    }

    /// `frames_per_step` = STM frames emitted per `drain` call (one
    /// `Stack` step): the stage's time quantum.
    pub fn with_frames_per_step(path: OcPath, frames_per_step: usize) -> Self {
        OcPathStage {
            path,
            frames_per_step: frames_per_step.max(1),
            stats: StageStats::default(),
        }
    }

    pub fn path(&self) -> &OcPath {
        &self.path
    }

    pub fn path_mut(&mut self) -> &mut OcPath {
        &mut self.path
    }
}

impl WordStream for OcPathStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let n = input.len();
        if n == 0 {
            return Poll::Ready(0);
        }
        self.path.send(input.as_slice());
        input.consume(n);
        self.stats.words_in += 1;
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        // Line time only advances while there is payload queued (plus
        // the flush in `finish`): the real line never stops, but
        // simulating idle 125 µs frames forever would keep the
        // downstream buffer non-empty and a Stack could never go idle.
        if self.path.frames_to_drain() > 0 {
            self.path.run_frames(self.frames_per_step);
            self.stats.cycles += self.frames_per_step as u64;
        }
        // Collect regardless: `finish` runs frames without draining.
        let delivered = self.path.recv();
        if delivered.is_empty() {
            self.stats.bubble_cycles += 1;
            return Poll::Ready(0);
        }
        output.push_slice(&delivered);
        self.stats.words_out += 1;
        self.stats.bytes_out += delivered.len() as u64;
        Poll::Ready(delivered.len())
    }
}

impl Observable for OcPathStage {
    /// Stage flow counters folded together with the section/path overhead
    /// counters and the underlying channel's impairment counters.
    fn snapshot(&self) -> Snapshot {
        let mut s = StreamStage::stats(self).snapshot("oc-path");
        s.absorb(&self.path.section_stats().snapshot());
        s.absorb(&self.path.channel().stats().snapshot());
        s
    }
}

impl StreamStage for OcPathStage {
    fn name(&self) -> &'static str {
        "oc-path"
    }

    fn is_idle(&self) -> bool {
        self.path.frames_to_drain() == 0
    }

    fn finish(&mut self) {
        // Flush the transmit backlog plus two frames of pipeline slack
        // (delineation hunts across a frame boundary).
        let k = self.path.frames_to_drain() + 2;
        self.path.run_frames(k);
        self.stats.cycles += k as u64;
    }

    fn stats(&self) -> StageStats {
        let mut s = self.stats;
        s.note_occupancy(self.path.frames_to_drain());
        s
    }
}

/// A bare bit-error channel as a stage (no SONET framing): bytes pass
/// through with errors injected in place.  Useful for stressing the HDLC
/// layer without the full path.
pub struct ChannelStage {
    channel: BitErrorChannel,
    scratch: Vec<u8>,
    stats: StageStats,
}

impl ChannelStage {
    pub fn new(channel: BitErrorChannel) -> Self {
        ChannelStage {
            channel,
            scratch: Vec::new(),
            stats: StageStats::default(),
        }
    }

    pub fn channel(&self) -> &BitErrorChannel {
        &self.channel
    }
}

impl WordStream for ChannelStage {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let n = input.len();
        if n == 0 {
            return Poll::Ready(0);
        }
        self.scratch.extend_from_slice(input.as_slice());
        input.consume(n);
        let start = self.scratch.len() - n;
        self.channel.transmit(&mut self.scratch[start..]);
        self.stats.words_in += 1;
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        if self.scratch.is_empty() {
            return Poll::Ready(0);
        }
        let n = self.scratch.len();
        output.push_slice(&self.scratch);
        self.scratch.clear();
        self.stats.words_out += 1;
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for ChannelStage {
    fn snapshot(&self) -> Snapshot {
        let mut s = self.stats.snapshot("bit-error-channel");
        s.absorb(&self.channel.stats().snapshot());
        s
    }
}

impl StreamStage for ChannelStage {
    fn name(&self) -> &'static str {
        "bit-error-channel"
    }

    fn is_idle(&self) -> bool {
        self.scratch.is_empty()
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StmLevel;
    use p5_stream::stack;

    #[test]
    fn clean_path_stage_delivers_bytes_in_order() {
        let path = OcPath::new(StmLevel::Stm1, BitErrorChannel::clean());
        let mut s = stack![OcPathStage::with_frames_per_step(path, 2)];
        let data: Vec<u8> = (0..=255u8).cycle().take(4000).collect();
        s.input().push_slice(&data);
        assert!(s.run_until_idle(64));
        s.finish();
        let got = s.output().take_vec();
        assert!(got.len() >= data.len(), "idle fill pads the stream");
        // The path emits flag idle fill before the payload is offered
        // (sink→source stepping drains the line first); payload follows.
        let start = got
            .iter()
            .position(|&b| b != 0x7E)
            .expect("payload present");
        assert_eq!(&got[start..start + data.len()], &data[..]);
    }

    #[test]
    fn channel_stage_clean_is_transparent() {
        let mut c = ChannelStage::new(BitErrorChannel::clean());
        let mut input = WireBuf::new();
        input.push_slice(b"through the channel");
        assert_eq!(c.offer(&mut input), Poll::Ready(19));
        let mut out = WireBuf::new();
        assert_eq!(c.drain(&mut out), Poll::Ready(19));
        assert_eq!(out.as_slice(), b"through the channel");
        assert!(c.is_idle());
    }

    #[test]
    fn noisy_channel_stage_flips_bits() {
        let mut c = ChannelStage::new(BitErrorChannel::new(1e-2, 1, 7));
        let mut input = WireBuf::new();
        input.push_slice(&vec![0u8; 10_000]);
        c.offer(&mut input);
        let mut out = WireBuf::new();
        c.drain(&mut out);
        assert!(out.as_slice().iter().any(|&b| b != 0), "errors injected");
        assert!(c.channel().stats().bits_flipped > 0);
    }
}
