//! The byte-pipe abstraction the P⁵ plugs into ("a simplified physical
//! layer interface to interlink to the most common optical transmission
//! systems"), and a full OC path assembling framer → channel → deframer.

use crate::channel::BitErrorChannel;
use crate::frame::{FrameReceiver, FrameTransmitter, SectionStats, StmLevel};
use crate::scramble::PayloadScrambler;

/// A byte-oriented duplex-capable link endpoint: the P⁵'s PHY interface.
pub trait ByteLink {
    /// Offer transmit bytes to the link.
    fn send(&mut self, bytes: &[u8]);
    /// Collect bytes the link has delivered.
    fn recv(&mut self) -> Vec<u8>;
}

/// A trivial lossless loopback link (tests, golden-model comparisons).
#[derive(Debug, Default)]
pub struct LoopbackLink {
    buf: Vec<u8>,
}

impl ByteLink for LoopbackLink {
    fn send(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn recv(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// One direction of an OC-3N path: payload bytes are x⁴³+1 scrambled
/// (RFC 2615), mapped into STM-N frames, carried over a bit-error
/// channel, delineated, and descrambled.
///
/// Time is frame-quantised: [`OcPath::run_frames`] moves `k` × 125 µs of
/// line time.
pub struct OcPath {
    level: StmLevel,
    tx_scrambler: PayloadScrambler,
    rx_scrambler: PayloadScrambler,
    transmitter: FrameTransmitter,
    channel: BitErrorChannel,
    receiver: FrameReceiver,
    rx_out: Vec<u8>,
    /// x⁴³+1 scrambling enabled (RFC 2615 mandates it; RFC 1619 links
    /// ran without it).
    scramble_payload: bool,
}

impl OcPath {
    pub fn new(level: StmLevel, channel: BitErrorChannel) -> Self {
        Self {
            level,
            tx_scrambler: PayloadScrambler::new(),
            rx_scrambler: PayloadScrambler::new(),
            transmitter: FrameTransmitter::new(level),
            channel,
            receiver: FrameReceiver::new(level),
            rx_out: Vec::new(),
            scramble_payload: true,
        }
    }

    /// Disable RFC 2615 payload scrambling (RFC 1619 mode).
    pub fn without_payload_scrambling(mut self) -> Self {
        self.scramble_payload = false;
        self
    }

    pub fn level(&self) -> StmLevel {
        self.level
    }

    pub fn section_stats(&self) -> &SectionStats {
        self.receiver.stats()
    }

    pub fn channel(&self) -> &BitErrorChannel {
        &self.channel
    }

    pub fn transmitter(&self) -> &FrameTransmitter {
        &self.transmitter
    }

    /// Advance the line by `k` frames (k × 125 µs), carrying queued
    /// payload across the channel.
    pub fn run_frames(&mut self, k: usize) {
        for _ in 0..k {
            let x43 = if self.scramble_payload {
                Some(&mut self.tx_scrambler)
            } else {
                None
            };
            let mut line = self.transmitter.emit_frame_scrambled(x43);
            self.channel.transmit(&mut line);
            let mut payload = self.receiver.push(&line);
            if self.scramble_payload {
                self.rx_scrambler.descramble(&mut payload);
            }
            self.rx_out.extend(payload);
        }
    }

    /// Frames needed to drain the current transmit backlog.
    pub fn frames_to_drain(&self) -> usize {
        self.transmitter
            .backlog()
            .div_ceil(self.level.payload_per_frame())
    }
}

impl ByteLink for OcPath {
    fn send(&mut self, bytes: &[u8]) {
        // Scrambling happens at frame-fill time (continuously over data
        // and idle fill), not here.
        self.transmitter.offer_payload(bytes);
    }

    fn recv(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.rx_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_link_round_trips() {
        let mut l = LoopbackLink::default();
        l.send(b"abc");
        l.send(b"def");
        assert_eq!(l.recv(), b"abcdef");
        assert!(l.recv().is_empty());
    }

    #[test]
    fn clean_path_delivers_payload_in_order() {
        let mut path = OcPath::new(StmLevel::Stm1, BitErrorChannel::clean());
        let data: Vec<u8> = (0..255u8).cycle().take(5000).collect();
        path.send(&data);
        path.run_frames(4);
        let got = path.recv();
        assert!(got.len() >= data.len());
        assert_eq!(&got[..data.len()], &data[..]);
        assert_eq!(path.section_stats().b1_errors, 0);
    }

    #[test]
    fn rfc1619_mode_skips_payload_scrambling() {
        let mut path =
            OcPath::new(StmLevel::Stm1, BitErrorChannel::clean()).without_payload_scrambling();
        let data = vec![0x42u8; 1000];
        path.send(&data);
        path.run_frames(2);
        let got = path.recv();
        assert_eq!(&got[..1000], &data[..]);
    }

    #[test]
    fn noisy_path_reports_parity_errors() {
        let mut path = OcPath::new(StmLevel::Stm1, BitErrorChannel::new(1e-4, 1, 3));
        path.send(&vec![0u8; 20_000]);
        path.run_frames(12);
        let stats = path.section_stats();
        assert!(stats.b1_errors + stats.b2_errors > 0, "stats: {stats:?}");
    }

    #[test]
    fn frames_to_drain_matches_capacity() {
        let mut path = OcPath::new(StmLevel::Stm1, BitErrorChannel::clean());
        let cap = StmLevel::Stm1.payload_per_frame();
        path.send(&vec![1u8; cap * 3 + 1]);
        assert_eq!(path.frames_to_drain(), 4);
        path.run_frames(4);
        assert_eq!(path.frames_to_drain(), 0);
    }
}
