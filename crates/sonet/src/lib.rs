//! SDH/SONET substrate — the simulated physical layer under the P⁵.
//!
//! The paper targets "Gigabit IP over SDH/SONET": the P⁵ sits between a
//! shared packet memory and an optical SDH/SONET PHY, 625 Mbps for the
//! 8-bit datapath (≈ STM-4/OC-12) and 2.5 Gbps for the 32-bit one
//! (STM-16/OC-48).  We cannot attach real fibre, so this crate implements
//! the transmission-convergence layer in software:
//!
//! * [`frame`] — STM-N frame construction and delineation: A1/A2 framing
//!   bytes, B1/B2 BIP-8 parity, J0/C2/J1/B3/G1 overhead, a fixed AU
//!   pointer, and the ITU G.707 frame-synchronous scrambler;
//! * [`scramble`] — that 1 + x⁶ + x⁷ scrambler plus the self-synchronous
//!   x⁴³ + 1 payload scrambler RFC 2615 adds for PPP payloads;
//! * [`channel`] — a configurable bit-error channel (uniform BER and
//!   bursts) between transmitter and receiver;
//! * [`path`] — a byte-pipe abstraction ([`path::OcPath`]) gluing the
//!   above into the `Phy` the P⁵ core talks to, with per-second capacity
//!   bookkeeping for throughput claims.
//!
//! Documented simplifications (see DESIGN.md §2): the AU-4 pointer is
//! fixed (no justification events), multiplex-section overhead bytes that
//! carry no information in a point-to-point PPP link (K1/K2, D bytes, E
//! bytes) are transmitted as zero, and B2 is computed over the whole frame
//! except the regenerator-section overhead rather than per-STM-1.
//!
//! ```
//! use p5_sonet::{OcPath, BitErrorChannel, ByteLink, StmLevel};
//!
//! let mut path = OcPath::new(StmLevel::Stm16, BitErrorChannel::clean());
//! path.send(b"wire bytes from the P5 transmitter");
//! path.run_frames(1);                       // one 125 us line frame
//! let delivered = path.recv();
//! assert_eq!(&delivered[..34], b"wire bytes from the P5 transmitter");
//! assert_eq!(path.section_stats().b1_errors, 0);
//! ```

pub mod channel;
pub mod channelized;
pub mod frame;
pub mod mux;
pub mod path;
pub mod scramble;
pub mod stream;

pub use channel::{BitErrorChannel, ChannelStats};
pub use channelized::TributaryGroup;
pub use frame::{FrameReceiver, FrameTransmitter, RxDefect, SectionStats, StmLevel};
pub use mux::{deinterleave, interleave};
pub use path::{ByteLink, OcPath};
pub use scramble::{FrameScrambler, PayloadScrambler};
pub use stream::{ChannelStage, OcPathStage};
