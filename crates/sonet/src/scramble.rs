//! The two scramblers of PPP over SONET/SDH.
//!
//! 1. The ITU-T G.707 **frame-synchronous** scrambler, generator
//!    1 + x⁶ + x⁷, reset to all-ones at the first payload byte of every
//!    frame.  It whitens everything except the first row of the
//!    regenerator section overhead (so A1/A2 stay visible for alignment).
//! 2. The RFC 2615 **self-synchronous** x⁴³ + 1 payload scrambler, added
//!    for PPP because a malicious payload could otherwise mimic the
//!    frame-sync scrambler and kill clock recovery.  Self-synchronous:
//!    the descrambler realigns itself after any slip within 43 bits.

/// ITU G.707 frame-synchronous scrambler (1 + x⁶ + x⁷), byte-oriented.
#[derive(Debug, Clone)]
pub struct FrameScrambler {
    state: u8, // 7-bit LFSR state
}

impl Default for FrameScrambler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameScrambler {
    pub fn new() -> Self {
        Self { state: 0x7F }
    }

    /// Reset to the all-ones preset (done at the start of every frame's
    /// scrambled region).
    pub fn reset(&mut self) {
        self.state = 0x7F;
    }

    /// Next keystream byte (MSB transmitted first).
    #[inline]
    pub fn keystream_byte(&mut self) -> u8 {
        let mut key = 0u8;
        for _ in 0..8 {
            let out = (self.state >> 6) & 1; // x^7 tap output
            key = (key << 1) | out;
            let fb = ((self.state >> 6) ^ (self.state >> 5)) & 1; // x^7 ^ x^6
            self.state = ((self.state << 1) | fb) & 0x7F;
        }
        key
    }

    /// Scramble (or descramble — XOR is an involution) a buffer in place.
    pub fn apply(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b ^= self.keystream_byte();
        }
    }
}

/// RFC 2615 self-synchronous x⁴³ + 1 scrambler.
///
/// Transmit: `out[n] = in[n] ^ out[n-43]`; receive: `out[n] = in[n] ^
/// in[n-43]`.  The 43-bit history lives in a shift register; bits are
/// processed MSB-first to match serial transmission order.
#[derive(Debug, Clone)]
pub struct PayloadScrambler {
    /// 43-bit delay line, bit 0 = oldest.
    history: u64,
}

impl Default for PayloadScrambler {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadScrambler {
    pub fn new() -> Self {
        Self { history: 0 }
    }

    /// Scramble one byte for transmission.
    #[inline]
    pub fn scramble_byte(&mut self, byte: u8) -> u8 {
        let mut out = 0u8;
        for i in (0..8).rev() {
            let in_bit = (byte >> i) & 1;
            let delayed = ((self.history >> 42) & 1) as u8;
            let out_bit = in_bit ^ delayed;
            out = (out << 1) | out_bit;
            self.history = ((self.history << 1) | out_bit as u64) & ((1u64 << 43) - 1);
        }
        out
    }

    /// Descramble one received byte.
    #[inline]
    pub fn descramble_byte(&mut self, byte: u8) -> u8 {
        let mut out = 0u8;
        for i in (0..8).rev() {
            let in_bit = (byte >> i) & 1;
            let delayed = ((self.history >> 42) & 1) as u8;
            let out_bit = in_bit ^ delayed;
            out = (out << 1) | out_bit;
            // Self-synchronous: the *received* bit enters the delay line.
            self.history = ((self.history << 1) | in_bit as u64) & ((1u64 << 43) - 1);
        }
        out
    }

    pub fn scramble(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.scramble_byte(*b);
        }
    }

    pub fn descramble(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.descramble_byte(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_scrambler_period_is_127() {
        let mut s = FrameScrambler::new();
        let first: Vec<u8> = (0..127).map(|_| s.keystream_byte()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.keystream_byte()).collect();
        assert_eq!(first, second);
        // ...and it is not shorter.
        assert_ne!(first[..63], first[64..127]);
    }

    #[test]
    fn frame_scrambler_is_involution() {
        let mut a = FrameScrambler::new();
        let mut b = FrameScrambler::new();
        let mut buf = b"hello sonet frame".to_vec();
        let orig = buf.clone();
        a.apply(&mut buf);
        assert_ne!(buf, orig);
        b.apply(&mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    fn frame_scrambler_first_key_bits_are_ones() {
        // All-ones preset means the first keystream bit run is 1111111 0...
        let mut s = FrameScrambler::new();
        assert_eq!(s.keystream_byte() & 0xFE, 0xFE);
    }

    #[test]
    fn payload_scrambler_round_trip() {
        let mut tx = PayloadScrambler::new();
        let mut rx = PayloadScrambler::new();
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut wire = data.clone();
        tx.scramble(&mut wire);
        assert_ne!(wire, data);
        let mut out = wire;
        rx.descramble(&mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn payload_descrambler_self_synchronises() {
        // Start the descrambler mid-stream with garbage history: after 43
        // bits (6 bytes) it must lock on.
        let mut tx = PayloadScrambler::new();
        let data = [0xA5u8; 64];
        let wire: Vec<u8> = data.iter().map(|&b| tx.scramble_byte(b)).collect();
        let mut rx = PayloadScrambler {
            history: 0x7FF_FFFF_FFFF,
        };
        let out: Vec<u8> = wire.iter().map(|&b| rx.descramble_byte(b)).collect();
        assert_eq!(&out[6..], &data[6..], "must resync within 43 bits");
        assert_ne!(out[0], data[0], "garbage history corrupts the first bits");
    }

    #[test]
    fn single_wire_bit_error_corrupts_exactly_two_bits() {
        // x^43+1 error propagation: one wire error hits the current bit and
        // the bit 43 later, nothing else — which is why PPP's FCS still
        // catches it.
        let mut tx = PayloadScrambler::new();
        let data = vec![0u8; 32];
        let mut wire: Vec<u8> = data.iter().map(|&b| tx.scramble_byte(b)).collect();
        wire[4] ^= 0x80; // flip one bit
        let mut rx = PayloadScrambler::new();
        let out: Vec<u8> = wire.iter().map(|&b| rx.descramble_byte(b)).collect();
        let flipped: u32 = out
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 2);
    }
}
