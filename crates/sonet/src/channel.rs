//! The transmission channel between framer and deframer: the
//! length-preserving slice of the `p5-fault` model standing in for the
//! optical section the paper's testbed would provide.
//!
//! [`BitErrorChannel`] keeps its historical `(ber, burst_len, seed)`
//! constructor as a convenience facade, but the schedule behind it is a
//! [`FaultPlan`]: [`BitErrorChannel::from_plan`] accepts any compiled
//! plan, so a SONET path can carry the same seeded impairment mix the
//! rest of the chaos harness uses.  Only the bit-level (length-
//! preserving) faults apply here — a physical section can flip payload
//! bits under the scrambler, but byte slips and fabricated flags are
//! stream-level faults injected by a `FaultStage` above the path.

use p5_fault::{FaultPlan, FaultSpec};

/// Channel impairment statistics, derived from the plan's
/// [`p5_fault::FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub bytes_carried: u64,
    pub bits_flipped: u64,
    pub bursts_injected: u64,
}

impl p5_stream::Observable for ChannelStats {
    fn snapshot(&self) -> p5_stream::Snapshot {
        p5_stream::Snapshot::new("channel")
            .counter("bytes_carried", self.bytes_carried)
            .counter("bits_flipped", self.bits_flipped)
            .counter("bursts_injected", self.bursts_injected)
    }
}

/// A byte pipe that flips bits according to a compiled [`FaultPlan`]:
/// uniform BER, optionally with Gilbert–Elliott bursts.
#[derive(Debug, Clone)]
pub struct BitErrorChannel {
    plan: FaultPlan,
}

impl BitErrorChannel {
    /// An error-free channel.
    pub fn clean() -> Self {
        Self::new(0.0, 1, 0)
    }

    /// The historical knob set: `ber` with `burst_len == 1` is a uniform
    /// error process; `burst_len > 1` becomes a Gilbert–Elliott model
    /// entered at rate `ber` with mean burst length `burst_len` bits and
    /// a 50% bad-state flip probability.
    pub fn new(ber: f64, burst_len: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must be a probability");
        assert!(burst_len >= 1);
        let spec = if burst_len > 1 {
            FaultSpec::clean().burst(ber, 1.0 / f64::from(burst_len), 0.5)
        } else {
            FaultSpec::clean().ber(ber)
        };
        Self::from_plan(spec.compile(seed).expect("facade rates are valid"))
    }

    /// Carry any compiled fault plan.  Only the length-preserving faults
    /// (BER + bursts) apply on this boundary — structural faults in the
    /// plan are simply never drawn here.
    pub fn from_plan(plan: FaultPlan) -> Self {
        BitErrorChannel { plan }
    }

    /// The impairment schedule behind the channel.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn stats(&self) -> ChannelStats {
        let fs = self.plan.stats();
        ChannelStats {
            bytes_carried: fs.bytes_processed,
            bits_flipped: fs.bit_errors,
            bursts_injected: fs.bursts,
        }
    }

    /// Carry bytes across the channel, impairing them in place.
    pub fn transmit(&mut self, buf: &mut [u8]) {
        self.plan.corrupt_in_place(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_transparent() {
        let mut ch = BitErrorChannel::clean();
        let mut buf = vec![0xA5; 1000];
        ch.transmit(&mut buf);
        assert!(buf.iter().all(|&b| b == 0xA5));
        assert_eq!(ch.stats().bits_flipped, 0);
        assert_eq!(ch.stats().bytes_carried, 1000);
    }

    #[test]
    fn ber_injects_roughly_the_right_number_of_errors() {
        let mut ch = BitErrorChannel::new(1e-3, 1, 42);
        let mut buf = vec![0u8; 100_000];
        ch.transmit(&mut buf);
        let flipped: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        assert_eq!(flipped, ch.stats().bits_flipped);
        // 800k bits at 1e-3 → ~800; allow wide tolerance.
        assert!((400..1600).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn bursts_cluster_errors() {
        let mut ch = BitErrorChannel::new(1e-4, 16, 7);
        let mut buf = vec![0u8; 100_000];
        ch.transmit(&mut buf);
        assert!(ch.stats().bursts_injected > 0);
        // With bursts, flips per burst should exceed 1 on average.
        assert!(ch.stats().bits_flipped > ch.stats().bursts_injected);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ch = BitErrorChannel::new(1e-3, 4, seed);
            let mut buf = vec![0u8; 10_000];
            ch.transmit(&mut buf);
            buf
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn channel_carries_an_arbitrary_plan() {
        let plan = FaultSpec::clean().ber(1e-2).compile(5).unwrap();
        let mut ch = BitErrorChannel::from_plan(plan);
        let mut buf = vec![0u8; 10_000];
        ch.transmit(&mut buf);
        assert!(ch.stats().bits_flipped > 0);
        assert_eq!(ch.plan().stats().bit_errors, ch.stats().bits_flipped);
    }
}
