//! The transmission channel between framer and defamer: a configurable
//! bit-error process standing in for the optical section the paper's
//! testbed would provide.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel impairment statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub bytes_carried: u64,
    pub bits_flipped: u64,
    pub bursts_injected: u64,
}

impl p5_stream::Observable for ChannelStats {
    fn snapshot(&self) -> p5_stream::Snapshot {
        p5_stream::Snapshot::new("channel")
            .counter("bytes_carried", self.bytes_carried)
            .counter("bits_flipped", self.bits_flipped)
            .counter("bursts_injected", self.bursts_injected)
    }
}

/// A byte pipe that flips bits at a configured rate, optionally in
/// bursts (a crude Gilbert–Elliott model: each error seeds a short run of
/// elevated error probability).
#[derive(Debug, Clone)]
pub struct BitErrorChannel {
    /// Probability that any given bit is flipped.
    ber: f64,
    /// Expected burst length in bits once an error occurs (1 = no bursts).
    burst_len: u32,
    /// Remaining bits of an active burst.
    burst_remaining: u32,
    rng: StdRng,
    stats: ChannelStats,
}

impl BitErrorChannel {
    /// An error-free channel.
    pub fn clean() -> Self {
        Self::new(0.0, 1, 0)
    }

    pub fn new(ber: f64, burst_len: u32, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER must be a probability");
        assert!(burst_len >= 1);
        Self {
            ber,
            burst_len,
            burst_remaining: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: ChannelStats::default(),
        }
    }

    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Carry bytes across the channel, impairing them in place.
    pub fn transmit(&mut self, buf: &mut [u8]) {
        self.stats.bytes_carried += buf.len() as u64;
        if self.ber == 0.0 {
            return;
        }
        for byte in buf.iter_mut() {
            for bit in 0..8 {
                let flip = if self.burst_remaining > 0 {
                    self.burst_remaining -= 1;
                    self.rng.gen_bool(0.5)
                } else if self.rng.gen_bool(self.ber) {
                    if self.burst_len > 1 {
                        self.burst_remaining = self.rng.gen_range(0..self.burst_len * 2);
                        self.stats.bursts_injected += 1;
                    }
                    true
                } else {
                    false
                };
                if flip {
                    *byte ^= 1 << bit;
                    self.stats.bits_flipped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_transparent() {
        let mut ch = BitErrorChannel::clean();
        let mut buf = vec![0xA5; 1000];
        ch.transmit(&mut buf);
        assert!(buf.iter().all(|&b| b == 0xA5));
        assert_eq!(ch.stats().bits_flipped, 0);
        assert_eq!(ch.stats().bytes_carried, 1000);
    }

    #[test]
    fn ber_injects_roughly_the_right_number_of_errors() {
        let mut ch = BitErrorChannel::new(1e-3, 1, 42);
        let mut buf = vec![0u8; 100_000];
        ch.transmit(&mut buf);
        let flipped: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        assert_eq!(flipped, ch.stats().bits_flipped);
        // 800k bits at 1e-3 → ~800; allow wide tolerance.
        assert!((400..1600).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn bursts_cluster_errors() {
        let mut ch = BitErrorChannel::new(1e-4, 16, 7);
        let mut buf = vec![0u8; 100_000];
        ch.transmit(&mut buf);
        assert!(ch.stats().bursts_injected > 0);
        // With bursts, flips per burst should exceed 1 on average.
        assert!(ch.stats().bits_flipped > ch.stats().bursts_injected);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ch = BitErrorChannel::new(1e-3, 4, seed);
            let mut buf = vec![0u8; 10_000];
            ch.transmit(&mut buf);
            buf
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
