//! SDH byte-interleaved multiplexing: N tributary STM-1 streams carried
//! in one STM-N line, column-interleaved per ITU G.707 — the "M" in
//! STM.  This is how a carrier aggregates four 155 Mbps P⁵ links onto
//! one 622 Mbps fibre (or sixteen onto 2.5 Gbps) without touching the
//! tributary payloads.

use crate::frame::StmLevel;

/// Byte-interleave `n` tributary frames (each one STM-1 frame of 2430
/// bytes) into a single STM-n line frame: output column `c` of row `r`
/// comes from tributary `c % n`, column `c / n`.
pub fn interleave(tributaries: &[Vec<u8>]) -> Vec<u8> {
    let n = tributaries.len();
    assert!(n == 4 || n == 16, "SDH multiplexes 4 or 16 tributaries");
    let trib_row = StmLevel::Stm1.row_bytes();
    for t in tributaries {
        assert_eq!(
            t.len(),
            StmLevel::Stm1.frame_bytes(),
            "tributaries are STM-1 frames"
        );
    }
    let out_row = trib_row * n;
    let mut out = vec![0u8; out_row * 9];
    for r in 0..9 {
        for c in 0..out_row {
            out[r * out_row + c] = tributaries[c % n][r * trib_row + c / n];
        }
    }
    out
}

/// De-interleave an STM-n line frame back into its `n` STM-1
/// tributaries.
pub fn deinterleave(line: &[u8], n: usize) -> Vec<Vec<u8>> {
    assert!(n == 4 || n == 16);
    let trib_row = StmLevel::Stm1.row_bytes();
    let out_row = trib_row * n;
    assert_eq!(line.len(), out_row * 9, "line is one STM-{n} frame");
    let mut tribs = vec![vec![0u8; trib_row * 9]; n];
    for r in 0..9 {
        for c in 0..out_row {
            tribs[c % n][r * trib_row + c / n] = line[r * out_row + c];
        }
    }
    tribs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameReceiver, FrameTransmitter, A1, A2};

    #[test]
    fn interleave_roundtrip_4() {
        let tribs: Vec<Vec<u8>> = (0..4u8)
            .map(|i| {
                (0..2430)
                    .map(|j| (j as u8).wrapping_mul(3).wrapping_add(i))
                    .collect()
            })
            .collect();
        let line = interleave(&tribs);
        assert_eq!(line.len(), StmLevel::Stm4.frame_bytes());
        assert_eq!(deinterleave(&line, 4), tribs);
    }

    #[test]
    fn interleave_roundtrip_16() {
        let tribs: Vec<Vec<u8>> = (0..16u8)
            .map(|i| (0..2430).map(|j| (j as u8) ^ i).collect())
            .collect();
        let line = interleave(&tribs);
        assert_eq!(line.len(), StmLevel::Stm16.frame_bytes());
        assert_eq!(deinterleave(&line, 16), tribs);
    }

    #[test]
    fn interleaved_framing_bytes_form_the_stmn_pattern() {
        // Four real STM-1 frames: the interleaved line starts with
        // A1 x 12, A2 x 12 — the STM-4 framing pattern.
        let tribs: Vec<Vec<u8>> = (0..4)
            .map(|_| FrameTransmitter::new(StmLevel::Stm1).emit_frame())
            .collect();
        let line = interleave(&tribs);
        assert!(line[..12].iter().all(|&b| b == A1));
        assert!(line[12..24].iter().all(|&b| b == A2));
    }

    #[test]
    fn tributary_payloads_survive_the_line() {
        // Four independent P5-class payload streams, multiplexed onto
        // one STM-4 line and recovered by four independent receivers.
        let mut txs: Vec<FrameTransmitter> = (0..4)
            .map(|_| FrameTransmitter::new(StmLevel::Stm1))
            .collect();
        let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![0x40 + i; 1000]).collect();
        for (t, d) in txs.iter_mut().zip(&data) {
            t.offer_payload(d);
        }
        let mut rxs: Vec<FrameReceiver> =
            (0..4).map(|_| FrameReceiver::new(StmLevel::Stm1)).collect();
        let mut got: Vec<Vec<u8>> = vec![Vec::new(); 4];
        for _ in 0..2 {
            let frames: Vec<Vec<u8>> = txs.iter_mut().map(|t| t.emit_frame()).collect();
            let line = interleave(&frames);
            // ... the line crosses the fibre ...
            for (i, trib) in deinterleave(&line, 4).into_iter().enumerate() {
                got[i].extend(rxs[i].push(&trib));
            }
        }
        for i in 0..4 {
            assert_eq!(&got[i][..1000], &data[i][..], "tributary {i}");
            assert_eq!(rxs[i].stats().b1_errors, 0);
        }
    }

    #[test]
    #[should_panic(expected = "4 or 16")]
    fn rejects_unsupported_widths() {
        interleave(&[vec![0; 2430], vec![0; 2430]]);
    }
}
