//! STM-N / OC-3N frame construction and delineation.
//!
//! Frame geometry: 9 rows × 270·N columns of bytes every 125 µs.  The
//! first 9·N columns are section overhead (SOH); the rest is the payload
//! area whose first column carries the path overhead (POH).  We use a
//! *locked* payload mapping (fixed AU pointer, SPE does not float) —
//! see DESIGN.md §2 for why this preserves the behaviour the P⁵ cares
//! about (a byte-synchronous octet pipe with parity supervision).
//!
//! Overhead implemented: A1/A2 framing, J0 section trace, B1 and B2
//! BIP-8 parity, H1/H2 fixed pointer, and the POH bytes J1, B3, C2
//! (0x16 = PPP with x⁴³+1 scrambling, RFC 2615), G1.

use crate::scramble::{FrameScrambler, PayloadScrambler};
use std::collections::VecDeque;

/// A1 framing byte.
pub const A1: u8 = 0xF6;
/// A2 framing byte.
pub const A2: u8 = 0x28;
/// C2 path signal label for PPP with payload scrambling (RFC 2615).
pub const C2_PPP_SCRAMBLED: u8 = 0x16;
/// HDLC flag used as inter-frame fill when the transmit queue runs dry.
pub const IDLE_FILL: u8 = 0x7E;

/// SDH multiplexing level (with the SONET name and line rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StmLevel {
    /// STM-1 / OC-3, 155.52 Mbps.
    Stm1,
    /// STM-4 / OC-12, 622.08 Mbps — the 8-bit P⁵'s 625 Mbps class link.
    Stm4,
    /// STM-16 / OC-48, 2488.32 Mbps — the 32-bit P⁵'s 2.5 Gbps link.
    Stm16,
}

impl StmLevel {
    /// The interleave factor N.
    pub const fn n(self) -> usize {
        match self {
            StmLevel::Stm1 => 1,
            StmLevel::Stm4 => 4,
            StmLevel::Stm16 => 16,
        }
    }

    /// Bytes per row.
    pub const fn row_bytes(self) -> usize {
        270 * self.n()
    }

    /// Section overhead bytes per row.
    pub const fn soh_bytes(self) -> usize {
        9 * self.n()
    }

    /// Total frame size in bytes.
    pub const fn frame_bytes(self) -> usize {
        9 * self.row_bytes()
    }

    /// Payload capacity per frame (payload area minus the POH column).
    pub const fn payload_per_frame(self) -> usize {
        9 * (self.row_bytes() - self.soh_bytes()) - 9
    }

    /// Line rate in bits per second (8000 frames/s).
    pub const fn line_rate_bps(self) -> u64 {
        (self.frame_bytes() as u64) * 8 * 8000
    }

    /// Usable payload rate in bits per second.
    pub const fn payload_rate_bps(self) -> u64 {
        (self.payload_per_frame() as u64) * 8 * 8000
    }
}

/// Even-parity BIP-8 over a byte slice.
#[inline]
pub fn bip8(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0, |acc, &b| acc ^ b)
}

/// Builds transmit frames from a payload byte queue.
#[derive(Debug, Clone)]
pub struct FrameTransmitter {
    level: StmLevel,
    queue: VecDeque<u8>,
    /// B1 value for the next frame = BIP-8 of the previous *scrambled*
    /// frame.
    next_b1: u8,
    /// B2 value = BIP-8 of the previous frame excluding the regenerator
    /// section overhead rows (rows 0–2 of the SOH columns).
    next_b2: u8,
    /// B3: path BIP-8 over the previous frame's SPE (payload area before
    /// line scrambling).
    next_b3: u8,
    frames_emitted: u64,
    payload_bytes_sent: u64,
    fill_bytes_sent: u64,
    idle_fill: u8,
    /// Section trace byte (J0) — programmable, checked by the peer.
    pub section_trace: u8,
    /// Path trace byte (J1).
    pub path_trace: u8,
    /// Remote Defect Indication to signal in G1 bit 5.
    pub send_rdi: bool,
    /// Remote Error Indication count to signal in G1 bits 1-4 (0..=8),
    /// consumed one frame at a time.
    rei_backlog: u64,
    /// Transmit path AIS (all-ones pointer + payload) for this many
    /// frames.
    ais_frames: u32,
}

impl FrameTransmitter {
    pub fn new(level: StmLevel) -> Self {
        Self {
            level,
            queue: VecDeque::new(),
            next_b1: 0,
            next_b2: 0,
            next_b3: 0,
            frames_emitted: 0,
            payload_bytes_sent: 0,
            fill_bytes_sent: 0,
            idle_fill: IDLE_FILL,
            section_trace: 0x01,
            path_trace: 0x89,
            send_rdi: false,
            rei_backlog: 0,
            ais_frames: 0,
        }
    }

    /// Queue Remote Error Indications (the count of B3 errors our
    /// receive direction saw; G1 reports them to the far end).
    pub fn report_remote_errors(&mut self, count: u64) {
        self.rei_backlog += count;
    }

    /// Transmit path AIS (alarm indication signal) for `frames` frames —
    /// what a regenerator inserts downstream of a failure.
    pub fn send_path_ais(&mut self, frames: u32) {
        self.ais_frames = frames;
    }

    pub fn level(&self) -> StmLevel {
        self.level
    }

    /// Queue payload bytes (the P⁵ transmitter's wire output).
    pub fn offer_payload(&mut self, bytes: &[u8]) {
        self.queue.extend(bytes);
    }

    /// Bytes waiting for a frame slot.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    pub fn payload_bytes_sent(&self) -> u64 {
        self.payload_bytes_sent
    }

    pub fn fill_bytes_sent(&self) -> u64 {
        self.fill_bytes_sent
    }

    /// Emit the next 125 µs frame as raw line bytes (scrambled).
    pub fn emit_frame(&mut self) -> Vec<u8> {
        self.emit_frame_scrambled(None)
    }

    /// Emit a frame, passing every payload byte (data *and* idle fill)
    /// through the self-synchronous x⁴³+1 scrambler.  RFC 2615 requires
    /// the scrambler to run continuously over the SPE payload — fill
    /// octets included — or the receiver loses scrambler alignment
    /// across idle gaps.
    pub fn emit_frame_scrambled(&mut self, mut x43: Option<&mut PayloadScrambler>) -> Vec<u8> {
        let n = self.level.n();
        let row = self.level.row_bytes();
        let soh = self.level.soh_bytes();
        let mut f = vec![0u8; self.level.frame_bytes()];

        // Row 0 SOH: A1 ×3N, A2 ×3N, J0, zero-fill.
        for i in 0..3 * n {
            f[i] = A1;
            f[3 * n + i] = A2;
        }
        f[6 * n] = self.section_trace; // J0 section trace

        // Row 1 SOH: B1.
        f[row] = self.next_b1;
        // Row 3 SOH: H1/H2 fixed pointer (concatenation-style constant),
        // H3 = 0.  Path AIS replaces the pointer with all ones.
        let ais = self.ais_frames > 0;
        if ais {
            self.ais_frames -= 1;
            f[3 * row] = 0xFF;
            f[3 * row + n] = 0xFF;
        } else {
            f[3 * row] = 0x62; // H1: NDF=0110, ss=10, pointer MSBs 0
            f[3 * row + n] = 0x0A; // H2 pointer LSBs (fixed)
        }
        // Row 4 SOH: B2.
        f[4 * row] = self.next_b2;

        // Path overhead column (first payload column), one byte per row.
        let poh_col = soh;
        f[poh_col] = self.path_trace; // J1 path trace
        f[row + poh_col] = self.next_b3; // B3 path BIP-8 (previous SPE)
        f[2 * row + poh_col] = C2_PPP_SCRAMBLED;
        // G1: REI in bits 4-7 (0..=8 errors), RDI in bit 3.
        let rei = self.rei_backlog.min(8) as u8;
        self.rei_backlog -= rei as u64;
        f[3 * row + poh_col] = (rei << 4) | (u8::from(self.send_rdi) << 3);

        // Fill the payload (everything right of the POH column).
        let mut payload_filled = 0usize;
        let mut fill_used = 0usize;
        for r in 0..9 {
            for c in (soh + 1)..row {
                let idx = r * row + c;
                let byte = match self.queue.pop_front() {
                    Some(b) => {
                        payload_filled += 1;
                        b
                    }
                    None => {
                        fill_used += 1;
                        self.idle_fill
                    }
                };
                f[idx] = match x43.as_deref_mut() {
                    Some(scr) => scr.scramble_byte(byte),
                    None => byte,
                };
            }
        }

        // B3 for the next frame: path BIP-8 over this frame's SPE
        // (everything right of the SOH columns), before line scrambling.
        let mut b3 = 0u8;
        for r in 0..9 {
            for c in soh..row {
                b3 ^= f[r * row + c];
            }
        }
        self.next_b3 = b3;

        // Scramble everything except row-0 SOH.
        let mut scr = FrameScrambler::new();
        // The scrambler runs over the whole frame but the first row of
        // SOH is transmitted unscrambled; keystream still advances.
        for (i, b) in f.iter_mut().enumerate() {
            let key = scr.keystream_byte();
            let in_row0_soh = i < soh;
            if !in_row0_soh {
                *b ^= key;
            }
        }

        // Parity for the *next* frame.
        self.next_b1 = bip8(&f);
        let mut b2 = 0u8;
        for r in 0..9 {
            for c in 0..row {
                // Exclude regenerator-section overhead (rows 0..3 of the
                // SOH columns).
                if r < 3 && c < soh {
                    continue;
                }
                b2 ^= f[r * row + c];
            }
        }
        self.next_b2 = b2;

        self.frames_emitted += 1;
        self.payload_bytes_sent += payload_filled as u64;
        self.fill_bytes_sent += fill_used as u64;
        f
    }
}

/// Receive-side defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxDefect {
    /// Out of frame: framing bytes failed while aligned.
    OutOfFrame,
    /// B1 parity mismatch (regenerator section).
    B1Error,
    /// B2 parity mismatch (multiplex section).
    B2Error,
    /// B3 parity mismatch (path).
    B3Error,
    /// Unexpected path signal label.
    PayloadLabelMismatch(u8),
    /// All-ones pointer: path alarm indication signal.
    PathAis,
    /// Far end reports a defect (G1 RDI).
    RemoteDefect,
    /// Section trace (J0) did not match the provisioned value.
    SectionTraceMismatch(u8),
    /// Path trace (J1) did not match the provisioned value.
    PathTraceMismatch(u8),
}

/// Receive-side counters (what a SONET line card reports to management).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionStats {
    pub frames_ok: u64,
    pub oof_events: u64,
    pub b1_errors: u64,
    pub b2_errors: u64,
    /// Path BIP-8 (B3) mismatches.
    pub b3_errors: u64,
    pub label_mismatches: u64,
    pub hunts: u64,
    /// Frames received with the path-AIS all-ones pointer.
    pub path_ais_frames: u64,
    /// Remote Error Indications accumulated from G1.
    pub remote_errors: u64,
    /// Frames with the RDI bit set in G1.
    pub remote_defect_frames: u64,
    /// Section (J0) trace mismatches.
    pub section_trace_mismatches: u64,
    /// Path (J1) trace mismatches.
    pub path_trace_mismatches: u64,
}

impl p5_stream::Observable for SectionStats {
    fn snapshot(&self) -> p5_stream::Snapshot {
        p5_stream::Snapshot::new("sonet-section")
            .counter("frames_ok", self.frames_ok)
            .counter("oof_events", self.oof_events)
            .counter("b1_errors", self.b1_errors)
            .counter("b2_errors", self.b2_errors)
            .counter("b3_errors", self.b3_errors)
            .counter("label_mismatches", self.label_mismatches)
            .counter("hunts", self.hunts)
            .counter("path_ais_frames", self.path_ais_frames)
            .counter("remote_errors", self.remote_errors)
            .counter("remote_defect_frames", self.remote_defect_frames)
            .counter("section_trace_mismatches", self.section_trace_mismatches)
            .counter("path_trace_mismatches", self.path_trace_mismatches)
    }
}

enum RxState {
    /// Searching the byte stream for the A1/A2 signature.
    Hunt,
    /// Aligned; collecting one frame worth of bytes.
    Aligned,
}

/// Delineates frames from a raw line-byte stream and recovers the payload.
pub struct FrameReceiver {
    level: StmLevel,
    state: RxState,
    window: VecDeque<u8>,
    buf: Vec<u8>,
    stats: SectionStats,
    expected_b1: Option<u8>,
    expected_b2: Option<u8>,
    expected_b3: Option<u8>,
    /// Provisioned trace values to police (None = don't check).
    pub expected_section_trace: Option<u8>,
    pub expected_path_trace: Option<u8>,
    defects: Vec<RxDefect>,
    /// Consecutive bad framing patterns while aligned (≥ 2 ⇒ re-hunt,
    /// mirroring the M=... out-of-frame persistency check).
    bad_framings: u32,
}

impl FrameReceiver {
    pub fn new(level: StmLevel) -> Self {
        Self {
            level,
            state: RxState::Hunt,
            window: VecDeque::new(),
            buf: Vec::with_capacity(level.frame_bytes()),
            stats: SectionStats::default(),
            expected_b1: None,
            expected_b2: None,
            expected_b3: None,
            expected_section_trace: None,
            expected_path_trace: None,
            defects: Vec::new(),
            bad_framings: 0,
        }
    }

    pub fn stats(&self) -> &SectionStats {
        &self.stats
    }

    /// Drain defects observed since the last call.
    pub fn poll_defects(&mut self) -> Vec<RxDefect> {
        std::mem::take(&mut self.defects)
    }

    /// Push line bytes; returns recovered payload bytes (in order).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<u8> {
        let mut payload = Vec::new();
        for &b in bytes {
            match self.state {
                RxState::Hunt => {
                    self.window.push_back(b);
                    let sig = 4; // hunt for A1 A1 A2 A2 ... wait, need A1×k A2×k boundary
                    let _ = sig;
                    // Keep the window at the signature length: the last
                    // 3N bytes of A1 run plus first byte of A2 suffices,
                    // but to place the frame start we need the *start* of
                    // the A1 run.  We hunt for exactly A1×3N followed by
                    // A2: then the A1 run started 3N+1 bytes ago.
                    let need = 3 * self.level.n() + 1;
                    if self.window.len() > need {
                        self.window.pop_front();
                    }
                    if self.window.len() == need
                        && self.window.iter().take(need - 1).all(|&x| x == A1)
                        && *self.window.back().unwrap() == A2
                    {
                        // Frame begins at the first A1 in the window.
                        self.buf.clear();
                        self.buf.extend(self.window.iter());
                        self.window.clear();
                        self.state = RxState::Aligned;
                        self.stats.hunts += 1;
                    }
                }
                RxState::Aligned => {
                    self.buf.push(b);
                    if self.buf.len() == self.level.frame_bytes() {
                        let frame = std::mem::take(&mut self.buf);
                        payload.extend(self.process_frame(&frame));
                    }
                }
            }
        }
        payload
    }

    fn process_frame(&mut self, line: &[u8]) -> Vec<u8> {
        let n = self.level.n();
        let row = self.level.row_bytes();
        let soh = self.level.soh_bytes();

        // Framing check on the raw (unscrambled) row-0 bytes.
        let a1_ok = line[..3 * n].iter().all(|&b| b == A1);
        let a2_ok = line[3 * n..6 * n].iter().all(|&b| b == A2);
        if !(a1_ok && a2_ok) {
            self.bad_framings += 1;
            if self.bad_framings >= 2 {
                self.state = RxState::Hunt;
                self.window.clear();
                self.stats.oof_events += 1;
                self.defects.push(RxDefect::OutOfFrame);
                self.expected_b1 = None;
                self.expected_b2 = None;
                self.expected_b3 = None;
                self.bad_framings = 0;
                return Vec::new();
            }
        } else {
            self.bad_framings = 0;
        }

        // Parity over the line image (B1 of frame k covers scrambled
        // frame k-1).
        let this_b1 = bip8(line);
        let mut this_b2 = 0u8;
        for r in 0..9 {
            for c in 0..row {
                if r < 3 && c < soh {
                    continue;
                }
                this_b2 ^= line[r * row + c];
            }
        }

        // Descramble (all but row-0 SOH).
        let mut f = line.to_vec();
        let mut scr = FrameScrambler::new();
        for (i, b) in f.iter_mut().enumerate() {
            let key = scr.keystream_byte();
            if i >= soh {
                *b ^= key;
            }
        }

        // Check parity carried in this frame against the previous frame.
        if let Some(exp) = self.expected_b1 {
            if f[row] != exp {
                self.stats.b1_errors += 1;
                self.defects.push(RxDefect::B1Error);
            }
        }
        if let Some(exp) = self.expected_b2 {
            if f[4 * row] != exp {
                self.stats.b2_errors += 1;
                self.defects.push(RxDefect::B2Error);
            }
        }
        self.expected_b1 = Some(this_b1);
        self.expected_b2 = Some(this_b2);

        // Path BIP-8 over this frame's descrambled SPE; checked against
        // the B3 carried in the *next* frame.
        let mut this_b3 = 0u8;
        for r in 0..9 {
            for c in soh..row {
                this_b3 ^= f[r * row + c];
            }
        }
        if let Some(exp) = self.expected_b3 {
            if f[row + soh] != exp {
                self.stats.b3_errors += 1;
                self.defects.push(RxDefect::B3Error);
            }
        }
        self.expected_b3 = Some(this_b3);

        // Pointer-borne alarms: all-ones H1/H2 is path AIS (H1/H2 are
        // under the frame-synchronous scrambler, so check descrambled).
        if f[3 * row] == 0xFF && f[3 * row + n] == 0xFF {
            self.stats.path_ais_frames += 1;
            self.defects.push(RxDefect::PathAis);
        }

        // G1: remote error/defect indications from the far end.
        let g1 = f[3 * row + soh];
        let rei = (g1 >> 4) as u64;
        if rei <= 8 {
            self.stats.remote_errors += rei;
        }
        if g1 & 0x08 != 0 {
            self.stats.remote_defect_frames += 1;
            self.defects.push(RxDefect::RemoteDefect);
        }

        // Trace supervision.
        if let Some(exp) = self.expected_section_trace {
            let j0 = line[6 * n];
            if j0 != exp {
                self.stats.section_trace_mismatches += 1;
                self.defects.push(RxDefect::SectionTraceMismatch(j0));
            }
        }
        if let Some(exp) = self.expected_path_trace {
            let j1 = f[soh];
            if j1 != exp {
                self.stats.path_trace_mismatches += 1;
                self.defects.push(RxDefect::PathTraceMismatch(j1));
            }
        }

        // Path signal label.
        let c2 = f[2 * row + soh];
        if c2 != C2_PPP_SCRAMBLED {
            self.stats.label_mismatches += 1;
            self.defects.push(RxDefect::PayloadLabelMismatch(c2));
        }

        // Extract payload (everything right of the POH column).
        let mut payload = Vec::with_capacity(self.level.payload_per_frame());
        for r in 0..9 {
            payload.extend_from_slice(&f[r * row + soh + 1..(r + 1) * row]);
        }
        self.stats.frames_ok += 1;
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_rates() {
        assert_eq!(StmLevel::Stm1.frame_bytes(), 2430);
        assert_eq!(StmLevel::Stm16.frame_bytes(), 38880);
        assert_eq!(StmLevel::Stm1.line_rate_bps(), 155_520_000);
        assert_eq!(StmLevel::Stm4.line_rate_bps(), 622_080_000);
        assert_eq!(StmLevel::Stm16.line_rate_bps(), 2_488_320_000);
        // Payload rate close to but below line rate.
        assert!(StmLevel::Stm16.payload_rate_bps() > 2_300_000_000);
        assert!(StmLevel::Stm16.payload_rate_bps() < StmLevel::Stm16.line_rate_bps());
    }

    #[test]
    fn frame_starts_with_framing_pattern() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm4);
        let f = tx.emit_frame();
        let n = 4;
        assert!(f[..3 * n].iter().all(|&b| b == A1));
        assert!(f[3 * n..6 * n].iter().all(|&b| b == A2));
    }

    #[test]
    fn payload_round_trips_through_aligned_receiver() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let data: Vec<u8> = (0..200u8).collect();
        tx.offer_payload(&data);
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        let mut got = Vec::new();
        for _ in 0..2 {
            got.extend(rx.push(&tx.emit_frame()));
        }
        assert_eq!(&got[..200], &data[..]);
        // Remainder is idle fill.
        assert!(got[200..].iter().all(|&b| b == IDLE_FILL));
        assert_eq!(rx.stats().frames_ok, 2);
        assert_eq!(rx.stats().b1_errors, 0);
        assert_eq!(rx.stats().b2_errors, 0);
    }

    #[test]
    fn receiver_locks_on_mid_stream() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let mut line = Vec::new();
        for _ in 0..3 {
            line.extend(tx.emit_frame());
        }
        // Start 1000 bytes in: the receiver must hunt and then deliver the
        // later frames' payload.
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        let got = rx.push(&line[1000..]);
        assert!(rx.stats().frames_ok >= 1);
        assert!(!got.is_empty());
        assert_eq!(rx.stats().hunts, 1);
    }

    #[test]
    fn corrupted_payload_byte_trips_b1_and_b2() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        let f1 = tx.emit_frame();
        let mut f1 = f1;
        f1[1500] ^= 0xFF; // payload area corruption
        rx.push(&f1);
        // Parity for f1 is carried in f2.
        rx.push(&tx.emit_frame());
        rx.push(&tx.emit_frame());
        assert_eq!(rx.stats().b1_errors, 1);
        assert_eq!(rx.stats().b2_errors, 1);
    }

    #[test]
    fn corrupted_framing_causes_rehunt_and_recovery() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        rx.push(&tx.emit_frame());
        // Two consecutive frames with smashed A1s.
        for _ in 0..2 {
            let mut f = tx.emit_frame();
            f[0] = 0x00;
            f[1] = 0x00;
            rx.push(&f);
        }
        assert_eq!(rx.stats().oof_events, 1);
        // Clean frames afterwards: re-lock.
        let before = rx.stats().frames_ok;
        for _ in 0..3 {
            rx.push(&tx.emit_frame());
        }
        assert!(rx.stats().frames_ok > before);
        assert_eq!(rx.stats().hunts, 2);
    }

    #[test]
    fn single_bad_framing_is_tolerated() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let mut rx = FrameReceiver::new(StmLevel::Stm1);
        rx.push(&tx.emit_frame());
        let mut f = tx.emit_frame();
        f[0] = 0x00; // one bad A1
        rx.push(&f);
        rx.push(&tx.emit_frame());
        assert_eq!(rx.stats().oof_events, 0, "single hit must not lose lock");
    }

    #[test]
    fn backlog_accounting() {
        let mut tx = FrameTransmitter::new(StmLevel::Stm1);
        let cap = StmLevel::Stm1.payload_per_frame();
        tx.offer_payload(&vec![0xAA; cap + 100]);
        assert_eq!(tx.backlog(), cap + 100);
        tx.emit_frame();
        assert_eq!(tx.backlog(), 100);
        assert_eq!(tx.payload_bytes_sent(), cap as u64);
        tx.emit_frame();
        assert_eq!(tx.backlog(), 0);
        assert_eq!(tx.fill_bytes_sent(), (cap - 100) as u64);
    }
}
