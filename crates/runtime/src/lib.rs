//! Carrier-scale P⁵ runtime: thousands of independent duplex links
//! sharded across a fixed worker pool at line rate.
//!
//! The paper's P⁵ is one programmable PPP pipeline per fibre; a real
//! line card terminates *many* — an OC-48 envelope alone channelizes
//! sixteen STM-1 tributaries.  This crate is the software analogue of
//! that card: a [`Fleet`] owns N duplex links (each a pair of
//! `p5_core::P5` devices plus carriage), groups them into *cohorts*
//! (one self-carried link, or one channel group sharing an STM-N
//! envelope), and drives the cohorts from a fixed pool of worker
//! threads.
//!
//! Design rules (DESIGN.md §16):
//!
//! * **Cohort-granular scheduling.**  A worker claims a cohort and runs
//!   its whole tick batch; no state is shared between cohorts, so
//!   per-link results are a pure function of `(config, link id)` —
//!   byte-identical replay regardless of worker count, sharding mode
//!   ([`Sharding::WorkStealing`] vs [`Sharding::Static`]) or claim
//!   order.
//! * **Idle links cost nothing.**  `has_work` (the device `is_idle`
//!   machinery lifted to fleet scope) lets a cohort's drive loop return
//!   immediately, so a 10k-link fleet with 100 active links pays for
//!   100.
//! * **Graceful overload shedding.**  Each direction has a bounded
//!   ingress queue in front of the device's bounded TX queue; overflow
//!   is shed at admission ([`Offer::Shed`]) or rejected by the
//!   device (counted in `TX_REJECTS`), never silently lost:
//!   `offered == accepted + shed + rejected + queued`.
//! * **Fused fast paths end to end.**  While a link is uncongested,
//!   frames ride `fused_submit_wire`/`fused_ingest_wire`; the staged
//!   pipeline clocks only when a device actually has work.
//!
//! ```
//! use p5_runtime::{Fleet, FleetConfig, TrafficSpec};
//!
//! let mut fleet = Fleet::new(FleetConfig {
//!     links: 32,
//!     workers: 4,
//!     traffic: Some(TrafficSpec { ticks: 8, ..TrafficSpec::default() }),
//!     ..FleetConfig::default()
//! })
//! .unwrap();
//! assert!(fleet.run_until_drained(10_000));
//! let stats = fleet.stats();
//! assert_eq!(stats.flow.delivered, 32 * 8);
//! assert_eq!(stats.flow.offered, stats.flow.accepted); // uncongested
//! println!("{}", fleet.prometheus());
//! ```

pub mod fleet;
mod link;
pub mod traffic;

pub use fleet::{
    Carrier, Fleet, FleetConfig, FleetStats, LinkReport, RuntimeError, Sharding, WorkerStats,
};
#[allow(deprecated)]
pub use link::OfferOutcome;
pub use link::{Dir, LinkCounters};
pub use p5_stream::Offer;
pub use p5_xport::LinkEngine;
pub use traffic::TrafficSpec;
