//! One sharded duplex link and the cohort (schedulable unit) that owns
//! it.  Everything here is *single-threaded per cohort*: a worker that
//! claims a cohort runs its whole tick batch, so no state is shared
//! between links and per-link results are a pure function of
//! `(fleet config, link id)` — independent of worker count, sharding
//! mode and claim order.

use std::collections::VecDeque;

use p5_core::p5::FUSED_WIRE_HIGH_WATER;
use p5_core::{TxQueueFull, P5};
use p5_fault::{FaultPlan, FaultStats};
use p5_sonet::{BitErrorChannel, ByteLink, OcPath, StmLevel, TributaryGroup};
use p5_stream::{Histogram, Offer, SharedRecorder, WireBuf};
use p5_xport::LinkEngine;

use crate::fleet::TickParams;
use crate::traffic::template_payload;

/// The former name of the unified [`Offer`] outcome type, kept so
/// pre-redesign callers keep compiling for one release.
#[deprecated(note = "use `p5_stream::Offer` (re-exported as `p5_runtime::Offer`)")]
pub type OfferOutcome = Offer;

/// Per-link flow accounting.  The fleet-scope conservation law (the
/// `StageStats` invariant lifted to the runtime boundary) is
/// `offered == accepted + shed + rejected + queued`, where `queued`
/// is whatever still sits in the ingress queues; after a drain,
/// `queued == 0` and on clean links `delivered == accepted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Frames offered to the link (external `offer` + generated load).
    pub offered: u64,
    /// Frames that entered the device (fused fast path or the staged
    /// bounded TX queue).
    pub accepted: u64,
    /// Frames refused at the bounded ingress queue.
    pub shed: u64,
    /// Frames dropped at the device's bounded TX queue — each one is
    /// counted by the device in `TX_REJECTS`.
    pub rejected: u64,
    /// Frames delivered out of the peer device.
    pub delivered: u64,
    /// Payload octets delivered.
    pub delivered_bytes: u64,
}

impl LinkCounters {
    /// Accumulate another link's counters (fleet aggregation).
    pub fn add(&mut self, o: &LinkCounters) {
        self.offered += o.offered;
        self.accepted += o.accepted;
        self.shed += o.shed;
        self.rejected += o.rejected;
        self.delivered += o.delivered;
        self.delivered_bytes += o.delivered_bytes;
    }
}

/// Direction of travel on a duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    AtoB,
    BtoA,
}

/// One direction's carriage: wire bytes pending delivery to the sink
/// device, plus the latency stamps of every accepted-but-undelivered
/// frame and this direction's fault plan.
struct DirState {
    /// Bounded ingress queue (frames admitted but not yet in the
    /// device).
    ingress: VecDeque<(u16, Vec<u8>)>,
    /// Submit-tick of each in-flight accepted frame (FIFO — PPP links
    /// preserve order), popped at delivery.  Only maintained on
    /// fault-free links, where no accepted frame can vanish.
    stamps: VecDeque<u64>,
    /// Post-carrier, post-fault wire bytes awaiting the sink device.
    wire: WireBuf,
    /// Optional STM-N transmission convergence for this direction
    /// (boxed: an `OcPath` holds whole-frame buffers).
    path: Option<Box<OcPath>>,
    plan: Option<FaultPlan>,
    scratch: Vec<u8>,
}

impl DirState {
    fn new(path: Option<Box<OcPath>>, plan: Option<FaultPlan>) -> Self {
        DirState {
            ingress: VecDeque::new(),
            stamps: VecDeque::new(),
            wire: WireBuf::new(),
            path,
            plan,
            scratch: Vec::new(),
        }
    }
}

/// Offer one frame to a direction: fused fast path when the device and
/// the wire are both clear, bounded ingress queue otherwise, shed when
/// that queue is full.  `stamp` is the submit tick when this link
/// tracks latency, `None` otherwise.
fn offer_into(
    dev: &mut P5,
    dir: &mut DirState,
    counters: &mut LinkCounters,
    protocol: u16,
    payload: &[u8],
    stamp: Option<u64>,
    ingress_depth: usize,
) -> Offer {
    counters.offered += 1;
    if dir.ingress.is_empty()
        && dir.wire.len() < FUSED_WIRE_HIGH_WATER
        && dev.fused_submit_wire(protocol, payload, 0)
    {
        counters.accepted += 1;
        if let Some(now) = stamp {
            dir.stamps.push_back(now);
        }
        return Offer::Accepted;
    }
    if dir.ingress.len() >= ingress_depth {
        counters.shed += 1;
        return Offer::Shed;
    }
    let mut buf = dev.lease_tx_buf();
    buf.extend_from_slice(payload);
    dir.ingress.push_back((protocol, buf));
    Offer::Queued
}

/// Move queued ingress frames into the device.  Fused while the wire is
/// clear; the staged bounded TX queue as the degradation step; and when
/// *that* refuses, the frame is dropped through the device's
/// `TX_REJECTS` accounting (one per tick — the queue gets a chance to
/// drain before the next probe).  Frames left queued are the "blocked"
/// leg of the conservation law and are retried next tick.
fn drain_ingress(
    dev: &mut P5,
    dir: &mut DirState,
    counters: &mut LinkCounters,
    now: u64,
    track_latency: bool,
) {
    while !dir.ingress.is_empty() {
        if dir.wire.len() >= FUSED_WIRE_HIGH_WATER {
            // Line backlog: hold the queue (blocked, not dropped).
            return;
        }
        let (protocol, payload) = dir.ingress.pop_front().expect("checked non-empty");
        if dev.fused_tx_ready() {
            let ok = dev.fused_submit_wire(protocol, &payload, 0);
            debug_assert!(ok, "fused_tx_ready implies fused_submit_wire");
            dev.buf_pool().recycle_vec(payload);
            counters.accepted += 1;
            if track_latency {
                dir.stamps.push_back(now);
            }
            continue;
        }
        match dev.submit(protocol, payload) {
            Ok(()) => {
                counters.accepted += 1;
                if track_latency {
                    dir.stamps.push_back(now);
                }
            }
            Err(TxQueueFull(desc)) => {
                counters.rejected += 1;
                dev.buf_pool().recycle_vec(desc.payload);
                return;
            }
        }
    }
}

/// Carry the source device's produced wire bytes towards the sink:
/// optionally through this direction's STM-N path, then through the
/// fault plan, into `dir.wire`.
fn ferry(src: &mut P5, dir: &mut DirState) {
    match &mut dir.path {
        None => {
            if dir.plan.is_none() {
                src.drain_wire_into(&mut dir.wire);
                return;
            }
            if !src.has_wire_out() {
                return;
            }
            let bytes = src.take_wire_out();
            impair_into(
                dir.plan.as_mut().expect("checked"),
                &bytes,
                &mut dir.scratch,
            );
            dir.wire.push_slice(&dir.scratch);
            src.recycle_wire_vec(bytes);
        }
        Some(path) => {
            if src.has_wire_out() {
                let bytes = src.take_wire_out();
                path.send(&bytes);
                src.recycle_wire_vec(bytes);
            }
            let k = path.frames_to_drain();
            if k > 0 {
                // +2: delineation hunts across a frame boundary.
                path.run_frames(k + 2);
            }
            let out = path.recv();
            if out.is_empty() {
                return;
            }
            match &mut dir.plan {
                None => dir.wire.push_slice(&out),
                Some(plan) => {
                    impair_into(plan, &out, &mut dir.scratch);
                    dir.wire.push_slice(&dir.scratch);
                }
            }
        }
    }
}

/// Apply one transfer's worth of the fault model: whole-transfer loss,
/// then the full corruption pipeline into `scratch`.
fn impair_into(plan: &mut FaultPlan, bytes: &[u8], scratch: &mut Vec<u8>) {
    scratch.clear();
    if plan.lose_transfer() {
        return;
    }
    plan.corrupt_into(bytes, scratch);
}

/// Deliver at most `budget` pending wire octets into the sink device —
/// fused bulk ingest when eligible, the staged receiver's wire-in
/// buffer otherwise.
fn ingest(dst: &mut P5, dir: &mut DirState, budget: usize) {
    if dir.wire.is_empty() {
        return;
    }
    let max = budget.min(dir.wire.len());
    if dst.fused_ingest_wire(&mut dir.wire, max).is_none() {
        dst.offer_wire_from(&mut dir.wire, max);
    }
}

/// Collect delivered frames from the sink device, closing latency
/// stamps and recycling payload storage.
fn collect(
    dst: &mut P5,
    dir: &mut DirState,
    counters: &mut LinkCounters,
    latency: &mut Histogram,
    now: u64,
    track_latency: bool,
) {
    for f in dst.take_received() {
        counters.delivered += 1;
        counters.delivered_bytes += f.payload.len() as u64;
        if track_latency {
            if let Some(t0) = dir.stamps.pop_front() {
                latency.observe(now.saturating_sub(t0));
            }
        }
        dst.recycle_rx_payload(f.payload);
    }
}

/// Does the device need staged clocking this tick?
///
/// Runtime devices never run `idle_fill` mode, even under SONET
/// carriage: the carrier's own frame fill is the HDLC flag
/// ([`p5_sonet::frame::IDLE_FILL`]), so inter-frame delineation works
/// without a continuous device-side flag stream — and the fused TX
/// fast path (which `idle_fill` disables) stays available in every
/// carrier mode.
fn staged_busy(dev: &P5) -> bool {
    !dev.tx.idle() || !dev.rx.idle() || dev.wire_in_pending() > 0
}

/// One duplex link in the fleet: two devices, two directions of
/// carriage, flow accounting and a frame-latency histogram.
pub(crate) struct ShardLink {
    pub id: usize,
    a: P5,
    b: P5,
    ab: DirState,
    ba: DirState,
    pub counters: LinkCounters,
    pub latency: Histogram,
    track_latency: bool,
    template: Vec<u8>,
    /// This link's private clock, in ticks.  Advanced only by
    /// [`ShardLink::finish_tick`], never by the fleet — the per-link
    /// schedule is what worker interleavings cannot touch.
    tick: u64,
}

impl ShardLink {
    pub fn new(
        id: usize,
        width: p5_core::DatapathWidth,
        sonet: Option<StmLevel>,
        base_fault: Option<&FaultPlan>,
        seed: u64,
        payload_len: usize,
    ) -> Self {
        let a = P5::new(width);
        let b = P5::new(width);
        let make_path = |level: StmLevel| Box::new(OcPath::new(level, BitErrorChannel::clean()));
        let link_id = id as u64;
        ShardLink {
            id,
            a,
            b,
            ab: DirState::new(
                sonet.map(make_path),
                base_fault.map(|p| p.fork_link(link_id, 0)),
            ),
            ba: DirState::new(
                sonet.map(make_path),
                base_fault.map(|p| p.fork_link(link_id, 1)),
            ),
            counters: LinkCounters::default(),
            latency: Histogram::new(),
            track_latency: base_fault.is_none(),
            template: template_payload(payload_len, seed, link_id),
            tick: 0,
        }
    }

    pub fn fault_stats(&self) -> FaultStats {
        let mut s = FaultStats::default();
        if let Some(p) = &self.ab.plan {
            s.absorb(&p.stats());
        }
        if let Some(p) = &self.ba.plan {
            s.absorb(&p.stats());
        }
        s
    }

    /// Device-truth TX-queue refusals, both ends (mirrored to the OAM
    /// `TX_REJECTS` registers by `sync_oam`).
    pub fn device_tx_rejects(&self) -> u64 {
        self.a.tx.control.submit_rejects + self.b.tx.control.submit_rejects
    }

    /// Both ends' OAM handles (register-bus views for tests/telemetry).
    pub fn oam_handles(&self) -> (p5_core::OamHandle, p5_core::OamHandle) {
        (self.a.oam.clone(), self.b.oam.clone())
    }

    /// The same refusals as the OAM `TX_REJECTS` registers mirror them
    /// (`sync_oam` runs on the next staged clock after the reject, so
    /// this matches [`ShardLink::device_tx_rejects`] once drained).
    pub fn oam_tx_rejects(&self) -> u64 {
        use p5_core::oam::regs;
        use p5_core::{MmioBus, Oam};
        let (a, b) = self.oam_handles();
        Oam::new(a).read(regs::TX_REJECTS) as u64 + Oam::new(b).read(regs::TX_REJECTS) as u64
    }

    pub fn rx_totals(&self) -> (p5_core::rx::RxCounters, p5_core::rx::RxCounters) {
        (*self.a.rx_counters(), *self.b.rx_counters())
    }

    /// Receiver resynchronisation cost, both ends: octets skipped while
    /// hunting for a flag after losing delineation — the health
    /// scorer's "resync events" input.
    pub fn resync_bytes(&self) -> u64 {
        self.a.rx.control.resync_bytes_skipped + self.b.rx.control.resync_bytes_skipped
    }

    /// This link's private clock (ticks it has actually executed).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Attach frame-lifecycle tracing to both devices, returning the
    /// `(a, b)` recorders.  Each is a shared ring of `cap` events —
    /// the flight-recorder tap for a link picked out of the fleet.
    pub fn attach_recorders(&mut self, cap: usize) -> (SharedRecorder, SharedRecorder) {
        let ra = SharedRecorder::with_capacity(cap);
        let rb = SharedRecorder::with_capacity(cap);
        self.a.set_trace(Box::new(ra.clone()));
        self.b.set_trace(Box::new(rb.clone()));
        (ra, rb)
    }

    pub fn tx_frames_sent(&self) -> u64 {
        self.a.tx.control.frames_sent + self.b.tx.control.frames_sent
    }

    /// Offer one frame in `dir`; the external ingress API.
    pub fn offer(
        &mut self,
        dir: Dir,
        protocol: u16,
        payload: &[u8],
        ingress_depth: usize,
    ) -> Offer {
        let stamp = self.track_latency.then_some(self.tick);
        let (dev, d) = match dir {
            Dir::AtoB => (&mut self.a, &mut self.ab),
            Dir::BtoA => (&mut self.b, &mut self.ba),
        };
        offer_into(
            dev,
            d,
            &mut self.counters,
            protocol,
            payload,
            stamp,
            ingress_depth,
        )
    }

    /// Tick phase 1 — everything up to the device producing wire bytes:
    /// generated load, ingress drain, staged clocking.
    pub fn begin_tick(&mut self, p: &TickParams) {
        if let Some(t) = &p.traffic {
            if self.tick < t.ticks {
                let stamp = self.track_latency.then_some(self.tick);
                for _ in 0..t.frames_per_tick {
                    offer_into(
                        &mut self.a,
                        &mut self.ab,
                        &mut self.counters,
                        t.protocol,
                        &self.template,
                        stamp,
                        p.ingress_depth,
                    );
                    if t.duplex {
                        offer_into(
                            &mut self.b,
                            &mut self.ba,
                            &mut self.counters,
                            t.protocol,
                            &self.template,
                            stamp,
                            p.ingress_depth,
                        );
                    }
                }
            }
        }
        drain_ingress(
            &mut self.a,
            &mut self.ab,
            &mut self.counters,
            self.tick,
            self.track_latency,
        );
        drain_ingress(
            &mut self.b,
            &mut self.ba,
            &mut self.counters,
            self.tick,
            self.track_latency,
        );
        if staged_busy(&self.a) {
            self.a.run(p.cycles_per_tick);
        }
        if staged_busy(&self.b) {
            self.b.run(p.cycles_per_tick);
        }
    }

    /// Tick phase 2 for self-carried links (Raw wire or per-link
    /// STM-N): ferry both directions.  Channelized cohorts do this leg
    /// through their shared envelope instead.
    pub fn carry_own_wire(&mut self) {
        ferry(&mut self.a, &mut self.ab);
        ferry(&mut self.b, &mut self.ba);
    }

    /// Channelized egress: hand one direction's produced wire bytes to
    /// the shared envelope (tributary `slot`).
    pub fn egress_to_envelope(&mut self, dir: Dir, env: &mut TributaryGroup, slot: usize) {
        let dev = match dir {
            Dir::AtoB => &mut self.a,
            Dir::BtoA => &mut self.b,
        };
        if dev.has_wire_out() {
            let bytes = dev.take_wire_out();
            env.send(slot, &bytes);
            dev.recycle_wire_vec(bytes);
        }
    }

    /// Channelized ingress: accept one direction's bytes recovered from
    /// the shared envelope (fault plan applied here, per link).
    pub fn ingress_from_envelope(&mut self, dir: Dir, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let d = match dir {
            Dir::AtoB => &mut self.ab,
            Dir::BtoA => &mut self.ba,
        };
        match &mut d.plan {
            None => d.wire.push_slice(bytes),
            Some(plan) => {
                impair_into(plan, bytes, &mut d.scratch);
                let scratch = std::mem::take(&mut d.scratch);
                d.wire.push_slice(&scratch);
                d.scratch = scratch;
            }
        }
    }

    /// Tick phase 3 — deliver wire into the sink devices (budgeted),
    /// collect received frames, advance the link clock.
    pub fn finish_tick(&mut self, p: &TickParams) {
        ingest(&mut self.b, &mut self.ab, p.wire_budget);
        ingest(&mut self.a, &mut self.ba, p.wire_budget);
        collect(
            &mut self.b,
            &mut self.ab,
            &mut self.counters,
            &mut self.latency,
            self.tick,
            self.track_latency,
        );
        collect(
            &mut self.a,
            &mut self.ba,
            &mut self.counters,
            &mut self.latency,
            self.tick,
            self.track_latency,
        );
        self.tick += 1;
    }

    /// Anything left for this link to do?  (Generated load pending,
    /// ingress queued, staged state in flight, or wire in transit.)
    pub fn has_work(&self, p: &TickParams) -> bool {
        if let Some(t) = &p.traffic {
            if self.tick < t.ticks {
                return true;
            }
        }
        !self.ab.ingress.is_empty()
            || !self.ba.ingress.is_empty()
            || !self.ab.wire.is_empty()
            || !self.ba.wire.is_empty()
            || self.a.has_wire_out()
            || self.b.has_wire_out()
            || staged_busy(&self.a)
            || staged_busy(&self.b)
            || !self.a.fused_rx_idle()
            || !self.b.fused_rx_idle()
    }
}

/// The schedulable unit a worker claims: one self-carried link, a
/// channel group — up to N tributary links sharing an STM-N envelope
/// pair, which must advance in lockstep (one envelope frame carries a
/// column of every tributary) — or one *remote* endpoint (a
/// [`LinkEngine`] bound to a real OS transport, pumped by fleet
/// workers instead of a dedicated `SessionDriver` thread).
pub(crate) struct Cohort {
    pub links: Vec<ShardLink>,
    envelope: Option<Box<(TributaryGroup, TributaryGroup)>>,
    /// A transport-backed endpoint riding the worker pool.  Mutually
    /// exclusive with `links` — a remote cohort's "ticks" are engine
    /// service passes.
    pub remote: Option<Box<LinkEngine>>,
    /// Non-idle ticks this cohort has actually executed — the load-skew
    /// signal dynamic rebalancing needs (idle-skipped ticks don't
    /// count).
    pub work_ticks: u64,
}

impl Cohort {
    pub fn single(link: ShardLink) -> Self {
        Cohort {
            links: vec![link],
            envelope: None,
            remote: None,
            work_ticks: 0,
        }
    }

    pub fn channel_group(links: Vec<ShardLink>, level: StmLevel) -> Self {
        debug_assert!(links.len() <= level.n());
        Cohort {
            links,
            envelope: Some(Box::new((
                TributaryGroup::new(level, BitErrorChannel::clean()),
                TributaryGroup::new(level, BitErrorChannel::clean()),
            ))),
            remote: None,
            work_ticks: 0,
        }
    }

    pub fn remote(engine: LinkEngine) -> Self {
        Cohort {
            links: Vec::new(),
            envelope: None,
            remote: Some(Box::new(engine)),
            work_ticks: 0,
        }
    }

    pub fn has_work(&self, p: &TickParams) -> bool {
        self.links.iter().any(|l| l.has_work(p))
            || self
                .envelope
                .as_ref()
                .is_some_and(|e| e.0.frames_to_drain() > 0 || e.1.frames_to_drain() > 0)
            || self.remote.as_ref().is_some_and(|e| e.has_local_work())
    }

    /// One tick for every link in the cohort.
    pub fn tick(&mut self, p: &TickParams) {
        for l in &mut self.links {
            l.begin_tick(p);
        }
        match &mut self.envelope {
            None => {
                for l in &mut self.links {
                    l.carry_own_wire();
                }
            }
            Some(env) => {
                let (ab, ba) = &mut **env;
                for (slot, l) in self.links.iter_mut().enumerate() {
                    l.egress_to_envelope(Dir::AtoB, ab, slot);
                    l.egress_to_envelope(Dir::BtoA, ba, slot);
                }
                let k = ab.frames_to_drain().max(ba.frames_to_drain());
                if k > 0 {
                    // +2: tributary delineation hunts across a boundary.
                    ab.run_frames(k + 2);
                    ba.run_frames(k + 2);
                }
                for (slot, l) in self.links.iter_mut().enumerate() {
                    let bytes = ab.recv(slot);
                    l.ingress_from_envelope(Dir::AtoB, &bytes);
                    let bytes = ba.recv(slot);
                    l.ingress_from_envelope(Dir::BtoA, &bytes);
                }
            }
        }
        for l in &mut self.links {
            l.finish_tick(p);
        }
    }

    /// Run up to `n` ticks, stopping early once idle.  Returns the
    /// ticks actually executed (the worker's busy time on this claim).
    pub fn drive(&mut self, p: &TickParams, n: u64) -> u64 {
        if let Some(engine) = &mut self.remote {
            // A remote cohort's tick is one engine service pass; stop
            // as soon as the pass moves nothing (the socket decides
            // when more work exists, not the tick budget).
            let mut done = 0;
            while done < n && engine.service() {
                done += 1;
            }
            self.work_ticks += done;
            return done;
        }
        for done in 0..n {
            if !self.has_work(p) {
                self.work_ticks += done;
                return done;
            }
            self.tick(p);
        }
        self.work_ticks += n;
        n
    }
}

// The whole point of the runtime is moving cohorts across threads.
fn _assert_cohort_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Cohort>();
}
