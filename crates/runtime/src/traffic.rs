//! Deterministic open-loop traffic generation for fleet runs.
//!
//! Every link synthesises its own offered load from `(fleet seed,
//! link id, tick)` alone, so the traffic a link sees is independent of
//! which worker drives it and of how many workers exist — the
//! foundation of the runtime's replay guarantee.

/// Open-loop offered load, per link: `frames_per_tick` frames of
/// `payload_len` octets each tick for the first `ticks` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// Frames offered per link per tick (per direction when `duplex`).
    pub frames_per_tick: u32,
    /// Payload octets per frame.
    pub payload_len: usize,
    /// PPP protocol field stamped on every frame (0x0021 = IPv4).
    pub protocol: u16,
    /// Also drive the b → a direction.
    pub duplex: bool,
    /// Ticks of offered load; the fleet then drains.
    pub ticks: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            frames_per_tick: 1,
            payload_len: 256,
            protocol: 0x0021,
            duplex: false,
            ticks: 64,
        }
    }
}

/// Deterministic per-link payload template (splitmix64 filler — cheap,
/// seedable, and biased towards no particular stuffing density).
pub(crate) fn template_payload(len: usize, seed: u64, link_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut z = seed ^ 0xA076_1D64_78BD_642Fu64.wrapping_mul(link_id.wrapping_add(1));
    while out.len() < len {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let take = 8.min(len - out.len());
        out.extend_from_slice(&x.to_le_bytes()[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_are_deterministic_and_link_distinct() {
        let a = template_payload(300, 7, 0);
        assert_eq!(a.len(), 300);
        assert_eq!(a, template_payload(300, 7, 0));
        assert_ne!(a, template_payload(300, 7, 1));
        assert_ne!(a, template_payload(300, 8, 0));
    }
}
