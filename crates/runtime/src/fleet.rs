//! The fleet: thousands of independent duplex links sharded across a
//! fixed worker pool.
//!
//! Scheduling model (DESIGN.md §16): links are grouped into *cohorts*
//! (one self-carried link, or one channel group sharing an STM-N
//! envelope).  `run_ticks(n)` hands each cohort to exactly one worker,
//! which runs the cohort's entire n-tick batch before claiming the
//! next — so no per-tick barrier exists, idle cohorts are skipped via
//! the `has_work` check, and per-link results are independent of the
//! worker count, the sharding mode and the claim order.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use p5_core::rx::RxCounters;
use p5_core::DatapathWidth;
use p5_fault::{FaultError, FaultSpec, FaultStats};
use p5_sonet::StmLevel;
use p5_stream::{to_prometheus, Histogram, Snapshot};

use crate::link::{Cohort, Dir, LinkCounters, OfferOutcome, ShardLink};
use crate::traffic::TrafficSpec;

/// What carries each link's wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// Bare wire: the line-rate mode (fused fast paths end to end).
    Raw,
    /// Each link rides its own STM-N path pair (scramble → frame →
    /// channel → delineate → descramble per direction).
    Sonet(StmLevel),
    /// Channelized: groups of `level.n()` links share one STM-N
    /// envelope pair, column-interleaved per G.707 — tributaries of a
    /// single fibre, advanced in lockstep as one cohort.
    Channelized(StmLevel),
}

/// How cohorts are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Workers claim the next unclaimed cohort from a shared cursor —
    /// long-running cohorts don't stall the rest of a stride.
    WorkStealing,
    /// Worker `w` owns cohorts `w, w + W, w + 2W, …` — zero contention
    /// on the claim path, at the cost of load imbalance.
    Static,
}

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of duplex links.
    pub links: usize,
    /// Worker threads; `0` = one per available core.
    pub workers: usize,
    pub width: DatapathWidth,
    pub carrier: Carrier,
    pub sharding: Sharding,
    /// Chaos: forked per link/direction via `FaultPlan::fork_link`, so
    /// per-link fault streams replay independent of scheduling.
    pub fault: Option<FaultSpec>,
    pub seed: u64,
    /// Bounded per-link, per-direction ingress queue depth.
    pub ingress_depth: usize,
    /// Staged-pipeline cycles granted per busy device per tick.
    pub cycles_per_tick: u64,
    /// Per-direction line-rate cap: wire octets delivered into the
    /// sink device per tick.  `None` = uncapped (maximum host speed);
    /// `Some(cap)` over-subscribes the line and exercises shedding.
    pub wire_bytes_per_tick: Option<usize>,
    /// Open-loop generated load (see [`TrafficSpec`]); `None` = only
    /// externally offered frames.
    pub traffic: Option<TrafficSpec>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            links: 1,
            workers: 0,
            width: DatapathWidth::W32,
            carrier: Carrier::Raw,
            sharding: Sharding::WorkStealing,
            fault: None,
            seed: 1,
            ingress_depth: 64,
            cycles_per_tick: 512,
            wire_bytes_per_tick: None,
            traffic: None,
        }
    }
}

/// Fleet construction failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A fleet needs at least one link.
    NoLinks,
    /// Channelized carriage needs an STM-4 or STM-16 envelope.
    InvalidEnvelope(StmLevel),
    /// The fault spec failed validation.
    Fault(FaultError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoLinks => write!(f, "fleet needs at least one link"),
            RuntimeError::InvalidEnvelope(l) => write!(
                f,
                "channelized carriage needs an STM-4/STM-16 envelope, got STM-{}",
                l.n()
            ),
            RuntimeError::Fault(e) => write!(f, "invalid fault spec: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-tick parameters threaded into every cohort.
#[derive(Debug, Clone)]
pub(crate) struct TickParams {
    pub ingress_depth: usize,
    pub cycles_per_tick: u64,
    pub wire_budget: usize,
    pub traffic: Option<TrafficSpec>,
}

/// Aggregate fleet reading: flow conservation counters, merged frame
/// latency, merged receiver/fault statistics.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    pub links: usize,
    pub workers: usize,
    /// Ticks granted via `run_ticks` (idle-skipped cohorts still count
    /// — this is wall time in ticks, not work done).
    pub ticks: u64,
    /// Fleet-scope flow counters; see [`LinkCounters`] for the
    /// conservation law.
    pub flow: LinkCounters,
    /// TX-queue refusals as the devices count them
    /// (`submit_rejects`) — must equal `flow.rejected`.
    pub device_tx_rejects: u64,
    /// The same refusals as the OAM `TX_REJECTS` registers mirror them.
    pub oam_tx_rejects: u64,
    /// Frames the transmitters actually streamed.
    pub tx_frames_sent: u64,
    /// Merged receive counters across every device.
    pub rx: RxCounters,
    /// Submit → delivery latency in ticks (fault-free links only).
    pub latency: Histogram,
    /// Injected-fault totals across every link/direction plan.
    pub fault: FaultStats,
}

impl FleetStats {
    /// Frames admitted but neither in the device, shed nor rejected —
    /// still waiting in ingress queues.  Zero after a full drain.
    pub fn queued(&self) -> u64 {
        self.flow
            .offered
            .saturating_sub(self.flow.accepted + self.flow.shed + self.flow.rejected)
    }

    /// Conservative p99 frame latency bound, in ticks.
    pub fn p99_latency_ticks(&self) -> Option<u64> {
        self.latency.quantile_bound(0.99)
    }
}

/// One link's contribution to a fleet report.
#[derive(Debug, Clone)]
pub struct LinkReport {
    pub link: usize,
    pub flow: LinkCounters,
    pub fault: FaultStats,
    pub p99_latency_ticks: Option<u64>,
}

/// The multi-link runtime.
pub struct Fleet {
    cfg: FleetConfig,
    cohorts: Vec<Mutex<Cohort>>,
    /// Links per cohort (1, or the channel-group width).
    group: usize,
    workers: usize,
    ticks_run: u64,
}

impl Fleet {
    pub fn new(cfg: FleetConfig) -> Result<Self, RuntimeError> {
        if cfg.links == 0 {
            return Err(RuntimeError::NoLinks);
        }
        let base_fault = match &cfg.fault {
            None => None,
            Some(spec) => Some(
                spec.clone()
                    .compile(cfg.seed)
                    .map_err(RuntimeError::Fault)?,
            ),
        };
        let payload_len = cfg.traffic.map(|t| t.payload_len).unwrap_or(256);
        let make_link = |id: usize, sonet: Option<StmLevel>| {
            ShardLink::new(
                id,
                cfg.width,
                sonet,
                base_fault.as_ref(),
                cfg.seed,
                payload_len,
            )
        };
        let (cohorts, group) = match cfg.carrier {
            Carrier::Raw => (
                (0..cfg.links)
                    .map(|id| Mutex::new(Cohort::single(make_link(id, None))))
                    .collect::<Vec<_>>(),
                1,
            ),
            Carrier::Sonet(level) => (
                (0..cfg.links)
                    .map(|id| Mutex::new(Cohort::single(make_link(id, Some(level)))))
                    .collect::<Vec<_>>(),
                1,
            ),
            Carrier::Channelized(level) => {
                let n = level.n();
                if n < 2 {
                    return Err(RuntimeError::InvalidEnvelope(level));
                }
                let mut cohorts = Vec::with_capacity(cfg.links.div_ceil(n));
                let mut id = 0;
                while id < cfg.links {
                    let span = n.min(cfg.links - id);
                    let links = (id..id + span).map(|i| make_link(i, None)).collect();
                    cohorts.push(Mutex::new(Cohort::channel_group(links, level)));
                    id += span;
                }
                (cohorts, n)
            }
        };
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        Ok(Fleet {
            cfg,
            cohorts,
            group,
            workers,
            ticks_run: 0,
        })
    }

    pub fn links(&self) -> usize {
        self.cfg.links
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn ticks_run(&self) -> u64 {
        self.ticks_run
    }

    fn params(&self) -> TickParams {
        TickParams {
            ingress_depth: self.cfg.ingress_depth,
            cycles_per_tick: self.cfg.cycles_per_tick,
            wire_budget: self.cfg.wire_bytes_per_tick.unwrap_or(usize::MAX),
            traffic: self.cfg.traffic,
        }
    }

    fn locate(&self, link: usize) -> (usize, usize) {
        assert!(link < self.cfg.links, "link {link} out of range");
        (link / self.group, link % self.group)
    }

    /// Offer one a → b frame to `link`'s bounded ingress queue.
    pub fn offer(&mut self, link: usize, protocol: u16, payload: &[u8]) -> OfferOutcome {
        self.offer_dir(link, Dir::AtoB, protocol, payload)
    }

    /// Offer a frame in an explicit direction.
    pub fn offer_dir(
        &mut self,
        link: usize,
        dir: Dir,
        protocol: u16,
        payload: &[u8],
    ) -> OfferOutcome {
        let depth = self.cfg.ingress_depth;
        let (c, slot) = self.locate(link);
        self.cohorts[c].lock().links[slot].offer(dir, protocol, payload, depth)
    }

    /// Advance every cohort by up to `n` ticks, sharded across the
    /// worker pool.  Cohorts with no pending ingress, egress or staged
    /// state are skipped (the `is_idle` machinery, lifted to fleet
    /// scope).
    pub fn run_ticks(&mut self, n: u64) {
        let params = self.params();
        let w = self.workers.min(self.cohorts.len()).max(1);
        if w <= 1 {
            for c in &self.cohorts {
                c.lock().drive(&params, n);
            }
        } else {
            match self.cfg.sharding {
                Sharding::WorkStealing => {
                    let cursor = AtomicUsize::new(0);
                    let cohorts = &self.cohorts;
                    let params = &params;
                    std::thread::scope(|s| {
                        for _ in 0..w {
                            s.spawn(|| loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(c) = cohorts.get(i) else { break };
                                c.lock().drive(params, n);
                            });
                        }
                    });
                }
                Sharding::Static => {
                    let cohorts = &self.cohorts;
                    let params = &params;
                    std::thread::scope(|s| {
                        for wi in 0..w {
                            s.spawn(move || {
                                let mut i = wi;
                                while let Some(c) = cohorts.get(i) {
                                    c.lock().drive(params, n);
                                    i += w;
                                }
                            });
                        }
                    });
                }
            }
        }
        self.ticks_run += n;
    }

    /// Every cohort fully quiesced: no generated load pending, ingress
    /// and wire empty, both devices drained.
    pub fn is_idle(&self) -> bool {
        let params = self.params();
        self.cohorts.iter().all(|c| !c.lock().has_work(&params))
    }

    /// Run until idle, in batches, spending at most `max_ticks`.
    /// Returns whether the fleet drained.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> bool {
        let mut spent = 0u64;
        while spent < max_ticks {
            if self.is_idle() {
                return true;
            }
            let batch = 64.min(max_ticks - spent);
            self.run_ticks(batch);
            spent += batch;
        }
        self.is_idle()
    }

    /// Aggregate reading across every link (exact merge — counter sums
    /// and histogram bucket adds, never export-side concatenation).
    pub fn stats(&self) -> FleetStats {
        let mut st = FleetStats {
            links: self.cfg.links,
            workers: self.workers,
            ticks: self.ticks_run,
            ..FleetStats::default()
        };
        for c in &self.cohorts {
            let c = c.lock();
            for l in &c.links {
                st.flow.add(&l.counters);
                st.latency.merge(&l.latency);
                st.fault.absorb(&l.fault_stats());
                st.device_tx_rejects += l.device_tx_rejects();
                st.oam_tx_rejects += l.oam_tx_rejects();
                st.tx_frames_sent += l.tx_frames_sent();
                let (ra, rb) = l.rx_totals();
                for r in [ra, rb] {
                    st.rx.frames_ok += r.frames_ok;
                    st.rx.fcs_errors += r.fcs_errors;
                    st.rx.aborts += r.aborts;
                    st.rx.runts += r.runts;
                    st.rx.giants += r.giants;
                    st.rx.address_mismatches += r.address_mismatches;
                    st.rx.header_errors += r.header_errors;
                }
            }
        }
        st
    }

    /// Per-link flow/fault/latency rows, in link order.
    pub fn link_reports(&self) -> Vec<LinkReport> {
        let mut rows = Vec::with_capacity(self.cfg.links);
        for c in &self.cohorts {
            let c = c.lock();
            for l in &c.links {
                rows.push(LinkReport {
                    link: l.id,
                    flow: l.counters,
                    fault: l.fault_stats(),
                    p99_latency_ticks: l.latency.quantile_bound(0.99),
                });
            }
        }
        rows.sort_by_key(|r| r.link);
        rows
    }

    /// Fleet-level snapshot set: flow + latency under scope `fleet`,
    /// merged receiver counters under `fleet-rx`, merged fault
    /// injection under `fleet-fault`.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        let st = self.stats();
        let fleet = Snapshot::new("fleet")
            .counter("links", st.links as u64)
            .counter("workers", st.workers as u64)
            .counter("ticks", st.ticks)
            .counter("offered", st.flow.offered)
            .counter("accepted", st.flow.accepted)
            .counter("shed", st.flow.shed)
            .counter("rejected", st.flow.rejected)
            .counter("queued", st.queued())
            .counter("delivered", st.flow.delivered)
            .counter("delivered_bytes", st.flow.delivered_bytes)
            .counter("tx_frames_sent", st.tx_frames_sent)
            .histogram("frame_latency_ticks", st.latency.clone());
        let rx = Snapshot::new("fleet-rx")
            .counter("frames_ok", st.rx.frames_ok)
            .counter("fcs_errors", st.rx.fcs_errors)
            .counter("aborts", st.rx.aborts)
            .counter("runts", st.rx.runts)
            .counter("giants", st.rx.giants)
            .counter("address_mismatches", st.rx.address_mismatches)
            .counter("header_errors", st.rx.header_errors);
        let mut fault = st.fault.snapshot();
        fault.scope = "fleet-fault".to_string();
        vec![fleet, rx, fault]
    }

    /// Prometheus text exposition of [`Fleet::snapshots`] — the scrape
    /// payload for a carrier-scale deployment.
    pub fn prometheus(&self) -> String {
        to_prometheus(&self.snapshots())
    }
}
