//! The fleet: thousands of independent duplex links sharded across a
//! fixed worker pool.
//!
//! Scheduling model (DESIGN.md §16): links are grouped into *cohorts*
//! (one self-carried link, or one channel group sharing an STM-N
//! envelope).  `run_ticks(n)` hands each cohort to exactly one worker,
//! which runs the cohort's entire n-tick batch before claiming the
//! next — so no per-tick barrier exists, idle cohorts are skipped via
//! the `has_work` check, and per-link results are independent of the
//! worker count, the sharding mode and the claim order.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use p5_core::rx::RxCounters;
use p5_core::DatapathWidth;
use p5_fault::{FaultError, FaultSpec, FaultStats};
use p5_sonet::StmLevel;
use p5_stream::{to_prometheus, Histogram, SharedRecorder, Snapshot};

use crate::link::{Cohort, Dir, LinkCounters, ShardLink};
use crate::traffic::TrafficSpec;
use p5_stream::Offer;
use p5_xport::LinkEngine;

/// What carries each link's wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// Bare wire: the line-rate mode (fused fast paths end to end).
    Raw,
    /// Each link rides its own STM-N path pair (scramble → frame →
    /// channel → delineate → descramble per direction).
    Sonet(StmLevel),
    /// Channelized: groups of `level.n()` links share one STM-N
    /// envelope pair, column-interleaved per G.707 — tributaries of a
    /// single fibre, advanced in lockstep as one cohort.
    Channelized(StmLevel),
}

/// How cohorts are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharding {
    /// Workers claim the next unclaimed cohort from a shared cursor —
    /// long-running cohorts don't stall the rest of a stride.
    WorkStealing,
    /// Worker `w` owns cohorts `w, w + W, w + 2W, …` — zero contention
    /// on the claim path, at the cost of load imbalance.
    Static,
}

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of duplex links.
    pub links: usize,
    /// Worker threads; `0` = one per available core.
    pub workers: usize,
    pub width: DatapathWidth,
    pub carrier: Carrier,
    pub sharding: Sharding,
    /// Chaos: forked per link/direction via `FaultPlan::fork_link`, so
    /// per-link fault streams replay independent of scheduling.
    pub fault: Option<FaultSpec>,
    pub seed: u64,
    /// Bounded per-link, per-direction ingress queue depth.
    pub ingress_depth: usize,
    /// Staged-pipeline cycles granted per busy device per tick.
    pub cycles_per_tick: u64,
    /// Per-direction line-rate cap: wire octets delivered into the
    /// sink device per tick.  `None` = uncapped (maximum host speed);
    /// `Some(cap)` over-subscribes the line and exercises shedding.
    pub wire_bytes_per_tick: Option<usize>,
    /// Open-loop generated load (see [`TrafficSpec`]); `None` = only
    /// externally offered frames.
    pub traffic: Option<TrafficSpec>,
    /// Restrict the fault spec to these link ids (`None` = every link).
    /// A seeded burst on one link of a large fleet — the
    /// health-detection scenario — is `fault: Some(..)`,
    /// `fault_links: Some(vec![id])`.
    pub fault_links: Option<Vec<usize>>,
    /// Links whose devices get frame-lifecycle tracing attached (a
    /// bounded [`SharedRecorder`] ring per device) — the flight-recorder
    /// tap.  Empty by default: tracing everything at fleet scale is
    /// exactly what the flight recorder exists to avoid.
    pub trace_links: Vec<usize>,
}

/// Events retained per traced device (two rings per traced link).
const TRACE_RING_CAP: usize = 512;

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            links: 1,
            workers: 0,
            width: DatapathWidth::W32,
            carrier: Carrier::Raw,
            sharding: Sharding::WorkStealing,
            fault: None,
            seed: 1,
            ingress_depth: 64,
            cycles_per_tick: 512,
            wire_bytes_per_tick: None,
            traffic: None,
            fault_links: None,
            trace_links: Vec::new(),
        }
    }
}

/// Fleet construction failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A fleet needs at least one link.
    NoLinks,
    /// Channelized carriage needs an STM-4 or STM-16 envelope.
    InvalidEnvelope(StmLevel),
    /// The fault spec failed validation.
    Fault(FaultError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoLinks => write!(f, "fleet needs at least one link"),
            RuntimeError::InvalidEnvelope(l) => write!(
                f,
                "channelized carriage needs an STM-4/STM-16 envelope, got STM-{}",
                l.n()
            ),
            RuntimeError::Fault(e) => write!(f, "invalid fault spec: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-tick parameters threaded into every cohort.
#[derive(Debug, Clone)]
pub(crate) struct TickParams {
    pub ingress_depth: usize,
    pub cycles_per_tick: u64,
    pub wire_budget: usize,
    pub traffic: Option<TrafficSpec>,
}

/// One worker thread's scheduling profile across every `run_ticks`
/// batch so far — the busy/idle/steal accounting dynamic rebalancing
/// (ROADMAP item 1) needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Cohorts this worker claimed.
    pub claims: u64,
    /// Ticks actually executed across those claims (idle-skipped ticks
    /// don't count).
    pub busy_ticks: u64,
    /// Claims that turned out to be fully idle (zero ticks executed).
    pub idle_claims: u64,
    /// Work-stealing claims of a cohort that static striding would
    /// have given to a different worker.
    pub steals: u64,
}

impl WorkerStats {
    fn add(&mut self, o: &WorkerStats) {
        self.claims += o.claims;
        self.busy_ticks += o.busy_ticks;
        self.idle_claims += o.idle_claims;
        self.steals += o.steals;
    }
}

/// Aggregate fleet reading: flow conservation counters, merged frame
/// latency, merged receiver/fault statistics.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    pub links: usize,
    pub workers: usize,
    /// Ticks granted via `run_ticks` (idle-skipped cohorts still count
    /// — this is wall time in ticks, not work done).
    pub ticks: u64,
    /// Fleet-scope flow counters; see [`LinkCounters`] for the
    /// conservation law.
    pub flow: LinkCounters,
    /// TX-queue refusals as the devices count them
    /// (`submit_rejects`) — must equal `flow.rejected`.
    pub device_tx_rejects: u64,
    /// The same refusals as the OAM `TX_REJECTS` registers mirror them.
    pub oam_tx_rejects: u64,
    /// Frames the transmitters actually streamed.
    pub tx_frames_sent: u64,
    /// Merged receive counters across every device.
    pub rx: RxCounters,
    /// Submit → delivery latency in ticks (fault-free links only).
    pub latency: Histogram,
    /// Injected-fault totals across every link/direction plan.
    pub fault: FaultStats,
    /// Receiver resynchronisation cost: octets skipped hunting for a
    /// flag after losing delineation, summed across every device.
    pub resync_bytes: u64,
    /// Per-worker scheduling profile (claims/busy/idle/steals).
    pub worker: Vec<WorkerStats>,
    /// Cohort load skew in thousandths: the busiest cohort's executed
    /// ticks over the mean, `1000` = perfectly balanced.  The signal a
    /// dynamic rebalancer would act on.
    pub load_skew_milli: u64,
}

impl FleetStats {
    /// Frames admitted but neither in the device, shed nor rejected —
    /// still waiting in ingress queues.  Zero after a full drain.
    pub fn queued(&self) -> u64 {
        self.flow
            .offered
            .saturating_sub(self.flow.accepted + self.flow.shed + self.flow.rejected)
    }

    /// Conservative p99 frame latency bound, in ticks.
    pub fn p99_latency_ticks(&self) -> Option<u64> {
        self.latency.quantile_bound(0.99)
    }

    /// Summed worker profile (claims/busy/idle/steals across the pool).
    pub fn worker_totals(&self) -> WorkerStats {
        let mut t = WorkerStats::default();
        for w in &self.worker {
            t.add(w);
        }
        t
    }
}

/// One link's contribution to a fleet report — the health scorer's
/// per-link inputs (FCS errors, resync cost, shed/reject rates) ride
/// here alongside flow and latency.
#[derive(Debug, Clone)]
pub struct LinkReport {
    pub link: usize,
    pub flow: LinkCounters,
    pub fault: FaultStats,
    pub p99_latency_ticks: Option<u64>,
    /// Merged receive counters, both ends.
    pub rx: RxCounters,
    /// Octets skipped resynchronising after lost delineation.
    pub resync_bytes: u64,
    /// Device TX-queue refusals, both ends.
    pub tx_rejects: u64,
    /// The link's private clock (ticks it actually executed).
    pub ticks: u64,
}

/// The multi-link runtime.
pub struct Fleet {
    cfg: FleetConfig,
    cohorts: Vec<Mutex<Cohort>>,
    /// Links per cohort (1, or the channel-group width).
    group: usize,
    workers: usize,
    ticks_run: u64,
    worker_stats: Vec<WorkerStats>,
    /// `(link id, end-a recorder, end-b recorder)` for every traced
    /// link, in `cfg.trace_links` order.
    recorders: Vec<(usize, SharedRecorder, SharedRecorder)>,
    /// Cohort index of each attached remote endpoint, in attach order.
    remotes: Vec<usize>,
}

impl Fleet {
    pub fn new(cfg: FleetConfig) -> Result<Self, RuntimeError> {
        if cfg.links == 0 {
            return Err(RuntimeError::NoLinks);
        }
        let base_fault = match &cfg.fault {
            None => None,
            Some(spec) => Some(
                spec.clone()
                    .compile(cfg.seed)
                    .map_err(RuntimeError::Fault)?,
            ),
        };
        let payload_len = cfg.traffic.map(|t| t.payload_len).unwrap_or(256);
        let make_link = |id: usize, sonet: Option<StmLevel>| {
            // Fault restricted to the targeted links; the rest stay
            // clean (and keep latency tracking — only faulted links
            // can lose accepted frames).
            let faulted = cfg
                .fault_links
                .as_ref()
                .is_none_or(|targets| targets.contains(&id));
            ShardLink::new(
                id,
                cfg.width,
                sonet,
                if faulted { base_fault.as_ref() } else { None },
                cfg.seed,
                payload_len,
            )
        };
        let (cohorts, group) = match cfg.carrier {
            Carrier::Raw => (
                (0..cfg.links)
                    .map(|id| Mutex::new(Cohort::single(make_link(id, None))))
                    .collect::<Vec<_>>(),
                1,
            ),
            Carrier::Sonet(level) => (
                (0..cfg.links)
                    .map(|id| Mutex::new(Cohort::single(make_link(id, Some(level)))))
                    .collect::<Vec<_>>(),
                1,
            ),
            Carrier::Channelized(level) => {
                let n = level.n();
                if n < 2 {
                    return Err(RuntimeError::InvalidEnvelope(level));
                }
                let mut cohorts = Vec::with_capacity(cfg.links.div_ceil(n));
                let mut id = 0;
                while id < cfg.links {
                    let span = n.min(cfg.links - id);
                    let links = (id..id + span).map(|i| make_link(i, None)).collect();
                    cohorts.push(Mutex::new(Cohort::channel_group(links, level)));
                    id += span;
                }
                (cohorts, n)
            }
        };
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let mut fleet = Fleet {
            cfg,
            cohorts,
            group,
            workers,
            ticks_run: 0,
            worker_stats: vec![WorkerStats::default(); workers],
            recorders: Vec::new(),
            remotes: Vec::new(),
        };
        for i in 0..fleet.cfg.trace_links.len() {
            let id = fleet.cfg.trace_links[i];
            if id >= fleet.cfg.links || fleet.recorders.iter().any(|(l, _, _)| *l == id) {
                continue;
            }
            let (c, slot) = fleet.locate(id);
            let (ra, rb) = fleet.cohorts[c].lock().links[slot].attach_recorders(TRACE_RING_CAP);
            fleet.recorders.push((id, ra, rb));
        }
        Ok(fleet)
    }

    pub fn links(&self) -> usize {
        self.cfg.links
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn ticks_run(&self) -> u64 {
        self.ticks_run
    }

    /// Per-worker scheduling profile accumulated across every
    /// `run_ticks` batch so far.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.worker_stats
    }

    /// Trace recorders for every traced link, as
    /// `(link id, end-a, end-b)` — see [`FleetConfig::trace_links`].
    pub fn recorders(&self) -> &[(usize, SharedRecorder, SharedRecorder)] {
        &self.recorders
    }

    fn params(&self) -> TickParams {
        TickParams {
            ingress_depth: self.cfg.ingress_depth,
            cycles_per_tick: self.cfg.cycles_per_tick,
            wire_budget: self.cfg.wire_bytes_per_tick.unwrap_or(usize::MAX),
            traffic: self.cfg.traffic,
        }
    }

    fn locate(&self, link: usize) -> (usize, usize) {
        assert!(link < self.cfg.links, "link {link} out of range");
        (link / self.group, link % self.group)
    }

    /// Adopt a running remote endpoint — a [`LinkEngine`] bound to a
    /// real transport — as a cohort of this fleet.  Worker threads pump
    /// it during [`Fleet::run_ticks`] alongside the simulated links (a
    /// remote "tick" is one engine service pass), so a gateway process
    /// can mix thousands of in-memory links with a handful of real
    /// sockets on one scheduler.  Returns the remote's handle for
    /// [`Fleet::offer_remote`] and friends.
    pub fn attach_remote(&mut self, engine: LinkEngine) -> usize {
        self.cohorts.push(Mutex::new(Cohort::remote(engine)));
        self.remotes.push(self.cohorts.len() - 1);
        self.remotes.len() - 1
    }

    /// Attached remote endpoints.
    pub fn remote_count(&self) -> usize {
        self.remotes.len()
    }

    fn remote_cohort(&self, remote: usize) -> &Mutex<Cohort> {
        let idx = *self
            .remotes
            .get(remote)
            .unwrap_or_else(|| panic!("remote {remote} out of range"));
        &self.cohorts[idx]
    }

    /// Offer one frame at `remote`'s admission boundary (the unified
    /// [`Offer`] dialect — same contract as [`Fleet::offer`]).
    pub fn offer_remote(&self, remote: usize, protocol: u16, payload: &[u8]) -> Offer {
        let mut c = self.remote_cohort(remote).lock();
        c.remote
            .as_mut()
            .expect("remote cohort")
            .offer(protocol, payload)
    }

    /// Frames `remote` delivered since the last call.
    pub fn take_remote_deliveries(&self, remote: usize) -> Vec<(u16, Vec<u8>)> {
        let mut c = self.remote_cohort(remote).lock();
        c.remote.as_mut().expect("remote cohort").take_deliveries()
    }

    /// Is `remote`'s network phase open (IPCP up / pipe established)?
    pub fn remote_network_up(&self, remote: usize) -> bool {
        let c = self.remote_cohort(remote).lock();
        c.remote.as_ref().expect("remote cohort").is_network_up()
    }

    /// `remote`'s transport/flow counter snapshot (scope `xport`).
    pub fn remote_snapshot(&self, remote: usize) -> Snapshot {
        use p5_stream::Observable;
        let c = self.remote_cohort(remote).lock();
        c.remote.as_ref().expect("remote cohort").snapshot()
    }

    /// Offer one a → b frame to `link`'s bounded ingress queue.
    pub fn offer(&mut self, link: usize, protocol: u16, payload: &[u8]) -> Offer {
        self.offer_dir(link, Dir::AtoB, protocol, payload)
    }

    /// Offer a frame in an explicit direction.
    pub fn offer_dir(&mut self, link: usize, dir: Dir, protocol: u16, payload: &[u8]) -> Offer {
        let depth = self.cfg.ingress_depth;
        let (c, slot) = self.locate(link);
        self.cohorts[c].lock().links[slot].offer(dir, protocol, payload, depth)
    }

    /// Advance every cohort by up to `n` ticks, sharded across the
    /// worker pool.  Cohorts with no pending ingress, egress or staged
    /// state are skipped (the `is_idle` machinery, lifted to fleet
    /// scope).  Returns the busy ticks actually executed, summed over
    /// cohorts — `0` means the fleet was already drained, letting
    /// callers detect idleness without a separate full-fleet scan.
    pub fn run_ticks(&mut self, n: u64) -> u64 {
        let params = self.params();
        let w = self.workers.min(self.cohorts.len()).max(1);
        let mut tallies = vec![WorkerStats::default(); w];
        if w <= 1 {
            let t = &mut tallies[0];
            for c in &self.cohorts {
                let ran = c.lock().drive(&params, n);
                t.claims += 1;
                t.busy_ticks += ran;
                t.idle_claims += (ran == 0) as u64;
            }
        } else {
            match self.cfg.sharding {
                Sharding::WorkStealing => {
                    let cursor = AtomicUsize::new(0);
                    let cursor = &cursor;
                    let cohorts = &self.cohorts;
                    let params = &params;
                    std::thread::scope(|s| {
                        for (wi, t) in tallies.iter_mut().enumerate() {
                            s.spawn(move || loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(c) = cohorts.get(i) else { break };
                                let ran = c.lock().drive(params, n);
                                t.claims += 1;
                                t.busy_ticks += ran;
                                t.idle_claims += (ran == 0) as u64;
                                // A claim static striding would have
                                // handed to a different worker.
                                t.steals += (i % w != wi) as u64;
                            });
                        }
                    });
                }
                Sharding::Static => {
                    let cohorts = &self.cohorts;
                    let params = &params;
                    std::thread::scope(|s| {
                        for (wi, t) in tallies.iter_mut().enumerate() {
                            s.spawn(move || {
                                let mut i = wi;
                                while let Some(c) = cohorts.get(i) {
                                    let ran = c.lock().drive(params, n);
                                    t.claims += 1;
                                    t.busy_ticks += ran;
                                    t.idle_claims += (ran == 0) as u64;
                                    i += w;
                                }
                            });
                        }
                    });
                }
            }
        }
        let busy: u64 = tallies.iter().map(|t| t.busy_ticks).sum();
        for (acc, t) in self.worker_stats.iter_mut().zip(tallies.iter()) {
            acc.add(t);
        }
        self.ticks_run += n;
        busy
    }

    /// Advance the fleet like [`Fleet::run_ticks`], but in batches of
    /// `every` ticks, invoking `sample` on the quiesced fleet after
    /// each batch — the collector's hook: no worker holds a cohort
    /// while `sample` runs, so it can read stats, link reports and
    /// trace rings without contending with the data path.  Stops early
    /// once idle; returns the ticks actually granted.
    pub fn run_sampled(
        &mut self,
        max_ticks: u64,
        every: u64,
        mut sample: impl FnMut(&Fleet),
    ) -> u64 {
        let every = every.max(1);
        let mut spent = 0u64;
        while spent < max_ticks {
            let batch = every.min(max_ticks - spent);
            // Idleness falls out of the batch itself (every cohort's
            // `drive` early-exits on no work), so the no-collector
            // fast path pays no extra full-fleet `is_idle` scan.
            if self.run_ticks(batch) == 0 {
                break;
            }
            spent += batch;
            sample(self);
        }
        spent
    }

    /// Every cohort fully quiesced: no generated load pending, ingress
    /// and wire empty, both devices drained.
    pub fn is_idle(&self) -> bool {
        let params = self.params();
        self.cohorts.iter().all(|c| !c.lock().has_work(&params))
    }

    /// Run until idle, in batches, spending at most `max_ticks`.
    /// Returns whether the fleet drained.
    pub fn run_until_drained(&mut self, max_ticks: u64) -> bool {
        let mut spent = 0u64;
        while spent < max_ticks {
            if self.is_idle() {
                return true;
            }
            let batch = 64.min(max_ticks - spent);
            self.run_ticks(batch);
            spent += batch;
        }
        self.is_idle()
    }

    /// Aggregate reading across every link (exact merge — counter sums
    /// and histogram bucket adds, never export-side concatenation).
    pub fn stats(&self) -> FleetStats {
        let mut st = FleetStats {
            links: self.cfg.links,
            workers: self.workers,
            ticks: self.ticks_run,
            ..FleetStats::default()
        };
        st.worker = self.worker_stats.clone();
        let mut max_work = 0u64;
        let mut total_work = 0u64;
        for c in &self.cohorts {
            let c = c.lock();
            max_work = max_work.max(c.work_ticks);
            total_work += c.work_ticks;
            if let Some(e) = &c.remote {
                let x = e.counters;
                st.flow.add(&LinkCounters {
                    offered: x.offered,
                    accepted: x.accepted,
                    shed: x.shed,
                    rejected: x.rejected,
                    delivered: x.delivered,
                    delivered_bytes: x.delivered_bytes,
                });
            }
            for l in &c.links {
                st.flow.add(&l.counters);
                st.latency.merge(&l.latency);
                st.fault.absorb(&l.fault_stats());
                st.device_tx_rejects += l.device_tx_rejects();
                st.oam_tx_rejects += l.oam_tx_rejects();
                st.tx_frames_sent += l.tx_frames_sent();
                st.resync_bytes += l.resync_bytes();
                let (ra, rb) = l.rx_totals();
                for r in [ra, rb] {
                    st.rx.frames_ok += r.frames_ok;
                    st.rx.fcs_errors += r.fcs_errors;
                    st.rx.aborts += r.aborts;
                    st.rx.runts += r.runts;
                    st.rx.giants += r.giants;
                    st.rx.address_mismatches += r.address_mismatches;
                    st.rx.header_errors += r.header_errors;
                }
            }
        }
        let mean = total_work as f64 / self.cohorts.len() as f64;
        st.load_skew_milli = if mean > 0.0 {
            (max_work as f64 / mean * 1000.0).round() as u64
        } else {
            1000
        };
        st
    }

    /// Per-link flow/fault/latency rows, in link order.
    pub fn link_reports(&self) -> Vec<LinkReport> {
        let mut rows = Vec::with_capacity(self.cfg.links);
        for c in &self.cohorts {
            let c = c.lock();
            for l in &c.links {
                let (ra, rb) = l.rx_totals();
                let mut rx = ra;
                rx.frames_ok += rb.frames_ok;
                rx.fcs_errors += rb.fcs_errors;
                rx.aborts += rb.aborts;
                rx.runts += rb.runts;
                rx.giants += rb.giants;
                rx.address_mismatches += rb.address_mismatches;
                rx.header_errors += rb.header_errors;
                rows.push(LinkReport {
                    link: l.id,
                    flow: l.counters,
                    fault: l.fault_stats(),
                    p99_latency_ticks: l.latency.quantile_bound(0.99),
                    rx,
                    resync_bytes: l.resync_bytes(),
                    tx_rejects: l.device_tx_rejects(),
                    ticks: l.ticks(),
                });
            }
        }
        rows.sort_by_key(|r| r.link);
        rows
    }

    /// Fleet-level snapshot set: flow + latency under scope `fleet`,
    /// merged receiver counters under `fleet-rx`, merged fault
    /// injection under `fleet-fault`.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        let st = self.stats();
        let fleet = Snapshot::new("fleet")
            .counter("links", st.links as u64)
            .counter("workers", st.workers as u64)
            .counter("ticks", st.ticks)
            .counter("offered", st.flow.offered)
            .counter("accepted", st.flow.accepted)
            .counter("shed", st.flow.shed)
            .counter("rejected", st.flow.rejected)
            .counter("queued", st.queued())
            .counter("delivered", st.flow.delivered)
            .counter("delivered_bytes", st.flow.delivered_bytes)
            .counter("tx_frames_sent", st.tx_frames_sent)
            .histogram("frame_latency_ticks", st.latency.clone());
        let wt = st.worker_totals();
        let sched = Snapshot::new("fleet-sched")
            .counter("claims", wt.claims)
            .counter("busy_ticks", wt.busy_ticks)
            .counter("idle_claims", wt.idle_claims)
            .counter("steals", wt.steals)
            .counter("load_skew_milli", st.load_skew_milli);
        let rx = Snapshot::new("fleet-rx")
            .counter("frames_ok", st.rx.frames_ok)
            .counter("fcs_errors", st.rx.fcs_errors)
            .counter("aborts", st.rx.aborts)
            .counter("runts", st.rx.runts)
            .counter("giants", st.rx.giants)
            .counter("address_mismatches", st.rx.address_mismatches)
            .counter("header_errors", st.rx.header_errors)
            .counter("resync_bytes", st.resync_bytes);
        let mut fault = st.fault.snapshot();
        fault.scope = "fleet-fault".to_string();
        vec![fleet, sched, rx, fault]
    }

    /// Prometheus text exposition of [`Fleet::snapshots`] — the scrape
    /// payload for a carrier-scale deployment.
    pub fn prometheus(&self) -> String {
        to_prometheus(&self.snapshots())
    }
}
