//! Satellite: graceful-overload conservation, property-tested.
//!
//! For any fleet shape and any degree of line over-subscription:
//!
//! * `offered == accepted + shed + rejected` once drained (nothing
//!   still queued, nothing unaccounted);
//! * every `rejected` frame shows up in the devices' `submit_rejects`
//!   AND the OAM `TX_REJECTS` registers — the reject path is never
//!   bypassed;
//! * no accepted frame is dropped: `delivered == accepted` on clean
//!   links, with receivers confirming every delivery (`frames_ok`,
//!   zero FCS/abort/header errors);
//! * all of it is byte-identical across worker counts.

use p5_runtime::{Fleet, FleetConfig, Sharding, TrafficSpec};
use proptest::prelude::*;

fn drained(cfg: FleetConfig) -> Fleet {
    let mut fleet = Fleet::new(cfg).expect("valid config");
    assert!(fleet.run_until_drained(400_000), "fleet failed to drain");
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overload_conserves_every_frame(
        links in 1usize..8,
        ingress_depth in 1usize..16,
        cap_selector in 0usize..4,
        frames_per_tick in 1u32..8,
        ticks in 1u64..64,
        payload_len in 1usize..512,
        duplex in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // None = uncapped; small caps over-subscribe the line hard.
        let wire_cap = [None, Some(64), Some(256), Some(4096)][cap_selector];
        let fleet = drained(FleetConfig {
            links,
            workers: 3,
            ingress_depth,
            wire_bytes_per_tick: wire_cap,
            seed,
            traffic: Some(TrafficSpec {
                frames_per_tick,
                payload_len,
                duplex,
                ticks,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        });
        let st = fleet.stats();

        let dirs = if duplex { 2 } else { 1 };
        prop_assert_eq!(
            st.flow.offered,
            links as u64 * frames_per_tick as u64 * ticks * dirs
        );
        // Conservation at fleet scope: a drained fleet holds nothing.
        prop_assert_eq!(st.queued(), 0);
        prop_assert_eq!(
            st.flow.offered,
            st.flow.accepted + st.flow.shed + st.flow.rejected
        );
        // Every reject is accounted by the device AND its OAM mirror.
        prop_assert_eq!(st.device_tx_rejects, st.flow.rejected);
        prop_assert_eq!(st.oam_tx_rejects, st.flow.rejected);
        // No accepted frame is ever dropped on a clean line.
        prop_assert_eq!(st.flow.delivered, st.flow.accepted);
        prop_assert_eq!(st.rx.frames_ok, st.flow.delivered);
        prop_assert_eq!(
            st.rx.fcs_errors + st.rx.aborts + st.rx.runts + st.rx.giants
                + st.rx.header_errors + st.rx.address_mismatches,
            0
        );
        // Per-link conservation too — shedding is a local decision.
        for r in fleet.link_reports() {
            prop_assert_eq!(
                r.flow.offered,
                r.flow.accepted + r.flow.shed + r.flow.rejected,
                "link {} leaks frames", r.link
            );
            prop_assert_eq!(r.flow.delivered, r.flow.accepted);
        }
    }

    #[test]
    fn shedding_is_deterministic_across_workers(
        links in 1usize..8,
        ingress_depth in 1usize..8,
        frames_per_tick in 2u32..8,
        ticks in 8u64..48,
        seed in any::<u64>(),
    ) {
        // A hard 64-octet/tick cap forces the full shed/reject chain.
        let report = |workers: usize, sharding: Sharding| {
            drained(FleetConfig {
                links,
                workers,
                sharding,
                ingress_depth,
                wire_bytes_per_tick: Some(64),
                seed,
                traffic: Some(TrafficSpec {
                    frames_per_tick,
                    payload_len: 256,
                    ticks,
                    ..TrafficSpec::default()
                }),
                ..FleetConfig::default()
            })
            .link_reports()
            .into_iter()
            .map(|r| (r.link, r.flow))
            .collect::<Vec<_>>()
        };
        let reference = report(1, Sharding::Static);
        prop_assert_eq!(&report(4, Sharding::WorkStealing), &reference);
        prop_assert_eq!(&report(7, Sharding::Static), &reference);
    }
}
