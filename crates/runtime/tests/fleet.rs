//! Fleet integration: round trips over every carrier, replay
//! determinism across worker counts and sharding modes, and the
//! telemetry surface.

use p5_fault::FaultSpec;
use p5_runtime::{Carrier, Dir, Fleet, FleetConfig, Offer, RuntimeError, Sharding, TrafficSpec};
use p5_sonet::StmLevel;

fn drained(mut fleet: Fleet) -> Fleet {
    assert!(fleet.run_until_drained(200_000), "fleet failed to drain");
    fleet
}

#[test]
fn raw_fleet_delivers_generated_load() {
    let fleet = drained(
        Fleet::new(FleetConfig {
            links: 24,
            workers: 4,
            traffic: Some(TrafficSpec {
                frames_per_tick: 2,
                ticks: 16,
                duplex: true,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .unwrap(),
    );
    let st = fleet.stats();
    // 24 links x 2 frames x 16 ticks x 2 directions.
    assert_eq!(st.flow.offered, 24 * 2 * 16 * 2);
    assert_eq!(
        st.flow.accepted, st.flow.offered,
        "uncongested fleet sheds nothing"
    );
    assert_eq!(st.flow.delivered, st.flow.offered);
    assert_eq!(st.rx.frames_ok, st.flow.delivered);
    assert_eq!(st.rx.fcs_errors + st.rx.aborts + st.rx.header_errors, 0);
    assert_eq!(st.queued(), 0);
    assert!(st.p99_latency_ticks().is_some());
}

#[test]
fn external_offers_round_trip_both_directions() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 3,
        workers: 1,
        ..FleetConfig::default()
    })
    .unwrap();
    for link in 0..3 {
        assert_eq!(fleet.offer(link, 0x0021, b"ping from a"), Offer::Accepted);
        assert_eq!(
            fleet.offer_dir(link, Dir::BtoA, 0x0021, b"pong from b"),
            Offer::Accepted
        );
    }
    let fleet = drained(fleet);
    let st = fleet.stats();
    assert_eq!(st.flow.offered, 6);
    assert_eq!(st.flow.delivered, 6);
    assert_eq!(st.rx.frames_ok, 6);
    assert_eq!(st.flow.delivered_bytes, 3 * (11 + 11));
}

#[test]
fn sonet_carrier_round_trips() {
    let fleet = drained(
        Fleet::new(FleetConfig {
            links: 4,
            workers: 2,
            carrier: Carrier::Sonet(StmLevel::Stm4),
            traffic: Some(TrafficSpec {
                ticks: 8,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .unwrap(),
    );
    let st = fleet.stats();
    assert_eq!(st.flow.delivered, 4 * 8);
    assert_eq!(st.rx.frames_ok, st.flow.delivered);
    assert_eq!(st.rx.fcs_errors, 0);
}

#[test]
fn channelized_carrier_round_trips() {
    // 10 links on STM-4 envelopes: cohorts of 4, 4, 2 tributaries.
    let fleet = drained(
        Fleet::new(FleetConfig {
            links: 10,
            workers: 3,
            carrier: Carrier::Channelized(StmLevel::Stm4),
            traffic: Some(TrafficSpec {
                ticks: 6,
                duplex: true,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .unwrap(),
    );
    let st = fleet.stats();
    assert_eq!(st.flow.delivered, 10 * 6 * 2);
    assert_eq!(st.rx.frames_ok, st.flow.delivered);
    assert_eq!(st.rx.fcs_errors, 0);
    for r in fleet.link_reports() {
        assert_eq!(r.flow.delivered, 12, "link {} short-changed", r.link);
    }
}

fn replay_config(workers: usize, sharding: Sharding) -> FleetConfig {
    FleetConfig {
        links: 20,
        workers,
        sharding,
        carrier: Carrier::Raw,
        fault: Some(FaultSpec {
            ber: 2e-4,
            slip: 1e-3,
            transfer_loss: 5e-3,
            ..FaultSpec::default()
        }),
        seed: 0xC0FFEE,
        traffic: Some(TrafficSpec {
            frames_per_tick: 2,
            ticks: 24,
            duplex: true,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    }
}

/// The acceptance-criterion replay test: same seeds and link count give
/// identical per-link delivery counts and fault statistics, no matter
/// how many workers drive the fleet or how cohorts are assigned.
#[test]
fn replay_is_independent_of_worker_count_and_sharding() {
    let reference: Vec<_> = drained(Fleet::new(replay_config(1, Sharding::Static)).unwrap())
        .link_reports()
        .into_iter()
        .map(|r| (r.link, r.flow, r.fault))
        .collect();
    // Faults were injected and something was still delivered.
    assert!(reference.iter().any(|(_, f, _)| f.delivered > 0));
    assert!(reference.iter().any(|(_, _, s)| s.bit_errors > 0));
    for (workers, sharding) in [
        (2, Sharding::WorkStealing),
        (5, Sharding::WorkStealing),
        (8, Sharding::Static),
        (3, Sharding::Static),
    ] {
        let got: Vec<_> = drained(Fleet::new(replay_config(workers, sharding)).unwrap())
            .link_reports()
            .into_iter()
            .map(|r| (r.link, r.flow, r.fault))
            .collect();
        assert_eq!(
            got, reference,
            "replay diverged at workers={workers}, sharding={sharding:?}"
        );
    }
}

#[test]
fn line_rate_cap_backpressures_without_losing_frames() {
    // A 64-octet/tick line under 8 frames/tick of 256-octet offered
    // load: the wire backlog crosses the fused high-water mark, the
    // bounded ingress queue fills behind it, and admission sheds.
    let fleet = drained(
        Fleet::new(FleetConfig {
            links: 6,
            workers: 2,
            ingress_depth: 8,
            wire_bytes_per_tick: Some(64),
            traffic: Some(TrafficSpec {
                frames_per_tick: 8,
                ticks: 128,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .unwrap(),
    );
    let st = fleet.stats();
    assert!(st.flow.shed > 0, "over-subscribed line should shed");
    assert_eq!(
        st.flow.offered,
        st.flow.accepted + st.flow.shed + st.flow.rejected,
        "conservation after drain"
    );
    assert_eq!(
        st.flow.delivered, st.flow.accepted,
        "no accepted frame lost"
    );
    assert_eq!(st.device_tx_rejects, st.flow.rejected);
    assert_eq!(st.oam_tx_rejects, st.flow.rejected);
}

#[test]
fn construction_errors() {
    assert!(matches!(
        Fleet::new(FleetConfig {
            links: 0,
            ..FleetConfig::default()
        }),
        Err(RuntimeError::NoLinks)
    ));
    assert!(matches!(
        Fleet::new(FleetConfig {
            carrier: Carrier::Channelized(StmLevel::Stm1),
            ..FleetConfig::default()
        }),
        Err(RuntimeError::InvalidEnvelope(StmLevel::Stm1))
    ));
    assert!(matches!(
        Fleet::new(FleetConfig {
            fault: Some(FaultSpec {
                ber: 2.0, // not a probability
                ..FaultSpec::default()
            }),
            ..FleetConfig::default()
        }),
        Err(RuntimeError::Fault(_))
    ));
}

#[test]
fn prometheus_export_carries_fleet_scope() {
    let fleet = drained(
        Fleet::new(FleetConfig {
            links: 5,
            workers: 2,
            traffic: Some(TrafficSpec {
                ticks: 4,
                ..TrafficSpec::default()
            }),
            ..FleetConfig::default()
        })
        .unwrap(),
    );
    let text = fleet.prometheus();
    for needle in [
        "fleet_delivered",
        "fleet_offered",
        "fleet_frame_latency_ticks_bucket",
        "fleet_rx_frames_ok",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    let snaps = fleet.snapshots();
    assert!(snaps.iter().any(|s| s.scope == "fleet"));
    assert!(snaps.iter().any(|s| s.scope == "fleet-rx"));
    assert!(snaps.iter().any(|s| s.scope == "fleet-fault"));
}

#[test]
fn idle_fleet_runs_for_free() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 1000,
        workers: 4,
        ..FleetConfig::default()
    })
    .unwrap();
    assert!(fleet.is_idle());
    fleet.run_ticks(1000); // all cohorts skip; this must be near-instant
    assert!(fleet.is_idle());
    let st = fleet.stats();
    assert_eq!(st.flow.offered, 0);
    assert_eq!(st.ticks, 1000);
}

#[test]
fn run_sampled_invokes_callback_and_accounts_workers() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 16,
        workers: 4,
        traffic: Some(TrafficSpec {
            ticks: 32,
            duplex: true,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .unwrap();
    let mut samples = 0u32;
    let mut last_delivered = 0u64;
    let spent = fleet.run_sampled(10_000, 8, |f| {
        samples += 1;
        // Deliveries are monotone across samples (snapshots are
        // cumulative readings of a quiesced fleet).
        let d = f.stats().flow.delivered;
        assert!(d >= last_delivered);
        last_delivered = d;
    });
    assert!(samples >= 4, "expected >=4 samples, got {samples}");
    assert_eq!(spent % 8, 0);
    assert!(fleet.is_idle(), "run_sampled stops once drained");
    let st = fleet.stats();
    assert_eq!(st.flow.delivered, 16 * 32 * 2);
    // Worker accounting: every claim landed somewhere, busy time
    // matches the cohorts' executed ticks.
    let totals = st.worker_totals();
    assert!(totals.claims > 0);
    assert!(totals.busy_ticks > 0);
    assert_eq!(st.worker.len(), 4);
    assert!(st.load_skew_milli >= 1000, "skew is max/mean >= 1");
}

#[test]
fn fault_links_confines_the_burst_to_targets() {
    let cfg = FleetConfig {
        links: 12,
        workers: 3,
        fault: Some(FaultSpec {
            ber: 5e-3,
            ..FaultSpec::default()
        }),
        fault_links: Some(vec![7]),
        seed: 0xBEEF,
        traffic: Some(TrafficSpec {
            frames_per_tick: 2,
            ticks: 24,
            duplex: true,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    };
    let fleet = drained(Fleet::new(cfg).unwrap());
    let reports = fleet.link_reports();
    let bad = &reports[7];
    assert!(
        bad.fault.bit_errors > 0,
        "targeted link saw no injected errors"
    );
    assert!(
        bad.rx.fcs_errors > 0,
        "corruption must surface as FCS errors"
    );
    for r in reports.iter().filter(|r| r.link != 7) {
        assert_eq!(r.fault.bit_errors, 0, "link {} was not targeted", r.link);
        assert_eq!(r.rx.fcs_errors, 0);
        // Untargeted links keep latency tracking.
        assert!(r.p99_latency_ticks.is_some());
    }
}

#[test]
fn trace_links_record_frame_lifecycles() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 8,
        workers: 2,
        trace_links: vec![3, 3, 99],
        traffic: Some(TrafficSpec {
            ticks: 4,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .unwrap();
    // Dup and out-of-range ids are dropped.
    assert_eq!(fleet.recorders().len(), 1);
    assert!(fleet.run_until_drained(100_000));
    let (id, ra, rb) = &fleet.recorders()[0];
    assert_eq!(*id, 3);
    // a transmits, b receives: both ends saw lifecycle events.
    assert!(!ra.is_empty(), "end-a recorded nothing");
    assert!(!rb.is_empty(), "end-b recorded nothing");
}

#[test]
fn sched_snapshot_rides_the_scrape() {
    let mut fleet = Fleet::new(FleetConfig {
        links: 4,
        workers: 2,
        traffic: Some(TrafficSpec {
            ticks: 4,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .unwrap();
    assert!(fleet.run_until_drained(100_000));
    let snaps = fleet.snapshots();
    let sched = snaps.iter().find(|s| s.scope == "fleet-sched").unwrap();
    assert!(sched.get("claims").unwrap() > 0);
    assert!(sched.get("busy_ticks").unwrap() > 0);
    assert!(sched.get("load_skew_milli").unwrap() >= 1000);
    assert!(fleet.prometheus().contains("p5_fleet_sched_busy_ticks"));
}

#[test]
fn remote_endpoint_rides_the_worker_pool() {
    use p5_core::DatapathWidth;
    use p5_ppp::NegotiationProfile;
    use p5_xport::{LinkEngine, PipeTransport, SessionDriver};
    use std::time::{Duration, Instant};

    // A small simulated fleet adopts one transport-backed endpoint; the
    // peer runs on its own driver thread, as a separate process would.
    let (ta, tb) = PipeTransport::pair();
    let gateway = LinkEngine::new(
        DatapathWidth::W32,
        &NegotiationProfile::new().magic(0xF1EE7).ip([172, 16, 0, 1]),
        Box::new(ta),
    );
    let peer = SessionDriver::spawn(LinkEngine::new(
        DatapathWidth::W32,
        &NegotiationProfile::new().magic(0x9EE9).ip([172, 16, 0, 2]),
        Box::new(tb),
    ));

    let mut fleet = Fleet::new(FleetConfig {
        links: 4,
        workers: 2,
        traffic: Some(TrafficSpec {
            ticks: 4,
            ..TrafficSpec::default()
        }),
        ..FleetConfig::default()
    })
    .unwrap();
    let remote = fleet.attach_remote(gateway);
    assert_eq!(fleet.remote_count(), 1);

    // Negotiation needs wall time (session restart timers), so pump in
    // small batches until IPCP opens on both ends.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !(fleet.remote_network_up(remote) && peer.is_network_up()) {
        assert!(Instant::now() < deadline, "bring-up timed out");
        fleet.run_ticks(64);
        std::thread::sleep(Duration::from_millis(1));
    }

    // Remote traffic joins the same scheduler as the simulated links.
    let datagram = vec![0x5Au8; 200];
    let mut sent = 0;
    while sent < 8 {
        assert!(Instant::now() < deadline, "admission timed out");
        if fleet.offer_remote(remote, 0x0021, &datagram).is_admitted() {
            sent += 1;
        }
        fleet.run_ticks(16);
    }
    let mut got = Vec::new();
    while got.len() < 8 {
        assert!(Instant::now() < deadline, "delivery timed out");
        fleet.run_ticks(16);
        got.extend(peer.take_deliveries());
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(got.iter().all(|(p, d)| *p == 0x0021 && d == &datagram));

    // The simulated links drained too, and the remote's flow shows up
    // in the merged fleet stats.
    assert!(fleet.run_until_drained(200_000));
    let stats = fleet.stats();
    assert!(stats.flow.offered >= 4 * 4 + 8);
    let snap = fleet.remote_snapshot(remote);
    assert!(snap.get("bytes_out").unwrap() > 0);
    assert_eq!(snap.get("offered"), Some(8));
    peer.shutdown();
}
