//! Property tests on the RFC 1661 automaton: total over all event
//! sequences, safety invariants, and convergence of paired endpoints
//! under arbitrary interleavings.

use p5_ppp::endpoint::{Endpoint, EndpointConfig};
use p5_ppp::fsm::{Action, Automaton, Event, State};
use p5_ppp::lcp_negotiator::LcpNegotiator;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::Up),
        Just(Event::Down),
        Just(Event::Open),
        Just(Event::Close),
        Just(Event::TimeoutRetry),
        Just(Event::TimeoutGiveUp),
        Just(Event::RcrGood),
        Just(Event::RcrBad),
        Just(Event::Rca),
        Just(Event::Rcn),
        Just(Event::Rtr),
        Just(Event::Rta),
        Just(Event::Ruc),
        Just(Event::RxjGood),
        Just(Event::RxjBad),
        Just(Event::Rxr),
    ]
}

proptest! {
    #[test]
    fn automaton_never_panics_and_balances_layer_signals(
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        let mut a = Automaton::new();
        let mut up_downs = 0i64;
        for e in events {
            if let Ok(actions) = a.handle(e) {
                for act in actions {
                    match act {
                        Action::ThisLayerUp => {
                            up_downs += 1;
                            prop_assert_eq!(a.state(), State::Opened,
                                "tlu only on entering Opened");
                        }
                        Action::ThisLayerDown => up_downs -= 1,
                        _ => {}
                    }
                }
            }
            // tlu/tld strictly alternate: never two ups without a down.
            prop_assert!((0..=1).contains(&up_downs), "unbalanced layer: {up_downs}");
            // Opened state and the up/down balance agree.
            prop_assert_eq!(a.state() == State::Opened, up_downs == 1);
        }
    }

    #[test]
    fn opened_requires_an_ack_exchange(
        events in proptest::collection::vec(arb_event(), 0..100),
    ) {
        // The automaton can only be Opened after both an Rca (our request
        // acked) and an RcrGood (we acked theirs) since the last restart.
        let mut a = Automaton::new();
        let mut saw_rca = false;
        let mut saw_rcr = false;
        for e in events {
            let before = a.state();
            if a.handle(e).is_err() {
                continue;
            }
            match e {
                Event::Rca => saw_rca = true,
                Event::RcrGood => saw_rcr = true,
                Event::Down | Event::Up | Event::Close | Event::TimeoutGiveUp => {
                    saw_rca = false;
                    saw_rcr = false;
                }
                _ => {}
            }
            if a.state() == State::Opened && before != State::Opened {
                prop_assert!(saw_rca && saw_rcr,
                    "entered Opened without a full exchange (event {e:?})");
            }
        }
    }

    #[test]
    fn paired_endpoints_survive_arbitrary_loss_and_reordering(
        drops in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        // Whatever the loss pattern, nothing panics and the endpoints
        // stay in legal states; with a quiet tail they converge or stop.
        let cfg = EndpointConfig { restart_period: 2, max_configure: 30, max_terminate: 2 };
        let mut a = Endpoint::new(LcpNegotiator::new(1500, 1), cfg);
        let mut b = Endpoint::new(LcpNegotiator::new(1500, 2), cfg);
        a.open(); a.lower_up();
        b.open(); b.lower_up();
        let mut now = 0u64;
        for &drop in &drops {
            now += 1;
            a.tick(now);
            b.tick(now);
            for (_, p) in a.poll_output() {
                if !drop {
                    b.receive(&p.to_bytes());
                }
            }
            for (_, p) in b.poll_output() {
                if !drop {
                    a.receive(&p.to_bytes());
                }
            }
        }
        // Quiet lossless tail.
        for _ in 0..40 {
            now += 1;
            a.tick(now);
            b.tick(now);
            for (_, p) in a.poll_output() {
                b.receive(&p.to_bytes());
            }
            for (_, p) in b.poll_output() {
                a.receive(&p.to_bytes());
            }
        }
        let ok = |s: State| matches!(s, State::Opened | State::Stopped | State::ReqSent | State::AckSent | State::AckRcvd);
        prop_assert!(ok(a.state()), "a ended in {:?}", a.state());
        prop_assert!(ok(b.state()), "b ended in {:?}", b.state());
        // If either side is Opened after the quiet tail, both must be.
        if a.state() == State::Opened || b.state() == State::Opened {
            prop_assert_eq!(a.state(), State::Opened);
            prop_assert_eq!(b.state(), State::Opened);
        }
    }
}
