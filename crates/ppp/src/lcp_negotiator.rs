//! The LCP negotiation policy: which options we request, and how we judge
//! a peer's request.  The negotiated results land in OAM registers on the
//! P⁵ (address programmability, FCS mode, PFC/ACFC).

use crate::endpoint::{Negotiator, Verdict};
use crate::frame::FieldCompression;
use crate::lcp::{ConfigOption, LcpOption, FCS_ALT_CCITT32};
use crate::protocol::Protocol;

/// Negotiated link parameters for one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    pub mru: u16,
    pub accm: u32,
    pub compression: FieldCompression,
    /// FCS-Alternatives bitmask in force (default CCITT-32, the P⁵ mode).
    pub fcs_alternatives: u8,
}

impl Default for LinkParams {
    fn default() -> Self {
        Self {
            mru: 1500,
            accm: 0,
            compression: FieldCompression::default(),
            fcs_alternatives: FCS_ALT_CCITT32,
        }
    }
}

/// LCP policy with paper-appropriate defaults: MRU 1500, 32-bit FCS,
/// zero ACCM (octet-synchronous SONET link), magic number for loop
/// detection.
#[derive(Debug, Clone)]
pub struct LcpNegotiator {
    /// What we ask the peer to let us receive.
    our_mru: u16,
    our_magic: u32,
    request_pfc: bool,
    request_acfc: bool,
    /// MRU drop mask: options the peer Configure-Rejected.
    mru_rejected: bool,
    magic_rejected: bool,
    /// Parameters governing what the *peer* may send us (acked to them).
    peer_params: LinkParams,
    /// Parameters governing what *we* may send (acked by the peer).
    our_params: LinkParams,
    /// Smallest MRU we will accept from a Nak.
    min_mru: u16,
    /// Loopback detected (peer echoed our magic number).
    loopback_suspected: bool,
}

impl LcpNegotiator {
    pub fn new(mru: u16, magic: u32) -> Self {
        Self {
            our_mru: mru,
            our_magic: magic,
            request_pfc: false,
            request_acfc: false,
            mru_rejected: false,
            magic_rejected: false,
            peer_params: LinkParams::default(),
            our_params: LinkParams::default(),
            min_mru: 64,
            loopback_suspected: false,
        }
    }

    /// Also request protocol- and address/control-field compression.
    pub fn with_compression(self) -> Self {
        self.request_fields(true, true)
    }

    /// Request the field compressions individually (the
    /// `NegotiationProfile` surface exposes ACFC and PFC as separate
    /// flags).
    pub fn request_fields(mut self, pfc: bool, acfc: bool) -> Self {
        self.request_pfc = pfc;
        self.request_acfc = acfc;
        self
    }

    /// MRU the peer asked for — the size we may send.
    pub fn peer_mru(&self) -> u16 {
        self.our_params.mru
    }

    /// Parameters in force for frames we transmit.
    pub fn tx_params(&self) -> LinkParams {
        self.our_params
    }

    /// Parameters in force for frames we receive.
    pub fn rx_params(&self) -> LinkParams {
        self.peer_params
    }

    pub fn loopback_suspected(&self) -> bool {
        self.loopback_suspected
    }
}

impl Negotiator for LcpNegotiator {
    fn protocol(&self) -> Protocol {
        Protocol::Lcp
    }

    fn our_request(&mut self) -> Vec<ConfigOption> {
        let mut opts = Vec::new();
        if !self.mru_rejected && self.our_mru != 1500 {
            opts.push(LcpOption::Mru(self.our_mru).to_raw());
        }
        if !self.magic_rejected {
            opts.push(LcpOption::MagicNumber(self.our_magic).to_raw());
        }
        if self.request_pfc {
            opts.push(LcpOption::Pfc.to_raw());
        }
        if self.request_acfc {
            opts.push(LcpOption::Acfc.to_raw());
        }
        opts
    }

    fn review_peer_request(&mut self, opts: &[ConfigOption]) -> Verdict {
        let mut naks = Vec::new();
        let mut rejects = Vec::new();
        for raw in opts {
            match LcpOption::from_raw(raw) {
                LcpOption::Mru(v) if v >= self.min_mru => {}
                LcpOption::Mru(_) => naks.push(LcpOption::Mru(self.min_mru).to_raw()),
                LcpOption::MagicNumber(m) if m != self.our_magic => {}
                LcpOption::MagicNumber(_) => {
                    // Same magic as ours: possible loopback; Nak with a
                    // perturbed value (RFC 1661 §6.4).
                    self.loopback_suspected = true;
                    naks.push(
                        LcpOption::MagicNumber(self.our_magic.rotate_left(13) ^ 0x5A5A_5A5A)
                            .to_raw(),
                    );
                }
                LcpOption::Accm(_) => {}
                LcpOption::Pfc | LcpOption::Acfc => {}
                LcpOption::FcsAlternatives(v) if v & FCS_ALT_CCITT32 != 0 => {}
                LcpOption::FcsAlternatives(_) => {
                    // The P⁵ insists on 32-bit CRC.
                    naks.push(LcpOption::FcsAlternatives(FCS_ALT_CCITT32).to_raw());
                }
                LcpOption::Unknown(raw) => rejects.push(raw),
            }
        }
        if !rejects.is_empty() {
            Verdict::Reject(rejects)
        } else if !naks.is_empty() {
            Verdict::Nak(naks)
        } else {
            Verdict::Ack
        }
    }

    fn peer_acked(&mut self, opts: &[ConfigOption]) {
        for raw in opts {
            match LcpOption::from_raw(raw) {
                LcpOption::Pfc => self.our_params.compression.pfc = true,
                LcpOption::Acfc => self.our_params.compression.acfc = true,
                LcpOption::Accm(v) => self.our_params.accm = v,
                LcpOption::FcsAlternatives(v) => self.our_params.fcs_alternatives = v,
                _ => {}
            }
        }
    }

    fn peer_naked(&mut self, hints: &[ConfigOption]) {
        for raw in hints {
            match LcpOption::from_raw(raw) {
                LcpOption::Mru(v) => self.our_mru = v,
                LcpOption::MagicNumber(m) => self.our_magic = m,
                _ => {}
            }
        }
    }

    fn peer_rejected(&mut self, rejected: &[ConfigOption]) {
        for raw in rejected {
            match LcpOption::from_raw(raw) {
                LcpOption::Mru(_) => self.mru_rejected = true,
                LcpOption::MagicNumber(_) => self.magic_rejected = true,
                LcpOption::Pfc => self.request_pfc = false,
                LcpOption::Acfc => self.request_acfc = false,
                _ => {}
            }
        }
    }

    fn apply_peer_options(&mut self, opts: &[ConfigOption]) {
        for raw in opts {
            match LcpOption::from_raw(raw) {
                LcpOption::Mru(v) => self.our_params.mru = v,
                LcpOption::Accm(v) => self.peer_params.accm = v,
                LcpOption::Pfc => self.peer_params.compression.pfc = true,
                LcpOption::Acfc => self.peer_params.compression.acfc = true,
                LcpOption::FcsAlternatives(v) => self.peer_params.fcs_alternatives = v,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_request_contains_magic_only_for_default_mru() {
        let mut n = LcpNegotiator::new(1500, 0xABCD);
        let req = n.our_request();
        assert_eq!(req.len(), 1);
        assert_eq!(LcpOption::from_raw(&req[0]), LcpOption::MagicNumber(0xABCD));
    }

    #[test]
    fn non_default_mru_is_requested() {
        let mut n = LcpNegotiator::new(4470, 1);
        let req = n.our_request();
        assert!(req
            .iter()
            .any(|r| LcpOption::from_raw(r) == LcpOption::Mru(4470)));
    }

    #[test]
    fn tiny_mru_gets_nak_with_minimum() {
        let mut n = LcpNegotiator::new(1500, 1);
        let verdict = n.review_peer_request(&[LcpOption::Mru(16).to_raw()]);
        assert_eq!(verdict, Verdict::Nak(vec![LcpOption::Mru(64).to_raw()]));
    }

    #[test]
    fn same_magic_suggests_loopback() {
        let mut n = LcpNegotiator::new(1500, 0x1234);
        let v = n.review_peer_request(&[LcpOption::MagicNumber(0x1234).to_raw()]);
        assert!(matches!(v, Verdict::Nak(_)));
        assert!(n.loopback_suspected());
    }

    #[test]
    fn unknown_options_are_rejected_verbatim() {
        let mut n = LcpNegotiator::new(1500, 1);
        let weird = ConfigOption {
            kind: 0x55,
            data: vec![1, 2, 3],
        };
        let v = n.review_peer_request(&[LcpOption::Mru(1500).to_raw(), weird.clone()]);
        assert_eq!(v, Verdict::Reject(vec![weird]));
    }

    #[test]
    fn fcs_without_32bit_support_is_naked() {
        let mut n = LcpNegotiator::new(1500, 1);
        let v = n.review_peer_request(&[LcpOption::FcsAlternatives(1).to_raw()]);
        assert_eq!(
            v,
            Verdict::Nak(vec![LcpOption::FcsAlternatives(FCS_ALT_CCITT32).to_raw()])
        );
    }

    #[test]
    fn rejection_prunes_future_requests() {
        let mut n = LcpNegotiator::new(9000, 7).with_compression();
        n.peer_rejected(&[LcpOption::Mru(9000).to_raw(), LcpOption::Pfc.to_raw()]);
        let req = n.our_request();
        assert!(!req
            .iter()
            .any(|r| matches!(LcpOption::from_raw(r), LcpOption::Mru(_))));
        assert!(!req.iter().any(|r| LcpOption::from_raw(r) == LcpOption::Pfc));
        assert!(req
            .iter()
            .any(|r| matches!(LcpOption::from_raw(r), LcpOption::MagicNumber(_))));
    }

    #[test]
    fn ack_applies_compression_to_tx_direction() {
        let mut n = LcpNegotiator::new(1500, 7).with_compression();
        let req = n.our_request();
        n.peer_acked(&req);
        assert!(n.tx_params().compression.pfc);
        assert!(n.tx_params().compression.acfc);
        assert!(!n.rx_params().compression.pfc);
    }
}
