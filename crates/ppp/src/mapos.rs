//! MAPOS — Multiple Access Protocol over SONET/SDH (RFC 2171) addressing.
//!
//! MAPOS reuses HDLC framing but gives the address octet real meaning:
//! frames are switched by address through a frame switch.  The paper cites
//! MAPOS (\[1\],\[2\]) as the reason the P⁵'s address field is programmable
//! rather than hard-wired to 0xFF.
//!
//! RFC 2171 §2.2 address format: the least significant bit is always 1
//! (end of address field, HDLC convention); the most significant bit
//! selects group (1) vs unicast (0); 0xFF is the broadcast address.

/// A MAPOS station address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaposAddress(u8);

/// Errors constructing a MAPOS address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressError {
    /// LSB must be 1 in every MAPOS address octet.
    LsbClear,
}

impl MaposAddress {
    /// The all-stations broadcast address.
    pub const BROADCAST: MaposAddress = MaposAddress(0xFF);

    /// Wrap a raw address octet, enforcing the always-one LSB.
    pub fn new(octet: u8) -> Result<Self, AddressError> {
        if octet & 1 == 0 {
            return Err(AddressError::LsbClear);
        }
        Ok(Self(octet))
    }

    /// Build a unicast address from a 6-bit switch port number
    /// (bit 7 = 0, bit 0 = 1).
    pub fn unicast(port: u8) -> Result<Self, AddressError> {
        if port >= 0x40 {
            return Err(AddressError::LsbClear); // out of unicast range
        }
        Ok(Self((port << 1) | 1))
    }

    /// Build a group (multicast) address from a 6-bit group number.
    pub fn group(group: u8) -> Result<Self, AddressError> {
        if group >= 0x40 {
            return Err(AddressError::LsbClear);
        }
        Ok(Self(0x80 | (group << 1) | 1))
    }

    pub fn octet(self) -> u8 {
        self.0
    }

    pub fn is_broadcast(self) -> bool {
        self.0 == 0xFF
    }

    pub fn is_group(self) -> bool {
        self.0 & 0x80 != 0
    }

    pub fn is_unicast(self) -> bool {
        !self.is_group()
    }

    /// Should a station with address `self` accept a frame sent to `dest`?
    pub fn accepts(self, dest: MaposAddress) -> bool {
        dest.is_broadcast() || dest == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_is_always_one() {
        assert_eq!(MaposAddress::new(0x02), Err(AddressError::LsbClear));
        assert!(MaposAddress::new(0x03).is_ok());
        for port in 0..0x40 {
            assert_eq!(MaposAddress::unicast(port).unwrap().octet() & 1, 1);
            assert_eq!(MaposAddress::group(port).unwrap().octet() & 1, 1);
        }
    }

    #[test]
    fn unicast_and_group_ranges() {
        let u = MaposAddress::unicast(5).unwrap();
        assert!(u.is_unicast() && !u.is_group() && !u.is_broadcast());
        let g = MaposAddress::group(5).unwrap();
        assert!(g.is_group() && !g.is_unicast());
        assert!(MaposAddress::unicast(0x40).is_err());
        assert!(MaposAddress::group(0x40).is_err());
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let a = MaposAddress::unicast(1).unwrap();
        let b = MaposAddress::unicast(2).unwrap();
        assert!(a.accepts(MaposAddress::BROADCAST));
        assert!(b.accepts(MaposAddress::BROADCAST));
        assert!(a.accepts(a));
        assert!(!a.accepts(b));
    }

    #[test]
    fn broadcast_is_group_shaped() {
        assert!(MaposAddress::BROADCAST.is_group());
        assert!(MaposAddress::BROADCAST.is_broadcast());
    }
}
