//! The PPP protocol field registry (Figure 1 of the paper; RFC 1661 §2).
//!
//! "Protocols starting with a 0 bit are network layer protocols such as IP
//! or IPX, those starting with a 1 bit are used to negotiate other
//! protocols including LCP and NCP."

/// Well-known PPP protocol numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// 0x0021 — Internet Protocol version 4.
    Ipv4,
    /// 0x002B — Novell IPX (mentioned in the paper's §2).
    Ipx,
    /// 0x0057 — Internet Protocol version 6.
    Ipv6,
    /// 0x8021 — IP Control Protocol (the NCP for IPv4).
    Ipcp,
    /// 0xC021 — Link Control Protocol.
    Lcp,
    /// 0xC023 — Password Authentication Protocol.
    Pap,
    /// 0xC223 — Challenge Handshake Authentication Protocol.
    Chap,
    /// 0xC025 — Link Quality Report.
    Lqr,
    /// Anything else.
    Other(u16),
}

impl Protocol {
    pub const fn number(self) -> u16 {
        match self {
            Protocol::Ipv4 => 0x0021,
            Protocol::Ipx => 0x002B,
            Protocol::Ipv6 => 0x0057,
            Protocol::Ipcp => 0x8021,
            Protocol::Lcp => 0xC021,
            Protocol::Pap => 0xC023,
            Protocol::Chap => 0xC223,
            Protocol::Lqr => 0xC025,
            Protocol::Other(n) => n,
        }
    }

    pub const fn from_number(n: u16) -> Self {
        match n {
            0x0021 => Protocol::Ipv4,
            0x002B => Protocol::Ipx,
            0x0057 => Protocol::Ipv6,
            0x8021 => Protocol::Ipcp,
            0xC021 => Protocol::Lcp,
            0xC023 => Protocol::Pap,
            0xC223 => Protocol::Chap,
            0xC025 => Protocol::Lqr,
            other => Protocol::Other(other),
        }
    }

    /// Network-layer protocols have a most-significant bit of 0
    /// (first transmitted byte starts with a 0 bit).
    pub const fn is_network_layer(self) -> bool {
        self.number() & 0x8000 == 0
    }

    /// Can the protocol field be compressed to one byte (PFC)?  Only
    /// protocols whose upper byte is zero.
    pub const fn pfc_eligible(self) -> bool {
        self.number() <= 0x00FF
    }
}

/// RFC 1661 well-formedness: protocol numbers are assigned such that the
/// least significant byte is odd and the most significant byte is even.
pub const fn is_well_formed(n: u16) -> bool {
    (n & 0x0001) == 1 && (n & 0x0100) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_numbers() {
        for p in [
            Protocol::Ipv4,
            Protocol::Ipx,
            Protocol::Ipv6,
            Protocol::Ipcp,
            Protocol::Lcp,
            Protocol::Pap,
            Protocol::Chap,
            Protocol::Lqr,
            Protocol::Other(0x0FB1),
        ] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn layer_classification_matches_paper() {
        assert!(Protocol::Ipv4.is_network_layer());
        assert!(Protocol::Ipx.is_network_layer());
        assert!(!Protocol::Lcp.is_network_layer());
        assert!(!Protocol::Ipcp.is_network_layer());
    }

    #[test]
    fn well_formedness_rule() {
        assert!(is_well_formed(0x0021));
        assert!(is_well_formed(0xC021));
        assert!(!is_well_formed(0x0100)); // odd MSB byte rule violated + even LSB
        assert!(!is_well_formed(0x0020)); // even LSB byte
    }

    #[test]
    fn pfc_eligibility() {
        assert!(Protocol::Ipv4.pfc_eligible());
        assert!(!Protocol::Lcp.pfc_eligible());
    }
}
