//! A complete PPP session: LCP + IPCP endpoints bundled behind one
//! demultiplexer, with RFC 1661 §5.7 Protocol-Reject for traffic in
//! unknown protocols — the full software stack a host runs on top of
//! the P⁵'s shared-memory frame interface.

use crate::endpoint::{Endpoint, EndpointConfig, LayerEvent};
use crate::ipcp::IpcpNegotiator;
use crate::lcp::{Packet, PacketCode};
use crate::lcp_negotiator::LcpNegotiator;
use crate::pap::{authenticate, PapPacket};
use crate::profile::{AuthPolicy, NegotiationProfile};
use crate::protocol::Protocol;

/// Events a session surfaces to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionEvent {
    /// LCP reached Opened.
    LinkUp,
    /// LCP left Opened.
    LinkDown,
    /// IPCP reached Opened with the negotiated addresses (ours, peer's).
    NetworkUp([u8; 4], [u8; 4]),
    /// An IPv4 datagram arrived on the open link.
    Datagram(Vec<u8>),
    /// A frame arrived in a protocol we rejected.
    RejectedProtocol(u16),
    /// The PAP authentication phase completed (either side).
    AuthOk,
    /// PAP failed: our credentials were Nak'd, or the peer presented
    /// credentials our table refuses.  IPCP stays held down.
    AuthFailed,
}

/// A PPP session endpoint (one side of the link).
pub struct Session {
    pub lcp: Endpoint<LcpNegotiator>,
    pub ipcp: Endpoint<IpcpNegotiator>,
    link_up: bool,
    network_up: bool,
    /// Outbound (protocol, information field) frames.
    outbox: Vec<(u16, Vec<u8>)>,
    events: Vec<SessionEvent>,
    reject_id: u8,
    /// Authentication stance (RFC 1334): gates IPCP's `lower_up`.
    auth: AuthPolicy,
    /// The auth phase is complete (vacuously true for
    /// [`AuthPolicy::None`]); reset on every link down.
    auth_done: bool,
    auth_id: u8,
    /// Next tick at which the PAP client retransmits its request.
    auth_deadline: Option<u64>,
}

impl Session {
    pub fn new(magic: u32, ip: [u8; 4]) -> Self {
        Self::with_profile(&NegotiationProfile::new().magic(magic).ip(ip))
    }

    /// Build a session from a typed [`NegotiationProfile`] — the
    /// redesigned configuration surface (MRU, ACFC/PFC, restart
    /// budget, auth stance and addressing in one object).
    pub fn with_profile(profile: &NegotiationProfile) -> Self {
        let mut lcp_neg = LcpNegotiator::new(profile.mru_requested(), profile.magic_number());
        if profile.wants_acfc() || profile.wants_pfc() {
            lcp_neg = lcp_neg.request_fields(profile.wants_pfc(), profile.wants_acfc());
        }
        let cfg = profile.config();
        Self {
            lcp: Endpoint::new(lcp_neg, cfg),
            ipcp: Endpoint::new(IpcpNegotiator::new(profile.ip_addr()), cfg),
            link_up: false,
            network_up: false,
            outbox: Vec::new(),
            events: Vec::new(),
            reject_id: 0,
            auth: profile.take_auth(),
            auth_done: false,
            auth_id: 0,
            auth_deadline: None,
        }
    }

    #[deprecated(note = "use Session::with_profile with a NegotiationProfile \
                (release note: DESIGN.md §18)")]
    pub fn with_config(magic: u32, ip: [u8; 4], cfg: EndpointConfig) -> Self {
        Self::with_profile(&NegotiationProfile::from(cfg).magic(magic).ip(ip))
    }

    /// Begin: administrative open + PHY up.
    pub fn start(&mut self) {
        self.lcp.open();
        self.lcp.lower_up();
        self.ipcp.open();
    }

    /// Administrative close.
    pub fn stop(&mut self) {
        self.ipcp.close();
        self.lcp.close();
    }

    /// The physical layer (de)asserted carrier: PHY up.
    pub fn lower_up(&mut self) {
        self.lcp.lower_up();
        self.pump();
    }

    /// The physical layer dropped — e.g. a SONET error storm tripped the
    /// link-quality policy.  LCP leaves Opened, which cascades a Down
    /// into IPCP via the internal event pump.
    pub fn lower_down(&mut self) {
        self.lcp.lower_down();
        self.pump();
    }

    /// Force a full LCP renegotiation (RFC 1661 restart): bounce the
    /// lower layer.  The automaton re-enters Req-Sent and the session
    /// re-opens within [`EndpointConfig::restart_budget_ticks`] provided
    /// the peer is responsive.
    pub fn renegotiate(&mut self) {
        self.lower_down();
        self.lower_up();
    }

    pub fn is_network_up(&self) -> bool {
        self.network_up
    }

    /// Queue an IPv4 datagram (only sensible once the network is up).
    pub fn send_datagram(&mut self, datagram: Vec<u8>) {
        self.outbox.push((Protocol::Ipv4.number(), datagram));
    }

    /// Advance timers.
    pub fn tick(&mut self, now: u64) {
        self.lcp.tick(now);
        self.ipcp.tick(now);
        self.pump();
        self.retry_auth(now);
    }

    /// PAP client (re)transmission: while the link is open and the
    /// auth phase unsettled, send the Authenticate-Request on the same
    /// restart cadence as LCP (RFC 1334 leaves the retry policy to the
    /// implementation; reusing the restart period keeps the whole
    /// bring-up inside one restart budget per phase).
    fn retry_auth(&mut self, now: u64) {
        if !self.link_up || self.auth_done {
            self.auth_deadline = None;
            return;
        }
        let AuthPolicy::PapClient { id, secret } = &self.auth else {
            return;
        };
        if let Some(d) = self.auth_deadline {
            if now < d {
                return;
            }
        }
        let req = PapPacket::Request {
            id: self.auth_id,
            peer_id: id.clone(),
            password: secret.clone(),
        };
        self.outbox.push((Protocol::Pap.number(), req.to_bytes()));
        self.auth_deadline = Some(now + self.lcp.config().restart_period);
    }

    /// Demultiplex one received frame (protocol number + information
    /// field) into the right endpoint, per RFC 1661 §5.7 rejecting
    /// unknown protocols while the link is open.
    pub fn receive(&mut self, protocol: u16, info: &[u8]) {
        match Protocol::from_number(protocol) {
            Protocol::Lcp => self.lcp.receive(info),
            Protocol::Ipcp if self.link_up => self.ipcp.receive(info),
            Protocol::Pap if self.link_up => self.receive_pap(info),
            Protocol::Ipv4 if self.network_up => {
                self.events.push(SessionEvent::Datagram(info.to_vec()));
            }
            _ if self.link_up => {
                // Protocol-Reject: LCP packet whose data is the rejected
                // protocol number followed by the offending information.
                self.reject_id = self.reject_id.wrapping_add(1);
                let mut data = protocol.to_be_bytes().to_vec();
                data.extend_from_slice(&info[..info.len().min(32)]);
                let pkt = Packet::new(PacketCode::ProtocolReject, self.reject_id, data);
                self.outbox.push((Protocol::Lcp.number(), pkt.to_bytes()));
                self.events.push(SessionEvent::RejectedProtocol(protocol));
            }
            _ => { /* link down: silently discard (RFC 1661 phase rule) */ }
        }
        self.pump();
    }

    /// One PAP packet from the peer, interpreted per our stance.  A
    /// request against [`AuthPolicy::PapServer`] is answered
    /// immediately; an Ack/Nak settles an outstanding
    /// [`AuthPolicy::PapClient`] request.  Anything else (PAP traffic
    /// with no auth configured — a peer misconfiguration) is dropped.
    fn receive_pap(&mut self, info: &[u8]) {
        let Some(pkt) = PapPacket::parse(info) else {
            return;
        };
        match (&self.auth, pkt) {
            (AuthPolicy::PapServer(table), req @ PapPacket::Request { .. }) => {
                let reply = authenticate(table, &req).expect("Request yields a reply");
                let granted = matches!(reply, PapPacket::Ack { .. });
                self.outbox.push((Protocol::Pap.number(), reply.to_bytes()));
                if granted {
                    self.finish_auth();
                } else {
                    self.events.push(SessionEvent::AuthFailed);
                }
            }
            (AuthPolicy::PapClient { .. }, PapPacket::Ack { id, .. }) if id == self.auth_id => {
                self.finish_auth();
            }
            (AuthPolicy::PapClient { .. }, PapPacket::Nak { id, .. }) if id == self.auth_id => {
                self.events.push(SessionEvent::AuthFailed);
            }
            _ => {}
        }
    }

    /// The auth phase succeeded: release IPCP (idempotent — a server
    /// re-acking a retransmitted request must not bounce the NCP).
    fn finish_auth(&mut self) {
        if !self.auth_done {
            self.auth_done = true;
            self.events.push(SessionEvent::AuthOk);
            self.ipcp.lower_up();
        }
    }

    /// Drain outbound frames for the transmit queue.
    pub fn poll_output(&mut self) -> Vec<(u16, Vec<u8>)> {
        self.pump();
        std::mem::take(&mut self.outbox)
    }

    /// Drain session events.
    pub fn poll_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Move endpoint outputs/layer events into the session state.
    fn pump(&mut self) {
        for (proto, pkt) in self.lcp.poll_output() {
            self.outbox.push((proto.number(), pkt.to_bytes()));
        }
        for ev in self.lcp.poll_layer_events() {
            match ev {
                LayerEvent::Up => {
                    self.link_up = true;
                    self.events.push(SessionEvent::LinkUp);
                    // The auth phase sits between LCP and the NCPs
                    // (RFC 1661 §3.5): IPCP is held down until it
                    // settles (immediately, for AuthPolicy::None).
                    match &self.auth {
                        AuthPolicy::None => {
                            self.auth_done = true;
                            self.ipcp.lower_up();
                        }
                        AuthPolicy::PapClient { .. } => {
                            // A fresh attempt gets a fresh id; the
                            // request itself goes out (and is
                            // retransmitted) from `retry_auth`.
                            self.auth_id = self.auth_id.wrapping_add(1);
                            self.auth_deadline = None;
                        }
                        AuthPolicy::PapServer(_) => {}
                    }
                }
                LayerEvent::Down | LayerEvent::Finished => {
                    if self.link_up {
                        self.link_up = false;
                        self.network_up = false;
                        self.auth_done = false;
                        self.events.push(SessionEvent::LinkDown);
                        self.ipcp.lower_down();
                    }
                }
                LayerEvent::Started => {}
            }
        }
        for (proto, pkt) in self.ipcp.poll_output() {
            self.outbox.push((proto.number(), pkt.to_bytes()));
        }
        for ev in self.ipcp.poll_layer_events() {
            if ev == LayerEvent::Up {
                self.network_up = true;
                let ours = self.ipcp.negotiator.our_addr();
                let theirs = self.ipcp.negotiator.peer_addr().unwrap_or([0; 4]);
                self.events.push(SessionEvent::NetworkUp(ours, theirs));
            }
            if ev == LayerEvent::Down {
                self.network_up = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converge(a: &mut Session, b: &mut Session) {
        for now in 0..60 {
            a.tick(now);
            b.tick(now);
            for (proto, info) in a.poll_output() {
                b.receive(proto, &info);
            }
            for (proto, info) in b.poll_output() {
                a.receive(proto, &info);
            }
            if a.is_network_up() && b.is_network_up() {
                return;
            }
        }
        panic!(
            "sessions did not converge: a lcp {:?} ipcp {:?}, b lcp {:?} ipcp {:?}",
            a.lcp.state(),
            a.ipcp.state(),
            b.lcp.state(),
            b.ipcp.state()
        );
    }

    #[test]
    fn full_bring_up_and_datagram_exchange() {
        let mut a = Session::new(0x0A, [10, 1, 1, 1]);
        let mut b = Session::new(0x0B, [10, 1, 1, 2]);
        a.start();
        b.start();
        converge(&mut a, &mut b);
        let ev = a.poll_events();
        assert!(ev.contains(&SessionEvent::LinkUp));
        assert!(ev
            .iter()
            .any(|e| matches!(e, SessionEvent::NetworkUp([10, 1, 1, 1], [10, 1, 1, 2]))));

        a.send_datagram(b"ping".to_vec());
        for (proto, info) in a.poll_output() {
            b.receive(proto, &info);
        }
        assert!(b
            .poll_events()
            .contains(&SessionEvent::Datagram(b"ping".to_vec())));
    }

    #[test]
    fn unknown_protocol_gets_protocol_reject() {
        let mut a = Session::new(1, [10, 0, 0, 1]);
        let mut b = Session::new(2, [10, 0, 0, 2]);
        a.start();
        b.start();
        converge(&mut a, &mut b);
        a.poll_output();
        // Deliver an IPX frame (0x002B) — not negotiated.
        a.receive(0x002B, b"ipx payload");
        let out = a.poll_output();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Protocol::Lcp.number());
        let pkt = Packet::parse(&out[0].1).unwrap();
        assert_eq!(pkt.code, PacketCode::ProtocolReject);
        assert_eq!(&pkt.data[..2], &0x002Bu16.to_be_bytes());
        assert!(a
            .poll_events()
            .contains(&SessionEvent::RejectedProtocol(0x002B)));
    }

    #[test]
    fn traffic_before_link_up_is_discarded() {
        let mut a = Session::new(1, [10, 0, 0, 1]);
        a.start();
        a.poll_output();
        a.receive(Protocol::Ipv4.number(), b"early");
        assert!(a.poll_events().is_empty());
        let out = a.poll_output();
        assert!(out.iter().all(|(p, _)| *p == Protocol::Lcp.number()));
    }

    #[test]
    fn datagrams_before_network_up_do_not_surface() {
        let mut a = Session::new(1, [10, 0, 0, 1]);
        let mut b = Session::new(2, [10, 0, 0, 2]);
        a.start();
        b.start();
        // Only LCP has converged when we inject IPv4.
        for now in 0..6 {
            a.tick(now);
            b.tick(now);
            for (proto, info) in a.poll_output() {
                if proto == Protocol::Lcp.number() {
                    b.receive(proto, &info);
                }
            }
            for (proto, info) in b.poll_output() {
                if proto == Protocol::Lcp.number() {
                    a.receive(proto, &info);
                }
            }
        }
        a.receive(Protocol::Ipv4.number(), b"too soon");
        let evs = a.poll_events();
        assert!(!evs.contains(&SessionEvent::Datagram(b"too soon".to_vec())));
    }

    #[test]
    fn lower_down_tears_the_link_and_renegotiation_fits_the_restart_budget() {
        let mut a = Session::new(1, [10, 0, 0, 1]);
        let mut b = Session::new(2, [10, 0, 0, 2]);
        a.start();
        b.start();
        converge(&mut a, &mut b);
        a.poll_events();
        b.poll_events();

        // The error storm trips: A's PHY bounces.
        a.renegotiate();
        assert!(a.poll_events().contains(&SessionEvent::LinkDown));
        assert!(!a.is_network_up());

        // Both LCP and IPCP must re-open within the RFC 1661 restart
        // budget (every Configure-Request gets one restart period, for
        // each of the two stacked negotiations).
        let budget = 2 * a.lcp.config().restart_budget_ticks();
        let mut recovered_at = None;
        for now in 100..100 + budget {
            a.tick(now);
            b.tick(now);
            for (proto, info) in a.poll_output() {
                b.receive(proto, &info);
            }
            for (proto, info) in b.poll_output() {
                a.receive(proto, &info);
            }
            if a.is_network_up() && b.is_network_up() {
                recovered_at = Some(now - 100);
                break;
            }
        }
        let ticks = recovered_at.expect("renegotiation completed within the restart budget");
        assert!(
            ticks <= budget,
            "re-open took {ticks} ticks, budget {budget}"
        );
        let ev = a.poll_events();
        assert!(ev.contains(&SessionEvent::LinkUp));
        assert!(ev.iter().any(|e| matches!(e, SessionEvent::NetworkUp(..))));
    }

    #[test]
    fn pap_gates_the_network_phase() {
        use crate::pap::CredentialTable;
        let mut a = Session::with_profile(
            &NegotiationProfile::new()
                .magic(1)
                .ip([10, 0, 0, 1])
                .pap_client(b"alice", b"s3cret"),
        );
        let mut b = Session::with_profile(
            &NegotiationProfile::new()
                .magic(2)
                .ip([10, 0, 0, 2])
                .pap_server(CredentialTable::default().with(b"alice", b"s3cret")),
        );
        a.start();
        b.start();
        converge(&mut a, &mut b);
        assert!(a.poll_events().contains(&SessionEvent::AuthOk));
        assert!(b.poll_events().contains(&SessionEvent::AuthOk));
    }

    #[test]
    fn pap_with_wrong_secret_holds_the_network_down() {
        use crate::pap::CredentialTable;
        let mut a = Session::with_profile(
            &NegotiationProfile::new()
                .magic(1)
                .ip([10, 0, 0, 1])
                .pap_client(b"alice", b"wrong"),
        );
        let mut b = Session::with_profile(
            &NegotiationProfile::new()
                .magic(2)
                .ip([10, 0, 0, 2])
                .pap_server(CredentialTable::default().with(b"alice", b"s3cret")),
        );
        a.start();
        b.start();
        for now in 0..40 {
            a.tick(now);
            b.tick(now);
            for (proto, info) in a.poll_output() {
                b.receive(proto, &info);
            }
            for (proto, info) in b.poll_output() {
                a.receive(proto, &info);
            }
        }
        assert!(!a.is_network_up());
        assert!(!b.is_network_up());
        assert!(a.poll_events().contains(&SessionEvent::AuthFailed));
        assert!(b.poll_events().contains(&SessionEvent::AuthFailed));
    }

    #[test]
    fn profile_compression_flags_reach_the_negotiator() {
        let mut a = Session::with_profile(
            &NegotiationProfile::new()
                .magic(1)
                .ip([10, 0, 0, 1])
                .compression(true),
        );
        let mut b = Session::with_profile(
            &NegotiationProfile::new()
                .magic(2)
                .ip([10, 0, 0, 2])
                .compression(true),
        );
        a.start();
        b.start();
        converge(&mut a, &mut b);
        let tx = a.lcp.negotiator.tx_params();
        assert!(tx.compression.pfc && tx.compression.acfc);
    }

    #[test]
    fn stop_tears_the_session_down() {
        let mut a = Session::new(1, [10, 0, 0, 1]);
        let mut b = Session::new(2, [10, 0, 0, 2]);
        a.start();
        b.start();
        converge(&mut a, &mut b);
        a.poll_events();
        b.poll_events();
        a.stop();
        for now in 100..130 {
            a.tick(now);
            b.tick(now);
            for (proto, info) in a.poll_output() {
                b.receive(proto, &info);
            }
            for (proto, info) in b.poll_output() {
                a.receive(proto, &info);
            }
        }
        assert!(!a.is_network_up());
        assert!(!b.is_network_up());
        assert!(b.poll_events().contains(&SessionEvent::LinkDown));
    }
}
