//! IPCP — the IP Control Protocol (RFC 1332 subset), the NCP the paper's
//! §2 mentions ("a family of Network Control Protocols (NCP) for
//! establishing and configuring different network-layer protocols").
//!
//! Implemented over the same RFC 1661 automaton as LCP; only the
//! IP-Address option (type 3) is negotiated, which is enough to bring
//! IPv4 up in the examples.

use crate::endpoint::{Negotiator, Verdict};
use crate::lcp::ConfigOption;
use crate::protocol::Protocol;

/// IPCP option type for IP-Address.
pub const OPT_IP_ADDRESS: u8 = 3;

/// IPCP negotiation policy.
#[derive(Debug, Clone)]
pub struct IpcpNegotiator {
    our_addr: [u8; 4],
    peer_addr: Option<[u8; 4]>,
    /// Address we suggest to a peer that has none (0.0.0.0).
    suggestion: [u8; 4],
}

impl IpcpNegotiator {
    pub fn new(our_addr: [u8; 4]) -> Self {
        Self {
            our_addr,
            peer_addr: None,
            suggestion: [192, 0, 2, 99],
        }
    }

    pub fn with_suggestion(mut self, addr: [u8; 4]) -> Self {
        self.suggestion = addr;
        self
    }

    pub fn our_addr(&self) -> [u8; 4] {
        self.our_addr
    }

    pub fn peer_addr(&self) -> Option<[u8; 4]> {
        self.peer_addr
    }

    fn addr_option(addr: [u8; 4]) -> ConfigOption {
        ConfigOption {
            kind: OPT_IP_ADDRESS,
            data: addr.to_vec(),
        }
    }

    fn parse_addr(raw: &ConfigOption) -> Option<[u8; 4]> {
        if raw.kind == OPT_IP_ADDRESS && raw.data.len() == 4 {
            Some([raw.data[0], raw.data[1], raw.data[2], raw.data[3]])
        } else {
            None
        }
    }
}

impl Negotiator for IpcpNegotiator {
    fn protocol(&self) -> Protocol {
        Protocol::Ipcp
    }

    fn our_request(&mut self) -> Vec<ConfigOption> {
        vec![Self::addr_option(self.our_addr)]
    }

    fn review_peer_request(&mut self, opts: &[ConfigOption]) -> Verdict {
        let mut naks = Vec::new();
        let mut rejects = Vec::new();
        for raw in opts {
            match Self::parse_addr(raw) {
                Some([0, 0, 0, 0]) => naks.push(Self::addr_option(self.suggestion)),
                Some(_) => {}
                None => rejects.push(raw.clone()),
            }
        }
        if !rejects.is_empty() {
            Verdict::Reject(rejects)
        } else if !naks.is_empty() {
            Verdict::Nak(naks)
        } else {
            Verdict::Ack
        }
    }

    fn peer_acked(&mut self, _opts: &[ConfigOption]) {}

    fn peer_naked(&mut self, hints: &[ConfigOption]) {
        for raw in hints {
            if let Some(addr) = Self::parse_addr(raw) {
                self.our_addr = addr;
            }
        }
    }

    fn peer_rejected(&mut self, _rejected: &[ConfigOption]) {}

    fn apply_peer_options(&mut self, opts: &[ConfigOption]) {
        for raw in opts {
            if let Some(addr) = Self::parse_addr(raw) {
                self.peer_addr = Some(addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_opt(a: [u8; 4]) -> ConfigOption {
        IpcpNegotiator::addr_option(a)
    }

    #[test]
    fn requests_our_address() {
        let mut n = IpcpNegotiator::new([10, 1, 2, 3]);
        assert_eq!(n.our_request(), vec![addr_opt([10, 1, 2, 3])]);
    }

    #[test]
    fn acceptable_address_is_acked() {
        let mut n = IpcpNegotiator::new([10, 0, 0, 1]);
        assert_eq!(
            n.review_peer_request(&[addr_opt([10, 0, 0, 2])]),
            Verdict::Ack
        );
    }

    #[test]
    fn zero_address_is_naked_with_suggestion() {
        let mut n = IpcpNegotiator::new([10, 0, 0, 1]).with_suggestion([10, 0, 0, 9]);
        assert_eq!(
            n.review_peer_request(&[addr_opt([0, 0, 0, 0])]),
            Verdict::Nak(vec![addr_opt([10, 0, 0, 9])])
        );
    }

    #[test]
    fn unknown_option_rejected() {
        let mut n = IpcpNegotiator::new([10, 0, 0, 1]);
        let weird = ConfigOption {
            kind: 0x81,
            data: vec![],
        };
        assert_eq!(
            n.review_peer_request(std::slice::from_ref(&weird)),
            Verdict::Reject(vec![weird])
        );
    }

    #[test]
    fn nak_adjusts_our_address() {
        let mut n = IpcpNegotiator::new([0, 0, 0, 0]);
        n.peer_naked(&[addr_opt([172, 16, 0, 5])]);
        assert_eq!(n.our_addr(), [172, 16, 0, 5]);
    }

    #[test]
    fn apply_records_peer_address() {
        let mut n = IpcpNegotiator::new([10, 0, 0, 1]);
        n.apply_peer_options(&[addr_opt([10, 0, 0, 2])]);
        assert_eq!(n.peer_addr(), Some([10, 0, 0, 2]));
    }
}
