//! The RFC 1661 §4 option-negotiation automaton — all ten states, the
//! full event/action transition table.  LCP and every NCP (here: IPCP)
//! run an instance of this machine.
//!
//! The automaton itself is a pure transition function
//! ([`Automaton::handle`]): it consumes an [`Event`] and yields the
//! [`Action`]s the implementation must carry out, exactly as the RFC's
//! table prescribes.  Timers and packet I/O live in
//! [`crate::endpoint::Endpoint`].

/// Automaton states (RFC 1661 §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    Initial,
    Starting,
    Closed,
    Stopped,
    Closing,
    Stopping,
    ReqSent,
    AckRcvd,
    AckSent,
    Opened,
}

/// Automaton events (RFC 1661 §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// lower layer is Up
    Up,
    /// lower layer is Down
    Down,
    /// administrative Open
    Open,
    /// administrative Close
    Close,
    /// Timeout with counter > 0
    TimeoutRetry,
    /// Timeout with counter expired
    TimeoutGiveUp,
    /// Receive-Configure-Request (good)
    RcrGood,
    /// Receive-Configure-Request (bad)
    RcrBad,
    /// Receive-Configure-Ack
    Rca,
    /// Receive-Configure-Nak/Rej
    Rcn,
    /// Receive-Terminate-Request
    Rtr,
    /// Receive-Terminate-Ack
    Rta,
    /// Receive-Unknown-Code
    Ruc,
    /// Receive-Code-Reject (permitted) or Protocol-Reject
    RxjGood,
    /// Receive-Code-Reject (catastrophic) or Protocol-Reject
    RxjBad,
    /// Receive-Echo-Request/Reply or Discard-Request
    Rxr,
}

/// Automaton actions (RFC 1661 §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// tlu: This-Layer-Up
    ThisLayerUp,
    /// tld: This-Layer-Down
    ThisLayerDown,
    /// tls: This-Layer-Started
    ThisLayerStarted,
    /// tlf: This-Layer-Finished
    ThisLayerFinished,
    /// irc: Initialize-Restart-Count
    InitRestartCount,
    /// zrc: Zero-Restart-Count
    ZeroRestartCount,
    /// scr: Send-Configure-Request
    SendConfigureRequest,
    /// sca: Send-Configure-Ack
    SendConfigureAck,
    /// scn: Send-Configure-Nak/Rej
    SendConfigureNak,
    /// str: Send-Terminate-Request
    SendTerminateRequest,
    /// sta: Send-Terminate-Ack
    SendTerminateAck,
    /// scj: Send-Code-Reject
    SendCodeReject,
    /// ser: Send-Echo-Reply
    SendEchoReply,
}

/// Error for events that are impossible in a state (the RFC marks these
/// "cannot occur"; a well-driven machine never sees them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CannotOccur {
    pub state: State,
    pub event: Event,
}

/// The pure RFC 1661 automaton.
#[derive(Debug, Clone)]
pub struct Automaton {
    state: State,
}

impl Default for Automaton {
    fn default() -> Self {
        Self::new()
    }
}

use Action::*;
use Event::*;
use State::*;

impl Automaton {
    pub fn new() -> Self {
        Self { state: Initial }
    }

    pub fn state(&self) -> State {
        self.state
    }

    /// Is the link in a phase where network-protocol traffic flows?
    pub fn is_opened(&self) -> bool {
        self.state == Opened
    }

    /// Apply one event; returns the action list, or `CannotOccur` for
    /// event/state pairs the RFC marks impossible.
    pub fn handle(&mut self, event: Event) -> Result<Vec<Action>, CannotOccur> {
        let cannot = CannotOccur {
            state: self.state,
            event,
        };
        // Transition table, RFC 1661 §4.1, transcribed row by row.
        let (actions, next): (&[Action], State) = match (event, self.state) {
            (Up, Initial) => (&[], Closed),
            (Up, Starting) => (&[InitRestartCount, SendConfigureRequest], ReqSent),
            (Up, _) => return Err(cannot),

            (Down, Closed) => (&[], Initial),
            (Down, Stopped) => (&[ThisLayerStarted], Starting),
            (Down, Closing) => (&[], Initial),
            (Down, Stopping) => (&[], Starting),
            (Down, ReqSent) | (Down, AckRcvd) | (Down, AckSent) => (&[], Starting),
            (Down, Opened) => (&[ThisLayerDown], Starting),
            (Down, _) => return Err(cannot),

            (Open, Initial) => (&[ThisLayerStarted], Starting),
            (Open, Starting) => (&[], Starting),
            (Open, Closed) => (&[InitRestartCount, SendConfigureRequest], ReqSent),
            (Open, Stopped) => (&[], Stopped), // restart option not taken
            (Open, Closing) => (&[], Stopping),
            (Open, Stopping) => (&[], Stopping),
            (Open, ReqSent) => (&[], ReqSent),
            (Open, AckRcvd) => (&[], AckRcvd),
            (Open, AckSent) => (&[], AckSent),
            (Open, Opened) => (&[], Opened),

            (Close, Initial) => (&[], Initial),
            (Close, Starting) => (&[ThisLayerFinished], Initial),
            (Close, Closed) => (&[], Closed),
            (Close, Stopped) => (&[], Closed),
            (Close, Closing) => (&[], Closing),
            (Close, Stopping) => (&[], Closing),
            (Close, ReqSent) | (Close, AckRcvd) | (Close, AckSent) => {
                (&[InitRestartCount, SendTerminateRequest], Closing)
            }
            (Close, Opened) => (
                &[ThisLayerDown, InitRestartCount, SendTerminateRequest],
                Closing,
            ),

            (TimeoutRetry, Closing) => (&[SendTerminateRequest], Closing),
            (TimeoutRetry, Stopping) => (&[SendTerminateRequest], Stopping),
            (TimeoutRetry, ReqSent) => (&[SendConfigureRequest], ReqSent),
            (TimeoutRetry, AckRcvd) => (&[SendConfigureRequest], ReqSent),
            (TimeoutRetry, AckSent) => (&[SendConfigureRequest], AckSent),
            (TimeoutRetry, _) => return Err(cannot),

            (TimeoutGiveUp, Closing) => (&[ThisLayerFinished], Closed),
            (TimeoutGiveUp, Stopping) => (&[ThisLayerFinished], Stopped),
            (TimeoutGiveUp, ReqSent) | (TimeoutGiveUp, AckRcvd) | (TimeoutGiveUp, AckSent) => {
                (&[ThisLayerFinished], Stopped)
            }
            (TimeoutGiveUp, _) => return Err(cannot),

            (RcrGood, Closed) => (&[SendTerminateAck], Closed),
            (RcrGood, Stopped) => (
                &[InitRestartCount, SendConfigureRequest, SendConfigureAck],
                AckSent,
            ),
            (RcrGood, Closing) => (&[], Closing),
            (RcrGood, Stopping) => (&[], Stopping),
            (RcrGood, ReqSent) => (&[SendConfigureAck], AckSent),
            (RcrGood, AckRcvd) => (&[SendConfigureAck, ThisLayerUp], Opened),
            (RcrGood, AckSent) => (&[SendConfigureAck], AckSent),
            (RcrGood, Opened) => (
                &[ThisLayerDown, SendConfigureRequest, SendConfigureAck],
                AckSent,
            ),
            (RcrGood, _) => return Err(cannot),

            (RcrBad, Closed) => (&[SendTerminateAck], Closed),
            (RcrBad, Stopped) => (
                &[InitRestartCount, SendConfigureRequest, SendConfigureNak],
                ReqSent,
            ),
            (RcrBad, Closing) => (&[], Closing),
            (RcrBad, Stopping) => (&[], Stopping),
            (RcrBad, ReqSent) => (&[SendConfigureNak], ReqSent),
            (RcrBad, AckRcvd) => (&[SendConfigureNak], AckRcvd),
            (RcrBad, AckSent) => (&[SendConfigureNak], ReqSent),
            (RcrBad, Opened) => (
                &[ThisLayerDown, SendConfigureRequest, SendConfigureNak],
                ReqSent,
            ),
            (RcrBad, _) => return Err(cannot),

            (Rca, Closed) | (Rca, Stopped) => (&[SendTerminateAck], self.state),
            (Rca, Closing) => (&[], Closing),
            (Rca, Stopping) => (&[], Stopping),
            (Rca, ReqSent) => (&[InitRestartCount], AckRcvd),
            // Crossed connection: out-of-sequence Ack, restart.
            (Rca, AckRcvd) => (&[SendConfigureRequest], ReqSent),
            (Rca, AckSent) => (&[InitRestartCount, ThisLayerUp], Opened),
            (Rca, Opened) => (&[ThisLayerDown, SendConfigureRequest], ReqSent),
            (Rca, _) => return Err(cannot),

            (Rcn, Closed) | (Rcn, Stopped) => (&[SendTerminateAck], self.state),
            (Rcn, Closing) => (&[], Closing),
            (Rcn, Stopping) => (&[], Stopping),
            (Rcn, ReqSent) => (&[InitRestartCount, SendConfigureRequest], ReqSent),
            (Rcn, AckRcvd) => (&[SendConfigureRequest], ReqSent),
            (Rcn, AckSent) => (&[InitRestartCount, SendConfigureRequest], AckSent),
            (Rcn, Opened) => (&[ThisLayerDown, SendConfigureRequest], ReqSent),
            (Rcn, _) => return Err(cannot),

            (Rtr, Closed) | (Rtr, Stopped) => (&[SendTerminateAck], self.state),
            (Rtr, Closing) => (&[SendTerminateAck], Closing),
            (Rtr, Stopping) => (&[SendTerminateAck], Stopping),
            (Rtr, ReqSent) | (Rtr, AckRcvd) | (Rtr, AckSent) => (&[SendTerminateAck], ReqSent),
            (Rtr, Opened) => (
                &[ThisLayerDown, ZeroRestartCount, SendTerminateAck],
                Stopping,
            ),
            (Rtr, _) => return Err(cannot),

            (Rta, Closed) => (&[], Closed),
            (Rta, Stopped) => (&[], Stopped),
            (Rta, Closing) => (&[ThisLayerFinished], Closed),
            (Rta, Stopping) => (&[ThisLayerFinished], Stopped),
            (Rta, ReqSent) => (&[], ReqSent),
            (Rta, AckRcvd) => (&[], ReqSent),
            (Rta, AckSent) => (&[], AckSent),
            (Rta, Opened) => (&[ThisLayerDown, SendConfigureRequest], ReqSent),
            (Rta, _) => return Err(cannot),

            (Ruc, Initial) | (Ruc, Starting) => return Err(cannot),
            (Ruc, s) => (&[SendCodeReject], s),

            (RxjGood, Closed) => (&[], Closed),
            (RxjGood, Stopped) => (&[], Stopped),
            (RxjGood, Closing) => (&[], Closing),
            (RxjGood, Stopping) => (&[], Stopping),
            (RxjGood, ReqSent) => (&[], ReqSent),
            (RxjGood, AckRcvd) => (&[], ReqSent),
            (RxjGood, AckSent) => (&[], AckSent),
            (RxjGood, Opened) => (&[], Opened),
            (RxjGood, _) => return Err(cannot),

            (RxjBad, Closed) | (RxjBad, Stopped) => (&[ThisLayerFinished], self.state),
            (RxjBad, Closing) => (&[ThisLayerFinished], Closed),
            (RxjBad, Stopping) => (&[ThisLayerFinished], Stopped),
            (RxjBad, ReqSent) | (RxjBad, AckRcvd) | (RxjBad, AckSent) => {
                (&[ThisLayerFinished], Stopped)
            }
            (RxjBad, Opened) => (
                &[ThisLayerDown, InitRestartCount, SendTerminateRequest],
                Stopping,
            ),
            (RxjBad, _) => return Err(cannot),

            (Rxr, Opened) => (&[SendEchoReply], Opened),
            (Rxr, Initial) | (Rxr, Starting) => return Err(cannot),
            (Rxr, s) => (&[], s),
        };
        self.state = next;
        Ok(actions.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(events: &[Event]) -> (Automaton, Vec<Action>) {
        let mut a = Automaton::new();
        let mut actions = Vec::new();
        for &e in events {
            actions.extend(a.handle(e).unwrap());
        }
        (a, actions)
    }

    #[test]
    fn active_open_happy_path() {
        // Open, lower layer up, peer requests, peer acks.
        let (a, actions) = drive(&[Open, Up, RcrGood, Rca]);
        assert_eq!(a.state(), Opened);
        assert!(actions.contains(&ThisLayerUp));
        assert!(actions.contains(&SendConfigureRequest));
        assert!(actions.contains(&SendConfigureAck));
    }

    #[test]
    fn happy_path_other_interleaving() {
        // Ack arrives before the peer's request.
        let (a, actions) = drive(&[Open, Up, Rca, RcrGood]);
        assert_eq!(a.state(), Opened);
        assert_eq!(actions.last(), Some(&ThisLayerUp));
    }

    #[test]
    fn never_opened_without_both_ack_exchanges() {
        let (a, _) = drive(&[Open, Up, Rca]);
        assert_ne!(a.state(), Opened);
        let (a, _) = drive(&[Open, Up, RcrGood]);
        assert_ne!(a.state(), Opened);
    }

    #[test]
    fn passive_open_waits_in_starting() {
        let (a, actions) = drive(&[Open]);
        assert_eq!(a.state(), Starting);
        assert_eq!(actions, vec![ThisLayerStarted]);
    }

    #[test]
    fn up_before_open_sits_in_closed_and_rejects_requests() {
        let (mut a, _) = drive(&[Up]);
        assert_eq!(a.state(), Closed);
        let acts = a.handle(RcrGood).unwrap();
        assert_eq!(acts, vec![SendTerminateAck]);
        assert_eq!(a.state(), Closed);
    }

    #[test]
    fn close_from_opened_terminates_gracefully() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        let acts = a.handle(Close).unwrap();
        assert_eq!(
            acts,
            vec![ThisLayerDown, InitRestartCount, SendTerminateRequest]
        );
        assert_eq!(a.state(), Closing);
        let acts = a.handle(Rta).unwrap();
        assert_eq!(acts, vec![ThisLayerFinished]);
        assert_eq!(a.state(), Closed);
    }

    #[test]
    fn peer_terminate_in_opened_goes_to_stopping() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        let acts = a.handle(Rtr).unwrap();
        assert_eq!(
            acts,
            vec![ThisLayerDown, ZeroRestartCount, SendTerminateAck]
        );
        assert_eq!(a.state(), Stopping);
        // Zero restart count means the next timeout finishes immediately.
        let acts = a.handle(TimeoutGiveUp).unwrap();
        assert_eq!(acts, vec![ThisLayerFinished]);
        assert_eq!(a.state(), Stopped);
    }

    #[test]
    fn timeout_retries_resend_configure_request() {
        let (mut a, _) = drive(&[Open, Up]);
        assert_eq!(a.state(), ReqSent);
        assert_eq!(a.handle(TimeoutRetry).unwrap(), vec![SendConfigureRequest]);
        assert_eq!(a.state(), ReqSent);
        assert_eq!(a.handle(TimeoutGiveUp).unwrap(), vec![ThisLayerFinished]);
        assert_eq!(a.state(), Stopped);
    }

    #[test]
    fn nak_in_req_sent_resends_request() {
        let (mut a, _) = drive(&[Open, Up]);
        let acts = a.handle(Rcn).unwrap();
        assert_eq!(acts, vec![InitRestartCount, SendConfigureRequest]);
        assert_eq!(a.state(), ReqSent);
    }

    #[test]
    fn renegotiation_from_opened_on_rcr() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        let acts = a.handle(RcrGood).unwrap();
        assert_eq!(
            acts,
            vec![ThisLayerDown, SendConfigureRequest, SendConfigureAck]
        );
        assert_eq!(a.state(), AckSent);
    }

    #[test]
    fn catastrophic_code_reject_tears_down() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        let acts = a.handle(RxjBad).unwrap();
        assert!(acts.contains(&ThisLayerDown));
        assert!(acts.contains(&SendTerminateRequest));
        assert_eq!(a.state(), Stopping);
    }

    #[test]
    fn echo_request_in_opened_gets_reply() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        assert_eq!(a.handle(Rxr).unwrap(), vec![SendEchoReply]);
        assert_eq!(a.state(), Opened);
    }

    #[test]
    fn echo_outside_opened_is_ignored() {
        let (mut a, _) = drive(&[Open, Up]);
        assert!(a.handle(Rxr).unwrap().is_empty());
        assert_eq!(a.state(), ReqSent);
    }

    #[test]
    fn down_from_opened_signals_layer_down() {
        let (mut a, _) = drive(&[Open, Up, RcrGood, Rca]);
        assert_eq!(a.handle(Down).unwrap(), vec![ThisLayerDown]);
        assert_eq!(a.state(), Starting);
    }

    #[test]
    fn impossible_events_are_reported() {
        let mut a = Automaton::new();
        assert!(a.handle(TimeoutRetry).is_err());
        assert!(a.handle(Rca).is_err());
        assert_eq!(a.state(), Initial);
    }

    #[test]
    fn unknown_code_always_code_rejects_in_live_states() {
        for pre in [
            vec![Up],
            vec![Open, Up],
            vec![Open, Up, RcrGood],
            vec![Open, Up, RcrGood, Rca],
        ] {
            let (mut a, _) = drive(&pre);
            let before = a.state();
            assert_eq!(a.handle(Ruc).unwrap(), vec![SendCodeReject]);
            assert_eq!(a.state(), before);
        }
    }

    #[test]
    fn crossed_ack_restarts_negotiation() {
        // AckRcvd + another Rca is the crossed-connection glitch.
        let (mut a, _) = drive(&[Open, Up, Rca]);
        assert_eq!(a.state(), AckRcvd);
        assert_eq!(a.handle(Rca).unwrap(), vec![SendConfigureRequest]);
        assert_eq!(a.state(), ReqSent);
    }
}
