//! PPP Link Quality Monitoring (RFC 1989) — the paper's reference list
//! includes RFC 1333 (LQM, obsoleted by 1989).  Each side periodically
//! transmits a Link-Quality-Report (protocol 0xC025) carrying its
//! transmit/receive counters; comparing deltas on both sides measures
//! loss in each direction — the management view on top of the P⁵'s OAM
//! counters.

/// The Link-Quality-Report packet body: twelve 32-bit big-endian
/// counters (RFC 1989 §2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LqrPacket {
    pub magic_number: u32,
    pub last_out_lqrs: u32,
    pub last_out_packets: u32,
    pub last_out_octets: u32,
    pub peer_in_lqrs: u32,
    pub peer_in_packets: u32,
    pub peer_in_discards: u32,
    pub peer_in_errors: u32,
    pub peer_in_octets: u32,
    pub peer_out_lqrs: u32,
    pub peer_out_packets: u32,
    pub peer_out_octets: u32,
}

impl LqrPacket {
    pub const WIRE_LEN: usize = 48;

    pub fn to_bytes(&self) -> Vec<u8> {
        let fields = [
            self.magic_number,
            self.last_out_lqrs,
            self.last_out_packets,
            self.last_out_octets,
            self.peer_in_lqrs,
            self.peer_in_packets,
            self.peer_in_discards,
            self.peer_in_errors,
            self.peer_in_octets,
            self.peer_out_lqrs,
            self.peer_out_packets,
            self.peer_out_octets,
        ];
        fields.iter().flat_map(|f| f.to_be_bytes()).collect()
    }

    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let f = |i: usize| u32::from_be_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        Some(Self {
            magic_number: f(0),
            last_out_lqrs: f(1),
            last_out_packets: f(2),
            last_out_octets: f(3),
            peer_in_lqrs: f(4),
            peer_in_packets: f(5),
            peer_in_discards: f(6),
            peer_in_errors: f(7),
            peer_in_octets: f(8),
            peer_out_lqrs: f(9),
            peer_out_packets: f(10),
            peer_out_octets: f(11),
        })
    }
}

/// Loss measured over one reporting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityDelta {
    /// Packets we sent in the interval (by our own count).
    pub sent: u32,
    /// Of those, packets the peer reports having received.
    pub received: u32,
}

impl QualityDelta {
    pub fn lost(&self) -> u32 {
        self.sent.saturating_sub(self.received)
    }

    /// Fraction of packets delivered (1.0 = perfect).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }
}

/// One side's LQM instance: keeps local counters, builds outgoing
/// reports, digests incoming ones.
#[derive(Debug, Clone, Default)]
pub struct LqrMonitor {
    pub magic: u32,
    // Local transmit counters.
    out_lqrs: u32,
    out_packets: u32,
    out_octets: u32,
    // Local receive counters (fed from the OAM).
    in_lqrs: u32,
    in_packets: u32,
    in_discards: u32,
    in_errors: u32,
    in_octets: u32,
    /// Last report received from the peer.
    last_peer_report: Option<LqrPacket>,
    /// Snapshot of our out_packets when the previous measurement was
    /// taken, and the peer's in_packets at that time.
    prev_out_packets: u32,
    prev_peer_in_packets: u32,
    measurement: Option<QualityDelta>,
}

impl LqrMonitor {
    pub fn new(magic: u32) -> Self {
        Self {
            magic,
            ..Default::default()
        }
    }

    /// Record locally transmitted traffic (datapath tap).
    pub fn note_sent(&mut self, packets: u32, octets: u32) {
        self.out_packets += packets;
        self.out_octets += octets;
    }

    /// Record locally received traffic (from the OAM counters).
    pub fn note_received(&mut self, packets: u32, octets: u32, discards: u32, errors: u32) {
        self.in_packets += packets;
        self.in_octets += octets;
        self.in_discards += discards;
        self.in_errors += errors;
    }

    /// Build the next outgoing report (counts itself as an out-LQR).
    pub fn build_report(&mut self) -> LqrPacket {
        self.out_lqrs += 1;
        let peer = self.last_peer_report.unwrap_or_default();
        LqrPacket {
            magic_number: self.magic,
            last_out_lqrs: self.out_lqrs,
            last_out_packets: self.out_packets,
            last_out_octets: self.out_octets,
            peer_in_lqrs: self.in_lqrs,
            peer_in_packets: self.in_packets,
            peer_in_discards: self.in_discards,
            peer_in_errors: self.in_errors,
            peer_in_octets: self.in_octets,
            // Echo the peer's own out-counters back (RFC 1989: copied
            // from the last received LQR).
            peer_out_lqrs: peer.last_out_lqrs,
            peer_out_packets: peer.last_out_packets,
            peer_out_octets: peer.last_out_octets,
        }
    }

    /// Digest a received report; updates the outbound-loss measurement.
    pub fn receive_report(&mut self, report: LqrPacket) {
        self.in_lqrs += 1;
        // Outbound loss: how many of the packets we sent since the last
        // report did the peer actually receive?
        let sent_now = report.peer_out_packets; // peer echoes our count
        let recv_now = report.peer_in_packets;
        if self.last_peer_report.is_some() && sent_now >= self.prev_out_packets {
            let sent = sent_now - self.prev_out_packets;
            let received = recv_now.saturating_sub(self.prev_peer_in_packets);
            self.measurement = Some(QualityDelta {
                sent,
                received: received.min(sent),
            });
        }
        self.prev_out_packets = sent_now;
        self.prev_peer_in_packets = recv_now;
        self.last_peer_report = Some(report);
    }

    /// The latest interval measurement, if two reports have arrived.
    pub fn outbound_quality(&self) -> Option<QualityDelta> {
        self.measurement
    }
}

/// When is a link "bad enough" to act on?  RFC 1989 deliberately leaves
/// the quality policy to the implementation; this one trips after the
/// delivery ratio stays below a floor for a number of consecutive
/// intervals, and is the hook a session owner uses to drive
/// `Session::renegotiate` from LQR measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPolicy {
    /// Minimum acceptable fraction of packets delivered per interval.
    pub min_delivery_ratio: f64,
    /// Consecutive bad intervals before the policy trips.
    pub intervals_to_trip: u32,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        Self {
            min_delivery_ratio: 0.9,
            intervals_to_trip: 3,
        }
    }
}

/// Runs a [`QualityPolicy`] over the per-interval measurements.
#[derive(Debug, Clone, Default)]
pub struct QualityTracker {
    policy: QualityPolicy,
    bad_intervals: u32,
    tripped: bool,
}

impl QualityTracker {
    pub fn new(policy: QualityPolicy) -> Self {
        Self {
            policy,
            bad_intervals: 0,
            tripped: false,
        }
    }

    /// Feed one interval's measurement; returns `true` the moment the
    /// policy trips (stays `true` until [`Self::reset`]).
    pub fn observe(&mut self, delta: QualityDelta) -> bool {
        if delta.delivery_ratio() < self.policy.min_delivery_ratio {
            self.bad_intervals += 1;
            if self.bad_intervals >= self.policy.intervals_to_trip {
                self.tripped = true;
            }
        } else {
            self.bad_intervals = 0;
        }
        self.tripped
    }

    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Consecutive bad intervals seen so far.
    pub fn bad_intervals(&self) -> u32 {
        self.bad_intervals
    }

    /// Clear the trip (e.g. after the renegotiation the trip provoked).
    pub fn reset(&mut self) {
        self.bad_intervals = 0;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trip() {
        let p = LqrPacket {
            magic_number: 0xDEADBEEF,
            last_out_packets: 123,
            peer_in_octets: 4567,
            ..Default::default()
        };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), LqrPacket::WIRE_LEN);
        assert_eq!(LqrPacket::parse(&bytes), Some(p));
        assert_eq!(LqrPacket::parse(&bytes[..40]), None);
    }

    /// Simulate two monitors over a link that drops some of A's packets.
    fn run_interval(a: &mut LqrMonitor, b: &mut LqrMonitor, send: u32, deliver: u32) {
        a.note_sent(send, send * 100);
        b.note_received(deliver, deliver * 100, 0, send - deliver);
        // A reports; B digests and replies; A digests.
        let ra = a.build_report();
        b.receive_report(LqrPacket::parse(&ra.to_bytes()).unwrap());
        let rb = b.build_report();
        a.receive_report(LqrPacket::parse(&rb.to_bytes()).unwrap());
    }

    #[test]
    fn measures_outbound_loss() {
        let mut a = LqrMonitor::new(1);
        let mut b = LqrMonitor::new(2);
        run_interval(&mut a, &mut b, 100, 100); // priming interval
        run_interval(&mut a, &mut b, 100, 93); // 7 lost
        let q = a.outbound_quality().expect("measured after two reports");
        assert_eq!(q.sent, 100);
        assert_eq!(q.received, 93);
        assert_eq!(q.lost(), 7);
        assert!((q.delivery_ratio() - 0.93).abs() < 1e-9);
    }

    #[test]
    fn perfect_link_measures_no_loss() {
        let mut a = LqrMonitor::new(1);
        let mut b = LqrMonitor::new(2);
        for _ in 0..5 {
            run_interval(&mut a, &mut b, 50, 50);
        }
        let q = a.outbound_quality().unwrap();
        assert_eq!(q.lost(), 0);
        assert_eq!(q.delivery_ratio(), 1.0);
    }

    #[test]
    fn quality_updates_per_interval() {
        let mut a = LqrMonitor::new(1);
        let mut b = LqrMonitor::new(2);
        run_interval(&mut a, &mut b, 10, 10);
        run_interval(&mut a, &mut b, 10, 5);
        assert_eq!(a.outbound_quality().unwrap().lost(), 5);
        run_interval(&mut a, &mut b, 10, 10);
        assert_eq!(a.outbound_quality().unwrap().lost(), 0);
    }

    #[test]
    fn quality_policy_trips_on_sustained_degradation_only() {
        let mut t = QualityTracker::new(QualityPolicy {
            min_delivery_ratio: 0.9,
            intervals_to_trip: 3,
        });
        let bad = QualityDelta {
            sent: 100,
            received: 50,
        };
        let good = QualityDelta {
            sent: 100,
            received: 99,
        };
        // A transient dip below the floor does not trip the policy.
        assert!(!t.observe(bad));
        assert!(!t.observe(bad));
        assert!(!t.observe(good));
        assert_eq!(t.bad_intervals(), 0);
        // Three consecutive bad intervals do.
        assert!(!t.observe(bad));
        assert!(!t.observe(bad));
        assert!(t.observe(bad));
        assert!(t.is_tripped());
        // Latched until reset, even through good intervals.
        assert!(t.observe(good));
        t.reset();
        assert!(!t.is_tripped());
        assert!(!t.observe(bad));
    }

    #[test]
    fn idle_interval_is_perfect_by_convention() {
        let q = QualityDelta {
            sent: 0,
            received: 0,
        };
        assert_eq!(q.delivery_ratio(), 1.0);
    }
}
