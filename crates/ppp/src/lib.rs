//! The PPP protocol layer (RFC 1661) as used by the paper's P⁵.
//!
//! The paper's §2 breaks PPP into three parts; all three exist here:
//!
//! 1. **Framing** — the HDLC-like encapsulation lives in `p5-hdlc`; this
//!    crate adds the PPP frame *fields* (address, control, protocol,
//!    payload — Figure 1 of the paper) with the programmable address byte
//!    that makes the P⁵ "compatible with MAPOS systems" (RFC 2171),
//!    and the LCP-negotiable field compressions (ACFC/PFC).
//! 2. **LCP** — packet codec, configuration options, and the complete
//!    RFC 1661 §4 option-negotiation automaton (all ten states), plus a
//!    runnable [`endpoint::Endpoint`] that drives it with restart timers
//!    and counters the way a host microprocessor would drive the P⁵ OAM.
//! 3. **NCP** — IPCP (RFC 1332 subset) implemented over the same
//!    automaton, enough to bring IPv4 up on a negotiated link.
//!
//! ```
//! use p5_ppp::{Session, SessionEvent};
//!
//! let mut a = Session::new(0xAAAA, [10, 0, 0, 1]);
//! let mut b = Session::new(0xBBBB, [10, 0, 0, 2]);
//! a.start();
//! b.start();
//! for now in 0..60 {
//!     a.tick(now);
//!     b.tick(now);
//!     for (proto, info) in a.poll_output() { b.receive(proto, &info); }
//!     for (proto, info) in b.poll_output() { a.receive(proto, &info); }
//! }
//! assert!(a.is_network_up() && b.is_network_up());
//! a.send_datagram(b"ping".to_vec());
//! for (proto, info) in a.poll_output() { b.receive(proto, &info); }
//! assert!(b.poll_events().contains(&SessionEvent::Datagram(b"ping".to_vec())));
//! ```

pub mod endpoint;
pub mod frame;
pub mod fsm;
pub mod ipcp;
pub mod lcp;
pub mod lcp_negotiator;
pub mod lqr;
pub mod mapos;
pub mod pap;
pub mod profile;
pub mod protocol;
pub mod session;
pub mod stream;

pub use frame::{FieldCompression, FrameCodec, FrameError, PppFrame};
pub use fsm::{Action, Automaton, Event, State};
pub use lcp::{ConfigOption, LcpOption, Packet, PacketCode};
pub use pap::CredentialTable;
pub use profile::{AuthPolicy, NegotiationProfile};
pub use protocol::Protocol;
pub use session::{Session, SessionEvent};
pub use stream::EndpointStage;
