//! [`NegotiationProfile`]: the one typed description of what a session
//! negotiates.
//!
//! Before the transport redesign, configuring a session meant touching
//! scattered knobs: an [`EndpointConfig`] for the RFC 1661 timers, a
//! hand-built `LcpNegotiator` for MRU and field compression, ad-hoc
//! wiring for PAP and LQR.  A `NegotiationProfile` gathers the whole
//! surface — the same shape a production PPP test platform exposes as
//! one configuration object — and is consumed identically by
//! `Session::with_profile`, `p5_link::LinkBuilder::profile` and
//! `p5_xport::SessionDriver`.
//!
//! The old path ([`crate::Session::with_config`]) still works behind a
//! `From<EndpointConfig>` shim but is deprecated; see the release note
//! in DESIGN.md §18.

use crate::endpoint::EndpointConfig;
use crate::pap::CredentialTable;

/// Authentication stance for the session (RFC 1334 PAP).
#[derive(Debug, Clone, Default)]
pub enum AuthPolicy {
    /// No authentication phase: IPCP starts as soon as LCP opens.
    #[default]
    None,
    /// We authenticate *to* the peer: send a PAP Authenticate-Request
    /// with these credentials once the link opens, and hold IPCP until
    /// the peer Acks.
    PapClient {
        /// Peer-ID field of the Authenticate-Request.
        id: Vec<u8>,
        /// Password field of the Authenticate-Request.
        secret: Vec<u8>,
    },
    /// The peer must authenticate to *us*: hold IPCP until a PAP
    /// request arrives that matches this table.
    PapServer(CredentialTable),
}

/// Typed builder for everything one session endpoint negotiates: MRU,
/// ACFC/PFC field compression, the RFC 1661 restart budget, the LQR
/// reporting interval and the authentication stance — plus the IPCP
/// address and LCP magic number that identify the endpoint.
#[derive(Debug, Clone)]
pub struct NegotiationProfile {
    mru: u16,
    magic: u32,
    ip: [u8; 4],
    acfc: bool,
    pfc: bool,
    restart_period: u64,
    max_configure: u32,
    max_terminate: u32,
    lqr_interval: Option<u64>,
    auth: AuthPolicy,
}

impl Default for NegotiationProfile {
    fn default() -> Self {
        let cfg = EndpointConfig::default();
        NegotiationProfile {
            mru: 1500,
            magic: 0,
            ip: [0; 4],
            acfc: false,
            pfc: false,
            restart_period: cfg.restart_period,
            max_configure: cfg.max_configure,
            max_terminate: cfg.max_terminate,
            lqr_interval: None,
            auth: AuthPolicy::None,
        }
    }
}

impl NegotiationProfile {
    pub fn new() -> Self {
        NegotiationProfile::default()
    }

    /// Maximum-Receive-Unit we request (default 1500).
    pub fn mru(mut self, mru: u16) -> Self {
        self.mru = mru;
        self
    }

    /// LCP magic number for loop detection (default 0 = none sent).
    pub fn magic(mut self, magic: u32) -> Self {
        self.magic = magic;
        self
    }

    /// IPv4 address we bring to IPCP negotiation.
    pub fn ip(mut self, ip: [u8; 4]) -> Self {
        self.ip = ip;
        self
    }

    /// Request Address-and-Control-Field-Compression.
    pub fn acfc(mut self, on: bool) -> Self {
        self.acfc = on;
        self
    }

    /// Request Protocol-Field-Compression.
    pub fn pfc(mut self, on: bool) -> Self {
        self.pfc = on;
        self
    }

    /// Request both field compressions (the paper's §2 MAPOS-friendly
    /// short header).
    pub fn compression(self, on: bool) -> Self {
        self.acfc(on).pfc(on)
    }

    /// Restart-timer period in ticks (RFC 1661 §4.6).
    pub fn restart_period(mut self, ticks: u64) -> Self {
        self.restart_period = ticks;
        self
    }

    /// Max-Configure: Configure-Request retransmissions before giving
    /// up.
    pub fn max_configure(mut self, n: u32) -> Self {
        self.max_configure = n;
        self
    }

    /// Max-Terminate: Terminate-Request retransmissions.
    pub fn max_terminate(mut self, n: u32) -> Self {
        self.max_terminate = n;
        self
    }

    /// Emit a Link-Quality-Report every `ticks` (RFC 1989 cadence);
    /// `None` disables LQR.
    pub fn lqr_every(mut self, ticks: u64) -> Self {
        self.lqr_interval = Some(ticks);
        self
    }

    /// Authenticate to the peer with PAP once the link opens.
    pub fn pap_client(mut self, id: &[u8], secret: &[u8]) -> Self {
        self.auth = AuthPolicy::PapClient {
            id: id.to_vec(),
            secret: secret.to_vec(),
        };
        self
    }

    /// Require PAP from the peer, verified against `table`.
    pub fn pap_server(mut self, table: CredentialTable) -> Self {
        self.auth = AuthPolicy::PapServer(table);
        self
    }

    // -- read accessors (the driver side of the surface) --------------

    /// The RFC 1661 timer/counter bundle this profile resolves to.
    pub fn config(&self) -> EndpointConfig {
        EndpointConfig {
            restart_period: self.restart_period,
            max_configure: self.max_configure,
            max_terminate: self.max_terminate,
        }
    }

    /// Upper bound, in ticks, for one negotiation round (see
    /// [`EndpointConfig::restart_budget_ticks`]).
    pub fn restart_budget_ticks(&self) -> u64 {
        self.config().restart_budget_ticks()
    }

    /// The LQR reporting interval, if enabled.
    pub fn lqr_interval(&self) -> Option<u64> {
        self.lqr_interval
    }

    /// The configured authentication stance.
    pub fn auth_policy(&self) -> &AuthPolicy {
        &self.auth
    }

    /// The MRU this profile requests.
    pub fn mru_requested(&self) -> u16 {
        self.mru
    }

    /// The LCP magic number.
    pub fn magic_number(&self) -> u32 {
        self.magic
    }

    /// The IPCP address this endpoint brings to negotiation.
    pub fn ip_addr(&self) -> [u8; 4] {
        self.ip
    }

    /// Whether ACFC is requested.
    pub fn wants_acfc(&self) -> bool {
        self.acfc
    }

    /// Whether PFC is requested.
    pub fn wants_pfc(&self) -> bool {
        self.pfc
    }

    pub(crate) fn take_auth(&self) -> AuthPolicy {
        self.auth.clone()
    }
}

/// Shim for pre-redesign callers holding a bare [`EndpointConfig`]:
/// lifts the timer bundle into a profile with every other knob at its
/// default.
impl From<EndpointConfig> for NegotiationProfile {
    fn from(cfg: EndpointConfig) -> Self {
        NegotiationProfile::new()
            .restart_period(cfg.restart_period)
            .max_configure(cfg.max_configure)
            .max_terminate(cfg.max_terminate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_knob() {
        let p = NegotiationProfile::new()
            .mru(2048)
            .magic(0xDEAD_BEEF)
            .ip([10, 0, 0, 7])
            .compression(true)
            .restart_period(5)
            .max_configure(4)
            .max_terminate(3)
            .lqr_every(64)
            .pap_client(b"alice", b"s3cret");
        assert_eq!(p.mru_requested(), 2048);
        assert_eq!(p.magic_number(), 0xDEAD_BEEF);
        assert_eq!(p.ip_addr(), [10, 0, 0, 7]);
        assert!(p.wants_acfc() && p.wants_pfc());
        let cfg = p.config();
        assert_eq!(cfg.restart_period, 5);
        assert_eq!(cfg.max_configure, 4);
        assert_eq!(cfg.max_terminate, 3);
        assert_eq!(p.restart_budget_ticks(), (4 + 1) * 5);
        assert_eq!(p.lqr_interval(), Some(64));
        assert!(matches!(p.auth_policy(), AuthPolicy::PapClient { .. }));
    }

    #[test]
    fn endpoint_config_shim_preserves_timers() {
        let cfg = EndpointConfig {
            restart_period: 7,
            max_configure: 2,
            max_terminate: 1,
        };
        let p: NegotiationProfile = cfg.into();
        let back = p.config();
        assert_eq!(back.restart_period, 7);
        assert_eq!(back.max_configure, 2);
        assert_eq!(back.max_terminate, 1);
        assert!(matches!(p.auth_policy(), AuthPolicy::None));
        assert_eq!(p.mru_requested(), 1500);
    }
}
