//! LCP packet and configuration-option codecs (RFC 1661 §5, §6).
//!
//! The paper: "An extensible Link Control Protocol (LCP) to establish,
//! configure, and test the data-link connection."  These are the packets
//! the host microprocessor exchanges through the P⁵'s OAM interface.

/// LCP (and, code-compatibly, NCP) packet codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketCode {
    ConfigureRequest = 1,
    ConfigureAck = 2,
    ConfigureNak = 3,
    ConfigureReject = 4,
    TerminateRequest = 5,
    TerminateAck = 6,
    CodeReject = 7,
    ProtocolReject = 8,
    EchoRequest = 9,
    EchoReply = 10,
    DiscardRequest = 11,
}

impl PacketCode {
    pub fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => Self::ConfigureRequest,
            2 => Self::ConfigureAck,
            3 => Self::ConfigureNak,
            4 => Self::ConfigureReject,
            5 => Self::TerminateRequest,
            6 => Self::TerminateAck,
            7 => Self::CodeReject,
            8 => Self::ProtocolReject,
            9 => Self::EchoRequest,
            10 => Self::EchoReply,
            11 => Self::DiscardRequest,
            _ => return None,
        })
    }
}

/// A control-protocol packet: Code, Identifier, Length, Data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub code: PacketCode,
    pub id: u8,
    pub data: Vec<u8>,
}

/// Packet parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    Truncated,
    /// The length field disagrees with the received byte count.
    BadLength,
    /// Unknown code — the automaton answers with Code-Reject (RUC event).
    UnknownCode(u8),
}

impl Packet {
    pub fn new(code: PacketCode, id: u8, data: Vec<u8>) -> Self {
        Self { code, id, data }
    }

    /// Serialise as Code | Id | Length(2, big-endian, incl. header) | Data.
    pub fn to_bytes(&self) -> Vec<u8> {
        let len = (self.data.len() + 4) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.push(self.code as u8);
        out.push(self.id);
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parse a packet from a PPP information field.  Trailing padding
    /// beyond the length field is permitted (RFC 1661 §5) and dropped.
    pub fn parse(bytes: &[u8]) -> Result<Self, PacketError> {
        if bytes.len() < 4 {
            return Err(PacketError::Truncated);
        }
        let code = PacketCode::from_u8(bytes[0]).ok_or(PacketError::UnknownCode(bytes[0]))?;
        let id = bytes[1];
        let len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if len < 4 || len > bytes.len() {
            return Err(PacketError::BadLength);
        }
        Ok(Self {
            code,
            id,
            data: bytes[4..len].to_vec(),
        })
    }
}

/// A raw Type-Length-Value configuration option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigOption {
    pub kind: u8,
    pub data: Vec<u8>,
}

impl ConfigOption {
    /// Serialise Type | Length(incl. header) | Data.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.push((self.data.len() + 2) as u8);
        out.extend_from_slice(&self.data);
    }

    /// Parse a whole option list (the data of a Configure-* packet).
    pub fn parse_list(mut bytes: &[u8]) -> Result<Vec<ConfigOption>, PacketError> {
        let mut opts = Vec::new();
        while !bytes.is_empty() {
            if bytes.len() < 2 {
                return Err(PacketError::Truncated);
            }
            let len = bytes[1] as usize;
            if len < 2 || len > bytes.len() {
                return Err(PacketError::BadLength);
            }
            opts.push(ConfigOption {
                kind: bytes[0],
                data: bytes[2..len].to_vec(),
            });
            bytes = &bytes[len..];
        }
        Ok(opts)
    }

    /// Serialise an option list.
    pub fn write_list(opts: &[ConfigOption]) -> Vec<u8> {
        let mut out = Vec::new();
        for o in opts {
            o.write(&mut out);
        }
        out
    }
}

/// Typed LCP configuration options (RFC 1661 §6, RFC 1570 for FCS
/// alternatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LcpOption {
    /// Type 1: Maximum-Receive-Unit.
    Mru(u16),
    /// Type 2: Async-Control-Character-Map.
    Accm(u32),
    /// Type 5: Magic-Number (loopback detection).
    MagicNumber(u32),
    /// Type 7: Protocol-Field-Compression.
    Pfc,
    /// Type 8: Address-and-Control-Field-Compression.
    Acfc,
    /// Type 9: FCS-Alternatives bitmask (1 = null, 2 = CCITT-16,
    /// 4 = CCITT-32 — the P⁵ negotiates 32-bit CRC).
    FcsAlternatives(u8),
    /// Unrecognised option, kept raw for Configure-Reject.
    Unknown(ConfigOption),
}

/// FCS-Alternatives flag: no FCS.
pub const FCS_ALT_NULL: u8 = 1;
/// FCS-Alternatives flag: CCITT 16-bit.
pub const FCS_ALT_CCITT16: u8 = 2;
/// FCS-Alternatives flag: CCITT 32-bit.
pub const FCS_ALT_CCITT32: u8 = 4;

impl LcpOption {
    pub fn to_raw(&self) -> ConfigOption {
        match self {
            LcpOption::Mru(v) => ConfigOption {
                kind: 1,
                data: v.to_be_bytes().to_vec(),
            },
            LcpOption::Accm(v) => ConfigOption {
                kind: 2,
                data: v.to_be_bytes().to_vec(),
            },
            LcpOption::MagicNumber(v) => ConfigOption {
                kind: 5,
                data: v.to_be_bytes().to_vec(),
            },
            LcpOption::Pfc => ConfigOption {
                kind: 7,
                data: vec![],
            },
            LcpOption::Acfc => ConfigOption {
                kind: 8,
                data: vec![],
            },
            LcpOption::FcsAlternatives(v) => ConfigOption {
                kind: 9,
                data: vec![*v],
            },
            LcpOption::Unknown(raw) => raw.clone(),
        }
    }

    pub fn from_raw(raw: &ConfigOption) -> Self {
        match (raw.kind, raw.data.as_slice()) {
            (1, [a, b]) => LcpOption::Mru(u16::from_be_bytes([*a, *b])),
            (2, [a, b, c, d]) => LcpOption::Accm(u32::from_be_bytes([*a, *b, *c, *d])),
            (5, [a, b, c, d]) => LcpOption::MagicNumber(u32::from_be_bytes([*a, *b, *c, *d])),
            (7, []) => LcpOption::Pfc,
            (8, []) => LcpOption::Acfc,
            (9, [v]) => LcpOption::FcsAlternatives(*v),
            _ => LcpOption::Unknown(raw.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trip() {
        let p = Packet::new(PacketCode::ConfigureRequest, 7, vec![1, 4, 0x05, 0xDC]);
        let bytes = p.to_bytes();
        assert_eq!(bytes[2..4], [0, 8]);
        assert_eq!(Packet::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn packet_with_padding_parses() {
        let mut bytes = Packet::new(PacketCode::EchoRequest, 1, vec![0; 4]).to_bytes();
        bytes.extend_from_slice(&[0xEE; 10]); // padding
        let p = Packet::parse(&bytes).unwrap();
        assert_eq!(p.data.len(), 4);
    }

    #[test]
    fn unknown_code_surfaces_for_code_reject() {
        let bytes = [0x63, 1, 0, 4];
        assert_eq!(Packet::parse(&bytes), Err(PacketError::UnknownCode(0x63)));
    }

    #[test]
    fn bad_length_rejected() {
        assert_eq!(Packet::parse(&[1, 1, 0, 3]), Err(PacketError::BadLength));
        assert_eq!(
            Packet::parse(&[1, 1, 0, 99, 0]),
            Err(PacketError::BadLength)
        );
        assert_eq!(Packet::parse(&[1, 1]), Err(PacketError::Truncated));
    }

    #[test]
    fn option_list_round_trip() {
        let opts = vec![
            LcpOption::Mru(1500).to_raw(),
            LcpOption::MagicNumber(0xDEADBEEF).to_raw(),
            LcpOption::Pfc.to_raw(),
            LcpOption::Acfc.to_raw(),
            LcpOption::FcsAlternatives(FCS_ALT_CCITT32).to_raw(),
        ];
        let bytes = ConfigOption::write_list(&opts);
        assert_eq!(ConfigOption::parse_list(&bytes).unwrap(), opts);
    }

    #[test]
    fn typed_option_round_trip() {
        for opt in [
            LcpOption::Mru(1500),
            LcpOption::Accm(0),
            LcpOption::MagicNumber(42),
            LcpOption::Pfc,
            LcpOption::Acfc,
            LcpOption::FcsAlternatives(FCS_ALT_CCITT16 | FCS_ALT_CCITT32),
        ] {
            assert_eq!(LcpOption::from_raw(&opt.to_raw()), opt);
        }
    }

    #[test]
    fn malformed_option_is_unknown_not_panic() {
        // MRU with wrong data length.
        let raw = ConfigOption {
            kind: 1,
            data: vec![1, 2, 3],
        };
        assert!(matches!(LcpOption::from_raw(&raw), LcpOption::Unknown(_)));
    }

    #[test]
    fn truncated_option_list_rejected() {
        assert_eq!(
            ConfigOption::parse_list(&[1, 4, 0]),
            Err(PacketError::BadLength)
        );
        assert_eq!(ConfigOption::parse_list(&[1]), Err(PacketError::Truncated));
        assert_eq!(
            ConfigOption::parse_list(&[1, 1]),
            Err(PacketError::BadLength)
        );
    }
}
