//! The PPP frame format (Figure 1 of the paper): Address, Control,
//! Protocol, Payload — everything between the flags, before the FCS.
//!
//! The codec implements the programmability the paper emphasises: the
//! address byte is a register ("this implementation allows this field to
//! be programmable so that it is compatible with MAPOS systems"), the
//! protocol field may be 1 or 2 bytes ("the default size of the protocol
//! field is 2 bytes but this may be negotiated down to 1 byte using LCP"),
//! and the address/control pair can be elided entirely (ACFC).

use crate::protocol::Protocol;

/// Standard all-stations address.
pub const ADDRESS_ALL_STATIONS: u8 = 0xFF;
/// Unnumbered-information control byte ("in normal operating conditions
/// the value of this field is 0x03").
pub const CONTROL_UI: u8 = 0x03;

/// LCP-negotiated header compressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldCompression {
    /// Address-and-Control-Field Compression: omit the FF 03 pair.
    pub acfc: bool,
    /// Protocol-Field Compression: send eligible protocols as one byte.
    pub pfc: bool,
}

/// A decoded PPP frame (without flags or FCS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PppFrame {
    pub address: u8,
    pub control: u8,
    pub protocol: Protocol,
    pub payload: Vec<u8>,
}

impl PppFrame {
    /// A conventional datagram frame with default address/control.
    pub fn datagram(protocol: Protocol, payload: Vec<u8>) -> Self {
        Self {
            address: ADDRESS_ALL_STATIONS,
            control: CONTROL_UI,
            protocol,
            payload,
        }
    }
}

/// Frame decode failures (surface as OAM error counters in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the smallest legal header.
    Truncated,
    /// Address byte did not match the programmed station address.
    AddressMismatch { got: u8, expected: u8 },
    /// Control byte was not 0x03.
    BadControl(u8),
    /// Protocol field malformed (e.g. 2-byte protocol with odd first byte).
    BadProtocol,
}

/// Encoder/decoder for the fields between flag and FCS, with the
/// programmable address register.
#[derive(Debug, Clone, Copy)]
pub struct FrameCodec {
    /// The station address to emit and to accept (OAM register).
    pub address: u8,
    /// Accept any address on receive (promiscuous / MAPOS broadcast).
    pub promiscuous: bool,
    pub compression: FieldCompression,
}

impl Default for FrameCodec {
    fn default() -> Self {
        Self {
            address: ADDRESS_ALL_STATIONS,
            promiscuous: false,
            compression: FieldCompression::default(),
        }
    }
}

impl FrameCodec {
    /// Encode a frame into the body bytes handed to the HDLC framer.
    pub fn encode(&self, frame: &PppFrame) -> Vec<u8> {
        let mut out = Vec::with_capacity(frame.payload.len() + 4);
        self.encode_into(frame, &mut out);
        out
    }

    /// Encode appending to `out`.
    pub fn encode_into(&self, frame: &PppFrame, out: &mut Vec<u8>) {
        if !self.compression.acfc || !frame.protocol.is_network_layer() {
            // LCP frames always carry the full header (RFC 1661: ACFC must
            // not be applied to LCP packets).
            out.push(frame.address);
            out.push(frame.control);
        }
        let proto = frame.protocol.number();
        if self.compression.pfc && frame.protocol.pfc_eligible() {
            out.push(proto as u8);
        } else {
            out.extend_from_slice(&proto.to_be_bytes());
        }
        out.extend_from_slice(&frame.payload);
    }

    /// Decode the body bytes delivered by the HDLC deframer.
    pub fn decode(&self, body: &[u8]) -> Result<PppFrame, FrameError> {
        let mut rest = body;
        let (address, control);
        // The address/control pair may be elided only when ACFC was
        // negotiated; a receiver distinguishes the cases by the first
        // byte — 0xFF is never a valid (compressed) protocol first byte.
        if rest.first() == Some(&self.address) && rest.get(1) == Some(&CONTROL_UI) {
            address = rest[0];
            control = rest[1];
            rest = &rest[2..];
        } else if self.compression.acfc {
            address = self.address;
            control = CONTROL_UI;
        } else if rest.len() >= 2 {
            if rest[0] != self.address && !self.promiscuous {
                return Err(FrameError::AddressMismatch {
                    got: rest[0],
                    expected: self.address,
                });
            }
            if rest[1] != CONTROL_UI {
                return Err(FrameError::BadControl(rest[1]));
            }
            address = rest[0];
            control = rest[1];
            rest = &rest[2..];
        } else {
            return Err(FrameError::Truncated);
        }

        if rest.is_empty() {
            return Err(FrameError::Truncated);
        }
        // Protocol field: one byte if its LSB is set and the value is odd
        // (PFC), else two bytes.
        let protocol = if rest[0] & 1 == 1 {
            let p = Protocol::from_number(rest[0] as u16);
            rest = &rest[1..];
            p
        } else {
            if rest.len() < 2 {
                return Err(FrameError::Truncated);
            }
            let n = u16::from_be_bytes([rest[0], rest[1]]);
            if n & 1 == 0 {
                return Err(FrameError::BadProtocol);
            }
            rest = &rest[2..];
            Protocol::from_number(n)
        };

        Ok(PppFrame {
            address,
            control,
            protocol,
            payload: rest.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_encoding_matches_figure_1() {
        let codec = FrameCodec::default();
        let frame = PppFrame::datagram(Protocol::Ipv4, vec![0x45, 0x00]);
        let body = codec.encode(&frame);
        assert_eq!(body, vec![0xFF, 0x03, 0x00, 0x21, 0x45, 0x00]);
    }

    #[test]
    fn round_trip_default() {
        let codec = FrameCodec::default();
        let frame = PppFrame::datagram(Protocol::Ipv6, b"sixsixsix".to_vec());
        assert_eq!(codec.decode(&codec.encode(&frame)).unwrap(), frame);
    }

    #[test]
    fn pfc_compresses_eligible_protocols_only() {
        let codec = FrameCodec {
            compression: FieldCompression {
                pfc: true,
                acfc: false,
            },
            ..Default::default()
        };
        let ip = codec.encode(&PppFrame::datagram(Protocol::Ipv4, vec![]));
        assert_eq!(ip, vec![0xFF, 0x03, 0x21]);
        let lcp = codec.encode(&PppFrame::datagram(Protocol::Lcp, vec![]));
        assert_eq!(lcp, vec![0xFF, 0x03, 0xC0, 0x21]);
        // Both decode back.
        assert_eq!(codec.decode(&ip).unwrap().protocol, Protocol::Ipv4);
        assert_eq!(codec.decode(&lcp).unwrap().protocol, Protocol::Lcp);
    }

    #[test]
    fn acfc_elides_header_for_network_layer_only() {
        let codec = FrameCodec {
            compression: FieldCompression {
                pfc: false,
                acfc: true,
            },
            ..Default::default()
        };
        let ip = codec.encode(&PppFrame::datagram(Protocol::Ipv4, vec![1]));
        assert_eq!(ip, vec![0x00, 0x21, 1]);
        let lcp = codec.encode(&PppFrame::datagram(Protocol::Lcp, vec![1]));
        assert_eq!(lcp, vec![0xFF, 0x03, 0xC0, 0x21, 1]);
        assert_eq!(codec.decode(&ip).unwrap().protocol, Protocol::Ipv4);
        assert_eq!(codec.decode(&lcp).unwrap().protocol, Protocol::Lcp);
    }

    #[test]
    fn programmable_address_for_mapos() {
        // Paper: "this implementation allows this field to be programmable
        // so that it is compatible with MAPOS systems".
        let codec = FrameCodec {
            address: 0x03,
            ..Default::default()
        };
        let frame = PppFrame {
            address: 0x03,
            control: CONTROL_UI,
            protocol: Protocol::Ipv4,
            payload: vec![9],
        };
        let body = codec.encode(&frame);
        assert_eq!(body[0], 0x03);
        assert_eq!(codec.decode(&body).unwrap(), frame);
        // A different station's codec rejects it...
        let other = FrameCodec::default();
        assert!(matches!(
            other.decode(&body),
            Err(FrameError::AddressMismatch { got: 0x03, .. })
        ));
        // ...unless promiscuous.
        let promisc = FrameCodec {
            promiscuous: true,
            ..Default::default()
        };
        assert_eq!(promisc.decode(&body).unwrap().address, 0x03);
    }

    #[test]
    fn bad_control_rejected() {
        let codec = FrameCodec::default();
        assert_eq!(
            codec.decode(&[0xFF, 0x13, 0x00, 0x21]),
            Err(FrameError::BadControl(0x13))
        );
    }

    #[test]
    fn truncated_inputs_rejected() {
        let codec = FrameCodec::default();
        assert_eq!(codec.decode(&[]), Err(FrameError::Truncated));
        assert_eq!(codec.decode(&[0xFF]), Err(FrameError::Truncated));
        assert_eq!(codec.decode(&[0xFF, 0x03]), Err(FrameError::Truncated));
        assert_eq!(
            codec.decode(&[0xFF, 0x03, 0x00]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn even_two_byte_protocol_rejected() {
        let codec = FrameCodec::default();
        assert_eq!(
            codec.decode(&[0xFF, 0x03, 0x00, 0x20]),
            Err(FrameError::BadProtocol)
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let codec = FrameCodec::default();
        let frame = PppFrame::datagram(Protocol::Ipv4, vec![]);
        let decoded = codec.decode(&codec.encode(&frame)).unwrap();
        assert!(decoded.payload.is_empty());
    }
}
