//! A runnable control-protocol endpoint: the RFC 1661 automaton plus
//! restart timer, restart counters, id management and packet I/O.
//!
//! This is the software a host microprocessor runs against the P⁵'s OAM
//! interface: it never touches framing — it consumes and produces
//! control-protocol *packets* (the information field of protocol 0xC021 /
//! 0x8021 frames).
//!
//! Time is explicit: the caller advances [`Endpoint::tick`] with a
//! monotonically increasing tick count, making tests and simulations
//! deterministic.

use crate::fsm::{Action, Automaton, CannotOccur, Event, State};
use crate::lcp::{ConfigOption, Packet, PacketCode, PacketError};
use crate::protocol::Protocol;

/// How an implementation judges a peer's Configure-Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All options acceptable as-is.
    Ack,
    /// Recognised but unacceptable values; carries the corrected options.
    Nak(Vec<ConfigOption>),
    /// Unrecognised/non-negotiable options; carries them verbatim.
    Reject(Vec<ConfigOption>),
}

/// Protocol-specific negotiation policy plugged into an [`Endpoint`]
/// (one impl for LCP, one for IPCP, ...).
pub trait Negotiator {
    /// The PPP protocol number this control protocol runs over.
    fn protocol(&self) -> Protocol;
    /// The option list for our next Configure-Request.
    fn our_request(&mut self) -> Vec<ConfigOption>;
    /// Judge a peer Configure-Request.
    fn review_peer_request(&mut self, opts: &[ConfigOption]) -> Verdict;
    /// The peer acknowledged our request with these options.
    fn peer_acked(&mut self, opts: &[ConfigOption]);
    /// The peer Nak'd: adjust our desires toward the hints.
    fn peer_naked(&mut self, hints: &[ConfigOption]);
    /// The peer rejected these option types: stop requesting them.
    fn peer_rejected(&mut self, rejected: &[ConfigOption]);
    /// Peer request we acknowledged — apply its options to our receive
    /// direction.
    fn apply_peer_options(&mut self, opts: &[ConfigOption]);
}

/// Externally visible layer transitions, in order of occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerEvent {
    Up,
    Down,
    Started,
    Finished,
}

/// Endpoint timing/retry configuration (RFC 1661 §4.6 defaults).
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Restart timer period in ticks.
    pub restart_period: u64,
    /// Max-Configure: Configure-Request retransmissions.
    pub max_configure: u32,
    /// Max-Terminate: Terminate-Request retransmissions.
    pub max_terminate: u32,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        Self {
            restart_period: 3,
            max_configure: 10,
            max_terminate: 2,
        }
    }
}

impl EndpointConfig {
    /// Upper bound, in ticks, for one negotiation round to either open
    /// or give up: every Configure-Request retransmission (Max-Configure
    /// of them, plus the initial send) gets one restart period.
    pub fn restart_budget_ticks(&self) -> u64 {
        (u64::from(self.max_configure) + 1) * self.restart_period
    }
}

/// A control-protocol endpoint bound to a [`Negotiator`].
pub struct Endpoint<N: Negotiator> {
    pub negotiator: N,
    automaton: Automaton,
    config: EndpointConfig,
    /// Outbound packets awaiting transmission, with their protocol.
    outbox: Vec<(Protocol, Packet)>,
    /// Layer transitions since last drain.
    layer_events: Vec<LayerEvent>,
    /// Identifier of our outstanding Configure-Request.
    request_id: u8,
    /// Allocate a fresh id for the next Configure-Request (new
    /// negotiation round or changed options); pure retransmissions keep
    /// the same id so in-flight Acks still match (RFC 1661 §5.1).
    request_needs_new_id: bool,
    /// Identifier sequence for everything we originate.
    next_id: u8,
    restart_counter: u32,
    /// Tick at which the restart timer fires, if armed.
    deadline: Option<u64>,
    now: u64,
    /// Stash for a peer request being judged (reply emitted on action).
    pending_peer: Option<(u8, Verdict, Vec<ConfigOption>)>,
    /// Stash for a received Terminate-Request id / rejected packet.
    pending_terminate_id: Option<u8>,
    pending_code_reject: Option<Vec<u8>>,
    pending_echo: Option<(u8, Vec<u8>)>,
}

impl<N: Negotiator> Endpoint<N> {
    pub fn new(negotiator: N, config: EndpointConfig) -> Self {
        Self {
            negotiator,
            automaton: Automaton::new(),
            config,
            outbox: Vec::new(),
            layer_events: Vec::new(),
            request_id: 0,
            request_needs_new_id: true,
            next_id: 1,
            restart_counter: 0,
            deadline: None,
            now: 0,
            pending_peer: None,
            pending_terminate_id: None,
            pending_code_reject: None,
            pending_echo: None,
        }
    }

    pub fn state(&self) -> State {
        self.automaton.state()
    }

    pub fn is_opened(&self) -> bool {
        self.automaton.is_opened()
    }

    /// The timing/retry configuration this endpoint runs with.
    pub fn config(&self) -> &EndpointConfig {
        &self.config
    }

    /// Administrative Open (begin negotiation when the lower layer is up).
    pub fn open(&mut self) {
        self.dispatch(Event::Open);
    }

    /// Administrative Close.
    pub fn close(&mut self) {
        self.dispatch(Event::Close);
    }

    /// Lower layer came up (for LCP: the PHY; for NCPs: LCP reached
    /// Opened).
    pub fn lower_up(&mut self) {
        self.dispatch(Event::Up);
    }

    /// Lower layer went down.
    pub fn lower_down(&mut self) {
        self.dispatch(Event::Down);
    }

    /// Advance time; fires the restart timer if due.
    pub fn tick(&mut self, now: u64) {
        self.now = now;
        if let Some(d) = self.deadline {
            if now >= d {
                self.deadline = None;
                if self.restart_counter > 0 {
                    self.restart_counter -= 1;
                    self.dispatch(Event::TimeoutRetry);
                } else {
                    self.dispatch(Event::TimeoutGiveUp);
                }
            }
        }
    }

    /// Drain packets to transmit (protocol number + packet).
    pub fn poll_output(&mut self) -> Vec<(Protocol, Packet)> {
        std::mem::take(&mut self.outbox)
    }

    /// Drain outbound packets straight into a tagged wire-level stream,
    /// one `[proto_be, packet bytes]` frame each (the convention
    /// `p5_core::stream` stages speak).  Returns bytes written.
    pub fn drain_output_into(&mut self, out: &mut p5_stream::WireBuf) -> usize {
        let mut n = 0;
        for (proto, packet) in self.outbox.drain(..) {
            let bytes = packet.to_bytes();
            out.begin_frame();
            out.extend_frame(&proto.number().to_be_bytes());
            out.extend_frame(&bytes);
            out.end_frame(false);
            n += 2 + bytes.len();
        }
        n
    }

    /// Drain layer transitions observed since the last call.
    pub fn poll_layer_events(&mut self) -> Vec<LayerEvent> {
        std::mem::take(&mut self.layer_events)
    }

    /// Feed one received control packet (the information field of a frame
    /// carrying `self.negotiator.protocol()`).
    pub fn receive(&mut self, bytes: &[u8]) {
        let packet = match Packet::parse(bytes) {
            Ok(p) => p,
            Err(PacketError::UnknownCode(_)) => {
                self.pending_code_reject = Some(bytes.to_vec());
                self.dispatch(Event::Ruc);
                return;
            }
            Err(_) => return, // silently discard malformed packets
        };
        match packet.code {
            PacketCode::ConfigureRequest => {
                let opts = match ConfigOption::parse_list(&packet.data) {
                    Ok(o) => o,
                    Err(_) => return,
                };
                let verdict = self.negotiator.review_peer_request(&opts);
                let good = matches!(verdict, Verdict::Ack);
                self.pending_peer = Some((packet.id, verdict, opts));
                self.dispatch(if good { Event::RcrGood } else { Event::RcrBad });
            }
            PacketCode::ConfigureAck => {
                if packet.id != self.request_id {
                    return; // stale ack — silently discarded (RFC 1661 §5.2)
                }
                if let Ok(opts) = ConfigOption::parse_list(&packet.data) {
                    self.negotiator.peer_acked(&opts);
                }
                self.dispatch(Event::Rca);
            }
            PacketCode::ConfigureNak | PacketCode::ConfigureReject => {
                if packet.id != self.request_id {
                    return;
                }
                if let Ok(opts) = ConfigOption::parse_list(&packet.data) {
                    if packet.code == PacketCode::ConfigureNak {
                        self.negotiator.peer_naked(&opts);
                    } else {
                        self.negotiator.peer_rejected(&opts);
                    }
                }
                // Our option set changed: the next request is a new one.
                self.request_needs_new_id = true;
                self.dispatch(Event::Rcn);
            }
            PacketCode::TerminateRequest => {
                self.pending_terminate_id = Some(packet.id);
                self.dispatch(Event::Rtr);
            }
            PacketCode::TerminateAck => {
                self.dispatch(Event::Rta);
            }
            PacketCode::CodeReject | PacketCode::ProtocolReject => {
                // Rejection of a code we never send would be catastrophic;
                // treat rejections of optional codes (echo etc.) as benign.
                let catastrophic = packet
                    .data
                    .first()
                    .map(|&c| c <= PacketCode::ConfigureReject as u8)
                    .unwrap_or(false);
                self.dispatch(if catastrophic {
                    Event::RxjBad
                } else {
                    Event::RxjGood
                });
            }
            PacketCode::EchoRequest => {
                self.pending_echo = Some((packet.id, packet.data.clone()));
                self.dispatch(Event::Rxr);
            }
            PacketCode::EchoReply | PacketCode::DiscardRequest => {
                self.dispatch(Event::Rxr);
            }
        }
    }

    fn alloc_id(&mut self) -> u8 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn send(&mut self, packet: Packet) {
        self.outbox.push((self.negotiator.protocol(), packet));
    }

    fn dispatch(&mut self, event: Event) {
        let actions = match self.automaton.handle(event) {
            Ok(a) => a,
            Err(CannotOccur { .. }) => return, // ignore impossible events
        };
        for action in actions {
            self.run_action(action, event);
        }
        // Arm/disarm the restart timer by state (RFC 1661 §4.6: the timer
        // runs exactly in the four -ing/-Sent states).
        match self.automaton.state() {
            State::Closing | State::Stopping | State::ReqSent | State::AckRcvd | State::AckSent => {
                if self.deadline.is_none() {
                    self.deadline = Some(self.now + self.config.restart_period);
                }
            }
            _ => self.deadline = None,
        }
    }

    fn run_action(&mut self, action: Action, _event: Event) {
        match action {
            Action::ThisLayerUp => self.layer_events.push(LayerEvent::Up),
            Action::ThisLayerDown => self.layer_events.push(LayerEvent::Down),
            Action::ThisLayerStarted => self.layer_events.push(LayerEvent::Started),
            Action::ThisLayerFinished => self.layer_events.push(LayerEvent::Finished),
            Action::InitRestartCount => {
                // Counter depends on what we're retransmitting next.
                self.restart_counter = match self.automaton.state() {
                    State::Closing | State::Stopping => self.config.max_terminate,
                    _ => self.config.max_configure,
                };
                self.request_needs_new_id = true;
            }
            Action::ZeroRestartCount => {
                self.restart_counter = 0;
                self.deadline = Some(self.now + self.config.restart_period);
            }
            Action::SendConfigureRequest => {
                if self.request_needs_new_id {
                    self.request_id = self.alloc_id();
                    self.request_needs_new_id = false;
                }
                let id = self.request_id;
                let opts = self.negotiator.our_request();
                self.send(Packet::new(
                    PacketCode::ConfigureRequest,
                    id,
                    ConfigOption::write_list(&opts),
                ));
                self.deadline = Some(self.now + self.config.restart_period);
            }
            Action::SendConfigureAck => {
                if let Some((id, _, opts)) = self.pending_peer.take() {
                    self.negotiator.apply_peer_options(&opts);
                    self.send(Packet::new(
                        PacketCode::ConfigureAck,
                        id,
                        ConfigOption::write_list(&opts),
                    ));
                }
            }
            Action::SendConfigureNak => {
                if let Some((id, verdict, _)) = self.pending_peer.take() {
                    let (code, opts) = match verdict {
                        Verdict::Nak(o) => (PacketCode::ConfigureNak, o),
                        Verdict::Reject(o) => (PacketCode::ConfigureReject, o),
                        Verdict::Ack => unreachable!("Ack verdict routed to RcrGood"),
                    };
                    self.send(Packet::new(code, id, ConfigOption::write_list(&opts)));
                }
            }
            Action::SendTerminateRequest => {
                let id = self.alloc_id();
                self.send(Packet::new(PacketCode::TerminateRequest, id, vec![]));
                self.deadline = Some(self.now + self.config.restart_period);
            }
            Action::SendTerminateAck => {
                let id = self.pending_terminate_id.take().unwrap_or(self.next_id);
                self.send(Packet::new(PacketCode::TerminateAck, id, vec![]));
            }
            Action::SendCodeReject => {
                if let Some(mut rejected) = self.pending_code_reject.take() {
                    rejected.truncate(64); // keep the reject small
                    let id = self.alloc_id();
                    self.send(Packet::new(PacketCode::CodeReject, id, rejected));
                }
            }
            Action::SendEchoReply => {
                if let Some((id, data)) = self.pending_echo.take() {
                    self.send(Packet::new(PacketCode::EchoReply, id, data));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipcp::IpcpNegotiator;
    use crate::lcp_negotiator::LcpNegotiator;

    fn lcp_pair() -> (Endpoint<LcpNegotiator>, Endpoint<LcpNegotiator>) {
        let a = Endpoint::new(
            LcpNegotiator::new(1500, 0x1111_1111),
            EndpointConfig::default(),
        );
        let b = Endpoint::new(
            LcpNegotiator::new(2048, 0x2222_2222),
            EndpointConfig::default(),
        );
        (a, b)
    }

    /// Shuttle packets between two endpoints until quiescent.
    fn converge<X: Negotiator, Y: Negotiator>(a: &mut Endpoint<X>, b: &mut Endpoint<Y>) {
        for _ in 0..50 {
            let from_a = a.poll_output();
            let from_b = b.poll_output();
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for (_, p) in from_a {
                b.receive(&p.to_bytes());
            }
            for (_, p) in from_b {
                a.receive(&p.to_bytes());
            }
        }
        panic!("endpoints did not converge");
    }

    #[test]
    fn two_lcp_endpoints_open() {
        let (mut a, mut b) = lcp_pair();
        a.open();
        b.open();
        a.lower_up();
        b.lower_up();
        converge(&mut a, &mut b);
        assert!(a.is_opened(), "a state {:?}", a.state());
        assert!(b.is_opened(), "b state {:?}", b.state());
        assert!(a.poll_layer_events().contains(&LayerEvent::Up));
        assert!(b.poll_layer_events().contains(&LayerEvent::Up));
        // Each side adopted the peer's MRU for its transmit direction.
        assert_eq!(a.negotiator.peer_mru(), 2048);
        assert_eq!(b.negotiator.peer_mru(), 1500);
    }

    #[test]
    fn close_tears_down_both_sides() {
        let (mut a, mut b) = lcp_pair();
        a.open();
        b.open();
        a.lower_up();
        b.lower_up();
        converge(&mut a, &mut b);
        a.close();
        converge(&mut a, &mut b);
        assert_eq!(a.state(), State::Closed);
        // b saw the Terminate-Request and stops.
        assert!(matches!(b.state(), State::Stopping | State::Stopped));
    }

    #[test]
    fn retransmission_on_packet_loss() {
        let (mut a, mut b) = lcp_pair();
        a.open();
        a.lower_up();
        // Drop a's first Configure-Request on the floor.
        let lost = a.poll_output();
        assert_eq!(lost.len(), 1);
        // Fire the restart timer; a retransmits with the retry counter.
        a.tick(10);
        let resent = a.poll_output();
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].1.code, PacketCode::ConfigureRequest);
        // Now deliver to b and let them converge.
        b.open();
        b.lower_up();
        b.receive(&resent[0].1.to_bytes());
        converge(&mut a, &mut b);
        assert!(a.is_opened() && b.is_opened());
    }

    #[test]
    fn gives_up_after_max_configure() {
        let cfg = EndpointConfig {
            restart_period: 1,
            max_configure: 3,
            max_terminate: 2,
        };
        let mut a = Endpoint::new(LcpNegotiator::new(1500, 7), cfg);
        a.open();
        a.lower_up();
        a.poll_output();
        let mut sends = 0;
        for t in 1..20 {
            a.tick(t);
            sends += a.poll_output().len();
            if a.state() == State::Stopped {
                break;
            }
        }
        assert_eq!(a.state(), State::Stopped);
        assert_eq!(sends, 3, "exactly max_configure retransmissions");
        assert!(a.poll_layer_events().contains(&LayerEvent::Finished));
    }

    #[test]
    fn echo_request_gets_replied_when_opened() {
        let (mut a, mut b) = lcp_pair();
        a.open();
        b.open();
        a.lower_up();
        b.lower_up();
        converge(&mut a, &mut b);
        let echo = Packet::new(PacketCode::EchoRequest, 0x42, vec![0, 0, 0, 0]);
        a.receive(&echo.to_bytes());
        let out = a.poll_output();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.code, PacketCode::EchoReply);
        assert_eq!(out[0].1.id, 0x42);
    }

    #[test]
    fn unknown_code_triggers_code_reject() {
        let (mut a, mut b) = lcp_pair();
        a.open();
        b.open();
        a.lower_up();
        b.lower_up();
        converge(&mut a, &mut b);
        a.receive(&[0x7F, 9, 0, 4]);
        let out = a.poll_output();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.code, PacketCode::CodeReject);
        assert!(a.is_opened(), "benign unknown code must not drop the link");
    }

    #[test]
    fn stale_ack_is_ignored() {
        let (mut a, _) = lcp_pair();
        a.open();
        a.lower_up();
        let req = &a.poll_output()[0].1;
        let stale = Packet::new(
            PacketCode::ConfigureAck,
            req.id.wrapping_add(5),
            req.data.clone(),
        );
        a.receive(&stale.to_bytes());
        assert_eq!(a.state(), State::ReqSent);
    }

    #[test]
    fn ipcp_negotiates_addresses_after_lcp() {
        let mut a = Endpoint::new(
            IpcpNegotiator::new([10, 0, 0, 1]),
            EndpointConfig::default(),
        );
        let mut b = Endpoint::new(
            IpcpNegotiator::new([10, 0, 0, 2]),
            EndpointConfig::default(),
        );
        a.open();
        b.open();
        a.lower_up(); // "lower" = LCP opened
        b.lower_up();
        converge(&mut a, &mut b);
        assert!(a.is_opened() && b.is_opened());
        assert_eq!(a.negotiator.peer_addr(), Some([10, 0, 0, 2]));
        assert_eq!(b.negotiator.peer_addr(), Some([10, 0, 0, 1]));
    }

    #[test]
    fn ipcp_naks_zero_address() {
        let mut a = Endpoint::new(
            IpcpNegotiator::new([10, 0, 0, 1]),
            EndpointConfig::default(),
        );
        // Peer with no address: asks 0.0.0.0, must get Nak'd a suggestion.
        let mut b = Endpoint::new(IpcpNegotiator::new([0, 0, 0, 0]), EndpointConfig::default());
        a.open();
        b.open();
        a.lower_up();
        b.lower_up();
        converge(&mut a, &mut b);
        assert!(a.is_opened() && b.is_opened());
        // b adopted the suggestion from a's Nak.
        assert_ne!(b.negotiator.our_addr(), [0, 0, 0, 0]);
    }
}
