//! PAP — the Password Authentication Protocol (RFC 1334), the simplest
//! member of the "family of protocols" PPP negotiates after LCP and
//! before the NCPs.  Protocol number 0xC023.

/// PAP packet codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PapCode {
    AuthenticateRequest = 1,
    AuthenticateAck = 2,
    AuthenticateNak = 3,
}

/// A PAP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PapPacket {
    Request {
        id: u8,
        peer_id: Vec<u8>,
        password: Vec<u8>,
    },
    Ack {
        id: u8,
        message: Vec<u8>,
    },
    Nak {
        id: u8,
        message: Vec<u8>,
    },
}

impl PapPacket {
    pub fn to_bytes(&self) -> Vec<u8> {
        let (code, id, data) = match self {
            PapPacket::Request {
                id,
                peer_id,
                password,
            } => {
                let mut d = vec![peer_id.len() as u8];
                d.extend_from_slice(peer_id);
                d.push(password.len() as u8);
                d.extend_from_slice(password);
                (PapCode::AuthenticateRequest, *id, d)
            }
            PapPacket::Ack { id, message } => {
                let mut d = vec![message.len() as u8];
                d.extend_from_slice(message);
                (PapCode::AuthenticateAck, *id, d)
            }
            PapPacket::Nak { id, message } => {
                let mut d = vec![message.len() as u8];
                d.extend_from_slice(message);
                (PapCode::AuthenticateNak, *id, d)
            }
        };
        let len = (4 + data.len()) as u16;
        let mut out = vec![code as u8, id];
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&data);
        out
    }

    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let id = bytes[1];
        let len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if len < 4 || len > bytes.len() {
            return None;
        }
        let data = &bytes[4..len];
        match bytes[0] {
            1 => {
                let pid_len = *data.first()? as usize;
                let peer_id = data.get(1..1 + pid_len)?.to_vec();
                let pw_len = *data.get(1 + pid_len)? as usize;
                let password = data.get(2 + pid_len..2 + pid_len + pw_len)?.to_vec();
                Some(PapPacket::Request {
                    id,
                    peer_id,
                    password,
                })
            }
            2 | 3 => {
                let msg_len = *data.first()? as usize;
                let message = data.get(1..1 + msg_len)?.to_vec();
                Some(if bytes[0] == 2 {
                    PapPacket::Ack { id, message }
                } else {
                    PapPacket::Nak { id, message }
                })
            }
            _ => None,
        }
    }
}

/// Authenticator policy: validate a peer-id/password pair.
pub trait Credentials {
    fn check(&self, peer_id: &[u8], password: &[u8]) -> bool;
}

/// A fixed credential table.
#[derive(Debug, Clone, Default)]
pub struct CredentialTable {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
}

impl CredentialTable {
    pub fn with(mut self, peer_id: &[u8], password: &[u8]) -> Self {
        self.entries.push((peer_id.to_vec(), password.to_vec()));
        self
    }
}

impl Credentials for CredentialTable {
    fn check(&self, peer_id: &[u8], password: &[u8]) -> bool {
        self.entries
            .iter()
            .any(|(p, w)| p == peer_id && w == password)
    }
}

/// The authenticator (server) side: answer requests.
pub fn authenticate<C: Credentials>(creds: &C, request: &PapPacket) -> Option<PapPacket> {
    let PapPacket::Request {
        id,
        peer_id,
        password,
    } = request
    else {
        return None;
    };
    Some(if creds.check(peer_id, password) {
        PapPacket::Ack {
            id: *id,
            message: b"welcome".to_vec(),
        }
    } else {
        PapPacket::Nak {
            id: *id,
            message: b"bad credentials".to_vec(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let p = PapPacket::Request {
            id: 7,
            peer_id: b"station-a".to_vec(),
            password: b"hunter2".to_vec(),
        };
        assert_eq!(PapPacket::parse(&p.to_bytes()), Some(p));
    }

    #[test]
    fn ack_nak_round_trip() {
        for p in [
            PapPacket::Ack {
                id: 1,
                message: b"ok".to_vec(),
            },
            PapPacket::Nak {
                id: 2,
                message: vec![],
            },
        ] {
            assert_eq!(PapPacket::parse(&p.to_bytes()), Some(p));
        }
    }

    #[test]
    fn truncated_requests_are_rejected() {
        let p = PapPacket::Request {
            id: 7,
            peer_id: b"x".to_vec(),
            password: b"y".to_vec(),
        };
        let bytes = p.to_bytes();
        for cut in 1..bytes.len() {
            // Shorter buffers either fail the length check or the field
            // bounds; never panic.
            let _ = PapPacket::parse(&bytes[..cut]);
        }
        // Length field longer than the buffer.
        let mut bad = bytes.clone();
        bad[3] = 0xFF;
        assert_eq!(PapPacket::parse(&bad), None);
    }

    #[test]
    fn good_credentials_get_ack() {
        let creds = CredentialTable::default().with(b"station-a", b"secret");
        let req = PapPacket::Request {
            id: 3,
            peer_id: b"station-a".to_vec(),
            password: b"secret".to_vec(),
        };
        match authenticate(&creds, &req) {
            Some(PapPacket::Ack { id: 3, .. }) => {}
            other => panic!("expected Ack, got {other:?}"),
        }
    }

    #[test]
    fn bad_credentials_get_nak() {
        let creds = CredentialTable::default().with(b"station-a", b"secret");
        let req = PapPacket::Request {
            id: 4,
            peer_id: b"station-a".to_vec(),
            password: b"wrong".to_vec(),
        };
        assert!(matches!(
            authenticate(&creds, &req),
            Some(PapPacket::Nak { id: 4, .. })
        ));
    }

    #[test]
    fn non_requests_are_not_answered() {
        let creds = CredentialTable::default();
        let ack = PapPacket::Ack {
            id: 1,
            message: vec![],
        };
        assert_eq!(authenticate(&creds, &ack), None);
    }
}
