//! [`StreamStage`] adapter for a control-protocol endpoint: the RFC 1661
//! automaton fed from / draining to tagged `[proto_be, packet]` frame
//! streams, the same convention `p5_core::stream`'s `TxStage`/`RxStage`
//! speak at the packet boundary.
//!
//! An [`EndpointStage`] handles exactly one protocol (its negotiator's).
//! It is *not* a demultiplexer: frames for other protocols are dropped
//! and counted in [`StageStats::rejects`] — route per protocol before
//! the stage when running several endpoints over one link.

use crate::endpoint::{Endpoint, Negotiator};
use p5_stream::{Observable, Poll, Snapshot, StageStats, StreamStage, WireBuf, WordStream};

/// A PPP control-protocol endpoint as a stage: received control frames
/// in, originated control frames out.  Each `drain` call advances the
/// endpoint's restart timer by one tick.
pub struct EndpointStage<N: Negotiator> {
    endpoint: Endpoint<N>,
    now: u64,
    scratch: Vec<u8>,
    stats: StageStats,
}

impl<N: Negotiator> EndpointStage<N> {
    pub fn new(endpoint: Endpoint<N>) -> Self {
        EndpointStage {
            endpoint,
            now: 0,
            scratch: Vec::new(),
            stats: StageStats::default(),
        }
    }

    pub fn endpoint(&self) -> &Endpoint<N> {
        &self.endpoint
    }

    pub fn endpoint_mut(&mut self) -> &mut Endpoint<N> {
        &mut self.endpoint
    }

    pub fn into_endpoint(self) -> Endpoint<N> {
        self.endpoint
    }

    /// Ticks elapsed (one per `drain` call).
    pub fn now(&self) -> u64 {
        self.now
    }
}

impl<N: Negotiator> WordStream for EndpointStage<N> {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let ours = self.endpoint.negotiator.protocol().number();
        let mut accepted = 0;
        while input.frame_ready() {
            let meta = input
                .pop_frame_into(&mut self.scratch)
                .expect("frame_ready() guarantees a complete frame");
            accepted += meta.len;
            if meta.abort || self.scratch.len() < 2 {
                self.stats.rejects += 1;
                continue;
            }
            let proto = u16::from_be_bytes([self.scratch[0], self.scratch[1]]);
            if proto != ours {
                self.stats.rejects += 1;
                continue;
            }
            self.stats.words_in += 1;
            self.endpoint.receive(&self.scratch[2..]);
        }
        Poll::Ready(accepted)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        self.now += 1;
        self.endpoint.tick(self.now);
        let n = self.endpoint.drain_output_into(output);
        self.stats.words_out += u64::from(n > 0);
        self.stats.bytes_out += n as u64;
        self.stats.cycles = self.now;
        Poll::Ready(n)
    }
}

impl<N: Negotiator> Observable for EndpointStage<N> {
    fn snapshot(&self) -> Snapshot {
        self.stats
            .snapshot("ppp-endpoint")
            .counter("ticks", self.now)
            .counter("opened", u64::from(self.endpoint.is_opened()))
    }
}

impl<N: Negotiator> StreamStage for EndpointStage<N> {
    fn name(&self) -> &'static str {
        "ppp-endpoint"
    }

    fn is_idle(&self) -> bool {
        // The automaton always has more timer-driven work until it
        // converges; "idle" here means nothing queued for the wire.
        true
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::EndpointConfig;
    use crate::lcp_negotiator::LcpNegotiator;

    fn lcp_stage(magic: u32) -> EndpointStage<LcpNegotiator> {
        let mut ep = Endpoint::new(
            LcpNegotiator::new(1500, magic),
            EndpointConfig {
                restart_period: 10,
                ..EndpointConfig::default()
            },
        );
        ep.open();
        ep.lower_up();
        EndpointStage::new(ep)
    }

    #[test]
    fn two_endpoint_stages_negotiate_lcp_over_wirebufs() {
        let mut a = lcp_stage(0x1111_1111);
        let mut b = lcp_stage(0x2222_2222);
        let mut a_to_b = WireBuf::new();
        let mut b_to_a = WireBuf::new();
        for _ in 0..50 {
            a.drain(&mut a_to_b);
            b.drain(&mut b_to_a);
            a.offer(&mut b_to_a);
            b.offer(&mut a_to_b);
            if a.endpoint().is_opened() && b.endpoint().is_opened() {
                break;
            }
        }
        assert!(a.endpoint().is_opened(), "A must reach Opened");
        assert!(b.endpoint().is_opened(), "B must reach Opened");
    }

    #[test]
    fn foreign_protocol_frames_are_rejected_not_consumed_by_the_automaton() {
        let mut a = lcp_stage(0x0000_0001);
        let mut input = WireBuf::new();
        // An IPCP frame (0x8021) offered to an LCP endpoint.
        input.push_frame(&[0x80, 0x21, 1, 1, 0, 4]);
        // A runt (no room for a protocol number).
        input.push_frame(&[0x42]);
        a.offer(&mut input);
        assert_eq!(a.stats().rejects, 2);
        assert_eq!(a.stats().words_in, 0);
    }
}
