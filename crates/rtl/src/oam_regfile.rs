//! The Protocol OAM register file in gates: the microprocessor-facing
//! register map, counters and interrupt logic of Figure 2.
//!
//! The paper's Tables 1–2 cover the *datapath* ("the main focus of this
//! paper is on the data-path implementation of the P⁵"), so this module
//! is reported separately by `synthesis_report` — it is the block that
//! makes the device programmable.
//!
//! Bus: `addr[6]` (word offset), `wdata[16]`, `wr`, plus datapath event
//! strobes; outputs `rdata[16]`, the configuration registers, and the
//! `irq` line.

use p5_fpga::{Builder, Netlist, Sig};

/// Counter width (hardware counters saturate to software polling rate;
/// 16 bits is the classic choice).
const CNT_W: usize = 16;

/// Build the OAM register-file netlist.
pub fn build_oam_regfile() -> Netlist {
    let mut b = Builder::new("protocol OAM");
    let addr = b.input_bus("addr", 6);
    let wdata = b.input_bus("wdata", CNT_W);
    let wr = b.input("wr");
    // Datapath event strobes.
    let ev_rx_frame = b.input("ev_rx_frame");
    let ev_rx_error = b.input("ev_rx_error");
    let ev_tx_frame = b.input("ev_tx_frame");
    let ev_tx_done = b.input("ev_tx_done");

    // Register write decodes.
    let wr_at = |b: &mut Builder, a: u64, wr: Sig, addr: &[Sig]| {
        let hit = b.eq_const(addr, a);
        b.and2(hit, wr)
    };

    // --- configuration registers -------------------------------------
    let we_ctrl = wr_at(&mut b, 0, wr, &addr);
    let ctrl = b.reg_word_en(&wdata[..8], we_ctrl, 0b0000_0011);
    let we_address = wr_at(&mut b, 2, wr, &addr);
    let station = b.reg_word_en(&wdata[..8], we_address, 0xFF);
    let we_maxlen = wr_at(&mut b, 3, wr, &addr);
    let max_body = b.reg_word_en(&wdata[..11], we_maxlen, 1504);
    let we_inten = wr_at(&mut b, 4, wr, &addr);
    let int_enable = b.reg_word_en(&wdata[..3], we_inten, 0);

    // --- interrupt pending: set by events, W1C by the host ------------
    let we_intpend = wr_at(&mut b, 5, wr, &addr);
    let pend = b.state_word(3, 0);
    let causes = [ev_rx_frame, ev_rx_error, ev_tx_done];
    let mut pend_next = Vec::new();
    for (i, &cause) in causes.iter().enumerate() {
        let clear = b.and2(we_intpend, wdata[i]);
        let keep = {
            let nc = b.not(clear);
            b.and2(pend[i], nc)
        };
        pend_next.push(b.or2(cause, keep));
    }
    b.bind_word(&pend, &pend_next);
    // irq = |(pending & enable)
    let masked: Vec<Sig> = pend
        .iter()
        .zip(&int_enable)
        .map(|(&p, &e)| b.and2(p, e))
        .collect();
    let irq = b.or_many(&masked);

    // --- counters ------------------------------------------------------
    let counter = |b: &mut Builder, inc: Sig| -> Vec<Sig> {
        let q = b.state_word(CNT_W, 0);
        let one = b.const_word(1, CNT_W);
        let zero = b.lit(false);
        let (plus1, carry) = b.add(&q, &one, zero);
        // Saturate at all-ones rather than wrap.
        let not_sat = b.not(carry);
        let do_inc = b.and2(inc, not_sat);
        let next = b.mux_word(do_inc, &plus1, &q);
        b.bind_word(&q, &next);
        q
    };
    let rx_frames = counter(&mut b, ev_rx_frame);
    let rx_errors = counter(&mut b, ev_rx_error);
    let tx_frames = counter(&mut b, ev_tx_frame);

    // --- read mux --------------------------------------------------------
    let sels: Vec<Sig> = (0..9u64).map(|a| b.eq_const(&addr, a)).collect();
    let pad = |b: &mut Builder, w: &[Sig]| -> Vec<Sig> { b.resize(w, CNT_W) };
    let words = [
        pad(&mut b, &ctrl),
        pad(&mut b, &[]), // offset 1: status (live bits come from datapath)
        pad(&mut b, &station),
        pad(&mut b, &max_body),
        pad(&mut b, &int_enable),
        pad(&mut b, &pend),
        rx_frames.clone(),
        rx_errors.clone(),
        tx_frames.clone(),
    ];
    let rdata = b.onehot_mux_word(&sels, &words);

    b.output("rdata", &rdata);
    b.output("cfg_ctrl", &ctrl);
    b.output("cfg_address", &station);
    b.output("cfg_max_body", &max_body);
    b.output("irq", &[irq]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::{map, MapMode, Sim};

    fn write(sim: &mut Sim, addr: u64, data: u64) {
        sim.set("addr", addr);
        sim.set("wdata", data);
        sim.set("wr", 1);
        sim.step();
        sim.set("wr", 0);
    }

    fn read(sim: &mut Sim, addr: u64) -> u64 {
        sim.set("addr", addr);
        sim.get("rdata")
    }

    fn fresh(sim: &mut Sim) {
        for name in [
            "ev_rx_frame",
            "ev_rx_error",
            "ev_tx_frame",
            "ev_tx_done",
            "wr",
        ] {
            sim.set(name, 0);
        }
    }

    #[test]
    fn defaults_and_programming() {
        let n = build_oam_regfile();
        let mut sim = Sim::new(&n);
        fresh(&mut sim);
        assert_eq!(read(&mut sim, 2), 0xFF, "default station address");
        assert_eq!(read(&mut sim, 3), 1504, "default max body");
        write(&mut sim, 2, 0x0B);
        assert_eq!(read(&mut sim, 2), 0x0B);
        assert_eq!(sim.get("cfg_address"), 0x0B);
        write(&mut sim, 3, 9000 & 0x7FF);
        assert_eq!(sim.get("cfg_max_body"), 9000 & 0x7FF);
    }

    #[test]
    fn counters_count_and_saturate() {
        let n = build_oam_regfile();
        let mut sim = Sim::new(&n);
        fresh(&mut sim);
        for _ in 0..5 {
            sim.set("ev_rx_frame", 1);
            sim.step();
        }
        sim.set("ev_rx_frame", 0);
        assert_eq!(read(&mut sim, 6), 5);
        assert_eq!(read(&mut sim, 7), 0);
    }

    #[test]
    fn interrupt_set_mask_and_w1c() {
        let n = build_oam_regfile();
        let mut sim = Sim::new(&n);
        fresh(&mut sim);
        sim.set("ev_rx_error", 1);
        sim.step();
        sim.set("ev_rx_error", 0);
        sim.step();
        assert_eq!(read(&mut sim, 5) & 0b010, 0b010, "pending latched");
        assert_eq!(sim.get("irq"), 0, "masked");
        write(&mut sim, 4, 0b010);
        assert_eq!(sim.get("irq"), 1);
        write(&mut sim, 5, 0b010); // W1C
        assert_eq!(read(&mut sim, 5) & 0b010, 0);
        assert_eq!(sim.get("irq"), 0);
    }

    #[test]
    fn regfile_is_modest_in_area() {
        let n = build_oam_regfile();
        let m = map(&n, MapMode::Area);
        // Plenty of FFs (registers + counters), modest LUTs.
        assert!(m.ff_count >= 70, "ffs {}", m.ff_count);
        assert!(m.lut_count() < 400, "luts {}", m.lut_count());
    }
}
