//! The Escape Generate unit in gates — the module of the paper's
//! Table 3 and Figure 5.
//!
//! * **8-bit version**: a comparator, an output mux and a single
//!   escape-pending flop; a matched byte "halts the input data for 1
//!   clock cycle while simple manipulation takes place".
//! * **32-bit version**: per-lane comparators, a prefix-sum position
//!   network, a one-hot byte-routing (sorting) network expanding 4
//!   lanes into up to 8 bytes, and a 7-byte resynchronisation buffer
//!   with an occupancy counter that asserts backpressure — the paper's
//!   "data reordering mechanism" with "buffering and decisional
//!   mechanisms".
//!
//! Handshake: `in_valid`/`in_ready` on the input word, registered
//! `out_data`/`out_valid` on the output word.  Output words are always
//! full; residue stays in the buffer until more data arrives.

use crate::sorter::{merge_behind_count, prefix_popcount, route_bytes_ranged};
use p5_fpga::{Builder, Netlist, Sig};

/// Structure used for the staging merge network (an ablation axis —
/// DESIGN.md §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorterStyle {
    /// One-hot decode of the occupancy count driving wide AND-OR muxes
    /// (shallow, LUT-hungry — the style the paper's area numbers imply).
    OneHot,
    /// Logarithmic barrel shifter conditioned on the count bits
    /// (fewer LUTs, deeper).
    Barrel,
}

/// Build the Escape Generate netlist for a datapath width of 1 or 4
/// bytes.
pub fn build_escape_gen(width: usize, style: SorterStyle) -> Netlist {
    match width {
        1 => build_w1(),
        4 => build_w4(style),
        other => panic!("unsupported escape-gen width {other}"),
    }
}

fn is_escape_char(b: &mut Builder, byte: &[Sig]) -> Sig {
    let is_7e = b.eq_const(byte, 0x7E);
    let is_7d = b.eq_const(byte, 0x7D);
    b.or2(is_7e, is_7d)
}

/// Escaped form: the byte with bit 5 complemented.
fn escaped(b: &mut Builder, byte: &[Sig]) -> Vec<Sig> {
    let mut out = byte.to_vec();
    out[5] = b.not(byte[5]);
    out
}

fn build_w1() -> Netlist {
    let mut b = Builder::new("escape-gen 8-bit");
    let in_data = b.input_bus("in_data", 8);
    let in_valid = b.input("in_valid");

    let pending = b.state_word(1, 0)[0];
    let matched = is_escape_char(&mut b, &in_data);

    // A matched byte is *not* consumed in the cycle that emits the 0x7D
    // marker — "the system will halt the input data for 1 clock cycle".
    // It is consumed the next cycle, when the escaped form goes out.
    let not_matched = b.not(matched);
    let in_ready = b.or2(pending, not_matched);

    // Output byte selection: escaped data while pending, escape marker
    // on a fresh match, else pass-through.
    let esc_byte = escaped(&mut b, &in_data);
    let marker = b.const_word(0x7D, 8);
    let after_match = b.mux_word(matched, &marker, &in_data);
    let out_next = b.mux_word(pending, &esc_byte, &after_match);

    let emit = in_valid;
    let out_reg = b.reg_word_en(&out_next, emit, 0);
    let out_valid = b.reg(emit, false);

    // pending: set on a fresh (unconsumed) match, cleared once the
    // escaped byte went out; held while no input is presented.
    let zero = b.lit(false);
    let fresh_match = {
        let np = b.not(pending);
        b.and2(matched, np)
    };
    let next_if_valid = b.mux(pending, zero, fresh_match);
    let next_pending = b.mux(in_valid, next_if_valid, pending);
    b.bind_word(&[pending], &[next_pending]);

    b.output("out_data", &out_reg);
    b.output("out_valid", &[out_valid]);
    b.output("in_ready", &[in_ready]);
    b.finish()
}

fn build_w4(style: SorterStyle) -> Netlist {
    let mut b = Builder::new(match style {
        SorterStyle::OneHot => "escape-gen 32-bit",
        SorterStyle::Barrel => "escape-gen 32-bit (barrel)",
    });
    let in_data = b.input_bus("in_data", 32);
    let in_valid = b.input("in_valid");
    let lanes: Vec<Vec<Sig>> = (0..4)
        .map(|i| in_data[i * 8..(i + 1) * 8].to_vec())
        .collect();

    // ---- Stage 1 (combinational): expansion network ----------------
    let matches: Vec<Sig> = lanes.iter().map(|l| is_escape_char(&mut b, l)).collect();
    // pos[i] = i + popcount(match[0..i]) — where lane i's (first) byte
    // lands among the 8 expansion slots.
    let prefix = prefix_popcount(&mut b, &matches, 3);
    let mut sources = Vec::new();
    for (i, lane) in lanes.iter().enumerate() {
        let lane_const = b.const_word(i as u64, 3);
        let zero = b.lit(false);
        let (pos, _) = b.add(&prefix[i], &lane_const, zero);
        // First byte: 0x7D marker if matched, else the data byte.
        // Reachable slots: i (no earlier match) .. 2i (all earlier
        // lanes matched).
        let marker = b.const_word(0x7D, 8);
        let first = b.mux_word(matches[i], &marker, lane);
        sources.push((first, pos.clone(), in_valid, i, 2 * i));
        // Second byte (only when matched): the escaped data at pos+1,
        // reachable in slots i+1 ..= 2i+1.
        let one = b.const_word(1, 3);
        let zero = b.lit(false);
        let (pos1, _) = b.add(&pos, &one, zero);
        let esc = escaped(&mut b, lane);
        let en = b.and2(matches[i], in_valid);
        sources.push((esc, pos1, en, i + 1, 2 * i + 1));
    }
    let exp = route_bytes_ranged(&mut b, &sources, 8);
    // Expansion length: 4 + #matches when a word is present.
    let four = b.const_word(4, 4);
    let total_matches = b.resize(&prefix[4], 4);
    let zero = b.lit(false);
    let (len_full, _) = b.add(&four, &total_matches, zero);
    let zero_w = b.const_word(0, 4);
    let exp_len = b.mux_word(in_valid, &len_full, &zero_w);

    // ---- Stage 1/2 pipeline register --------------------------------
    // Handshake: the stage register holds one expanded word until the
    // merge can absorb it (occupancy ≤ 3).
    let s1_valid = b.state_word(1, 0)[0];
    let cnt = b.state_word(3, 0); // resynchronisation-buffer occupancy
    let three = b.const_word(3, 3);
    let cnt_le_3 = b.ge(&three, &cnt);
    let consume_s1 = b.and2(s1_valid, cnt_le_3);
    let not_s1 = b.not(s1_valid);
    let in_ready = b.or2(not_s1, consume_s1);
    let accepted = b.and2(in_valid, in_ready);

    let exp_flat: Vec<Sig> = exp.iter().flatten().copied().collect();
    let exp_reg_flat = b.reg_word_en(&exp_flat, accepted, 0);
    let exp_reg: Vec<Vec<Sig>> = (0..8)
        .map(|i| exp_reg_flat[i * 8..(i + 1) * 8].to_vec())
        .collect();
    let exp_len_reg = b.reg_word_en(&exp_len, accepted, 0);
    let not_consume = b.not(consume_s1);
    let keep_s1 = b.and2(s1_valid, not_consume);
    let s1_next = b.or2(accepted, keep_s1);
    b.bind_word(&[s1_valid], &[s1_next]);

    // ---- Stage 2: resynchronisation buffer + output packing ---------
    let buf: Vec<Vec<Sig>> = (0..7).map(|_| b.state_word(8, 0)).collect();
    let zero_len = b.const_word(0, 4);
    let fresh_len = b.mux_word(consume_s1, &exp_len_reg, &zero_len);
    let zero = b.lit(false);
    let cnt4 = b.resize(&cnt, 4);
    let (total, _) = b.add(&cnt4, &fresh_len, zero);

    let merged = merge_behind_count(&mut b, &buf, &exp_reg, &cnt, 7, 11, style);

    let four4 = b.const_word(4, 4);
    let emit = b.ge(&total, &four4);

    // Output register: the first four merged slots.
    let out_flat: Vec<Sig> = merged[..4].iter().flatten().copied().collect();
    let out_reg = b.reg_word_en(&out_flat, emit, 0);
    let out_valid = b.reg(emit, false);

    // Buffer update: the shift is only ever 0 or 4 (drop an emitted
    // word), so a single 2:1 mux per byte suffices.
    let zero_b = b.const_word(0, 8);
    for (i, w) in buf.iter().enumerate() {
        let low = merged.get(i).cloned().unwrap_or_else(|| zero_b.clone());
        let high = merged.get(i + 4).cloned().unwrap_or_else(|| zero_b.clone());
        let nextw = b.mux_word(emit, &high, &low);
        b.bind_word(w, &nextw);
    }
    let (total_minus_4, _) = b.sub(&total, &four4);
    let next_cnt4 = b.mux_word(emit, &total_minus_4, &total);
    let next_cnt = b.resize(&next_cnt4, 3);
    b.bind_word(&cnt, &next_cnt);

    b.output("out_data", &out_reg);
    b.output("out_valid", &[out_valid]);
    b.output("in_ready", &[in_ready]);
    b.output("occupancy", &cnt);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::{devices, map, synthesize, MapMode, Sim};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Drive an escape-gen netlist with a byte stream (hold-on-stall
    /// handshake) and collect the emitted bytes.
    fn run_netlist(n: &Netlist, width: usize, stream: &[u8], drain_cycles: usize) -> Vec<u8> {
        let mut sim = Sim::new(n);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut cycles = 0;
        while idx + width <= stream.len() || cycles < drain_cycles {
            let feeding = idx + width <= stream.len();
            if feeding {
                sim.set_bytes("in_data", &stream[idx..idx + width]);
                sim.set("in_valid", 1);
            } else {
                sim.set("in_valid", 0);
                cycles += 1;
            }
            let ready = sim.get("in_ready") == 1;
            sim.step();
            if sim.get("out_valid") == 1 {
                out.extend(sim.get_bytes("out_data"));
            }
            if feeding && ready {
                idx += width;
            }
            assert!(out.len() < stream.len() * 3 + 64, "runaway output");
        }
        out
    }

    fn behavioural_stuffed(stream: &[u8]) -> Vec<u8> {
        p5_hdlc::stuff(stream, p5_hdlc::Accm::SONET)
    }

    #[test]
    fn w1_netlist_matches_behavioural_stuffing() {
        let n = build_escape_gen(1, SorterStyle::OneHot);
        let stream = [0x31, 0x33, 0x7E, 0x96, 0x7D, 0x7E, 0x00];
        let got = run_netlist(&n, 1, &stream, 4);
        assert_eq!(got, behavioural_stuffed(&stream));
    }

    #[test]
    fn w1_netlist_random_streams() {
        let n = build_escape_gen(1, SorterStyle::OneHot);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let stream: Vec<u8> = (0..64)
                .map(|_| match rng.gen_range(0..3) {
                    0 => 0x7E,
                    1 => 0x7D,
                    _ => rng.gen(),
                })
                .collect();
            let got = run_netlist(&n, 1, &stream, 4);
            assert_eq!(got, behavioural_stuffed(&stream));
        }
    }

    #[test]
    fn w4_netlist_matches_behavioural_prefix() {
        for style in [SorterStyle::OneHot, SorterStyle::Barrel] {
            let n = build_escape_gen(4, style);
            let stream = [
                0x7E, 0x12, 0x34, 0x56, // Figure 5's case: flag in lane 0
                0x11, 0x22, 0x7D, 0x44, 0x7E, 0x7E, 0x7E, 0x7E, // worst-ish
                0xAA, 0xBB, 0xCC, 0xDD,
            ];
            let got = run_netlist(&n, 4, &stream, 8);
            let expect = behavioural_stuffed(&stream);
            // Output is in full words; at most 3 bytes may still sit in
            // the staging buffer.
            assert!(
                expect.len() - got.len() <= 3,
                "{} vs {}",
                got.len(),
                expect.len()
            );
            assert_eq!(got[..], expect[..got.len()], "style {style:?}");
        }
    }

    #[test]
    fn w4_netlist_random_streams_both_styles() {
        let mut rng = StdRng::seed_from_u64(9);
        for style in [SorterStyle::OneHot, SorterStyle::Barrel] {
            let n = build_escape_gen(4, style);
            for round in 0..10 {
                let len = 4 * rng.gen_range(4..40);
                let stream: Vec<u8> = (0..len)
                    .map(|_| match rng.gen_range(0..4) {
                        0 => 0x7E,
                        1 => 0x7D,
                        _ => rng.gen(),
                    })
                    .collect();
                let got = run_netlist(&n, 4, &stream, 12);
                let expect = behavioural_stuffed(&stream);
                assert!(expect.len() - got.len() <= 3, "round {round}");
                assert_eq!(
                    got[..],
                    expect[..got.len()],
                    "round {round} style {style:?}"
                );
            }
        }
    }

    #[test]
    fn w4_all_flags_exerts_backpressure() {
        let n = build_escape_gen(4, SorterStyle::OneHot);
        let mut sim = Sim::new(&n);
        let mut stalls = 0;
        let mut fed = 0;
        let stream = [0x7E; 32];
        let mut idx = 0;
        for _ in 0..64 {
            if idx + 4 <= stream.len() {
                sim.set_bytes("in_data", &stream[idx..idx + 4]);
                sim.set("in_valid", 1);
            } else {
                sim.set("in_valid", 0);
            }
            let ready = sim.get("in_ready") == 1;
            sim.step();
            if idx + 4 <= stream.len() {
                if ready {
                    idx += 4;
                    fed += 1;
                } else {
                    stalls += 1;
                }
            }
        }
        assert!(fed >= 8, "all input eventually accepted");
        assert!(stalls > 0, "doubling traffic must stall the input");
    }

    #[test]
    fn resource_ratios_match_table_3() {
        // Paper, Table 3: 32-bit escape generate 492 LUTs / 168 FFs;
        // 8-bit 22 LUTs / 6 FFs — ratios 25× and 28×.  Our netlists must
        // land in the same regime: w4 well over 10× the w1 in both.
        let w1 = map(&build_escape_gen(1, SorterStyle::Barrel), MapMode::Area);
        let w4 = map(&build_escape_gen(4, SorterStyle::Barrel), MapMode::Area);
        let lut_ratio = w4.lut_count() as f64 / w1.lut_count() as f64;
        let ff_ratio = w4.ff_count as f64 / w1.ff_count as f64;
        assert!(
            (8.0..80.0).contains(&lut_ratio),
            "LUT ratio {lut_ratio:.1} (w1 {}, w4 {})",
            w1.lut_count(),
            w4.lut_count()
        );
        assert!(
            (8.0..60.0).contains(&ff_ratio),
            "FF ratio {ff_ratio:.1} (w1 {}, w4 {})",
            w1.ff_count,
            w4.ff_count
        );
        // The 32-bit unit nearly fills an XC2V40, as the paper found
        // (492/512 = 96%).
        let r = synthesize(
            &build_escape_gen(4, SorterStyle::Barrel),
            &devices::XC2V40_6,
        );
        assert!(
            (0.7..=1.1).contains(&r.lut_util_post),
            "paper: 96% of an XC2V40; got {:.0}%",
            100.0 * r.lut_util_post
        );
    }

    #[test]
    fn barrel_style_trades_area_for_depth() {
        let onehot = map(&build_escape_gen(4, SorterStyle::OneHot), MapMode::Area);
        let barrel = map(&build_escape_gen(4, SorterStyle::Barrel), MapMode::Area);
        // The structures must genuinely differ.
        assert_ne!(onehot.lut_count(), barrel.lut_count());
    }

    #[test]
    fn w1_is_tiny() {
        let m = map(&build_escape_gen(1, SorterStyle::OneHot), MapMode::Area);
        assert!(m.lut_count() <= 40, "w1 LUTs {}", m.lut_count());
        assert!(m.ff_count <= 12, "w1 FFs {}", m.ff_count);
    }
}
