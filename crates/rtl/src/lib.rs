//! Structural RTL of the P⁵ — gate-level netlists for every module the
//! paper synthesises, built on the `p5-fpga` IR.
//!
//! These are the designs behind Tables 1–3: the parallel CRC cores
//! (8×32 and 32×32 matrices), the Escape Generate and Escape Detect
//! units in both datapath widths (including the 32-bit byte-sorting
//! expansion/compaction networks of Figures 5 and 6), and the
//! transmit/receive control FSMs.  Every netlist is verified by
//! gate-level simulation against its behavioural counterpart, then
//! technology-mapped and timed by `p5-fpga` to regenerate the paper's
//! resource/fMax numbers.

pub mod control;
pub mod crc_core;
pub mod escape_detect;
pub mod escape_gen;
pub mod oam_regfile;
pub mod sorter;
pub mod system;

pub use crc_core::{build_crc_core, build_crc_unit};
pub use escape_detect::build_escape_detect;
pub use escape_gen::{build_escape_gen, SorterStyle};
pub use oam_regfile::build_oam_regfile;
pub use system::{synthesize_system, system_modules, SystemReport};
