//! The Escape Detect unit in gates — Figure 6's problem.
//!
//! * **8-bit version**: an unescaped `0x7D` is deleted (one bubble
//!   cycle) and the following byte has bit 5 complemented.
//! * **32-bit version**: a per-lane escape chain (an escape octet may
//!   escape into the *next word*), a keep-mask compaction network, and
//!   a 3-byte refill buffer that closes the bubbles — "1 byte of the
//!   next set of incoming bytes must be inserted into this bubble".
//!
//! No backpressure is needed on receive: deletion only ever shrinks the
//! stream, so the unit is always ready; under-full cycles surface as
//! `out_valid` bubbles instead.

use crate::escape_gen::SorterStyle;
use crate::sorter::{merge_behind_count, prefix_popcount, route_bytes_ranged};
use p5_fpga::{Builder, Netlist, Sig};

/// Build the Escape Detect netlist for width 1 or 4 bytes.
pub fn build_escape_detect(width: usize, style: SorterStyle) -> Netlist {
    match width {
        1 => build_w1(),
        4 => build_w4(style),
        other => panic!("unsupported escape-detect width {other}"),
    }
}

fn build_w1() -> Netlist {
    let mut b = Builder::new("escape-detect 8-bit");
    let in_data = b.input_bus("in_data", 8);
    let in_valid = b.input("in_valid");

    let pending = b.state_word(1, 0)[0];
    let is_esc = b.eq_const(&in_data, 0x7D);

    // Drop an unescaped escape octet; unescape the byte after it.
    let not_pending = b.not(pending);
    let drop = b.and_many(&[in_valid, is_esc, not_pending]);
    let not_drop = b.not(drop);
    let emit = b.and2(in_valid, not_drop);

    let mut unescaped = in_data.clone();
    unescaped[5] = b.xor2(in_data[5], pending);

    let out_reg = b.reg_word_en(&unescaped, emit, 0);
    let out_valid = b.reg(emit, false);

    // pending sets on a dropped escape, clears after consuming one byte.
    let next_pending = {
        let not_valid = b.not(in_valid);
        let hold = b.and2(pending, not_valid);
        b.or2(drop, hold)
    };
    b.bind_word(&[pending], &[next_pending]);

    b.output("out_data", &out_reg);
    b.output("out_valid", &[out_valid]);
    b.finish()
}

fn build_w4(style: SorterStyle) -> Netlist {
    let mut b = Builder::new(match style {
        SorterStyle::OneHot => "escape-detect 32-bit",
        SorterStyle::Barrel => "escape-detect 32-bit (barrel)",
    });
    let in_data = b.input_bus("in_data", 32);
    let in_valid = b.input("in_valid");
    let lanes: Vec<Vec<Sig>> = (0..4)
        .map(|i| in_data[i * 8..(i + 1) * 8].to_vec())
        .collect();

    // ---- Stage 1: escape chain + compaction --------------------------
    // e[i] = "lane i is preceded by an unconsumed escape".
    let pending = b.state_word(1, 0)[0];
    let mut e = vec![pending];
    let mut drops = Vec::new();
    let mut keeps = Vec::new();
    let mut bytes = Vec::new();
    for (i, lane) in lanes.iter().enumerate() {
        let is_esc = b.eq_const(lane, 0x7D);
        let not_e = b.not(e[i]);
        let drop = b.and2(is_esc, not_e);
        drops.push(drop);
        keeps.push(b.not(drop));
        let mut fixed = lane.clone();
        fixed[5] = b.xor2(lane[5], e[i]);
        bytes.push(fixed);
        e.push(drop);
    }
    // pending carries the final lane's dangling escape across words.
    let next_pending = {
        let not_valid = b.not(in_valid);
        let hold = b.and2(pending, not_valid);
        let adv = b.and2(in_valid, e[4]);
        b.or2(adv, hold)
    };
    b.bind_word(&[pending], &[next_pending]);

    // Compact kept bytes to the low slots.
    let prefix = prefix_popcount(&mut b, &keeps, 3);
    // Kept byte of lane i lands in slots [i - ceil(i/2), i] (drops are
    // never adjacent: an escape's follower is data by construction).
    type RangedSource = (Vec<Sig>, Vec<Sig>, Sig, usize, usize);
    let sources: Vec<RangedSource> = (0..4)
        .map(|i| {
            let en = b.and2(keeps[i], in_valid);
            (
                bytes[i].clone(),
                prefix[i].clone(),
                en,
                i - i.div_ceil(2),
                i,
            )
        })
        .collect();
    let compact = route_bytes_ranged(&mut b, &sources, 4);
    let klen_raw = b.resize(&prefix[4], 3);
    let zero3 = b.const_word(0, 3);
    let klen = b.mux_word(in_valid, &klen_raw, &zero3);

    // Stage register.
    let compact_flat: Vec<Sig> = compact.iter().flatten().copied().collect();
    let one = b.lit(true);
    let s1_data = b.reg_word_en(&compact_flat, one, 0);
    let s1: Vec<Vec<Sig>> = (0..4)
        .map(|i| s1_data[i * 8..(i + 1) * 8].to_vec())
        .collect();
    let s1_len = b.reg_word_en(&klen, one, 0);

    // ---- Stage 2: bubble-filling refill buffer -----------------------
    let buf: Vec<Vec<Sig>> = (0..3).map(|_| b.state_word(8, 0)).collect();
    let cnt = b.state_word(2, 0);
    let cnt3 = b.resize(&cnt, 3);
    let zero = b.lit(false);
    let (total, _) = b.add(&cnt3, &s1_len, zero);
    let merged = merge_behind_count(&mut b, &buf, &s1, &cnt3, 3, 7, style);
    let four = b.const_word(4, 3);
    let emit = b.ge(&total, &four);

    let out_flat: Vec<Sig> = merged[..4].iter().flatten().copied().collect();
    let out_reg = b.reg_word_en(&out_flat, emit, 0);
    let out_valid = b.reg(emit, false);

    // Refill-buffer shift: 0 or 4, one mux per byte.
    let zero_b = b.const_word(0, 8);
    for (i, w) in buf.iter().enumerate() {
        let low = merged.get(i).cloned().unwrap_or_else(|| zero_b.clone());
        let high = merged.get(i + 4).cloned().unwrap_or_else(|| zero_b.clone());
        let nextw = b.mux_word(emit, &high, &low);
        b.bind_word(w, &nextw);
    }
    let (total_minus_4, _) = b.sub(&total, &four);
    let next_cnt3 = b.mux_word(emit, &total_minus_4, &total);
    let next_cnt = b.resize(&next_cnt3, 2);
    b.bind_word(&cnt, &next_cnt);

    b.output("out_data", &out_reg);
    b.output("out_valid", &[out_valid]);
    b.output("occupancy", &cnt);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::{map, MapMode, Sim};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Feed a (flag-free) stuffed stream, collect destuffed output.
    fn run_netlist(n: &Netlist, width: usize, wire: &[u8], drain: usize) -> Vec<u8> {
        let mut sim = Sim::new(n);
        let mut out = Vec::new();
        let mut idx = 0usize;
        let mut quiet = 0;
        // Note: a trailing partial word (wire not a multiple of the
        // width) is never fed — the line always pads to full words.
        while idx + width <= wire.len() || quiet < drain {
            if idx + width <= wire.len() {
                sim.set_bytes("in_data", &wire[idx..idx + width]);
                sim.set("in_valid", 1);
                idx += width;
            } else {
                sim.set("in_valid", 0);
                quiet += 1;
            }
            sim.step();
            if sim.get("out_valid") == 1 {
                out.extend(sim.get_bytes("out_data"));
            }
        }
        out
    }

    fn stuffed(body: &[u8]) -> Vec<u8> {
        p5_hdlc::stuff(body, p5_hdlc::Accm::SONET)
    }

    #[test]
    fn w1_destuffs_correctly() {
        let n = build_escape_detect(1, SorterStyle::OneHot);
        let body = [0x31, 0x33, 0x7E, 0x96, 0x7D, 0x00, 0x7E, 0x7E];
        let got = run_netlist(&n, 1, &stuffed(&body), 4);
        assert_eq!(got, body);
    }

    #[test]
    fn w1_random_streams() {
        let n = build_escape_detect(1, SorterStyle::OneHot);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let body: Vec<u8> = (0..50)
                .map(|_| match rng.gen_range(0..3) {
                    0 => 0x7E,
                    1 => 0x7D,
                    _ => rng.gen(),
                })
                .collect();
            let got = run_netlist(&n, 1, &stuffed(&body), 4);
            assert_eq!(got, body);
        }
    }

    #[test]
    fn figure6_case_escape_spans_words() {
        // 7D as the last lane of a word: the escaped byte arrives in the
        // next word — the paper's "bubble" case.
        for style in [SorterStyle::OneHot, SorterStyle::Barrel] {
            let n = build_escape_detect(4, style);
            let body = [0x11, 0x22, 0x33, 0x7E, 0x44, 0x55, 0x66, 0x77];
            let mut wire = stuffed(&body); // 7D lands at index 3, 5E at 4
            assert_eq!(wire[3], 0x7D);
            // Pad to full words (the line pads with framing on a link).
            let mut expect = body.to_vec();
            while !wire.len().is_multiple_of(4) {
                wire.push(0x00);
                expect.push(0x00);
            }
            let got = run_netlist(&n, 4, &wire, 8);
            assert_eq!(got[..], expect[..got.len().min(expect.len())]);
            assert!(expect.len() - got.len() <= 3);
        }
    }

    #[test]
    fn w4_random_streams_both_styles() {
        let mut rng = StdRng::seed_from_u64(13);
        for style in [SorterStyle::OneHot, SorterStyle::Barrel] {
            let n = build_escape_detect(4, style);
            for round in 0..10 {
                let body: Vec<u8> = (0..rng.gen_range(8..120))
                    .map(|_| match rng.gen_range(0..4) {
                        0 => 0x7E,
                        1 => 0x7D,
                        _ => rng.gen(),
                    })
                    .collect();
                let mut wire = stuffed(&body);
                // Word-align the wire with harmless padding bytes so the
                // last word is full (framing flags do this on a link).
                while !wire.len().is_multiple_of(4) {
                    wire.push(0x00);
                }
                let mut expect = body.clone();
                expect.extend(std::iter::repeat_n(0x00, wire.len() - stuffed(&body).len()));
                let got = run_netlist(&n, 4, &wire, 10);
                assert!(expect.len() - got.len() <= 3, "round {round} {style:?}");
                assert_eq!(got[..], expect[..got.len()], "round {round} {style:?}");
            }
        }
    }

    #[test]
    fn all_escapes_word_shrinks_to_two_bytes() {
        // 4 lanes of 7D 5E 7D 5E → 2 data bytes: a 2-byte bubble.
        let n = build_escape_detect(4, SorterStyle::OneHot);
        let wire = [0x7D, 0x5E, 0x7D, 0x5E, 0x7D, 0x5E, 0x7D, 0x5E];
        let got = run_netlist(&n, 4, &wire, 8);
        assert_eq!(got, vec![0x7E, 0x7E, 0x7E, 0x7E][..got.len()].to_vec());
    }

    #[test]
    fn w4_is_an_order_of_magnitude_bigger_than_w1() {
        let w1 = map(&build_escape_detect(1, SorterStyle::OneHot), MapMode::Area);
        let w4 = map(&build_escape_detect(4, SorterStyle::OneHot), MapMode::Area);
        let ratio = w4.lut_count() as f64 / w1.lut_count() as f64;
        assert!(ratio > 6.0, "ratio {ratio:.1}");
        assert!(w4.ff_count > 4 * w1.ff_count);
    }
}
