//! The parallel CRC core: the XOR-tree realisation of the Pei–Zukowski
//! step matrices from `p5-crc`.
//!
//! "The CRC core computes a 32-bit Frame Check Sequence FCS via an
//! 8 x 32-bit parallel matrix (for the 8-bit P⁵) or via a 32 x 32-bit
//! parallel matrix (for the 32-bit P⁵)."
//!
//! Interface:
//! * `data` (8·W bits), `en` (advance), `init` (synchronous preset);
//! * `crc` — the register contents;
//! * `fcs_ok` — residue comparator against the magic value (receive
//!   path check).

use p5_crc::{CrcParams, StepMatrix, Term};
use p5_fpga::{Builder, Netlist};

/// Build the CRC core netlist for a given parameter set and input width
/// in bytes.
pub fn build_crc_core(params: CrcParams, width_bytes: usize) -> Netlist {
    let m = StepMatrix::for_bytes(params, width_bytes);
    let w = params.width as usize;
    let mut b = Builder::new(format!(
        "crc{}_{}x{} core",
        params.width,
        width_bytes * 8,
        params.width
    ));

    let data = b.input_bus("data", width_bytes * 8);
    let en = b.input("en");
    let init = b.input("init");

    // The CRC register: the preset rides the dedicated sync-set pin,
    // the enable rides the CE pin (free on Virtex slices).
    let state = b.state_word_ctrl(w, params.init as u64, Some(en), Some(init));

    // One XOR tree per next-state bit, straight from the matrix terms.
    let mut next = Vec::with_capacity(w);
    for bit in 0..w {
        let terms: Vec<_> = m
            .terms_for_output_bit(bit)
            .into_iter()
            .map(|t| match t {
                Term::State(i) => state[i],
                Term::Data(j) => data[j],
            })
            .collect();
        next.push(b.xor_many(&terms));
    }
    b.bind_word(&state, &next);

    b.output("crc", &state);
    let ok = b.eq_const(&state, params.good_residue as u64);
    b.output("fcs_ok", &[ok]);

    b.finish()
}

/// Build the complete CRC *unit* for a datapath width.
///
/// The paper: "The CRC unit co-ordinates and synchronises data being fed
/// into the CRC core", and the 32-bit system carries "extra decisional
/// logic involved in the CRC ... mechanisms".  Concretely: the last word
/// of a frame may hold 1–4 valid bytes, so the 32-bit unit instantiates
/// the step matrices for every width and selects by the lane count —
/// this is real area the 8-bit unit does not pay (its words are always
/// one byte).
///
/// Interface: `data` (8·W bits), `len` (valid byte count, 1..=W, 3 bits),
/// `en`, `init`; outputs `crc` and `fcs_ok`.
pub fn build_crc_unit(params: CrcParams, width_bytes: usize) -> Netlist {
    if width_bytes == 1 {
        // Degenerate case: the core is the unit.
        let mut n = build_crc_core(params, 1);
        n.name = format!("crc{} unit 8-bit", params.width);
        return n;
    }
    let w = params.width as usize;
    let mut b = Builder::new(format!("crc{} unit {}-bit", params.width, width_bytes * 8));
    let data = b.input_bus("data", width_bytes * 8);
    // byte_mode: the coordination FSM drains a partial final word one
    // byte at a time through the 8-wide matrix (the `byte_lane` select
    // steers which lane feeds it).
    let byte_mode = b.input("byte_mode");
    let byte_lane = b.input_bus("byte_lane", 2);
    let en = b.input("en");
    let init = b.input("init");

    let state = b.state_word_ctrl(w, params.init as u64, Some(en), Some(init));

    // The full-word matrix.
    let m_word = StepMatrix::for_bytes(params, width_bytes);
    let mut next_word = Vec::with_capacity(w);
    for bit in 0..w {
        let terms: Vec<_> = m_word
            .terms_for_output_bit(bit)
            .into_iter()
            .map(|t| match t {
                Term::State(i) => state[i],
                Term::Data(j) => data[j],
            })
            .collect();
        next_word.push(b.xor_many(&terms));
    }

    // The byte matrix, fed from the selected lane.
    let lane_hot = b.decode(&byte_lane);
    let lanes: Vec<Vec<_>> = (0..width_bytes)
        .map(|i| data[i * 8..(i + 1) * 8].to_vec())
        .collect();
    let byte = b.onehot_mux_word(&lane_hot[..width_bytes], &lanes);
    let m_byte = StepMatrix::for_bytes(params, 1);
    let mut next_byte = Vec::with_capacity(w);
    for bit in 0..w {
        let terms: Vec<_> = m_byte
            .terms_for_output_bit(bit)
            .into_iter()
            .map(|t| match t {
                Term::State(i) => state[i],
                Term::Data(j) => byte[j],
            })
            .collect();
        next_byte.push(b.xor_many(&terms));
    }

    let stepped = b.mux_word(byte_mode, &next_byte, &next_word);
    b.bind_word(&state, &stepped);

    b.output("crc", &state);
    let ok = b.eq_const(&state, params.good_residue as u64);
    b.output("fcs_ok", &[ok]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_crc::{CrcEngine, MatrixEngine, FCS16, FCS32};
    use p5_fpga::{devices, map, synthesize, MapMode, Sim};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn run_words(params: CrcParams, width: usize, words: &[Vec<u8>]) -> (u64, u64) {
        let n = build_crc_core(params, width);
        let mut sim = Sim::new(&n);
        sim.set("en", 1);
        sim.set("init", 0);
        for wbytes in words {
            sim.set_bytes("data", wbytes);
            sim.step();
        }
        (sim.get("crc"), sim.get("fcs_ok"))
    }

    #[test]
    fn crc32_core_matches_matrix_engine_w4() {
        let mut rng = StdRng::seed_from_u64(1);
        let words: Vec<Vec<u8>> = (0..50)
            .map(|_| (0..4).map(|_| rng.gen()).collect())
            .collect();
        let (hw, _) = run_words(FCS32, 4, &words);
        let mut sw = MatrixEngine::new(FCS32, 4);
        for w in &words {
            sw.update(w);
        }
        assert_eq!(hw as u32, sw.residue());
    }

    #[test]
    fn crc32_core_matches_matrix_engine_w1() {
        let data = b"parallel crc in gates";
        let words: Vec<Vec<u8>> = data.iter().map(|&x| vec![x]).collect();
        let (hw, _) = run_words(FCS32, 1, &words);
        let mut sw = MatrixEngine::new(FCS32, 1);
        sw.update(data);
        assert_eq!(hw as u32, sw.residue());
    }

    #[test]
    fn crc16_core_matches() {
        let data = b"fcs16 core";
        let words: Vec<Vec<u8>> = data.chunks(2).map(|c| c.to_vec()).collect();
        let (hw, _) = run_words(FCS16, 2, &words);
        let mut sw = MatrixEngine::new(FCS16, 2);
        sw.update(data);
        assert_eq!(hw as u32, sw.residue());
    }

    #[test]
    fn fcs_ok_asserts_on_good_frame() {
        // Stream body + FCS through the checker; fcs_ok must rise.
        let body = b"check me in hardware";
        let fcs = p5_crc::fcs32(body);
        let mut stream = body.to_vec();
        stream.extend_from_slice(&p5_crc::fcs32_wire_bytes(fcs));
        let words: Vec<Vec<u8>> = stream.chunks(4).map(|c| c.to_vec()).collect();
        let (_, ok) = run_words(FCS32, 4, &words);
        assert_eq!(ok, 1);
        // A corrupted stream must not.
        let mut bad = stream.clone();
        bad[3] ^= 1;
        let words: Vec<Vec<u8>> = bad.chunks(4).map(|c| c.to_vec()).collect();
        let (_, ok) = run_words(FCS32, 4, &words);
        assert_eq!(ok, 0);
    }

    #[test]
    fn init_resets_the_register() {
        let n = build_crc_core(FCS32, 4);
        let mut sim = Sim::new(&n);
        sim.set("en", 1);
        sim.set("init", 0);
        sim.set_bytes("data", &[1, 2, 3, 4]);
        sim.step();
        assert_ne!(sim.get("crc"), FCS32.init as u64);
        sim.set("init", 1);
        sim.step();
        assert_eq!(sim.get("crc"), FCS32.init as u64);
    }

    #[test]
    fn enable_holds_state() {
        let n = build_crc_core(FCS32, 4);
        let mut sim = Sim::new(&n);
        sim.set("en", 0);
        sim.set("init", 0);
        sim.set_bytes("data", &[9, 9, 9, 9]);
        let before = sim.get("crc");
        sim.step();
        assert_eq!(sim.get("crc"), before);
    }

    #[test]
    fn core_has_32_state_ffs() {
        let n = build_crc_core(FCS32, 4);
        assert_eq!(n.ff_count(), 32);
        let n8 = build_crc_core(FCS32, 1);
        assert_eq!(n8.ff_count(), 32);
    }

    #[test]
    fn wide_core_is_bigger_but_not_deeper_than_a_byte_core() {
        let w1 = map(&build_crc_core(FCS32, 1), MapMode::Depth);
        let w4 = map(&build_crc_core(FCS32, 4), MapMode::Depth);
        assert!(w4.lut_count() > w1.lut_count());
        // Both are shallow XOR trees + mux: a handful of levels.
        assert!(w4.depth <= w1.depth + 2, "w1 {} w4 {}", w1.depth, w4.depth);
        assert!(w4.depth <= 6);
    }

    #[test]
    fn crc_unit_handles_partial_last_words() {
        use p5_fpga::Sim;
        let n = build_crc_unit(FCS32, 4);
        let mut sim = Sim::new(&n);
        sim.set("en", 1);
        sim.set("init", 0);
        // An 11-byte message: two full words, then a 3-byte tail drained
        // byte-serially (what the coordination FSM does at end of frame).
        let msg = b"partialword";
        let mut fed = 0usize;
        while fed + 4 <= msg.len() {
            sim.set("byte_mode", 0);
            sim.set_bytes("data", &msg[fed..fed + 4]);
            sim.step();
            fed += 4;
        }
        let mut word = [0u8; 4];
        word[..msg.len() - fed].copy_from_slice(&msg[fed..]);
        sim.set_bytes("data", &word);
        sim.set("byte_mode", 1);
        for lane in 0..(msg.len() - fed) {
            sim.set("byte_lane", lane as u64);
            sim.step();
        }
        let mut sw = MatrixEngine::new(FCS32, 4);
        sw.update(msg);
        assert_eq!(sim.get("crc") as u32, sw.residue());
    }

    #[test]
    fn crc_unit_w4_pays_the_decisional_logic_tax() {
        // Paper: the 32-bit system's size is "partly due to extra
        // decisional logic involved in the CRC" — the 4-matrix unit must
        // be much more than 4x the byte core's XOR trees alone.
        let unit1 = map(&build_crc_unit(FCS32, 1), MapMode::Area);
        let unit4 = map(&build_crc_unit(FCS32, 4), MapMode::Area);
        let ratio = unit4.lut_count() as f64 / unit1.lut_count() as f64;
        assert!(ratio > 3.0, "ratio {ratio:.1}");
        let core4 = map(&build_crc_core(FCS32, 4), MapMode::Area);
        assert!(unit4.lut_count() > core4.lut_count());
    }

    #[test]
    fn both_cores_meet_line_clock_on_virtex_ii() {
        for width in [1usize, 4] {
            let r = synthesize(&build_crc_core(FCS32, width), &devices::XC2V1000_6);
            assert!(
                r.fmax_post_mhz > 78.125,
                "width {width}: {:.1} MHz",
                r.fmax_post_mhz
            );
        }
    }
}
