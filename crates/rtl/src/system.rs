//! System-level synthesis: the complete 8-bit and 32-bit P⁵ datapaths
//! as module collections, with aggregate resource/timing reports —
//! the generators behind Tables 1 and 2.
//!
//! The P⁵ datapath of Figure 2 comprises, per direction, a control
//! FSM, a CRC core and an escape unit; the system totals are the sum
//! over modules, and the system fMax is the slowest module's (all
//! modules share the line clock).

use crate::control::{build_rx_control, build_tx_control_w1, build_tx_control_w4};
use crate::crc_core::build_crc_unit;
use crate::escape_detect::build_escape_detect;
use crate::escape_gen::{build_escape_gen, SorterStyle};
use p5_crc::FCS32;
use p5_fpga::{synthesize, Device, Netlist, SynthReport};

/// The module netlists of one P⁵ datapath width.
pub fn system_modules(width: usize) -> Vec<Netlist> {
    assert!(width == 1 || width == 4);
    let tx_control = if width == 1 {
        build_tx_control_w1()
    } else {
        build_tx_control_w4()
    };
    vec![
        tx_control,
        build_crc_unit(FCS32, width), // transmit CRC
        build_escape_gen(width, SorterStyle::Barrel),
        build_escape_detect(width, SorterStyle::Barrel),
        build_crc_unit(FCS32, width), // receive CRC
        build_rx_control(),
    ]
}

/// A synthesised system: per-module rows plus totals.
#[derive(Debug, Clone)]
pub struct SystemReport {
    pub name: String,
    pub device: &'static str,
    pub modules: Vec<SynthReport>,
    pub total_luts_pre: usize,
    pub total_luts_post: usize,
    pub total_ffs: usize,
    pub lut_util_post: f64,
    pub ff_util: f64,
    /// Slowest module pre-layout.
    pub fmax_pre_mhz: f64,
    /// Slowest module post-layout.
    pub fmax_post_mhz: f64,
    pub fits: bool,
    /// Does the post-layout clock sustain the 78.125 MHz line rate?
    pub meets_line_rate: bool,
}

/// The clock both datapath widths must meet (625 Mbps / 8 =
/// 2.5 Gbps / 32 = 78.125 MHz).
pub const LINE_CLOCK_MHZ: f64 = 78.125;

/// Synthesise a full system (width 1 or 4) onto a device.
pub fn synthesize_system(width: usize, device: &Device) -> SystemReport {
    let modules: Vec<SynthReport> = system_modules(width)
        .iter()
        .map(|m| synthesize(m, device))
        .collect();
    let total_luts_pre = modules.iter().map(|m| m.luts_pre).sum();
    let total_luts_post = modules.iter().map(|m| m.luts_post).sum();
    let total_ffs = modules.iter().map(|m| m.ffs).sum();
    let fmax_pre = modules
        .iter()
        .map(|m| m.fmax_pre_mhz)
        .fold(f64::INFINITY, f64::min);
    let fmax_post = modules
        .iter()
        .map(|m| m.fmax_post_mhz)
        .fold(f64::INFINITY, f64::min);
    SystemReport {
        name: format!("P5 {}-bit system", width * 8),
        device: device.name,
        modules,
        total_luts_pre,
        total_luts_post,
        total_ffs,
        lut_util_post: total_luts_post as f64 / device.luts as f64,
        ff_util: total_ffs as f64 / device.ffs as f64,
        fmax_pre_mhz: fmax_pre,
        fmax_post_mhz: fmax_post,
        fits: total_luts_post <= device.luts && total_ffs <= device.ffs,
        meets_line_rate: fmax_post >= LINE_CLOCK_MHZ,
    }
}

impl SystemReport {
    /// Render as a paper-style table block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} on {}\n", self.name, self.device));
        for m in &self.modules {
            out.push_str(&format!("  {}\n", m.table_row()));
        }
        out.push_str(&format!(
            "  TOTAL: pre {} LUT / post {} LUT ({:.1}%) | {} FF ({:.1}%) | fMax pre {:.1} / post {:.1} MHz | line rate (78.125 MHz): {}{}\n",
            self.total_luts_pre,
            self.total_luts_post,
            100.0 * self.lut_util_post,
            self.total_ffs,
            100.0 * self.ff_util,
            self.fmax_pre_mhz,
            self.fmax_post_mhz,
            if self.meets_line_rate { "MET" } else { "MISSED" },
            if self.fits { "" } else { "  ** DOES NOT FIT **" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::devices;

    #[test]
    fn thirty_two_bit_system_is_roughly_11x_the_8_bit() {
        // The paper's headline area observation: "the 32-bit version of
        // the system is not 4 times bigger than the 8-bit version as one
        // might predict, but is approximately 11 times bigger."
        let w8 = synthesize_system(1, &devices::XCV600_4);
        let w32 = synthesize_system(4, &devices::XCV600_4);
        let ratio = w32.total_luts_post as f64 / w8.total_luts_post as f64;
        assert!(
            (4.3..20.0).contains(&ratio),
            "area ratio {ratio:.1} (8-bit {}, 32-bit {})",
            w8.total_luts_post,
            w32.total_luts_post
        );
        assert!(ratio > 4.0, "must exceed the naive 4x scaling");
    }

    #[test]
    fn eight_bit_system_fits_xcv50() {
        let r = synthesize_system(1, &devices::XCV50_4);
        assert!(r.fits, "{}", r.render());
        // Paper Table 1: ~12% of an XCV50.
        assert!(r.lut_util_post < 0.35, "{}", r.render());
    }

    #[test]
    fn thirty_two_bit_system_fits_a_quarter_of_xc2v1000() {
        // Paper §5: "approximately 25% of the resources of a XC2V-1000".
        let r = synthesize_system(4, &devices::XC2V1000_6);
        assert!(r.fits);
        assert!(
            (0.05..0.60).contains(&r.lut_util_post),
            "utilisation {:.0}%",
            100.0 * r.lut_util_post
        );
    }

    #[test]
    fn line_rate_met_on_virtex_ii_missed_on_virtex() {
        // Paper §4/§5: speed requirements met with Virtex-II, and the
        // Virtex -4 parts fall short.
        let v2 = synthesize_system(4, &devices::XC2V1000_6);
        assert!(v2.meets_line_rate, "{}", v2.render());
        let v = synthesize_system(4, &devices::XCV600_4);
        assert!(!v.meets_line_rate, "{}", v.render());
    }

    #[test]
    fn escape_units_dominate_the_size_increase() {
        // "It has been discovered that this size increase is mainly due
        // to the byte sorter and buffering mechanisms ... which are
        // heavy in combinational logic" (and "partly due to extra
        // decisional logic involved in the CRC").  So: the escape pair
        // must contribute the largest share of the 32-bit − 8-bit LUT
        // increase, with the CRC pair second.
        let escape_luts = |width: usize| -> usize {
            let r = synthesize_system(width, &devices::XC2V1000_6);
            r.modules
                .iter()
                .filter(|m| m.module.contains("escape"))
                .map(|m| m.luts_post)
                .sum()
        };
        let crc_luts = |width: usize| -> usize {
            let r = synthesize_system(width, &devices::XC2V1000_6);
            r.modules
                .iter()
                .filter(|m| m.module.contains("crc"))
                .map(|m| m.luts_post)
                .sum()
        };
        let total = |width: usize| synthesize_system(width, &devices::XC2V1000_6).total_luts_post;
        let escape_increase = escape_luts(4) - escape_luts(1);
        let crc_increase = crc_luts(4) - crc_luts(1);
        let total_increase = total(4) - total(1);
        assert!(
            escape_increase > crc_increase,
            "escape +{escape_increase} vs crc +{crc_increase}"
        );
        assert!(
            escape_increase * 2 > total_increase,
            "escape +{escape_increase} of +{total_increase} total"
        );
    }
}
