//! Byte-sorting network primitives shared by the 32-bit escape units:
//! lane prefix-popcounts, one-hot byte routing, and the staging merge
//! that aligns freshly produced bytes behind the carry buffer.
//!
//! This is "the byte sorter mechanisms built with large decision-making
//! combinational logic" the paper identifies as the reason the 32-bit
//! system is ~11× (not 4×) the size of the 8-bit one.  Two structural
//! realisations are provided for the ablation in DESIGN.md §6.2:
//! one-hot AND-OR muxing (shallow, wide) and logarithmic barrel
//! shifting (narrow, deeper).

use crate::escape_gen::SorterStyle;
use p5_fpga::{Builder, Sig};

/// A byte as 8 signals, LSB first.
pub type ByteSig = Vec<Sig>;

fn zero_byte(b: &mut Builder) -> ByteSig {
    b.const_word(0, 8)
}

/// Prefix popcounts of a bit vector: `out[i]` = number of set bits among
/// `bits[0..i]`, as a `width`-bit word.  `out.len() == bits.len() + 1`
/// (the last entry is the total).
pub fn prefix_popcount(b: &mut Builder, bits: &[Sig], width: usize) -> Vec<Vec<Sig>> {
    let mut out = Vec::with_capacity(bits.len() + 1);
    let mut acc = b.const_word(0, width);
    out.push(acc.clone());
    for &bit in bits {
        let mut bit_word = vec![bit];
        let zero = b.lit(false);
        bit_word.extend(std::iter::repeat_n(zero, width - 1));
        let (sum, _) = b.add(&acc, &bit_word, zero);
        acc = sum;
        out.push(acc.clone());
    }
    out
}

/// Route enabled `sources` (byte, position, enable) to `n_slots` output
/// slots: slot `j` receives the enabled source whose position equals
/// `j`; unmatched slots read zero.
pub fn route_bytes_en(
    b: &mut Builder,
    sources: &[(ByteSig, Vec<Sig>, Sig)],
    n_slots: usize,
) -> Vec<ByteSig> {
    let ranged: Vec<_> = sources
        .iter()
        .map(|(byte, pos, en)| (byte.clone(), pos.clone(), *en, 0usize, n_slots - 1))
        .collect();
    route_bytes_ranged(b, &ranged, n_slots)
}

/// Like [`route_bytes_en`] but with a static reachability range per
/// source `(lo, hi)`: slot `j` only instantiates selector logic for
/// sources that can actually land there.  This is the pruning a
/// designer applies by construction (lane `i`'s first byte can only
/// reach slots `i..=2i`), and it substantially shrinks the sorter.
pub fn route_bytes_ranged(
    b: &mut Builder,
    sources: &[(ByteSig, Vec<Sig>, Sig, usize, usize)],
    n_slots: usize,
) -> Vec<ByteSig> {
    (0..n_slots)
        .map(|j| {
            let mut sels = Vec::new();
            let mut words = Vec::new();
            for (byte, pos, en, lo, hi) in sources {
                if j < *lo || j > *hi {
                    continue;
                }
                let hit = b.eq_const(pos, j as u64);
                sels.push(b.and2(hit, *en));
                words.push(byte.clone());
            }
            if words.is_empty() {
                return zero_byte(b);
            }
            b.onehot_mux_word(&sels, &words)
        })
        .collect()
}

/// Shift a vector of bytes towards higher slots by `amount` (a small
/// word), zero-filling, producing `n_slots` outputs — log-stage barrel.
fn barrel_shift_up(
    b: &mut Builder,
    bytes: &[ByteSig],
    amount: &[Sig],
    n_slots: usize,
) -> Vec<ByteSig> {
    let mut cur: Vec<ByteSig> = (0..n_slots)
        .map(|j| bytes.get(j).cloned().unwrap_or_else(|| zero_byte(b)))
        .collect();
    for (k, &abit) in amount.iter().enumerate() {
        let dist = 1usize << k;
        if dist >= n_slots {
            break;
        }
        let shifted: Vec<ByteSig> = (0..n_slots)
            .map(|j| {
                if j >= dist {
                    cur[j - dist].clone()
                } else {
                    zero_byte(b)
                }
            })
            .collect();
        cur = (0..n_slots)
            .map(|j| b.mux_word(abit, &shifted[j], &cur[j]))
            .collect();
    }
    cur
}

/// Merge a carry buffer with freshly produced bytes: output slot `j`
/// reads `carry[j]` when `j < cnt`, else `fresh[j - cnt]`.
pub fn merge_behind_count(
    b: &mut Builder,
    carry: &[ByteSig],
    fresh: &[ByteSig],
    cnt: &[Sig],
    cnt_max: usize,
    n_slots: usize,
    style: SorterStyle,
) -> Vec<ByteSig> {
    match style {
        SorterStyle::OneHot => {
            let hot: Vec<Sig> = (0..=cnt_max).map(|v| b.eq_const(cnt, v as u64)).collect();
            (0..n_slots)
                .map(|j| {
                    let words: Vec<ByteSig> = (0..=cnt_max)
                        .map(|c| {
                            if j < c {
                                carry.get(j).cloned().unwrap_or_else(|| zero_byte(b))
                            } else {
                                fresh.get(j - c).cloned().unwrap_or_else(|| zero_byte(b))
                            }
                        })
                        .collect();
                    b.onehot_mux_word(&hot, &words)
                })
                .collect()
        }
        SorterStyle::Barrel => {
            let shifted = barrel_shift_up(b, fresh, cnt, n_slots);
            // Comparators must be wide enough for j+1 up to n_slots.
            let cmp_width = usize::BITS as usize - n_slots.leading_zeros() as usize;
            let cmp_width = cmp_width.max(cnt.len());
            let cnt_wide = b.resize(cnt, cmp_width);
            (0..n_slots)
                .map(|j| {
                    // j < cnt  ⇔  cnt ≥ j+1
                    let jp1 = b.const_word((j + 1) as u64, cmp_width);
                    let in_carry = b.ge(&cnt_wide, &jp1);
                    let cb = carry.get(j).cloned().unwrap_or_else(|| zero_byte(b));
                    b.mux_word(in_carry, &cb, &shifted[j])
                })
                .collect()
        }
    }
}

/// Select `n_out` bytes starting at slot `offset` from `slots` — the
/// shift-down after emitting an output word.
pub fn take_from_offset(
    b: &mut Builder,
    slots: &[ByteSig],
    offset: &[Sig],
    offset_max: usize,
    n_out: usize,
    style: SorterStyle,
) -> Vec<ByteSig> {
    match style {
        SorterStyle::OneHot => {
            let hot: Vec<Sig> = (0..=offset_max)
                .map(|v| b.eq_const(offset, v as u64))
                .collect();
            (0..n_out)
                .map(|j| {
                    let words: Vec<ByteSig> = (0..=offset_max)
                        .map(|c| slots.get(j + c).cloned().unwrap_or_else(|| zero_byte(b)))
                        .collect();
                    b.onehot_mux_word(&hot, &words)
                })
                .collect()
        }
        SorterStyle::Barrel => {
            let mut cur: Vec<ByteSig> = slots.to_vec();
            for (k, &obit) in offset.iter().enumerate() {
                let dist = 1usize << k;
                let shifted: Vec<ByteSig> = (0..cur.len())
                    .map(|j| cur.get(j + dist).cloned().unwrap_or_else(|| zero_byte(b)))
                    .collect();
                cur = (0..cur.len())
                    .map(|j| b.mux_word(obit, &shifted[j], &cur[j]))
                    .collect();
            }
            cur.truncate(n_out);
            while cur.len() < n_out {
                cur.push(zero_byte(b));
            }
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p5_fpga::Sim;

    #[test]
    fn prefix_popcount_counts() {
        let mut b = Builder::new("ppc");
        let bits = b.input_bus("bits", 4);
        let counts = prefix_popcount(&mut b, &bits.clone(), 3);
        for (i, c) in counts.iter().enumerate() {
            b.output(&format!("c{i}"), c);
        }
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for v in 0..16u64 {
            sim.set("bits", v);
            for i in 0..=4 {
                let expect = (v & ((1 << i) - 1)).count_ones() as u64;
                assert_eq!(sim.get(&format!("c{i}")), expect, "v={v} i={i}");
            }
        }
    }

    #[test]
    fn route_bytes_places_enabled_sources() {
        let mut b = Builder::new("route");
        let d0 = b.input_bus("d0", 8);
        let d1 = b.input_bus("d1", 8);
        let p0 = b.input_bus("p0", 2);
        let p1 = b.input_bus("p1", 2);
        let e1 = b.input("e1");
        let one = b.lit(true);
        let slots = route_bytes_en(&mut b, &[(d0, p0, one), (d1, p1, e1)], 4);
        for (j, s) in slots.iter().enumerate() {
            b.output(&format!("s{j}"), s);
        }
        let n = b.finish();
        let mut sim = Sim::new(&n);
        sim.set("d0", 0xAA);
        sim.set("d1", 0xBB);
        sim.set("p0", 2);
        sim.set("p1", 0);
        sim.set("e1", 1);
        assert_eq!(sim.get("s2"), 0xAA);
        assert_eq!(sim.get("s0"), 0xBB);
        assert_eq!(sim.get("s1"), 0);
        sim.set("e1", 0);
        assert_eq!(sim.get("s0"), 0, "disabled source routes nothing");
    }

    fn merge_fixture(style: SorterStyle) {
        let mut b = Builder::new("merge");
        let carry: Vec<_> = (0..3).map(|i| b.input_bus(&format!("c{i}"), 8)).collect();
        let fresh: Vec<_> = (0..4).map(|i| b.input_bus(&format!("f{i}"), 8)).collect();
        let cnt = b.input_bus("cnt", 2);
        let merged = merge_behind_count(&mut b, &carry, &fresh, &cnt.clone(), 3, 7, style);
        for (j, s) in merged.iter().enumerate() {
            b.output(&format!("m{j}"), s);
        }
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for i in 0..3 {
            sim.set(&format!("c{i}"), 0x10 + i as u64);
        }
        for i in 0..4 {
            sim.set(&format!("f{i}"), 0x20 + i as u64);
        }
        for cnt in 0..=3u64 {
            sim.set("cnt", cnt);
            for j in 0..7usize {
                let expect = if (j as u64) < cnt {
                    0x10 + j as u64
                } else if j - (cnt as usize) < 4 {
                    0x20 + (j as u64 - cnt)
                } else {
                    0
                };
                assert_eq!(
                    sim.get(&format!("m{j}")),
                    expect,
                    "{style:?} cnt={cnt} j={j}"
                );
            }
        }
    }

    #[test]
    fn merge_behind_count_onehot() {
        merge_fixture(SorterStyle::OneHot);
    }

    #[test]
    fn merge_behind_count_barrel() {
        merge_fixture(SorterStyle::Barrel);
    }

    fn take_fixture(style: SorterStyle) {
        let mut b = Builder::new("take");
        let slots: Vec<_> = (0..6).map(|i| b.input_bus(&format!("s{i}"), 8)).collect();
        let off = b.input_bus("off", 3);
        let out = take_from_offset(&mut b, &slots, &off.clone(), 4, 3, style);
        for (j, s) in out.iter().enumerate() {
            b.output(&format!("o{j}"), s);
        }
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for i in 0..6 {
            sim.set(&format!("s{i}"), 0x40 + i as u64);
        }
        for off in 0..=4u64 {
            sim.set("off", off);
            for j in 0..3usize {
                let idx = j + off as usize;
                let expect = if idx < 6 { 0x40 + idx as u64 } else { 0 };
                assert_eq!(
                    sim.get(&format!("o{j}")),
                    expect,
                    "{style:?} off={off} j={j}"
                );
            }
        }
    }

    #[test]
    fn take_from_offset_onehot() {
        take_fixture(SorterStyle::OneHot);
    }

    #[test]
    fn take_from_offset_barrel() {
        take_fixture(SorterStyle::Barrel);
    }
}
