//! Structural Verilog export of mapped netlists — the second
//! independent-verification path next to BLIF: each LUT becomes an
//! `assign` with its truth-table expression, each flip-flop an `always`
//! block with native CE/SR semantics.

use crate::lutsim::LutNetwork;
use crate::netlist::{NodeKind, Sig};
use std::fmt::Write;

fn ident(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn sig_name(net: &LutNetwork, s: Sig) -> String {
    for b in net.n.inputs.iter().chain(net.n.outputs.iter()) {
        if let Some(i) = b.sigs.iter().position(|&x| x == s) {
            return format!("{}_{}", ident(&b.name), i);
        }
    }
    match net.n.nodes[s as usize] {
        NodeKind::FfOutput(i) => format!("ff{i}_q"),
        NodeKind::Const(false) => "1'b0".into(),
        NodeKind::Const(true) => "1'b1".into(),
        _ => format!("n{s}"),
    }
}

/// Sum-of-products expression for a LUT truth table.
fn lut_expr(inputs: &[String], truth: u16) -> String {
    let k = inputs.len();
    if truth == 0 {
        return "1'b0".into();
    }
    if truth == ((1u32 << (1 << k)) - 1) as u16 {
        return "1'b1".into();
    }
    let mut terms = Vec::new();
    for idx in 0..(1u16 << k) {
        if (truth >> idx) & 1 == 1 {
            let product: Vec<String> = (0..k)
                .map(|b| {
                    if (idx >> b) & 1 == 1 {
                        inputs[b].clone()
                    } else {
                        format!("~{}", inputs[b])
                    }
                })
                .collect();
            terms.push(format!("({})", product.join(" & ")));
        }
    }
    terms.join(" | ")
}

/// Render a mapped netlist as a synthesizable Verilog module.
pub fn to_verilog(net: &LutNetwork) -> String {
    let mut out = String::new();
    let module = ident(&net.n.name);
    let in_ports: Vec<String> = net
        .n
        .inputs
        .iter()
        .flat_map(|b| b.sigs.iter().map(|&s| sig_name(net, s)))
        .collect();
    let out_ports: Vec<String> = net
        .n
        .outputs
        .iter()
        .flat_map(|b| b.sigs.iter().map(|&s| sig_name(net, s)))
        .collect();

    writeln!(out, "module {module} (").unwrap();
    writeln!(out, "    input  wire clk,").unwrap();
    for p in &in_ports {
        writeln!(out, "    input  wire {p},").unwrap();
    }
    for (i, p) in out_ports.iter().enumerate() {
        let comma = if i + 1 == out_ports.len() { "" } else { "," };
        writeln!(out, "    output wire {p}{comma}").unwrap();
    }
    writeln!(out, ");").unwrap();

    // FF state declarations.
    for i in 0..net.n.dffs.len() {
        writeln!(out, "  reg ff{i}_q;").unwrap();
    }

    // LUTs.
    for lut in &net.luts {
        let name = sig_name(net, lut.root);
        let declared = out_ports.contains(&name);
        let ins: Vec<String> = lut.leaves.iter().map(|&l| sig_name(net, l)).collect();
        let expr = lut_expr(&ins, lut.truth);
        if declared {
            writeln!(out, "  assign {name} = {expr};").unwrap();
        } else {
            writeln!(out, "  wire {name} = {expr};").unwrap();
        }
    }

    // Outputs fed directly by FFs or inputs.
    for b in &net.n.outputs {
        for &s in &b.sigs {
            let name = sig_name(net, s);
            let driven = net.luts.iter().any(|l| l.root == s);
            if !driven && !net.n.inputs.iter().any(|ib| ib.sigs.contains(&s)) {
                writeln!(
                    out,
                    "  assign {name} = {};",
                    match net.n.nodes[s as usize] {
                        NodeKind::FfOutput(i) => format!("ff{i}_q"),
                        NodeKind::Const(v) => format!("1'b{}", u8::from(v)),
                        _ => sig_name(net, s),
                    }
                )
                .unwrap();
            }
        }
    }

    // Flip-flops with CE/SR (SR priority, as on the Virtex slice).
    for (i, dff) in net.n.dffs.iter().enumerate() {
        let d = sig_name(net, dff.d.expect("validated"));
        writeln!(out, "  always @(posedge clk) begin").unwrap();
        let mut indent = "    ".to_string();
        if let Some(sr) = dff.sr {
            writeln!(
                out,
                "{indent}if ({}) ff{i}_q <= 1'b{};",
                sig_name(net, sr),
                u8::from(dff.init)
            )
            .unwrap();
            write!(out, "{indent}else ").unwrap();
            indent = String::new();
        }
        if let Some(en) = dff.en {
            writeln!(out, "{indent}if ({}) ff{i}_q <= {d};", sig_name(net, en)).unwrap();
        } else {
            writeln!(out, "{indent}ff{i}_q <= {d};").unwrap();
        }
        writeln!(out, "  end").unwrap();
    }

    writeln!(out, "endmodule").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::map::{map, MapMode};

    fn sample() -> crate::netlist::Netlist {
        let mut b = Builder::new("verilog sample");
        let x = b.input_bus("x", 4);
        let en = b.input("en");
        let init = b.input("rst");
        let y = b.xor_many(&x);
        let q = b.reg_ctrl(y, Some(en), Some(init), false);
        b.output("q", &[q]);
        b.finish()
    }

    #[test]
    fn module_structure() {
        let n = sample();
        let m = map(&n, MapMode::Depth);
        let v = to_verilog(&LutNetwork::new(&n, &m));
        assert!(v.contains("module verilog_sample"));
        assert!(v.contains("input  wire clk,"));
        assert!(v.contains("output wire q_0"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("endmodule"));
        // SR has priority and drives the init value.
        assert!(v.contains("if (rst_0) ff0_q <= 1'b0;"));
        assert!(v.contains("if (en_0) ff0_q <="));
    }

    #[test]
    fn lut_expression_matches_truth_table() {
        // XOR of two inputs: truth 0110.
        let expr = lut_expr(&["a".into(), "b".into()], 0b0110);
        assert_eq!(expr, "(a & ~b) | (~a & b)");
        assert_eq!(lut_expr(&["a".into()], 0), "1'b0");
        assert_eq!(lut_expr(&["a".into()], 0b11), "1'b1");
    }

    #[test]
    fn identifier_sanitisation() {
        assert_eq!(
            ident("escape-gen 32-bit (barrel)"),
            "escape_gen_32_bit__barrel_"
        );
        assert_eq!(ident("3state"), "_3state");
    }
}
