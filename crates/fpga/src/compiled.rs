//! Compile-then-run bit-parallel netlist simulation.
//!
//! [`CompiledSim`] lowers a [`Netlist`] (or a mapped 4-LUT network)
//! once into a dense, levelized instruction tape over contiguous `u64`
//! node arrays and then evaluates **64 independent stimulus lanes per
//! pass**: lane `j` of the simulation lives in bit `j` of every node
//! word, so AND/OR/XOR/NOT over 64 test vectors each cost one machine
//! word operation.  4-LUT truth tables evaluate by minterm mask-select
//! over the packed leaf words.
//!
//! Construction resolves everything the scalar [`crate::sim::Sim`]
//! does per call — name lookups, `Vec<Sig>` bus clones, per-node
//! `enum` dispatch through a topo *index* array — into flat arrays
//! walked linearly, which is also why the ×1-lane configuration
//! already beats the scalar walker before lane parallelism kicks in.

use crate::lutsim::truth_table;
use crate::map::MappedNetlist;
use crate::netlist::{Netlist, NodeKind, Sig};
use crate::sim::{InPort, OutPort};

/// Number of independent stimulus lanes evaluated per pass (one per
/// bit of a `u64`).
pub const LANES: usize = 64;

/// One instruction of the levelized tape.  Destinations and operands
/// are node indices into the packed value array.
#[derive(Debug, Clone, Copy)]
enum Op {
    Not {
        dst: u32,
        a: u32,
    },
    And {
        dst: u32,
        a: u32,
        b: u32,
    },
    Or {
        dst: u32,
        a: u32,
        b: u32,
    },
    Xor {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// A mapped 4-LUT: `truth` bit `i` is the output under leaf
    /// assignment `i` (leaf 0 = LSB).  Unused leaf slots are `0` and
    /// masked off by `nleaves`.
    Lut {
        dst: u32,
        leaves: [u32; 4],
        nleaves: u8,
        truth: u16,
    },
}

/// Flip-flop controls resolved to node indices; `init` is the
/// power-on/SR value broadcast across all lanes.
#[derive(Debug, Clone, Copy)]
struct CompiledDff {
    q: u32,
    d: u32,
    en: Option<u32>,
    sr: Option<u32>,
    init: u64,
}

/// An owned, vectorized simulator compiled from a netlist.
pub struct CompiledSim {
    /// Packed node values: bit `j` of `values[s]` is node `s` in lane `j`.
    values: Vec<u64>,
    tape: Vec<Op>,
    dffs: Vec<CompiledDff>,
    /// Packed FF state (indexed like the netlist's `dffs`).
    ff_state: Vec<u64>,
    ff_next: Vec<u64>,
    inputs: Vec<(String, Vec<Sig>)>,
    outputs: Vec<(String, Vec<Sig>)>,
    dirty: bool,
}

fn broadcast(v: bool) -> u64 {
    if v {
        !0
    } else {
        0
    }
}

impl CompiledSim {
    /// Compile the gate-level netlist: one tape instruction per 2-input
    /// node, in topological order.
    pub fn compile(n: &Netlist) -> Self {
        n.validate();
        let tape = n
            .topo_order()
            .into_iter()
            .filter_map(|s| match n.nodes[s as usize] {
                NodeKind::Input | NodeKind::Const(_) | NodeKind::FfOutput(_) => None,
                NodeKind::Not(a) => Some(Op::Not { dst: s, a }),
                NodeKind::And(a, b) => Some(Op::And { dst: s, a, b }),
                NodeKind::Or(a, b) => Some(Op::Or { dst: s, a, b }),
                NodeKind::Xor(a, b) => Some(Op::Xor { dst: s, a, b }),
            })
            .collect();
        Self::finish(n, tape)
    }

    /// Compile the 4-LUT mapping of `n`: one tape instruction per LUT,
    /// with truth tables derived from the covered cones (the mapper
    /// emits LUTs in topological order).
    pub fn compile_mapped(n: &Netlist, m: &MappedNetlist) -> Self {
        n.validate();
        let tape = m
            .luts
            .iter()
            .map(|l| {
                let mut leaves = [0u32; 4];
                leaves[..l.leaves.len()].copy_from_slice(&l.leaves);
                Op::Lut {
                    dst: l.root,
                    leaves,
                    nleaves: l.leaves.len() as u8,
                    truth: truth_table(n, l.root, &l.leaves),
                }
            })
            .collect();
        Self::finish(n, tape)
    }

    fn finish(n: &Netlist, tape: Vec<Op>) -> Self {
        let mut values = vec![0u64; n.nodes.len()];
        // Constants are written once here and never overwritten: no
        // tape instruction targets a Const or FfOutput slot.
        for (i, node) in n.nodes.iter().enumerate() {
            if let NodeKind::Const(v) = node {
                values[i] = broadcast(*v);
            }
        }
        let dffs: Vec<CompiledDff> = n
            .dffs
            .iter()
            .map(|d| CompiledDff {
                q: d.q,
                d: d.d.expect("validated"),
                en: d.en,
                sr: d.sr,
                init: broadcast(d.init),
            })
            .collect();
        let ff_state: Vec<u64> = dffs.iter().map(|d| d.init).collect();
        for (i, d) in dffs.iter().enumerate() {
            values[d.q as usize] = ff_state[i];
        }
        let mut sim = Self {
            values,
            tape,
            ff_next: ff_state.clone(),
            ff_state,
            dffs,
            inputs: n
                .inputs
                .iter()
                .map(|b| (b.name.clone(), b.sigs.clone()))
                .collect(),
            outputs: n
                .outputs
                .iter()
                .map(|b| (b.name.clone(), b.sigs.clone()))
                .collect(),
            dirty: true,
        };
        sim.eval();
        sim
    }

    /// Resolve a named input bus to a dense handle (do this once).
    /// Handles are interchangeable with the scalar [`crate::sim::Sim`]
    /// built from the same netlist.
    #[must_use]
    pub fn in_port(&self, name: &str) -> InPort {
        let idx = self
            .inputs
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input bus named {name}"));
        InPort(idx)
    }

    /// Resolve a named output bus to a dense handle.
    #[must_use]
    pub fn out_port(&self, name: &str) -> OutPort {
        let idx = self
            .outputs
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output bus named {name}"));
        OutPort(idx)
    }

    /// Broadcast one integer value (LSB-first) to an input bus across
    /// all 64 lanes.
    pub fn set(&mut self, port: InPort, value: u64) {
        let (_, sigs) = &self.inputs[port.0];
        assert!(sigs.len() <= 64);
        for (i, &s) in sigs.iter().enumerate() {
            self.values[s as usize] = broadcast((value >> i) & 1 == 1);
        }
        self.dirty = true;
    }

    /// Set an input bus in a single lane, leaving the other lanes'
    /// stimulus untouched.
    pub fn set_lane(&mut self, port: InPort, lane: usize, value: u64) {
        debug_assert!(lane < LANES);
        let (_, sigs) = &self.inputs[port.0];
        assert!(sigs.len() <= 64);
        let bit = 1u64 << lane;
        for (i, &s) in sigs.iter().enumerate() {
            let v = &mut self.values[s as usize];
            *v = (*v & !bit) | (broadcast((value >> i) & 1 == 1) & bit);
        }
        self.dirty = true;
    }

    /// Set a wide input bus from bytes (LSB-first) in a single lane.
    pub fn set_bytes_lane(&mut self, port: InPort, lane: usize, bytes: &[u8]) {
        debug_assert!(lane < LANES);
        let (name, sigs) = &self.inputs[port.0];
        assert_eq!(sigs.len(), bytes.len() * 8, "bus width mismatch for {name}");
        let bit = 1u64 << lane;
        for (i, &s) in sigs.iter().enumerate() {
            let v = &mut self.values[s as usize];
            *v = (*v & !bit) | (broadcast((bytes[i / 8] >> (i % 8)) & 1 == 1) & bit);
        }
        self.dirty = true;
    }

    /// Run the instruction tape (all 64 lanes at once).
    pub fn eval(&mut self) {
        let v = &mut self.values;
        for op in &self.tape {
            match *op {
                Op::Not { dst, a } => v[dst as usize] = !v[a as usize],
                Op::And { dst, a, b } => v[dst as usize] = v[a as usize] & v[b as usize],
                Op::Or { dst, a, b } => v[dst as usize] = v[a as usize] | v[b as usize],
                Op::Xor { dst, a, b } => v[dst as usize] = v[a as usize] ^ v[b as usize],
                Op::Lut {
                    dst,
                    leaves,
                    nleaves,
                    truth,
                } => {
                    // Minterm mask-select: for each set truth-table row,
                    // AND together the (possibly complemented) packed
                    // leaf words and OR the term into the output.
                    let l0 = v[leaves[0] as usize];
                    let l1 = v[leaves[1] as usize];
                    let l2 = v[leaves[2] as usize];
                    let l3 = v[leaves[3] as usize];
                    let ls = [l0, l1, l2, l3];
                    let n = nleaves as usize;
                    let mut out = 0u64;
                    for idx in 0..(1u16 << n) {
                        if (truth >> idx) & 1 == 1 {
                            let mut term = !0u64;
                            for (k, &lv) in ls.iter().enumerate().take(n) {
                                term &= if (idx >> k) & 1 == 1 { lv } else { !lv };
                            }
                            out |= term;
                        }
                    }
                    v[dst as usize] = out;
                }
            }
        }
        self.dirty = false;
    }

    /// Read an output bus as an integer from one lane.
    #[must_use]
    pub fn get_lane(&mut self, port: OutPort, lane: usize) -> u64 {
        debug_assert!(lane < LANES);
        if self.dirty {
            self.eval();
        }
        let (_, sigs) = &self.outputs[port.0];
        assert!(sigs.len() <= 64);
        sigs.iter().enumerate().fold(0u64, |acc, (i, &s)| {
            acc | ((self.values[s as usize] >> lane & 1) << i)
        })
    }

    /// Read a wide output bus from one lane into a caller-owned buffer.
    pub fn get_bytes_into_lane(&mut self, port: OutPort, lane: usize, out: &mut Vec<u8>) {
        debug_assert!(lane < LANES);
        if self.dirty {
            self.eval();
        }
        let (_, sigs) = &self.outputs[port.0];
        out.clear();
        out.resize(sigs.len().div_ceil(8), 0);
        for (i, &s) in sigs.iter().enumerate() {
            if (self.values[s as usize] >> lane) & 1 == 1 {
                out[i / 8] |= 1 << (i % 8);
            }
        }
    }

    /// Clock edge in every lane: evaluate, then latch each FF as word
    /// ops (SR has priority over CE, as on a Virtex slice register).
    pub fn step(&mut self) {
        if self.dirty {
            self.eval();
        }
        for (i, d) in self.dffs.iter().enumerate() {
            let data = self.values[d.d as usize];
            let state = self.ff_state[i];
            let en = d.en.map_or(!0, |e| self.values[e as usize]);
            let mut next = (state & !en) | (data & en);
            if let Some(sr) = d.sr {
                let sr = self.values[sr as usize];
                next = (next & !sr) | (d.init & sr);
            }
            self.ff_next[i] = next;
        }
        std::mem::swap(&mut self.ff_state, &mut self.ff_next);
        for (i, d) in self.dffs.iter().enumerate() {
            self.values[d.q as usize] = self.ff_state[i];
        }
        self.dirty = true;
    }

    /// Reset every lane's FFs to their init values.
    pub fn reset(&mut self) {
        for (i, d) in self.dffs.iter().enumerate() {
            self.ff_state[i] = d.init;
            self.values[d.q as usize] = d.init;
        }
        self.dirty = true;
    }

    /// Reset a single lane's FFs, leaving the other lanes running —
    /// models independent devices at arbitrary points in their reset
    /// schedules.
    pub fn reset_lane(&mut self, lane: usize) {
        debug_assert!(lane < LANES);
        let bit = 1u64 << lane;
        for (i, d) in self.dffs.iter().enumerate() {
            let s = (self.ff_state[i] & !bit) | (d.init & bit);
            self.ff_state[i] = s;
            self.values[d.q as usize] = s;
        }
        self.dirty = true;
    }

    /// Current value of one signal in one lane, re-evaluating the tape
    /// first if stimulus changed — the per-lane probe the VCD writer
    /// uses to dump arbitrary netlist nodes.
    #[must_use]
    pub fn peek_lane(&mut self, s: Sig, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        if self.dirty {
            self.eval();
        }
        (self.values[s as usize] >> lane) & 1 == 1
    }

    /// Tape length (instructions per eval pass) — for reports.
    #[must_use]
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::map::{map, MapMode};
    use crate::sim::Sim;

    fn adder_netlist() -> Netlist {
        let mut b = Builder::new("add8");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let zero = b.lit(false);
        let (sum, cout) = b.add(&a, &c, zero);
        b.output("sum", &sum);
        b.output("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn combinational_broadcast_matches_scalar() {
        let n = adder_netlist();
        let mut cs = CompiledSim::compile(&n);
        let mut gs = Sim::new(&n);
        let (pa, pb, psum) = (cs.in_port("a"), cs.in_port("b"), cs.out_port("sum"));
        for (a, b) in [(3u64, 4u64), (200, 100), (255, 255)] {
            cs.set(pa, a);
            cs.set(pb, b);
            gs.set("a", a);
            gs.set("b", b);
            for lane in [0, 17, 63] {
                assert_eq!(cs.get_lane(psum, lane), gs.get("sum"));
            }
        }
    }

    #[test]
    fn lanes_are_independent() {
        let n = adder_netlist();
        let mut cs = CompiledSim::compile(&n);
        let (pa, pb) = (cs.in_port("a"), cs.in_port("b"));
        let (psum, pcout) = (cs.out_port("sum"), cs.out_port("cout"));
        for lane in 0..LANES {
            cs.set_lane(pa, lane, lane as u64);
            cs.set_lane(pb, lane, (lane as u64) * 3 + 1);
        }
        for lane in 0..LANES {
            let want = lane as u64 + (lane as u64) * 3 + 1;
            assert_eq!(cs.get_lane(psum, lane), want & 0xFF, "lane {lane}");
            assert_eq!(cs.get_lane(pcout, lane), (want >> 8) & 1);
        }
    }

    #[test]
    fn sequential_step_and_lane_reset() {
        // A 6-bit counter with enable: count only in even lanes, then
        // reset one lane and check the others keep their state.
        let mut b = Builder::new("ctr");
        let en = b.input("en");
        let q = b.state_word(6, 0);
        let one = b.const_word(1, 6);
        let zero = b.lit(false);
        let (inc, _) = b.add(&q, &one, zero);
        let next = b.mux_word(en, &inc, &q);
        b.bind_word(&q, &next);
        b.output("count", &q);
        let n = b.finish();
        let mut cs = CompiledSim::compile(&n);
        let pen = cs.in_port("en");
        let pq = cs.out_port("count");
        for lane in 0..LANES {
            cs.set_lane(pen, lane, (lane % 2 == 0) as u64);
        }
        for _ in 0..5 {
            cs.step();
        }
        assert_eq!(cs.get_lane(pq, 0), 5);
        assert_eq!(cs.get_lane(pq, 1), 0);
        assert_eq!(cs.get_lane(pq, 62), 5);
        cs.reset_lane(0);
        assert_eq!(cs.get_lane(pq, 0), 0);
        assert_eq!(cs.get_lane(pq, 62), 5, "other lanes unaffected");
        cs.step();
        assert_eq!(cs.get_lane(pq, 0), 1);
        assert_eq!(cs.get_lane(pq, 62), 6);
        cs.reset();
        for lane in 0..LANES {
            assert_eq!(cs.get_lane(pq, lane), 0);
        }
    }

    #[test]
    fn mapped_tape_matches_gate_tape() {
        let n = adder_netlist();
        for mode in [MapMode::Depth, MapMode::Area] {
            let m = map(&n, mode);
            let mut cm = CompiledSim::compile_mapped(&n, &m);
            let mut cg = CompiledSim::compile(&n);
            let (pa, pb) = (cm.in_port("a"), cm.in_port("b"));
            let psum = cm.out_port("sum");
            for lane in 0..LANES {
                let (a, b) = ((lane as u64 * 37) & 0xFF, (lane as u64 * 91) & 0xFF);
                cm.set_bytes_lane(pa, lane, &[a as u8]);
                cm.set_bytes_lane(pb, lane, &[b as u8]);
                cg.set_lane(pa, lane, a);
                cg.set_lane(pb, lane, b);
            }
            for lane in 0..LANES {
                assert_eq!(
                    cm.get_lane(psum, lane),
                    cg.get_lane(psum, lane),
                    "{mode:?} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn bytes_round_trip() {
        let mut b = Builder::new("w");
        let a = b.input_bus("data", 32);
        let mut swapped = a[16..].to_vec();
        swapped.extend_from_slice(&a[..16]);
        b.output("out", &swapped);
        let n = b.finish();
        let mut cs = CompiledSim::compile(&n);
        let pin = cs.in_port("data");
        let pout = cs.out_port("out");
        cs.set_bytes_lane(pin, 9, &[0x11, 0x22, 0x33, 0x44]);
        let mut buf = Vec::new();
        cs.get_bytes_into_lane(pout, 9, &mut buf);
        assert_eq!(buf, vec![0x33, 0x44, 0x11, 0x22]);
        cs.get_bytes_into_lane(pout, 8, &mut buf);
        assert_eq!(buf, vec![0, 0, 0, 0], "neighbour lane untouched");
    }
}
