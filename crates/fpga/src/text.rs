//! A plain-text netlist interchange format (`.p5n`).
//!
//! The builders construct netlists in process, but the lint fixture
//! corpus and the `p5lint FILE` mode need netlists *as data* — including
//! deliberately malformed ones (out-of-range signals, unbound D inputs,
//! planted combinational loops) that [`crate::Netlist::validate`] would
//! reject.  So this format serialises the IR verbatim, node indices and
//! all, and the parser checks only *syntax*: whatever wiring the file
//! describes is reproduced exactly, leaving semantic judgement to
//! `p5-lint`.
//!
//! ```text
//! p5netlist v1
//! module "adder"
//! n0 input
//! n1 const 1
//! n2 and n0 n1
//! n3 ff 0
//! dff 0 q=n3 d=n2 en=- sr=- init=0
//! in "x" n0
//! out "s" n2 n3
//! end
//! ```
//!
//! One file may hold several `module … end` blocks (a pipeline chain for
//! composition analysis); [`parse_modules`] returns them in file order.

use std::fmt::Write as _;

use crate::netlist::{Bus, Dff, Netlist, NodeKind};

/// Why a `.p5n` file was rejected (syntax only — malformed *netlists*
/// parse fine; malformed *text* does not).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TextError {
    /// The `p5netlist v1` header line is missing or wrong.
    BadHeader { line: usize },
    /// A line's first token is not a known directive.
    UnknownDirective { line: usize, token: String },
    /// A directive has the wrong number or shape of operands.
    BadOperand { line: usize, detail: String },
    /// Node lines must be dense and in order: `n0`, `n1`, ….
    NodeOutOfOrder { line: usize, expected: usize },
    /// A `module` block was not closed by `end`.
    UnterminatedModule { line: usize },
    /// Content outside any `module … end` block.
    OutsideModule { line: usize },
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::BadHeader { line } => {
                write!(f, "line {line}: expected `p5netlist v1` header")
            }
            TextError::UnknownDirective { line, token } => {
                write!(f, "line {line}: unknown directive `{token}`")
            }
            TextError::BadOperand { line, detail } => write!(f, "line {line}: {detail}"),
            TextError::NodeOutOfOrder { line, expected } => {
                write!(
                    f,
                    "line {line}: node lines must be dense, expected n{expected}"
                )
            }
            TextError::UnterminatedModule { line } => {
                write!(f, "line {line}: module block never closed by `end`")
            }
            TextError::OutsideModule { line } => {
                write!(f, "line {line}: directive outside a `module` block")
            }
        }
    }
}

impl std::error::Error for TextError {}

/// Serialise one netlist as a `module … end` block (no file header).
fn write_module(out: &mut String, n: &Netlist) {
    let _ = writeln!(out, "module {}", quote(&n.name));
    for (i, kind) in n.nodes.iter().enumerate() {
        let _ = match kind {
            NodeKind::Input => writeln!(out, "n{i} input"),
            NodeKind::Const(v) => writeln!(out, "n{i} const {}", u8::from(*v)),
            NodeKind::Not(a) => writeln!(out, "n{i} not n{a}"),
            NodeKind::And(a, b) => writeln!(out, "n{i} and n{a} n{b}"),
            NodeKind::Or(a, b) => writeln!(out, "n{i} or n{a} n{b}"),
            NodeKind::Xor(a, b) => writeln!(out, "n{i} xor n{a} n{b}"),
            NodeKind::FfOutput(d) => writeln!(out, "n{i} ff {d}"),
        };
    }
    let opt = |s: Option<u32>| s.map_or("-".to_string(), |v| format!("n{v}"));
    for (i, d) in n.dffs.iter().enumerate() {
        let _ = writeln!(
            out,
            "dff {i} q=n{} d={} en={} sr={} init={}",
            d.q,
            opt(d.d),
            opt(d.en),
            opt(d.sr),
            u8::from(d.init)
        );
    }
    for (dir, buses) in [("in", &n.inputs), ("out", &n.outputs)] {
        for b in buses.iter() {
            let sigs: Vec<String> = b.sigs.iter().map(|s| format!("n{s}")).collect();
            let _ = writeln!(out, "{dir} {} {}", quote(&b.name), sigs.join(" "));
        }
    }
    out.push_str("end\n");
}

/// Serialise netlists into one `.p5n` file.
pub fn to_text(modules: &[&Netlist]) -> String {
    let mut out = String::from("p5netlist v1\n");
    for n in modules {
        write_module(&mut out, n);
    }
    out
}

/// Parse a `.p5n` file into its modules, in file order.
pub fn parse_modules(text: &str) -> Result<Vec<Netlist>, TextError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let Some((hline, header)) = lines.next() else {
        return Err(TextError::BadHeader { line: 1 });
    };
    if header.trim() != "p5netlist v1" {
        return Err(TextError::BadHeader { line: hline });
    }
    let mut modules = Vec::new();
    let mut current: Option<Netlist> = None;
    let mut open_line = 0usize;
    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, rest) = split_token(line);
        if head == "module" {
            if current.is_some() {
                return Err(TextError::UnterminatedModule { line: open_line });
            }
            let (name, tail) = parse_quoted(rest, lineno)?;
            expect_empty(tail, lineno)?;
            current = Some(Netlist::new(name));
            open_line = lineno;
            continue;
        }
        let Some(n) = current.as_mut() else {
            return Err(TextError::OutsideModule { line: lineno });
        };
        if head == "end" {
            expect_empty(rest, lineno)?;
            modules.push(current.take().expect("current set above"));
        } else if let Some(idx) = head.strip_prefix('n').and_then(|s| s.parse::<usize>().ok()) {
            if idx != n.nodes.len() {
                return Err(TextError::NodeOutOfOrder {
                    line: lineno,
                    expected: n.nodes.len(),
                });
            }
            n.nodes.push(parse_node(rest, lineno)?);
        } else if head == "dff" {
            n.dffs.push(parse_dff(rest, lineno)?);
        } else if head == "in" || head == "out" {
            let (name, tail) = parse_quoted(rest, lineno)?;
            let mut sigs = Vec::new();
            for tok in tail.split_whitespace() {
                sigs.push(parse_sig(tok, lineno)?);
            }
            let bus = Bus { name, sigs };
            if head == "in" {
                n.inputs.push(bus);
            } else {
                n.outputs.push(bus);
            }
        } else {
            return Err(TextError::UnknownDirective {
                line: lineno,
                token: head.to_string(),
            });
        }
    }
    if current.is_some() {
        return Err(TextError::UnterminatedModule { line: open_line });
    }
    Ok(modules)
}

fn split_token(s: &str) -> (&str, &str) {
    match s.split_once(char::is_whitespace) {
        Some((a, b)) => (a, b.trim_start()),
        None => (s, ""),
    }
}

fn expect_empty(rest: &str, line: usize) -> Result<(), TextError> {
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(TextError::BadOperand {
            line,
            detail: format!("unexpected trailing `{}`", rest.trim()),
        })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a leading quoted string, returning it and the remaining text.
fn parse_quoted(s: &str, line: usize) -> Result<(String, &str), TextError> {
    let bad = |detail: &str| TextError::BadOperand {
        line,
        detail: detail.to_string(),
    };
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(bad("expected a quoted name")),
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, s[i + 1..].trim_start()));
        } else {
            out.push(c);
        }
    }
    Err(bad("unterminated quoted name"))
}

fn parse_sig(tok: &str, line: usize) -> Result<u32, TextError> {
    tok.strip_prefix('n')
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| TextError::BadOperand {
            line,
            detail: format!("expected a signal like `n7`, got `{tok}`"),
        })
}

fn parse_node(rest: &str, line: usize) -> Result<NodeKind, TextError> {
    let bad = |detail: String| TextError::BadOperand { line, detail };
    let toks: Vec<&str> = rest.split_whitespace().collect();
    match toks.as_slice() {
        ["input"] => Ok(NodeKind::Input),
        ["const", v] => match *v {
            "0" => Ok(NodeKind::Const(false)),
            "1" => Ok(NodeKind::Const(true)),
            other => Err(bad(format!("const wants 0 or 1, got `{other}`"))),
        },
        ["not", a] => Ok(NodeKind::Not(parse_sig(a, line)?)),
        ["and", a, b] => Ok(NodeKind::And(parse_sig(a, line)?, parse_sig(b, line)?)),
        ["or", a, b] => Ok(NodeKind::Or(parse_sig(a, line)?, parse_sig(b, line)?)),
        ["xor", a, b] => Ok(NodeKind::Xor(parse_sig(a, line)?, parse_sig(b, line)?)),
        ["ff", d] => d
            .parse::<u32>()
            .map(NodeKind::FfOutput)
            .map_err(|_| bad(format!("ff wants a flip-flop index, got `{d}`"))),
        other => Err(bad(format!("bad node operands `{}`", other.join(" ")))),
    }
}

fn parse_dff(rest: &str, line: usize) -> Result<Dff, TextError> {
    let bad = |detail: String| TextError::BadOperand { line, detail };
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let [_idx, fields @ ..] = toks.as_slice() else {
        return Err(bad("dff wants `dff I q=… d=… en=… sr=… init=…`".into()));
    };
    let mut q = None;
    let mut d = None;
    let mut en = None;
    let mut sr = None;
    let mut init = None;
    for field in fields {
        let Some((key, value)) = field.split_once('=') else {
            return Err(bad(format!("bad dff field `{field}`")));
        };
        let opt_sig = |v: &str| -> Result<Option<u32>, TextError> {
            if v == "-" {
                Ok(None)
            } else {
                parse_sig(v, line).map(Some)
            }
        };
        match key {
            "q" => q = Some(parse_sig(value, line)?),
            "d" => d = opt_sig(value)?,
            "en" => en = opt_sig(value)?,
            "sr" => sr = opt_sig(value)?,
            "init" => {
                init = Some(match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(bad(format!("init wants 0 or 1, got `{other}`"))),
                })
            }
            other => return Err(bad(format!("unknown dff field `{other}`"))),
        }
    }
    let (Some(q), Some(init)) = (q, init) else {
        return Err(bad("dff needs at least q= and init=".into()));
    };
    Ok(Dff { q, d, init, en, sr })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn sample() -> Netlist {
        let mut b = Builder::new("round \"trip\"");
        let x = b.input_bus("in_data", 4);
        let v = b.input("in_valid");
        let q = b.reg_word_en(&x, v, 3);
        b.output("out_data", &q);
        b.finish()
    }

    #[test]
    fn round_trips_a_builder_netlist() {
        let n = sample();
        let text = to_text(&[&n]);
        let parsed = parse_modules(&text).expect("parse");
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.name, n.name);
        assert_eq!(p.nodes, n.nodes);
        assert_eq!(p.dffs.len(), n.dffs.len());
        for (a, b) in p.dffs.iter().zip(&n.dffs) {
            assert_eq!(
                (a.q, a.d, a.en, a.sr, a.init),
                (b.q, b.d, b.en, b.sr, b.init)
            );
        }
        assert_eq!(to_text(&[p]), text, "serialisation is a fixpoint");
    }

    #[test]
    fn multi_module_files_keep_order() {
        let a = sample();
        let mut b = Builder::new("second");
        let x = b.input("x");
        b.output("y", &[x]);
        let b = b.finish();
        let text = to_text(&[&a, &b]);
        let parsed = parse_modules(&text).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, a.name);
        assert_eq!(parsed[1].name, "second");
    }

    #[test]
    fn malformed_netlists_survive_the_round_trip() {
        // Out-of-range fanin and unbound D: validate() would panic, the
        // text format must carry them to the linter untouched.
        let mut n = Netlist::new("broken");
        n.nodes.push(NodeKind::Input);
        n.nodes.push(NodeKind::And(0, 99));
        let q = n.new_dff(true); // D left unbound
        n.outputs.push(Bus {
            name: "o".into(),
            sigs: vec![1, q, 1234],
        });
        let text = to_text(&[&n]);
        let p = &parse_modules(&text).expect("parse")[0];
        assert_eq!(p.nodes[1], NodeKind::And(0, 99));
        assert_eq!(p.dffs[0].d, None);
        assert_eq!(p.outputs[0].sigs, vec![1, q, 1234]);
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        let e = parse_modules("nope").unwrap_err();
        assert_eq!(e, TextError::BadHeader { line: 1 });
        let e = parse_modules("p5netlist v1\nmodule \"m\"\nwhat 1 2\nend\n").unwrap_err();
        assert!(
            matches!(e, TextError::UnknownDirective { line: 3, .. }),
            "{e}"
        );
        let e = parse_modules("p5netlist v1\nmodule \"m\"\nn5 input\nend\n").unwrap_err();
        assert!(
            matches!(e, TextError::NodeOutOfOrder { expected: 0, .. }),
            "{e}"
        );
        let e = parse_modules("p5netlist v1\nn0 input\n").unwrap_err();
        assert!(matches!(e, TextError::OutsideModule { line: 2 }), "{e}");
        let e = parse_modules("p5netlist v1\nmodule \"m\"\n").unwrap_err();
        assert!(
            matches!(e, TextError::UnterminatedModule { line: 2 }),
            "{e}"
        );
    }
}
