//! Technology mapping: cover the 2-input boolean network with K-input
//! LUTs (K = 4 for Virtex and Virtex-II) using cut enumeration.
//!
//! Two modes model the paper's pre-/post-layout split:
//! * [`MapMode::Depth`] — depth-oriented covering, the optimistic
//!   logic-level estimate a synthesis tool reports pre-layout;
//! * [`MapMode::Area`] — area-recovery covering, the denser packing
//!   that survives placement (fewer LUTs, possibly deeper).

use crate::netlist::{Netlist, Sig};
use std::collections::HashMap;

/// LUT input count for the Virtex families.
pub const LUT_K: usize = 4;
/// Cuts retained per node during enumeration.
const CUTS_PER_NODE: usize = 6;

/// Mapping objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    Depth,
    Area,
}

/// One mapped LUT: a root node and the cut leaves that form its inputs.
#[derive(Debug, Clone)]
pub struct Lut {
    pub root: Sig,
    pub leaves: Vec<Sig>,
    /// Logic level (1 = fed only by leaves).
    pub level: usize,
}

/// The mapped network.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    pub module: String,
    pub mode: MapMode,
    pub luts: Vec<Lut>,
    pub ff_count: usize,
    /// Maximum logic level over all roots (LUT depth of the critical
    /// combinational path).
    pub depth: usize,
    /// Net fanout: for each driving signal (LUT root, input, or FF
    /// output), how many sinks read it.
    pub fanout: HashMap<Sig, usize>,
}

impl MappedNetlist {
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// LUT utilisation of this mapping on `dev`, clamped to 1.0 — the
    /// congestion multiplier of the post-layout net model.
    pub fn utilisation(&self, dev: &crate::timing::Device) -> f64 {
        (self.lut_count() as f64 / dev.luts as f64).min(1.0)
    }

    /// Delay of the net driven by `sig` on `dev`: the pre-layout flat
    /// estimate, or the post-layout base + log₂-fanout + congestion
    /// model priced with this mapping's fanout and utilisation.
    pub fn net_delay(&self, dev: &crate::timing::Device, sig: Sig, post_layout: bool) -> f64 {
        if !post_layout {
            return dev.t_net_pre;
        }
        let fo = self.fanout.get(&sig).copied().unwrap_or(1);
        dev.t_net_base
            + dev.t_net_fanout * ((1 + fo) as f64).log2()
            + dev.t_congestion * self.utilisation(dev)
    }
}

#[derive(Clone, Debug)]
struct Cut {
    leaves: Vec<Sig>, // sorted
    depth: usize,
    /// Area flow: estimated LUTs per unit of fanout this cone costs
    /// (standard FlowMap-r style metric, drives area recovery).
    area_flow: f64,
}

fn merge_cuts(a: &Cut, b: &Cut, k: usize) -> Option<Vec<Sig>> {
    let mut out = Vec::with_capacity(k + 1);
    let (mut i, mut j) = (0, 0);
    while i < a.leaves.len() || j < b.leaves.len() {
        let next = match (a.leaves.get(i), b.leaves.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
        if out.len() > k {
            return None;
        }
    }
    Some(out)
}

/// Map a netlist into K-input LUTs.
pub fn map(n: &Netlist, mode: MapMode) -> MappedNetlist {
    n.validate();
    let order = n.topo_order();
    let num = n.nodes.len();
    let net_fanout = n.fanout_counts();
    // Per-node cut list and the depth/area-flow of the node's best cut.
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); num];
    let mut best_depth: Vec<usize> = vec![0; num];
    let mut best_af: Vec<f64> = vec![0.0; num];
    let mut best_cut: Vec<Option<Cut>> = vec![None; num];

    let leaf_cut = |s: Sig| Cut {
        leaves: vec![s],
        depth: 0,
        area_flow: 0.0,
    };

    for &s in &order {
        if n.is_leaf(s) {
            continue;
        }
        let fans: Vec<Sig> = n.fanins(s).into_iter().flatten().collect();
        // Candidate cuts: cross-merge of fanin cut lists (leaves use
        // their unit cut).
        let fan_cuts: Vec<Vec<Cut>> = fans
            .iter()
            .map(|&f| {
                if n.is_leaf(f) || cuts[f as usize].is_empty() {
                    vec![leaf_cut(f)]
                } else {
                    let mut c = cuts[f as usize].clone();
                    // A fanin can also be used as a leaf directly.
                    c.push(leaf_cut(f));
                    c
                }
            })
            .collect();

        let mut cands: Vec<Cut> = Vec::new();
        match fan_cuts.len() {
            1 => {
                for c in &fan_cuts[0] {
                    cands.push(Cut {
                        leaves: c.leaves.clone(),
                        depth: 0,
                        area_flow: 0.0,
                    });
                }
            }
            2 => {
                for ca in &fan_cuts[0] {
                    for cb in &fan_cuts[1] {
                        if let Some(leaves) = merge_cuts(ca, cb, LUT_K) {
                            cands.push(Cut {
                                leaves,
                                depth: 0,
                                area_flow: 0.0,
                            });
                        }
                    }
                }
            }
            _ => unreachable!("nodes have 1 or 2 fanins"),
        }
        // Compute depth of each candidate from leaf best depths; dedup.
        for c in &mut cands {
            // Constants are free inputs: drop them from the leaf set.
            c.leaves
                .retain(|&l| !matches!(n.nodes[l as usize], crate::netlist::NodeKind::Const(_)));
            c.depth = 1 + c
                .leaves
                .iter()
                .map(|&l| best_depth[l as usize])
                .max()
                .unwrap_or(0);
            // Area flow: this LUT plus each leaf cone's flow amortised
            // over the leaf's fanout.
            c.area_flow = 1.0
                + c.leaves
                    .iter()
                    .map(|&l| {
                        let fo = net_fanout.get(&l).copied().unwrap_or(1).max(1) as f64;
                        best_af[l as usize] / fo
                    })
                    .sum::<f64>();
        }
        match mode {
            MapMode::Depth => cands.sort_by(|a, b| {
                (a.depth, a.leaves.len())
                    .cmp(&(b.depth, b.leaves.len()))
                    .then(a.area_flow.total_cmp(&b.area_flow))
            }),
            MapMode::Area => {
                // Required-time-aware area recovery: never trade more
                // than one level of depth for area, or the critical path
                // drifts far from the synthesis estimate.
                let dmin = cands.iter().map(|c| c.depth).min().unwrap_or(0);
                cands.retain(|c| c.depth <= dmin + 1);
                cands.sort_by(|a, b| {
                    a.area_flow
                        .total_cmp(&b.area_flow)
                        .then((a.depth, a.leaves.len()).cmp(&(b.depth, b.leaves.len())))
                });
            }
        }
        cands.dedup_by(|a, b| a.leaves == b.leaves);
        cands.truncate(CUTS_PER_NODE);
        assert!(!cands.is_empty(), "node {s} has no feasible cut");
        best_depth[s as usize] = cands[0].depth;
        best_af[s as usize] = cands[0].area_flow;
        best_cut[s as usize] = Some(cands[0].clone());
        cuts[s as usize] = cands;
    }

    // Cover from the roots.
    let mut chosen: HashMap<Sig, Vec<Sig>> = HashMap::new();
    let mut stack: Vec<Sig> = n.roots().into_iter().filter(|&r| !n.is_leaf(r)).collect();
    while let Some(s) = stack.pop() {
        if chosen.contains_key(&s) {
            continue;
        }
        // Infallible post-validate(): every non-leaf node has at least the
        // trivial cut {its own fanins}, so best_cut is populated for any
        // node the root-cover walk can reach.
        let cut = best_cut[s as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("no cut for covered node {s}"));
        chosen.insert(s, cut.leaves.clone());
        for &l in &cut.leaves {
            if !n.is_leaf(l) {
                stack.push(l);
            }
        }
    }

    // Levels within the chosen cover.
    let mut level: HashMap<Sig, usize> = HashMap::new();
    let mut luts = Vec::with_capacity(chosen.len());
    // Topological by original order.
    for &s in &order {
        if let Some(leaves) = chosen.get(&s) {
            let lvl = 1 + leaves
                .iter()
                .map(|l| level.get(l).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            level.insert(s, lvl);
            luts.push(Lut {
                root: s,
                leaves: leaves.clone(),
                level: lvl,
            });
        }
    }
    let depth = n
        .roots()
        .iter()
        .map(|r| level.get(r).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);

    // Net fanout over the mapped structure.
    let mut fanout: HashMap<Sig, usize> = HashMap::new();
    for lut in &luts {
        for &l in &lut.leaves {
            *fanout.entry(l).or_default() += 1;
        }
    }
    for d in &n.dffs {
        if let Some(ds) = d.d {
            *fanout.entry(ds).or_default() += 1;
        }
    }
    for b in &n.outputs {
        for &s in &b.sigs {
            *fanout.entry(s).or_default() += 1;
        }
    }

    MappedNetlist {
        module: n.name.clone(),
        mode,
        luts,
        ff_count: n.ff_count(),
        depth,
        fanout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn xor_tree(width: usize) -> Netlist {
        let mut b = Builder::new("xt");
        let x = b.input_bus("x", width);
        let y = b.xor_many(&x);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn xor4_fits_one_lut() {
        let m = map(&xor_tree(4), MapMode::Depth);
        assert_eq!(m.lut_count(), 1);
        assert_eq!(m.depth, 1);
    }

    #[test]
    fn xor16_is_depth_two() {
        let m = map(&xor_tree(16), MapMode::Depth);
        assert_eq!(m.depth, 2);
        assert_eq!(m.lut_count(), 5, "4 leaf LUTs + 1 combiner");
    }

    #[test]
    fn xor32_is_depth_three() {
        let m = map(&xor_tree(32), MapMode::Depth);
        assert_eq!(m.depth, 3);
        // 8 + 2 + 1 or similar.
        assert!(m.lut_count() <= 12, "luts {}", m.lut_count());
    }

    #[test]
    fn area_mode_never_uses_more_luts() {
        for width in [7, 13, 16, 29] {
            let n = xor_tree(width);
            let d = map(&n, MapMode::Depth);
            let a = map(&n, MapMode::Area);
            assert!(a.lut_count() <= d.lut_count());
            assert!(a.depth >= d.depth || a.lut_count() < d.lut_count() || a.depth == d.depth);
        }
    }

    #[test]
    fn constants_are_free() {
        let mut b = Builder::new("c");
        let x = b.input_bus("x", 3);
        // eq_const over 8 bits where 5 are constant-folded away.
        let y = b.eq_const(&x, 0b101);
        b.output("y", &[y]);
        let m = map(&b.finish(), MapMode::Depth);
        assert_eq!(m.lut_count(), 1);
    }

    #[test]
    fn ff_boundaries_cut_paths() {
        let mut b = Builder::new("ff");
        let x = b.input_bus("x", 16);
        let y = b.xor_many(&x);
        let q = b.reg(y, false);
        let z = b.input_bus("z", 16);
        let w = b.xor_many(&z);
        let out = b.xor2(q, w);
        b.output("o", &[out]);
        let m = map(&b.finish(), MapMode::Depth);
        // Deepest comb path is the 16-input tree (depth 2) plus the
        // combiner: q is a register so the x-tree path ends there.
        assert_eq!(m.depth, 3);
        assert_eq!(m.ff_count, 1);
    }

    #[test]
    fn registers_alone_use_no_luts() {
        let mut b = Builder::new("r");
        let x = b.input_bus("x", 8);
        let q = b.reg_word_en(&x, b.lit(true), 0);
        b.output("q", &q);
        let m = map(&b.finish(), MapMode::Depth);
        assert_eq!(m.lut_count(), 0);
        assert_eq!(m.ff_count, 8);
        assert_eq!(m.depth, 0);
    }

    #[test]
    fn fanout_counts_cover_all_lut_inputs() {
        let n = xor_tree(16);
        let m = map(&n, MapMode::Depth);
        let total: usize = m.fanout.values().sum();
        let inputs: usize = m.luts.iter().map(|l| l.leaves.len()).sum();
        // plus the single primary output net
        assert_eq!(total, inputs + 1);
    }
}
