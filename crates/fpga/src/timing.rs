//! Device library and static timing analysis.
//!
//! Devices carry real LUT/FF capacities (from the Virtex/Virtex-II data
//! sheets) and per-speed-grade delay parameters calibrated so that the
//! paper's headline timing facts reproduce: a ~6-LUT critical path meets
//! the 78.125 MHz line clock on Virtex-II (-6) but not on Virtex (-4),
//! and the speed-up is technological, not topological (the same netlist
//! depth is analysed on both).

use crate::map::MappedNetlist;

/// An FPGA device with capacity and timing parameters (delays in ns).
#[derive(Debug, Clone, Copy)]
pub struct Device {
    pub name: &'static str,
    pub family: &'static str,
    /// 4-input LUT capacity.
    pub luts: usize,
    /// Flip-flop capacity.
    pub ffs: usize,
    /// Clock-to-Q of a slice register.
    pub t_cq: f64,
    /// Register setup time.
    pub t_su: f64,
    /// LUT propagation delay.
    pub t_lut: f64,
    /// Pre-layout per-net routing estimate.
    pub t_net_pre: f64,
    /// Post-layout base net delay.
    pub t_net_base: f64,
    /// Post-layout incremental delay per log2(1+fanout).
    pub t_net_fanout: f64,
    /// Post-layout congestion term (× device utilisation).
    pub t_congestion: f64,
}

/// The four devices of Tables 1 and 2.
pub mod devices {
    use super::Device;

    /// Virtex XCV50, speed grade -4 (384 CLBs × 4 LUTs).
    pub const XCV50_4: Device = Device {
        name: "XCV50-4",
        family: "Virtex",
        luts: 1536,
        ffs: 1536,
        t_cq: 1.10,
        t_su: 0.80,
        t_lut: 0.70,
        t_net_pre: 0.75,
        t_net_base: 1.00,
        t_net_fanout: 0.30,
        t_congestion: 2.20,
    };

    /// Virtex XCV600, speed grade -4 (3456 CLBs × 4 LUTs).
    pub const XCV600_4: Device = Device {
        name: "XCV600-4",
        family: "Virtex",
        luts: 13824,
        ffs: 13824,
        t_cq: 1.10,
        t_su: 0.80,
        t_lut: 0.70,
        t_net_pre: 0.75,
        t_net_base: 1.00,
        t_net_fanout: 0.30,
        t_congestion: 2.20,
    };

    /// Virtex-II XC2V40, speed grade -6 (256 slices × 2 LUTs).
    pub const XC2V40_6: Device = Device {
        name: "XC2V40-6",
        family: "Virtex-II",
        luts: 512,
        ffs: 512,
        t_cq: 0.45,
        t_su: 0.40,
        t_lut: 0.33,
        t_net_pre: 0.40,
        t_net_base: 0.55,
        t_net_fanout: 0.18,
        t_congestion: 1.20,
    };

    /// Virtex-II XC2V1000, speed grade -6 (2560 slices × 2 LUTs).
    pub const XC2V1000_6: Device = Device {
        name: "XC2V1000-6",
        family: "Virtex-II",
        luts: 5120,
        ffs: 5120,
        t_cq: 0.45,
        t_su: 0.40,
        t_lut: 0.33,
        t_net_pre: 0.40,
        t_net_base: 0.55,
        t_net_fanout: 0.18,
        t_congestion: 1.20,
    };

    pub const ALL: [Device; 4] = [XCV50_4, XCV600_4, XC2V40_6, XC2V1000_6];
}

/// STA result.
#[derive(Debug, Clone, Copy)]
pub struct TimingReport {
    /// Register-to-register critical path, ns.
    pub critical_path_ns: f64,
    pub fmax_mhz: f64,
    /// LUT levels on the critical path.
    pub levels: usize,
    /// Was post-layout net modelling used?
    pub post_layout: bool,
}

/// Run static timing analysis over a mapped netlist on a device.
pub fn analyze(m: &MappedNetlist, dev: &Device, post_layout: bool) -> TimingReport {
    // Arrival time per mapped LUT root (leaves start at t_cq — inputs are
    // assumed registered upstream).
    use std::collections::HashMap;
    let mut arrival: HashMap<u32, f64> = HashMap::new();
    let mut worst = dev.t_cq; // a wire from FF straight to FF
    let mut worst_levels = 0usize;
    // LUTs are already in topological order (map() walks topo order).
    for lut in &m.luts {
        let mut t: f64 = dev.t_cq;
        for &leaf in &lut.leaves {
            let leaf_arrival = arrival.get(&leaf).copied().unwrap_or(dev.t_cq);
            let cand = leaf_arrival + m.net_delay(dev, leaf, post_layout);
            if cand > t {
                t = cand;
            }
        }
        t += dev.t_lut;
        arrival.insert(lut.root, t);
        if t > worst {
            worst = t;
            worst_levels = lut.level;
        }
    }
    let critical = worst + dev.t_su;
    TimingReport {
        critical_path_ns: critical,
        fmax_mhz: 1000.0 / critical,
        levels: worst_levels,
        post_layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::map::{map, MapMode};

    fn chain(stages: usize) -> crate::netlist::Netlist {
        // A chain of 4-input XOR blocks; the mapper may compress stages,
        // so callers pick `stages` by the resulting mapped depth.
        let mut b = Builder::new("chain");
        let mut x = b.input_bus("x", 4);
        for i in 0..stages {
            let y = b.xor_many(&x);
            let more = b.input_bus(&format!("pad{i}"), 3);
            x = vec![y, more[0], more[1], more[2]];
        }
        let out = b.xor_many(&x);
        b.output("o", &[out]);
        b.finish()
    }

    /// A netlist whose depth-oriented mapping has exactly `want` LUT
    /// levels.
    fn netlist_with_depth(want: usize) -> crate::netlist::Netlist {
        for stages in 1..3 * want {
            let n = chain(stages);
            if map(&n, MapMode::Depth).depth == want {
                return n;
            }
        }
        panic!("no chain length maps to depth {want}");
    }

    #[test]
    fn deeper_logic_is_slower() {
        let shallow = map(&chain(1), MapMode::Depth);
        let deep = map(&chain(6), MapMode::Depth);
        let d = devices::XC2V1000_6;
        let f_shallow = analyze(&shallow, &d, true).fmax_mhz;
        let f_deep = analyze(&deep, &d, true).fmax_mhz;
        assert!(f_shallow > f_deep);
    }

    #[test]
    fn virtex_ii_is_faster_than_virtex_on_same_netlist() {
        // The paper: "this speed-up is not achieved by a more efficient
        // placement and routing process but to the technological
        // advantage Virtex II offers over Virtex" — identical depth, only
        // the per-LUT/net delays differ.
        let m = map(&netlist_with_depth(6), MapMode::Depth);
        let v = analyze(&m, &devices::XCV600_4, true);
        let v2 = analyze(&m, &devices::XC2V1000_6, true);
        assert_eq!(v.levels, v2.levels, "same critical-path topology");
        assert!(v2.fmax_mhz > 1.5 * v.fmax_mhz);
    }

    #[test]
    fn six_level_path_meets_line_clock_only_on_virtex_ii() {
        let m = map(&netlist_with_depth(6), MapMode::Depth);
        assert_eq!(m.depth, 6);
        let v = analyze(&m, &devices::XCV600_4, true);
        let v2 = analyze(&m, &devices::XC2V1000_6, true);
        assert!(
            v.fmax_mhz < 78.125,
            "Virtex -4 must miss 78.125 MHz, got {:.1}",
            v.fmax_mhz
        );
        assert!(
            v2.fmax_mhz > 78.125,
            "Virtex-II -6 must make 78.125 MHz, got {:.1}",
            v2.fmax_mhz
        );
    }

    #[test]
    fn post_layout_is_slower_than_pre_layout() {
        let m = map(&chain(4), MapMode::Depth);
        let d = devices::XCV50_4;
        let pre = analyze(&m, &d, false);
        let post = analyze(&m, &d, true);
        assert!(post.fmax_mhz < pre.fmax_mhz);
    }

    #[test]
    fn device_capacities_match_datasheets() {
        assert_eq!(devices::XCV50_4.luts, 1536);
        assert_eq!(devices::XC2V40_6.luts, 512);
        assert_eq!(devices::XC2V1000_6.luts, 5120);
        assert_eq!(devices::XCV600_4.luts, 13824);
    }
}
