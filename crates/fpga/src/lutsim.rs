//! LUT-level verification of the technology mapper.
//!
//! Mapping must be *functionally* conservative: every LUT's truth table
//! is computed from the boolean cone it covers, and the resulting
//! LUT network is simulated and compared against the gate-level
//! network on random vectors.  This is the equivalence check a real
//! flow runs between synthesis and the mapped netlist.

use crate::map::MappedNetlist;
use crate::netlist::{Netlist, NodeKind, Sig};
use crate::sim::{InPort, OutPort};
use std::collections::HashMap;

/// A mapped LUT with its computed truth table (bit `i` of `truth` is
/// the output for leaf assignment `i`, leaf 0 = LSB of the index).
#[derive(Debug, Clone)]
pub struct TruthLut {
    pub root: Sig,
    pub leaves: Vec<Sig>,
    pub truth: u16,
}

/// Evaluate the cone of `root` terminating at `leaves` under one leaf
/// assignment.
fn eval_cone(n: &Netlist, root: Sig, assign: &HashMap<Sig, bool>) -> bool {
    fn rec(
        n: &Netlist,
        s: Sig,
        assign: &HashMap<Sig, bool>,
        memo: &mut HashMap<Sig, bool>,
    ) -> bool {
        if let Some(&v) = assign.get(&s) {
            return v;
        }
        if let Some(&v) = memo.get(&s) {
            return v;
        }
        let v = match n.nodes[s as usize] {
            NodeKind::Const(c) => c,
            NodeKind::Input | NodeKind::FfOutput(_) => {
                panic!("cone of node {s} escapes its cut leaves")
            }
            NodeKind::Not(a) => !rec(n, a, assign, memo),
            NodeKind::And(a, b) => rec(n, a, assign, memo) && rec(n, b, assign, memo),
            NodeKind::Or(a, b) => rec(n, a, assign, memo) || rec(n, b, assign, memo),
            NodeKind::Xor(a, b) => rec(n, a, assign, memo) ^ rec(n, b, assign, memo),
        };
        memo.insert(s, v);
        v
    }
    let mut memo = HashMap::new();
    rec(n, root, assign, &mut memo)
}

/// Compute the truth table of one mapped LUT.
pub fn truth_table(n: &Netlist, root: Sig, leaves: &[Sig]) -> u16 {
    assert!(leaves.len() <= 4, "LUTs are 4-input");
    let mut truth = 0u16;
    for idx in 0..(1u16 << leaves.len()) {
        let assign: HashMap<Sig, bool> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, (idx >> i) & 1 == 1))
            .collect();
        if eval_cone(n, root, &assign) {
            truth |= 1 << idx;
        }
    }
    truth
}

/// The mapped network with truth tables — simulatable and exportable.
pub struct LutNetwork<'a> {
    pub n: &'a Netlist,
    /// In topological order.
    pub luts: Vec<TruthLut>,
}

impl<'a> LutNetwork<'a> {
    /// Derive truth tables for every LUT of a mapping.
    pub fn new(n: &'a Netlist, m: &MappedNetlist) -> Self {
        let luts = m
            .luts
            .iter()
            .map(|l| TruthLut {
                root: l.root,
                leaves: l.leaves.clone(),
                truth: truth_table(n, l.root, &l.leaves),
            })
            .collect();
        Self { n, luts }
    }
}

/// Simulator over the LUT network (same I/O interface style as
/// [`crate::sim::Sim`], driven by named buses or by port handles
/// resolved once via [`LutSim::in_port`]/[`LutSim::out_port`]).
pub struct LutSim<'a> {
    net: LutNetwork<'a>,
    /// Dense per-node values: primary inputs written by `set`, LUT
    /// roots written by `eval`.
    values: Vec<bool>,
    /// Which nodes are LUT roots (readable from `values` even when the
    /// underlying node is a gate).
    covered: Vec<bool>,
    ff_state: Vec<bool>,
    ff_next: Vec<bool>,
}

impl<'a> LutSim<'a> {
    pub fn new(net: LutNetwork<'a>) -> Self {
        let ff_state: Vec<bool> = net.n.dffs.iter().map(|d| d.init).collect();
        let mut covered = vec![false; net.n.nodes.len()];
        for lut in &net.luts {
            covered[lut.root as usize] = true;
        }
        let mut s = Self {
            values: vec![false; net.n.nodes.len()],
            covered,
            ff_next: ff_state.clone(),
            ff_state,
            net,
        };
        s.eval();
        s
    }

    /// Resolve a named input bus to a dense handle (do this once).
    #[must_use]
    pub fn in_port(&self, name: &str) -> InPort {
        crate::sim::resolve_in(&self.net.n.inputs, name)
    }

    /// Resolve a named output bus to a dense handle.
    #[must_use]
    pub fn out_port(&self, name: &str) -> OutPort {
        crate::sim::resolve_out(&self.net.n.outputs, name)
    }

    /// Set an input bus from an integer (LSB-first) via its handle.
    pub fn set_port(&mut self, port: InPort, value: u64) {
        let n = self.net.n;
        let sigs = &n.inputs[port.0].sigs;
        for (i, &s) in sigs.iter().enumerate() {
            self.values[s as usize] = (value >> i) & 1 == 1;
        }
    }

    /// Set a wide input bus from bytes via its handle.
    pub fn set_bytes_port(&mut self, port: InPort, bytes: &[u8]) {
        let n = self.net.n;
        let sigs = &n.inputs[port.0].sigs;
        assert_eq!(sigs.len(), bytes.len() * 8);
        for (i, &s) in sigs.iter().enumerate() {
            self.values[s as usize] = (bytes[i / 8] >> (i % 8)) & 1 == 1;
        }
    }

    pub fn set(&mut self, name: &str, value: u64) {
        let port = self.in_port(name);
        self.set_port(port, value);
    }

    pub fn set_bytes(&mut self, name: &str, bytes: &[u8]) {
        let port = self.in_port(name);
        self.set_bytes_port(port, bytes);
    }

    fn read(&self, s: Sig) -> bool {
        if self.covered[s as usize] {
            return self.values[s as usize];
        }
        match self.net.n.nodes[s as usize] {
            NodeKind::Const(c) => c,
            NodeKind::FfOutput(idx) => self.ff_state[idx as usize],
            // An unset primary input defaults low (values init false).
            NodeKind::Input => self.values[s as usize],
            // A signal that is not a LUT root must be a leaf kind.
            _ => panic!("mapped simulation read of uncovered node {s}"),
        }
    }

    /// Evaluate every LUT (they are in topological order).
    pub fn eval(&mut self) {
        for i in 0..self.net.luts.len() {
            let lut = &self.net.luts[i];
            let mut idx = 0usize;
            for (k, &leaf) in lut.leaves.iter().enumerate() {
                if self.read(leaf) {
                    idx |= 1 << k;
                }
            }
            let out = (lut.truth >> idx) & 1 == 1;
            let root = lut.root;
            self.values[root as usize] = out;
        }
    }

    /// Read an output bus as an integer via its handle.
    #[must_use]
    pub fn get_port(&mut self, port: OutPort) -> u64 {
        self.eval();
        let sigs = &self.net.n.outputs[port.0].sigs;
        sigs.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &s)| acc | ((self.read(s) as u64) << i))
    }

    pub fn get(&mut self, name: &str) -> u64 {
        let port = self.out_port(name);
        self.get_port(port)
    }

    pub fn step(&mut self) {
        self.eval();
        for (i, d) in self.net.n.dffs.iter().enumerate() {
            self.ff_next[i] = 'next: {
                if let Some(sr) = d.sr {
                    if self.read(sr) {
                        break 'next d.init;
                    }
                }
                if let Some(en) = d.en {
                    if !self.read(en) {
                        break 'next self.ff_state[i];
                    }
                }
                self.read(d.d.expect("validated"))
            };
        }
        std::mem::swap(&mut self.ff_state, &mut self.ff_next);
        self.eval();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::map::{map, MapMode};

    fn adder_netlist() -> Netlist {
        let mut b = Builder::new("add8");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let zero = b.lit(false);
        let (sum, cout) = b.add(&a, &c, zero);
        b.output("sum", &sum);
        b.output("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn truth_tables_of_simple_gates() {
        let mut b = Builder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.and2(x, y);
        b.output("a", &[a]);
        let n = b.finish();
        assert_eq!(truth_table(&n, a, &[x, y]), 0b1000);
        // Leaf order matters: [y, x] permutes the table but AND is
        // symmetric.
        assert_eq!(truth_table(&n, a, &[y, x]), 0b1000);
    }

    #[test]
    fn mapped_adder_matches_gate_level_exhaustively() {
        let n = adder_netlist();
        for mode in [MapMode::Depth, MapMode::Area] {
            let m = map(&n, mode);
            let net = LutNetwork::new(&n, &m);
            let mut ls = LutSim::new(net);
            let mut gs = crate::sim::Sim::new(&n);
            for a in (0..256u64).step_by(7) {
                for b in (0..256u64).step_by(13) {
                    ls.set("a", a);
                    ls.set("b", b);
                    gs.set("a", a);
                    gs.set("b", b);
                    assert_eq!(ls.get("sum"), gs.get("sum"), "{mode:?} {a}+{b}");
                    assert_eq!(ls.get("cout"), gs.get("cout"));
                }
            }
        }
    }

    #[test]
    fn mapped_sequential_logic_matches() {
        // A 6-bit counter with enable — exercises FF CE + feedback.
        let mut b = Builder::new("ctr");
        let en = b.input("en");
        let q = b.state_word(6, 0);
        let one = b.const_word(1, 6);
        let zero = b.lit(false);
        let (inc, _) = b.add(&q, &one, zero);
        let next = b.mux_word(en, &inc, &q);
        b.bind_word(&q, &next);
        b.output("count", &q);
        let n = b.finish();
        let m = map(&n, MapMode::Depth);
        let mut ls = LutSim::new(LutNetwork::new(&n, &m));
        let mut gs = crate::sim::Sim::new(&n);
        for cyc in 0..100u64 {
            let en = (cyc % 3 != 0) as u64;
            ls.set("en", en);
            gs.set("en", en);
            assert_eq!(ls.get("count"), gs.get("count"), "cycle {cyc}");
            ls.step();
            gs.step();
        }
    }
}
