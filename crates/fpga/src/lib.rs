//! FPGA synthesis model — the substrate that regenerates the paper's
//! evaluation (Tables 1–3).
//!
//! The paper synthesises VHDL to Xilinx Virtex / Virtex-II devices with
//! Synplicity and Xilinx Foundation, then reports LUTs, flip-flops and
//! achievable clock pre- and post-layout.  No HDL toolchain exists in
//! this environment, so this crate implements the relevant slice of one:
//!
//! * [`netlist`] — a structural boolean-network IR (2-input gates +
//!   D flip-flops) with named input/output buses;
//! * [`builder`] — combinators to construct datapaths: words, adders,
//!   comparators, muxes, shifters, one-hot decoders, registers, FSMs;
//! * [`sim`] — a functional simulator (topological evaluation + FF
//!   stepping) used to verify every netlist against its behavioural
//!   Rust counterpart;
//! * [`compiled`] — the compile-then-run engine: the netlist lowered
//!   once to a dense instruction tape and evaluated bit-parallel, 64
//!   independent stimulus lanes per pass (one lane per bit of a `u64`);
//! * [`mod@map`] — cut-based technology mapping into 4-input LUTs (Virtex
//!   and Virtex-II are 4-LUT architectures), with a depth-oriented mode
//!   (synthesis estimate, "pre-layout") and an area-recovery mode
//!   ("post-layout");
//! * [`timing`] — the device library (XCV50-4, XCV600-4, XC2V40-6,
//!   XC2V1000-6: real LUT/FF capacities, per-speed-grade delay
//!   parameters) and static timing analysis with fanout- and
//!   congestion-aware net delays;
//! * [`report`] — the per-device utilisation/fMax reports printed by the
//!   table binaries.
//!
//! ```
//! use p5_fpga::{Builder, Sim, map, MapMode, synthesize, devices};
//!
//! // A registered 8-bit parity reducer.
//! let mut b = Builder::new("parity8");
//! let x = b.input_bus("x", 8);
//! let p = b.xor_many(&x);
//! let q = b.reg(p, false);
//! b.output("q", &[q]);
//! let netlist = b.finish();
//!
//! // Simulate it...
//! let mut sim = Sim::new(&netlist);
//! sim.set("x", 0b1011_0001);
//! sim.step();
//! assert_eq!(sim.get("q"), 0);       // even parity
//!
//! // ...map it to 4-LUTs and time it on the paper's device.
//! let mapped = map(&netlist, MapMode::Depth);
//! assert_eq!(mapped.depth, 2);       // 8-input XOR = two LUT levels
//! let report = synthesize(&netlist, &devices::XC2V40_6);
//! assert!(report.fits);
//! ```

pub mod builder;
pub mod compiled;
pub mod export;
pub mod lutsim;
pub mod map;
pub mod netlist;
pub mod report;
pub mod sim;
pub mod text;
pub mod timing;
pub mod verilog;

pub use builder::Builder;
pub use compiled::{CompiledSim, LANES};
pub use export::to_blif;
pub use export::vcd::VcdWriter;
pub use lutsim::{LutNetwork, LutSim};
pub use map::{map, MapMode, MappedNetlist};
pub use netlist::{Netlist, NodeKind, Sig};
pub use report::{synthesize, SynthReport};
pub use sim::{InPort, OutPort, Sim};
pub use text::{parse_modules, to_text, TextError};
pub use timing::{devices, Device, TimingReport};
pub use verilog::to_verilog;
