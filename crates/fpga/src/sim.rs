//! Functional netlist simulation: topological combinational evaluation
//! plus flip-flop stepping.  Used to prove every `p5-rtl` netlist
//! equivalent to its behavioural Rust counterpart.

use crate::netlist::{Netlist, NodeKind, Sig};
use std::collections::HashMap;

/// A netlist simulator instance.
pub struct Sim<'a> {
    n: &'a Netlist,
    /// Current value of every node.
    values: Vec<bool>,
    /// FF state (indexed like `n.dffs`).
    ff_state: Vec<bool>,
    order: Vec<Sig>,
    input_index: HashMap<String, Vec<Sig>>,
    output_index: HashMap<String, Vec<Sig>>,
    dirty: bool,
}

impl<'a> Sim<'a> {
    pub fn new(n: &'a Netlist) -> Self {
        n.validate();
        let order = n.topo_order();
        let input_index = n
            .inputs
            .iter()
            .map(|b| (b.name.clone(), b.sigs.clone()))
            .collect();
        let output_index = n
            .outputs
            .iter()
            .map(|b| (b.name.clone(), b.sigs.clone()))
            .collect();
        let ff_state = n.dffs.iter().map(|d| d.init).collect();
        let mut sim = Self {
            n,
            values: vec![false; n.nodes.len()],
            ff_state,
            order,
            input_index,
            output_index,
            dirty: true,
        };
        sim.eval();
        sim
    }

    /// Set a named input bus from an integer (LSB-first).
    pub fn set(&mut self, name: &str, value: u64) {
        let sigs = self
            .input_index
            .get(name)
            .unwrap_or_else(|| panic!("no input bus named {name}"))
            .clone();
        assert!(sigs.len() <= 64);
        for (i, s) in sigs.iter().enumerate() {
            self.values[*s as usize] = (value >> i) & 1 == 1;
        }
        self.dirty = true;
    }

    /// Set a wide input bus from bytes (8 bits per byte, LSB-first).
    pub fn set_bytes(&mut self, name: &str, bytes: &[u8]) {
        let sigs = self
            .input_index
            .get(name)
            .unwrap_or_else(|| panic!("no input bus named {name}"))
            .clone();
        assert_eq!(sigs.len(), bytes.len() * 8, "bus width mismatch for {name}");
        for (i, s) in sigs.iter().enumerate() {
            self.values[*s as usize] = (bytes[i / 8] >> (i % 8)) & 1 == 1;
        }
        self.dirty = true;
    }

    /// Propagate combinational logic.
    pub fn eval(&mut self) {
        // Refresh FF outputs and constants first.
        for (i, node) in self.n.nodes.iter().enumerate() {
            match node {
                NodeKind::Const(v) => self.values[i] = *v,
                NodeKind::FfOutput(idx) => self.values[i] = self.ff_state[*idx as usize],
                _ => {}
            }
        }
        for &s in &self.order {
            let v = match self.n.nodes[s as usize] {
                NodeKind::Input | NodeKind::Const(_) | NodeKind::FfOutput(_) => continue,
                NodeKind::Not(a) => !self.values[a as usize],
                NodeKind::And(a, b) => self.values[a as usize] && self.values[b as usize],
                NodeKind::Or(a, b) => self.values[a as usize] || self.values[b as usize],
                NodeKind::Xor(a, b) => self.values[a as usize] ^ self.values[b as usize],
            };
            self.values[s as usize] = v;
        }
        self.dirty = false;
    }

    /// Read a named output bus as an integer.
    pub fn get(&mut self, name: &str) -> u64 {
        if self.dirty {
            self.eval();
        }
        let sigs = self
            .output_index
            .get(name)
            .unwrap_or_else(|| panic!("no output bus named {name}"));
        assert!(sigs.len() <= 64);
        sigs.iter().enumerate().fold(0u64, |acc, (i, s)| {
            acc | ((self.values[*s as usize] as u64) << i)
        })
    }

    /// Read a wide output bus as bytes.
    pub fn get_bytes(&mut self, name: &str) -> Vec<u8> {
        if self.dirty {
            self.eval();
        }
        let sigs = self
            .output_index
            .get(name)
            .unwrap_or_else(|| panic!("no output bus named {name}"))
            .clone();
        let mut out = vec![0u8; sigs.len().div_ceil(8)];
        for (i, s) in sigs.iter().enumerate() {
            if self.values[*s as usize] {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Clock edge: evaluate combinational logic, then latch every FF
    /// (SR has priority over CE, as on a Virtex slice register).
    pub fn step(&mut self) {
        self.eval();
        let next: Vec<bool> = self
            .n
            .dffs
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if let Some(sr) = d.sr {
                    if self.values[sr as usize] {
                        return d.init;
                    }
                }
                if let Some(en) = d.en {
                    if !self.values[en as usize] {
                        return self.ff_state[i];
                    }
                }
                self.values[d.d.expect("validated") as usize]
            })
            .collect();
        self.ff_state = next;
        self.dirty = true;
        self.eval();
    }

    /// Reset all FFs to their init values.
    pub fn reset(&mut self) {
        for (i, d) in self.n.dffs.iter().enumerate() {
            self.ff_state[i] = d.init;
        }
        self.dirty = true;
        self.eval();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn combinational_eval() {
        let mut b = Builder::new("c");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        b.output("x", &[x]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for (p, q) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set("a", p);
            sim.set("b", q);
            assert_eq!(sim.get("x"), p ^ q);
        }
    }

    #[test]
    fn wide_bus_bytes() {
        let mut b = Builder::new("w");
        let a = b.input_bus("data", 32);
        // Swap the two halves.
        let mut swapped = a[16..].to_vec();
        swapped.extend_from_slice(&a[..16]);
        b.output("out", &swapped);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        sim.set_bytes("data", &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(sim.get_bytes("out"), vec![0x33, 0x44, 0x11, 0x22]);
    }

    #[test]
    fn shift_register_and_reset() {
        let mut b = Builder::new("sr");
        let d = b.input("d");
        let q1 = b.reg(d, false);
        let q2 = b.reg(q1, true);
        b.output("q2", &[q2]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        assert_eq!(sim.get("q2"), 1, "init value");
        sim.set("d", 1);
        sim.step(); // q1=1, q2=0(init of q1 was false)
        assert_eq!(sim.get("q2"), 0);
        sim.step();
        assert_eq!(sim.get("q2"), 1);
        sim.reset();
        assert_eq!(sim.get("q2"), 1);
    }
}
