//! Functional netlist simulation: topological combinational evaluation
//! plus flip-flop stepping.  Used to prove every `p5-rtl` netlist
//! equivalent to its behavioural Rust counterpart.
//!
//! Port access is handle-based: [`Sim::in_port`]/[`Sim::out_port`]
//! resolve a bus name to a dense index once, and the handle accessors
//! ([`Sim::set_port`], [`Sim::get_port`], …) touch the value array
//! directly — no map lookup, no `Vec<Sig>` clone per call.  The string
//! API (`set`/`get`/…) survives as a thin wrapper for tests and
//! one-shot use.  For bit-parallel 64-lane evaluation of the same
//! netlists see [`crate::compiled::CompiledSim`].

use crate::netlist::{Bus, Netlist, NodeKind, Sig};

/// Handle to a named input bus, resolved once via [`Sim::in_port`] (an
/// index into the netlist's `inputs`).  Valid for any simulator built
/// from the same netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InPort(pub(crate) usize);

/// Handle to a named output bus, resolved once via [`Sim::out_port`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPort(pub(crate) usize);

pub(crate) fn resolve_in(buses: &[Bus], name: &str) -> InPort {
    InPort(
        buses
            .iter()
            .position(|b| b.name == name)
            .unwrap_or_else(|| panic!("no input bus named {name}")),
    )
}

pub(crate) fn resolve_out(buses: &[Bus], name: &str) -> OutPort {
    OutPort(
        buses
            .iter()
            .position(|b| b.name == name)
            .unwrap_or_else(|| panic!("no output bus named {name}")),
    )
}

/// A netlist simulator instance.
pub struct Sim<'a> {
    n: &'a Netlist,
    /// Current value of every node.
    values: Vec<bool>,
    /// FF state (indexed like `n.dffs`).
    ff_state: Vec<bool>,
    /// Scratch for the next FF state (avoids an allocation per step).
    ff_next: Vec<bool>,
    order: Vec<Sig>,
    dirty: bool,
}

impl<'a> Sim<'a> {
    pub fn new(n: &'a Netlist) -> Self {
        n.validate();
        let order = n.topo_order();
        let ff_state: Vec<bool> = n.dffs.iter().map(|d| d.init).collect();
        let mut sim = Self {
            n,
            values: vec![false; n.nodes.len()],
            ff_next: ff_state.clone(),
            ff_state,
            order,
            dirty: true,
        };
        sim.eval();
        sim
    }

    /// Resolve a named input bus to a dense handle (do this once, not
    /// per cycle).
    #[must_use]
    pub fn in_port(&self, name: &str) -> InPort {
        resolve_in(&self.n.inputs, name)
    }

    /// Resolve a named output bus to a dense handle.
    #[must_use]
    pub fn out_port(&self, name: &str) -> OutPort {
        resolve_out(&self.n.outputs, name)
    }

    /// Set an input bus from an integer (LSB-first) via its handle.
    pub fn set_port(&mut self, port: InPort, value: u64) {
        let n = self.n;
        let sigs = &n.inputs[port.0].sigs;
        assert!(sigs.len() <= 64);
        for (i, &s) in sigs.iter().enumerate() {
            self.values[s as usize] = (value >> i) & 1 == 1;
        }
        self.dirty = true;
    }

    /// Set a wide input bus from bytes (8 bits per byte, LSB-first) via
    /// its handle.
    pub fn set_bytes_port(&mut self, port: InPort, bytes: &[u8]) {
        let n = self.n;
        let sigs = &n.inputs[port.0].sigs;
        assert_eq!(
            sigs.len(),
            bytes.len() * 8,
            "bus width mismatch for {}",
            n.inputs[port.0].name
        );
        for (i, &s) in sigs.iter().enumerate() {
            self.values[s as usize] = (bytes[i / 8] >> (i % 8)) & 1 == 1;
        }
        self.dirty = true;
    }

    /// Read an output bus as an integer via its handle.
    #[must_use]
    pub fn get_port(&mut self, port: OutPort) -> u64 {
        if self.dirty {
            self.eval();
        }
        let sigs = &self.n.outputs[port.0].sigs;
        assert!(sigs.len() <= 64);
        sigs.iter().enumerate().fold(0u64, |acc, (i, &s)| {
            acc | ((self.values[s as usize] as u64) << i)
        })
    }

    /// Read a wide output bus into a caller-owned buffer (cleared and
    /// refilled) — the per-cycle equivalence loops use this to avoid an
    /// allocation every clock.
    pub fn get_bytes_into(&mut self, port: OutPort, out: &mut Vec<u8>) {
        if self.dirty {
            self.eval();
        }
        let sigs = &self.n.outputs[port.0].sigs;
        out.clear();
        out.resize(sigs.len().div_ceil(8), 0);
        for (i, &s) in sigs.iter().enumerate() {
            if self.values[s as usize] {
                out[i / 8] |= 1 << (i % 8);
            }
        }
    }

    /// Set a named input bus from an integer (LSB-first).
    pub fn set(&mut self, name: &str, value: u64) {
        let port = self.in_port(name);
        self.set_port(port, value);
    }

    /// Set a wide input bus from bytes (8 bits per byte, LSB-first).
    pub fn set_bytes(&mut self, name: &str, bytes: &[u8]) {
        let port = self.in_port(name);
        self.set_bytes_port(port, bytes);
    }

    /// Propagate combinational logic.
    pub fn eval(&mut self) {
        // Refresh FF outputs and constants first.
        for (i, node) in self.n.nodes.iter().enumerate() {
            match node {
                NodeKind::Const(v) => self.values[i] = *v,
                NodeKind::FfOutput(idx) => self.values[i] = self.ff_state[*idx as usize],
                _ => {}
            }
        }
        for &s in &self.order {
            let v = match self.n.nodes[s as usize] {
                NodeKind::Input | NodeKind::Const(_) | NodeKind::FfOutput(_) => continue,
                NodeKind::Not(a) => !self.values[a as usize],
                NodeKind::And(a, b) => self.values[a as usize] && self.values[b as usize],
                NodeKind::Or(a, b) => self.values[a as usize] || self.values[b as usize],
                NodeKind::Xor(a, b) => self.values[a as usize] ^ self.values[b as usize],
            };
            self.values[s as usize] = v;
        }
        self.dirty = false;
    }

    /// Read a named output bus as an integer.
    pub fn get(&mut self, name: &str) -> u64 {
        let port = self.out_port(name);
        self.get_port(port)
    }

    /// Read a wide output bus as bytes.
    pub fn get_bytes(&mut self, name: &str) -> Vec<u8> {
        let port = self.out_port(name);
        let mut out = Vec::new();
        self.get_bytes_into(port, &mut out);
        out
    }

    /// Current value of one signal, re-evaluating combinational logic
    /// first if an input changed since the last read — the probe the
    /// VCD writer uses to dump arbitrary netlist nodes.
    #[must_use]
    pub fn peek(&mut self, s: Sig) -> bool {
        if self.dirty {
            self.eval();
        }
        self.values[s as usize]
    }

    /// Clock edge: evaluate combinational logic, then latch every FF
    /// (SR has priority over CE, as on a Virtex slice register).
    pub fn step(&mut self) {
        self.eval();
        for (i, d) in self.n.dffs.iter().enumerate() {
            self.ff_next[i] = 'next: {
                if let Some(sr) = d.sr {
                    if self.values[sr as usize] {
                        break 'next d.init;
                    }
                }
                if let Some(en) = d.en {
                    if !self.values[en as usize] {
                        break 'next self.ff_state[i];
                    }
                }
                self.values[d.d.expect("validated") as usize]
            };
        }
        std::mem::swap(&mut self.ff_state, &mut self.ff_next);
        self.dirty = true;
        self.eval();
    }

    /// Reset all FFs to their init values.
    pub fn reset(&mut self) {
        for (i, d) in self.n.dffs.iter().enumerate() {
            self.ff_state[i] = d.init;
        }
        self.dirty = true;
        self.eval();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn combinational_eval() {
        let mut b = Builder::new("c");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        b.output("x", &[x]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for (p, q) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set("a", p);
            sim.set("b", q);
            assert_eq!(sim.get("x"), p ^ q);
        }
    }

    #[test]
    fn wide_bus_bytes() {
        let mut b = Builder::new("w");
        let a = b.input_bus("data", 32);
        // Swap the two halves.
        let mut swapped = a[16..].to_vec();
        swapped.extend_from_slice(&a[..16]);
        b.output("out", &swapped);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        sim.set_bytes("data", &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(sim.get_bytes("out"), vec![0x33, 0x44, 0x11, 0x22]);
    }

    #[test]
    fn shift_register_and_reset() {
        let mut b = Builder::new("sr");
        let d = b.input("d");
        let q1 = b.reg(d, false);
        let q2 = b.reg(q1, true);
        b.output("q2", &[q2]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        assert_eq!(sim.get("q2"), 1, "init value");
        sim.set("d", 1);
        sim.step(); // q1=1, q2=0(init of q1 was false)
        assert_eq!(sim.get("q2"), 0);
        sim.step();
        assert_eq!(sim.get("q2"), 1);
        sim.reset();
        assert_eq!(sim.get("q2"), 1);
    }

    #[test]
    fn handle_accessors_match_string_api() {
        let mut b = Builder::new("h");
        let a = b.input_bus("a", 16);
        let c = b.input_bus("b", 16);
        let zero = b.lit(false);
        let (sum, cout) = b.add(&a, &c, zero);
        b.output("sum", &sum);
        b.output("cout", &[cout]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        let pa = sim.in_port("a");
        let pb = sim.in_port("b");
        let psum = sim.out_port("sum");
        let mut buf = Vec::new();
        for (x, y) in [(1u64, 2u64), (0xFFFF, 1), (0x1234, 0x4321)] {
            sim.set_port(pa, x);
            sim.set_bytes_port(pb, &(y as u16).to_le_bytes());
            assert_eq!(sim.get_port(psum), (x + y) & 0xFFFF);
            sim.get_bytes_into(psum, &mut buf);
            assert_eq!(buf, (((x + y) & 0xFFFF) as u16).to_le_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "no input bus named nope")]
    fn unknown_port_panics() {
        let mut b = Builder::new("p");
        let a = b.input("a");
        b.output("x", &[a]);
        let n = b.finish();
        let sim = Sim::new(&n);
        let _ = sim.in_port("nope");
    }
}
