//! Synthesis reports: the rows of the paper's Tables 1–3.

use crate::map::{map, MapMode};
use crate::netlist::Netlist;
use crate::timing::{analyze, Device};

/// One table row: a module synthesised to a device.
#[derive(Debug, Clone)]
pub struct SynthReport {
    pub module: String,
    pub device: &'static str,
    pub family: &'static str,
    /// Pre-layout (depth-oriented mapping) LUT count.
    pub luts_pre: usize,
    /// Post-layout (area-recovered) LUT count.
    pub luts_post: usize,
    pub ffs: usize,
    pub lut_util_pre: f64,
    pub lut_util_post: f64,
    pub ff_util: f64,
    pub fmax_pre_mhz: f64,
    pub fmax_post_mhz: f64,
    pub levels: usize,
    /// Virtex slices occupied post-layout (a slice packs 2 LUTs + 2
    /// FFs; LUT/FF pairs share a slice when counts allow).
    pub slices_post: usize,
    /// Does the design fit the device at all?
    pub fits: bool,
}

/// Synthesise a netlist to a device: map in both modes, run STA.
pub fn synthesize(n: &Netlist, dev: &Device) -> SynthReport {
    let pre = map(n, MapMode::Depth);
    let post = map(n, MapMode::Area);
    let t_pre = analyze(&pre, dev, false);
    let t_post = analyze(&post, dev, true);
    let slices_post = post.lut_count().div_ceil(2).max(pre.ff_count.div_ceil(2));
    SynthReport {
        module: n.name.clone(),
        device: dev.name,
        family: dev.family,
        luts_pre: pre.lut_count(),
        luts_post: post.lut_count(),
        ffs: pre.ff_count,
        lut_util_pre: pre.lut_count() as f64 / dev.luts as f64,
        lut_util_post: post.lut_count() as f64 / dev.luts as f64,
        ff_util: pre.ff_count as f64 / dev.ffs as f64,
        fmax_pre_mhz: t_pre.fmax_mhz,
        fmax_post_mhz: t_post.fmax_mhz,
        levels: t_post.levels,
        slices_post,
        fits: post.lut_count() <= dev.luts && pre.ff_count <= dev.ffs,
    }
}

impl SynthReport {
    /// Format like the paper's tables: LUTs (util %), FFs (util %), fMax.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} {:<11} pre: {:>5} LUT ({:>4.1}%) {:>6.1} MHz | post: {:>5} LUT ({:>4.1}%) {:>6.1} MHz | {:>4} FF ({:>4.1}%) | {} levels{}",
            self.module,
            self.device,
            self.luts_pre,
            100.0 * self.lut_util_pre,
            self.fmax_pre_mhz,
            self.luts_post,
            100.0 * self.lut_util_post,
            self.fmax_post_mhz,
            self.ffs,
            100.0 * self.ff_util,
            self.levels,
            if self.fits { "" } else { "  ** DOES NOT FIT **" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::timing::devices;

    fn sample() -> Netlist {
        let mut b = Builder::new("sample");
        let x = b.input_bus("x", 32);
        let y = b.xor_many(&x);
        let q = b.reg(y, false);
        b.output("q", &[q]);
        b.finish()
    }

    #[test]
    fn slices_pack_two_luts_and_two_ffs() {
        let r = synthesize(&sample(), &devices::XC2V40_6);
        assert_eq!(
            r.slices_post,
            r.luts_post.div_ceil(2).max(r.ffs.div_ceil(2))
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let r = synthesize(&sample(), &devices::XC2V40_6);
        assert!(r.luts_post <= r.luts_pre);
        assert!(r.fmax_pre_mhz > r.fmax_post_mhz);
        assert_eq!(r.ffs, 1);
        assert!(r.fits);
        assert!((r.lut_util_pre - r.luts_pre as f64 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_design_reports_unfit() {
        let mut b = Builder::new("big");
        // ~700 independent 4-LUTs won't fit 512.
        let mut outs = Vec::new();
        for i in 0..700 {
            let x = b.input_bus(&format!("x{i}"), 4);
            outs.push(b.xor_many(&x));
        }
        b.output("o", &outs);
        let r = synthesize(&b.finish(), &devices::XC2V40_6);
        assert!(!r.fits);
    }

    #[test]
    fn table_row_renders() {
        let r = synthesize(&sample(), &devices::XCV50_4);
        let row = r.table_row();
        assert!(row.contains("XCV50-4"));
        assert!(row.contains("MHz"));
    }
}
