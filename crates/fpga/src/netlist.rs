//! The structural netlist IR: 2-input boolean nodes plus D flip-flops,
//! the representation technology mapping and simulation operate on.

use std::collections::HashMap;

/// A signal: index of the node that drives it.
pub type Sig = u32;

/// Boolean network node kinds.  Everything is ≤ 2 inputs so the mapper's
/// cut enumeration stays simple; wider functions are built as trees by
/// the [`crate::builder::Builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input (bit of a named bus).
    Input,
    /// Constant.
    Const(bool),
    Not(Sig),
    And(Sig, Sig),
    Or(Sig, Sig),
    Xor(Sig, Sig),
    /// Output of flip-flop `dff_index`.
    FfOutput(u32),
}

/// A D flip-flop.  `d` is bound after creation so feedback loops
/// (counters, FSM state) can be described.
///
/// `en` and `sr` model the dedicated clock-enable and synchronous
/// set/reset pins of Virtex/Virtex-II slice registers: they cost no
/// LUTs.  `sr` (when asserted) loads `init`; it has priority over `en`.
#[derive(Debug, Clone, Copy)]
pub struct Dff {
    /// The node representing Q.
    pub q: Sig,
    /// The data input, bound via [`Netlist::connect_dff`].
    pub d: Option<Sig>,
    /// Power-on value (and the value loaded by `sr`).
    pub init: bool,
    /// Dedicated clock-enable pin.
    pub en: Option<Sig>,
    /// Dedicated synchronous set/reset pin (loads `init`).
    pub sr: Option<Sig>,
}

impl Dff {
    /// The value this register is *guaranteed* to hold right after a
    /// synchronous reset pulse: `Some(init)` when an SR pin exists,
    /// `None` when the register rides through reset with stale state.
    pub fn reset_value(&self) -> Option<bool> {
        self.sr.map(|_| self.init)
    }
}

/// A named bus of signals.
#[derive(Debug, Clone)]
pub struct Bus {
    pub name: String,
    pub sigs: Vec<Sig>,
}

/// The boolean network.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub nodes: Vec<NodeKind>,
    pub dffs: Vec<Dff>,
    pub inputs: Vec<Bus>,
    pub outputs: Vec<Bus>,
    /// Module name for reports.
    pub name: String,
}

impl Netlist {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    pub(crate) fn add_node(&mut self, kind: NodeKind) -> Sig {
        let id = self.nodes.len() as Sig;
        self.nodes.push(kind);
        id
    }

    /// Create a flip-flop; returns its Q signal.  Bind D later.
    pub fn new_dff(&mut self, init: bool) -> Sig {
        self.new_dff_ctrl(init, None, None)
    }

    /// Create a flip-flop with dedicated clock-enable / sync-reset pins.
    pub fn new_dff_ctrl(&mut self, init: bool, en: Option<Sig>, sr: Option<Sig>) -> Sig {
        let dff_index = self.dffs.len() as u32;
        let q = self.add_node(NodeKind::FfOutput(dff_index));
        self.dffs.push(Dff {
            q,
            d: None,
            init,
            en,
            sr,
        });
        q
    }

    /// Bind the D input of the flip-flop whose Q is `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an `FfOutput` node or the D input is already
    /// bound — both are builder bugs, not data-dependent conditions.  Use
    /// `p5-lint` (rules P5L002/P5L003) to diagnose a netlist without
    /// tripping these asserts.
    pub fn connect_dff(&mut self, q: Sig, d: Sig) {
        let NodeKind::FfOutput(idx) = self.nodes[q as usize] else {
            panic!("connect_dff: {q} is not a flip-flop output");
        };
        let dff = &mut self.dffs[idx as usize];
        assert!(dff.d.is_none(), "flip-flop D bound twice");
        dff.d = Some(d);
    }

    /// All flip-flops must have bound D inputs.
    ///
    /// # Panics
    ///
    /// Panics on an unbound D or a combinational cycle.  This is the
    /// hard gate before simulation/mapping; for a non-panicking
    /// diagnosis of the same conditions, run `p5-lint` instead.
    pub fn validate(&self) {
        for (i, dff) in self.dffs.iter().enumerate() {
            assert!(dff.d.is_some(), "flip-flop {i} has unbound D");
        }
        // No combinational cycles: topo_order panics otherwise.
        let _ = self.topo_order();
    }

    /// Fan-in signals of a combinational node.
    pub fn fanins(&self, sig: Sig) -> [Option<Sig>; 2] {
        match self.nodes[sig as usize] {
            NodeKind::Input | NodeKind::Const(_) | NodeKind::FfOutput(_) => [None, None],
            NodeKind::Not(a) => [Some(a), None],
            NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Xor(a, b) => [Some(a), Some(b)],
        }
    }

    /// Is this node a leaf for mapping purposes (no LUT needed)?
    pub fn is_leaf(&self, sig: Sig) -> bool {
        matches!(
            self.nodes[sig as usize],
            NodeKind::Input | NodeKind::Const(_) | NodeKind::FfOutput(_)
        )
    }

    /// Combinational roots: every output bit and every flip-flop D,
    /// CE and SR input.
    pub fn roots(&self) -> Vec<Sig> {
        let mut roots: Vec<Sig> = self
            .outputs
            .iter()
            .flat_map(|b| b.sigs.iter().copied())
            .collect();
        roots.extend(self.dffs.iter().filter_map(|d| d.d));
        roots.extend(self.dffs.iter().filter_map(|d| d.en));
        roots.extend(self.dffs.iter().filter_map(|d| d.sr));
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// Topological order of the combinational nodes (leaves first).
    ///
    /// # Panics
    ///
    /// Panics on combinational cycles (see `validate`); `p5-lint` rule
    /// P5L001 reports the offending SCC without panicking.
    pub fn topo_order(&self) -> Vec<Sig> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS from every root.
        for root in self.roots() {
            if marks[root as usize] == Mark::Black {
                continue;
            }
            let mut stack = vec![(root, false)];
            while let Some((n, expanded)) = stack.pop() {
                match marks[n as usize] {
                    Mark::Black => continue,
                    Mark::Grey if !expanded => panic!("combinational cycle through node {n}"),
                    _ => {}
                }
                if expanded {
                    marks[n as usize] = Mark::Black;
                    order.push(n);
                    continue;
                }
                marks[n as usize] = Mark::Grey;
                stack.push((n, true));
                for f in self.fanins(n).into_iter().flatten() {
                    if marks[f as usize] == Mark::White {
                        stack.push((f, false));
                    } else if marks[f as usize] == Mark::Grey {
                        panic!("combinational cycle through node {f}");
                    }
                }
            }
        }
        order
    }

    /// Count of 2-input gate nodes (pre-mapping complexity measure).
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    NodeKind::Not(_) | NodeKind::And(..) | NodeKind::Or(..) | NodeKind::Xor(..)
                )
            })
            .count()
    }

    pub fn ff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Does any flip-flop expose a synchronous set/reset pin?  Modules
    /// with an SR domain are resettable at runtime; modules without one
    /// rely purely on FPGA configuration (power-on) init values.
    pub fn has_reset_domain(&self) -> bool {
        self.dffs.iter().any(|d| d.sr.is_some())
    }

    /// The flip-flop index behind an `FfOutput` signal, bounds-checked.
    pub fn dff_of(&self, sig: Sig) -> Option<usize> {
        match self.nodes.get(sig as usize) {
            Some(NodeKind::FfOutput(idx)) if (*idx as usize) < self.dffs.len() => {
                Some(*idx as usize)
            }
            _ => None,
        }
    }

    /// Look up an input bus by name.
    pub fn input_bus(&self, name: &str) -> Option<&Bus> {
        self.inputs.iter().find(|b| b.name == name)
    }

    pub fn output_bus(&self, name: &str) -> Option<&Bus> {
        self.outputs.iter().find(|b| b.name == name)
    }

    /// Map from signal to the number of combinational readers (for net
    /// fanout in timing).
    pub fn fanout_counts(&self) -> HashMap<Sig, usize> {
        let mut m: HashMap<Sig, usize> = HashMap::new();
        for n in 0..self.nodes.len() as Sig {
            for f in self.fanins(n).into_iter().flatten() {
                *m.entry(f).or_default() += 1;
            }
        }
        for d in &self.dffs {
            for s in [d.d, d.en, d.sr].into_iter().flatten() {
                *m.entry(s).or_default() += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn topo_order_is_consistent() {
        let mut b = Builder::new("t");
        let x = b.input_bus("x", 4);
        let y = b.xor_many(&x);
        b.output("y", &[y]);
        let n = b.finish();
        let order = n.topo_order();
        // Every node appears after its fanins.
        let pos: HashMap<Sig, usize> = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for &s in &order {
            for f in n.fanins(s).into_iter().flatten() {
                assert!(pos[&f] < pos[&s]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn cycles_are_detected() {
        let mut n = Netlist::new("loop");
        // a = and(a, b) — illegal.
        let b_in = n.add_node(NodeKind::Input);
        n.inputs.push(Bus {
            name: "b".into(),
            sigs: vec![b_in],
        });
        let placeholder = n.add_node(NodeKind::And(0, b_in));
        // Self-loop: rewrite to point at itself.
        n.nodes[placeholder as usize] = NodeKind::And(placeholder, b_in);
        n.outputs.push(Bus {
            name: "o".into(),
            sigs: vec![placeholder],
        });
        n.topo_order();
    }

    #[test]
    #[should_panic(expected = "unbound D")]
    fn unbound_dff_fails_validation() {
        let mut n = Netlist::new("ff");
        let _q = n.new_dff(false);
        n.validate();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bound_dff_panics() {
        let mut n = Netlist::new("ff");
        let q = n.new_dff(false);
        let c = n.add_node(NodeKind::Const(true));
        n.connect_dff(q, c);
        n.connect_dff(q, c);
    }

    #[test]
    fn roots_include_ff_d_inputs() {
        let mut b = Builder::new("r");
        let x = b.input("x");
        let q = b.reg(x, false);
        b.output("q", &[q]);
        let n = b.finish();
        let roots = n.roots();
        assert!(roots.contains(&x)); // x drives the FF's D
        assert!(roots.contains(&q)); // q is an output
    }
}
