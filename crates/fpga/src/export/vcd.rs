//! VCD waveform capture for netlist simulations.
//!
//! [`VcdWriter`] snapshots every named input/output bus and every
//! flip-flop (`ff{i}_q`, the same naming the BLIF and Verilog exports
//! use) once per clock and renders a Value Change Dump file: a `$var`
//! declaration per port, change-only dumping, strictly monotone `#`
//! timestamps.  The probe is engine-agnostic — [`VcdWriter::sample_sim`]
//! reads the scalar [`Sim`], [`VcdWriter::sample_lane`] reads one lane
//! of the 64-lane [`CompiledSim`] — so the same writer run against both
//! engines proves them cycle-equivalent waveform-for-waveform.
//!
//! Works on any shipped netlist; there is no trace schema to declare.
//! Typical use:
//!
//! ```
//! use p5_fpga::{Builder, Sim, VcdWriter};
//!
//! let mut b = Builder::new("toggler");
//! let d = b.input("d");
//! let q = b.reg(d, false);
//! b.output("q", &[q]);
//! let n = b.finish();
//!
//! let mut sim = Sim::new(&n);
//! let mut vcd = VcdWriter::new(&n);
//! for t in 0..4 {
//!     sim.set("d", t & 1);
//!     vcd.sample_sim(t, &mut sim);
//!     sim.step();
//! }
//! let dump = vcd.render();
//! assert!(dump.contains("$timescale 1 ns $end"));
//! assert!(dump.contains("$var wire 1"));
//! ```

use crate::compiled::CompiledSim;
use crate::netlist::{Netlist, Sig};
use crate::sim::Sim;
use std::fmt::Write as _;

/// One tracked waveform: a named bus (or single flop) and its last
/// dumped value, for change-only output.
struct Var {
    name: String,
    code: String,
    sigs: Vec<Sig>,
    last: Vec<bool>,
}

/// Incremental VCD dump builder over a netlist's ports and registers.
pub struct VcdWriter {
    module: String,
    vars: Vec<Var>,
    body: String,
    last_time: Option<u64>,
}

/// VCD identifier codes: printable ASCII `!`..`~`, little-endian base-94.
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.replace([' ', '-', '(', ')'], "_")
}

impl VcdWriter {
    /// Track every input bus, output bus and flip-flop of `n`.
    #[must_use]
    pub fn new(n: &Netlist) -> Self {
        let mut vars = Vec::new();
        for b in n.inputs.iter().chain(n.outputs.iter()) {
            vars.push((sanitize(&b.name), b.sigs.clone()));
        }
        for (i, d) in n.dffs.iter().enumerate() {
            vars.push((format!("ff{i}_q"), vec![d.q]));
        }
        let vars = vars
            .into_iter()
            .enumerate()
            .map(|(i, (name, sigs))| Var {
                name,
                code: id_code(i),
                last: vec![false; sigs.len()],
                sigs,
            })
            .collect();
        VcdWriter {
            module: sanitize(&n.name),
            vars,
            body: String::new(),
            last_time: None,
        }
    }

    /// Number of tracked waveforms (one `$var` each).
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Record the state at `time` (strictly greater than the previous
    /// sample's) by probing each tracked signal.  The first sample
    /// becomes the `$dumpvars` block; later samples dump changes only.
    pub fn sample<F: FnMut(Sig) -> bool>(&mut self, time: u64, mut probe: F) {
        if let Some(t) = self.last_time {
            assert!(
                time > t,
                "VCD timestamps must be strictly monotone: {time} after {t}"
            );
        }
        let first = self.last_time.is_none();
        let mut chunk = String::new();
        for var in &mut self.vars {
            let cur: Vec<bool> = var.sigs.iter().map(|&s| probe(s)).collect();
            if first || cur != var.last {
                if cur.len() == 1 {
                    writeln!(chunk, "{}{}", u8::from(cur[0]), var.code).unwrap();
                } else {
                    // Bus values are MSB-first in VCD; sigs are LSB-first.
                    chunk.push('b');
                    for &bit in cur.iter().rev() {
                        chunk.push(if bit { '1' } else { '0' });
                    }
                    writeln!(chunk, " {}", var.code).unwrap();
                }
                var.last = cur;
            }
        }
        if first {
            writeln!(self.body, "#{time}").unwrap();
            writeln!(self.body, "$dumpvars").unwrap();
            self.body.push_str(&chunk);
            writeln!(self.body, "$end").unwrap();
        } else if !chunk.is_empty() {
            writeln!(self.body, "#{time}").unwrap();
            self.body.push_str(&chunk);
        }
        self.last_time = Some(time);
    }

    /// Sample from the scalar simulator.
    pub fn sample_sim(&mut self, time: u64, sim: &mut Sim) {
        self.sample(time, |s| sim.peek(s));
    }

    /// Sample one lane of the 64-lane compiled simulator.
    pub fn sample_lane(&mut self, time: u64, sim: &mut CompiledSim, lane: usize) {
        self.sample(time, |s| sim.peek_lane(s, lane));
    }

    /// Render the full VCD file: header, declarations, then the dump.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "$date\n  p5-fpga waveform export\n$end").unwrap();
        writeln!(out, "$version\n  p5-fpga vcd 1\n$end").unwrap();
        writeln!(out, "$timescale 1 ns $end").unwrap();
        writeln!(out, "$scope module {} $end", self.module).unwrap();
        for var in &self.vars {
            writeln!(
                out,
                "$var wire {} {} {} $end",
                var.sigs.len(),
                var.code,
                var.name
            )
            .unwrap();
        }
        writeln!(out, "$upscope $end").unwrap();
        writeln!(out, "$enddefinitions $end").unwrap();
        out.push_str(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn counter() -> Netlist {
        let mut b = Builder::new("vcd ctr");
        let en = b.input("en");
        let q = b.state_word(3, 0);
        let one = b.const_word(1, 3);
        let zero = b.lit(false);
        let (inc, _) = b.add(&q, &one, zero);
        let next = b.mux_word(en, &inc, &q);
        b.bind_word(&q, &next);
        b.output("count", &q);
        b.finish()
    }

    #[test]
    fn header_declares_every_port_and_flop() {
        let n = counter();
        let vcd = VcdWriter::new(&n);
        assert_eq!(vcd.var_count(), 2 + n.dffs.len());
        let dump = vcd.render();
        assert!(dump.contains("$scope module vcd_ctr $end"));
        assert!(dump.contains("$timescale 1 ns $end"));
        assert!(dump.contains(" en $end"));
        assert!(dump.contains("$var wire 3"));
        assert!(dump.contains("ff0_q"));
        assert!(dump.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_only_after_dumpvars() {
        let n = counter();
        let mut sim = Sim::new(&n);
        let mut vcd = VcdWriter::new(&n);
        sim.set("en", 0);
        vcd.sample_sim(0, &mut sim);
        sim.step();
        // Nothing moved: no #1 section at all.
        vcd.sample_sim(1, &mut sim);
        sim.set("en", 1);
        vcd.sample_sim(2, &mut sim);
        sim.step();
        vcd.sample_sim(3, &mut sim);
        let dump = vcd.render();
        assert!(dump.contains("#0\n$dumpvars"));
        assert!(!dump.contains("#1\n"), "idle cycle dumped:\n{dump}");
        assert!(dump.contains("#2\n"));
        assert!(dump.contains("#3\n"));
    }

    #[test]
    fn scalar_and_compiled_lanes_dump_identically() {
        let n = counter();
        let mut gs = Sim::new(&n);
        let mut cs = CompiledSim::compile(&n);
        let mut wg = VcdWriter::new(&n);
        let mut wc = VcdWriter::new(&n);
        let pen = cs.in_port("en");
        for t in 0..12u64 {
            let en = u64::from(t % 3 != 0);
            gs.set("en", en);
            cs.set(pen, en);
            wg.sample_sim(t, &mut gs);
            wc.sample_lane(t, &mut cs, 17);
            gs.step();
            cs.step();
        }
        assert_eq!(wg.render(), wc.render());
    }

    #[test]
    #[should_panic(expected = "strictly monotone")]
    fn non_monotone_time_panics() {
        let n = counter();
        let mut sim = Sim::new(&n);
        let mut vcd = VcdWriter::new(&n);
        vcd.sample_sim(5, &mut sim);
        vcd.sample_sim(5, &mut sim);
    }
}
