//! Netlist construction combinators: the "RTL language" `p5-rtl` writes
//! the P⁵ modules in.  All gates constant-fold and share trivially so
//! the resource numbers reflect logic, not construction style.

use crate::netlist::{Bus, Netlist, NodeKind, Sig};
use std::collections::HashMap;

/// Builder wrapping a [`Netlist`] under construction.
///
/// Gates are hash-consed (structural common-subexpression elimination,
/// with commutative normalisation), as any synthesis front-end would —
/// so identical logic written twice costs once.  This matters hugely for
/// the CRC XOR networks and the byte-sorter muxes.
pub struct Builder {
    n: Netlist,
    zero: Sig,
    one: Sig,
    cse: HashMap<(u8, Sig, Sig), Sig>,
}

impl Builder {
    pub fn new(name: impl Into<String>) -> Self {
        let mut n = Netlist::new(name);
        let zero = n.add_node(NodeKind::Const(false));
        let one = n.add_node(NodeKind::Const(true));
        Self {
            n,
            zero,
            one,
            cse: HashMap::new(),
        }
    }

    /// Hash-consed gate creation (commutative ops normalised).
    fn gate(&mut self, tag: u8, a: Sig, b: Sig) -> Sig {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&s) = self.cse.get(&(tag, x, y)) {
            return s;
        }
        let kind = match tag {
            0 => NodeKind::And(x, y),
            1 => NodeKind::Or(x, y),
            2 => NodeKind::Xor(x, y),
            3 => NodeKind::Not(x),
            _ => unreachable!(),
        };
        let s = self.n.add_node(kind);
        self.cse.insert((tag, x, y), s);
        s
    }

    /// Finalise: validate and return the netlist.
    pub fn finish(self) -> Netlist {
        self.n.validate();
        self.n
    }

    /// The netlist under construction (inspection in tests).
    pub fn peek(&self) -> &Netlist {
        &self.n
    }

    // ---- constants and primary I/O -------------------------------------

    pub fn lit(&self, v: bool) -> Sig {
        if v {
            self.one
        } else {
            self.zero
        }
    }

    fn const_of(&self, s: Sig) -> Option<bool> {
        match self.n.nodes[s as usize] {
            NodeKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Single-bit primary input.
    pub fn input(&mut self, name: &str) -> Sig {
        self.input_bus(name, 1)[0]
    }

    /// Named input bus, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<Sig> {
        let sigs: Vec<Sig> = (0..width)
            .map(|_| self.n.add_node(NodeKind::Input))
            .collect();
        self.n.inputs.push(Bus {
            name: name.to_string(),
            sigs: sigs.clone(),
        });
        sigs
    }

    /// Named output bus.
    pub fn output(&mut self, name: &str, sigs: &[Sig]) {
        self.n.outputs.push(Bus {
            name: name.to_string(),
            sigs: sigs.to_vec(),
        });
    }

    // ---- gates with constant folding ------------------------------------

    pub fn not(&mut self, a: Sig) -> Sig {
        match self.const_of(a) {
            Some(v) => self.lit(!v),
            None => match self.n.nodes[a as usize] {
                // ¬¬x = x
                NodeKind::Not(x) => x,
                _ => self.gate(3, a, a),
            },
        }
    }

    pub fn and2(&mut self, a: Sig, b: Sig) -> Sig {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => self.zero,
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => self.gate(0, a, b),
        }
    }

    pub fn or2(&mut self, a: Sig, b: Sig) -> Sig {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => self.one,
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => self.gate(1, a, b),
        }
    }

    pub fn xor2(&mut self, a: Sig, b: Sig) -> Sig {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.zero,
            _ => self.gate(2, a, b),
        }
    }

    /// Balanced reduction tree (keeps logic depth logarithmic, as a
    /// synthesis tool would).
    fn reduce(&mut self, sigs: &[Sig], f: fn(&mut Self, Sig, Sig) -> Sig, empty: Sig) -> Sig {
        match sigs.len() {
            0 => empty,
            1 => sigs[0],
            _ => {
                let (lo, hi) = sigs.split_at(sigs.len() / 2);
                let (lo, hi) = (lo.to_vec(), hi.to_vec());
                let l = self.reduce(&lo, f, empty);
                let r = self.reduce(&hi, f, empty);
                f(self, l, r)
            }
        }
    }

    pub fn and_many(&mut self, sigs: &[Sig]) -> Sig {
        self.reduce(sigs, Self::and2, self.one)
    }

    pub fn or_many(&mut self, sigs: &[Sig]) -> Sig {
        self.reduce(sigs, Self::or2, self.zero)
    }

    pub fn xor_many(&mut self, sigs: &[Sig]) -> Sig {
        self.reduce(sigs, Self::xor2, self.zero)
    }

    // ---- word-level helpers ---------------------------------------------

    /// 2:1 mux: `s ? a : b`.
    pub fn mux(&mut self, s: Sig, a: Sig, b: Sig) -> Sig {
        match self.const_of(s) {
            Some(true) => return a,
            Some(false) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        let ns = self.not(s);
        let t = self.and2(s, a);
        let e = self.and2(ns, b);
        self.or2(t, e)
    }

    /// Word-wise 2:1 mux.
    pub fn mux_word(&mut self, s: Sig, a: &[Sig], b: &[Sig]) -> Vec<Sig> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.mux(s, x, y)).collect()
    }

    /// One-hot select: OR over `and(sel[i], word_i)`.
    pub fn onehot_mux_word(&mut self, sels: &[Sig], words: &[Vec<Sig>]) -> Vec<Sig> {
        assert_eq!(sels.len(), words.len());
        assert!(!words.is_empty());
        let width = words[0].len();
        (0..width)
            .map(|bit| {
                let terms: Vec<Sig> = sels
                    .iter()
                    .zip(words)
                    .map(|(&s, w)| self.and2(s, w[bit]))
                    .collect();
                self.or_many(&terms)
            })
            .collect()
    }

    /// Equality against a constant.
    pub fn eq_const(&mut self, word: &[Sig], value: u64) -> Sig {
        let bits: Vec<Sig> = word
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                if (value >> i) & 1 == 1 {
                    s
                } else {
                    self.not(s)
                }
            })
            .collect();
        self.and_many(&bits)
    }

    /// Equality of two words.
    pub fn eq_word(&mut self, a: &[Sig], b: &[Sig]) -> Sig {
        assert_eq!(a.len(), b.len());
        let bits: Vec<Sig> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = self.xor2(x, y);
                self.not(d)
            })
            .collect();
        self.and_many(&bits)
    }

    /// Constant word.
    pub fn const_word(&mut self, value: u64, width: usize) -> Vec<Sig> {
        (0..width)
            .map(|i| self.lit((value >> i) & 1 == 1))
            .collect()
    }

    /// Ripple-carry adder core (used for narrow words and within
    /// carry-select groups).
    fn add_ripple(&mut self, a: &[Sig], b: &[Sig], cin: Sig) -> (Vec<Sig>, Sig) {
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let p = self.xor2(x, y);
            let s = self.xor2(p, carry);
            let g = self.and2(x, y);
            let pc = self.and2(p, carry);
            carry = self.or2(g, pc);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Adder; returns (sum, carry-out).  Narrow words ripple; wider
    /// words use 4-bit carry-select groups (what timing-driven synthesis
    /// produces on fabrics without dedicated carry chains), keeping the
    /// depth logarithmic-ish instead of linear.
    pub fn add(&mut self, a: &[Sig], b: &[Sig], cin: Sig) -> (Vec<Sig>, Sig) {
        assert_eq!(a.len(), b.len());
        const GROUP: usize = 4;
        if a.len() <= GROUP {
            return self.add_ripple(a, b, cin);
        }
        let zero = self.lit(false);
        let one = self.lit(true);
        let mut sum = Vec::with_capacity(a.len());
        let mut carry = cin;
        for g in (0..a.len()).step_by(GROUP) {
            let hi = (g + GROUP).min(a.len());
            let (s0, c0) = self.add_ripple(&a[g..hi], &b[g..hi], zero);
            let (s1, c1) = self.add_ripple(&a[g..hi], &b[g..hi], one);
            sum.extend(self.mux_word(carry, &s1, &s0));
            carry = self.mux(carry, c1, c0);
        }
        (sum, carry)
    }

    /// a - b (two's complement); returns (diff, borrow-free flag = a≥b).
    pub fn sub(&mut self, a: &[Sig], b: &[Sig]) -> (Vec<Sig>, Sig) {
        let nb: Vec<Sig> = b.iter().map(|&x| self.not(x)).collect();
        self.add(a, &nb, self.one)
    }

    /// a ≥ b for unsigned words.
    pub fn ge(&mut self, a: &[Sig], b: &[Sig]) -> Sig {
        self.sub(a, b).1
    }

    /// Zero-extend / truncate a word.
    pub fn resize(&mut self, a: &[Sig], width: usize) -> Vec<Sig> {
        let mut out: Vec<Sig> = a.iter().copied().take(width).collect();
        while out.len() < width {
            out.push(self.zero);
        }
        out
    }

    /// Binary → one-hot decoder (output length `1 << sel.len()`).
    pub fn decode(&mut self, sel: &[Sig]) -> Vec<Sig> {
        (0..(1usize << sel.len()))
            .map(|v| self.eq_const(sel, v as u64))
            .collect()
    }

    // ---- sequential ------------------------------------------------------

    /// Flip-flop with D bound immediately.
    pub fn reg(&mut self, d: Sig, init: bool) -> Sig {
        let q = self.n.new_dff(init);
        self.n.connect_dff(q, d);
        q
    }

    /// Flip-flop with load enable, using the dedicated CE pin (free on
    /// Virtex-class slices).
    pub fn reg_en(&mut self, d: Sig, en: Sig, init: bool) -> Sig {
        if self.const_of(en) == Some(true) {
            return self.reg(d, init);
        }
        let q = self.n.new_dff_ctrl(init, Some(en), None);
        self.n.connect_dff(q, d);
        q
    }

    /// Flip-flop with CE and synchronous reset-to-init pins.
    pub fn reg_ctrl(&mut self, d: Sig, en: Option<Sig>, sr: Option<Sig>, init: bool) -> Sig {
        let q = self.n.new_dff_ctrl(init, en, sr);
        self.n.connect_dff(q, d);
        q
    }

    /// Register word with enable.
    pub fn reg_word_en(&mut self, d: &[Sig], en: Sig, init: u64) -> Vec<Sig> {
        d.iter()
            .enumerate()
            .map(|(i, &bit)| self.reg_en(bit, en, (init >> i) & 1 == 1))
            .collect()
    }

    /// Feedback register word: create Qs first, caller computes next
    /// state from them, then binds with [`Builder::bind_word`].
    pub fn state_word(&mut self, width: usize, init: u64) -> Vec<Sig> {
        (0..width)
            .map(|i| self.n.new_dff((init >> i) & 1 == 1))
            .collect()
    }

    /// Feedback register word with shared CE / sync-reset pins.
    pub fn state_word_ctrl(
        &mut self,
        width: usize,
        init: u64,
        en: Option<Sig>,
        sr: Option<Sig>,
    ) -> Vec<Sig> {
        (0..width)
            .map(|i| self.n.new_dff_ctrl((init >> i) & 1 == 1, en, sr))
            .collect()
    }

    pub fn bind_word(&mut self, qs: &[Sig], next: &[Sig]) {
        assert_eq!(qs.len(), next.len());
        for (&q, &d) in qs.iter().zip(next) {
            self.n.connect_dff(q, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    #[test]
    fn constant_folding_keeps_nets_small() {
        let mut b = Builder::new("fold");
        let x = b.input("x");
        let zero = b.lit(false);
        let one = b.lit(true);
        assert_eq!(b.and2(x, zero), zero);
        assert_eq!(b.and2(x, one), x);
        assert_eq!(b.or2(x, one), one);
        assert_eq!(b.xor2(x, zero), x);
        assert_eq!(b.xor2(x, x), zero);
        let nx = b.not(x);
        assert_eq!(b.not(nx), x);
        b.output("o", &[x]);
        assert_eq!(b.finish().gate_count(), 1); // only the single Not
    }

    #[test]
    fn adder_is_correct() {
        let mut b = Builder::new("add");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let zero = b.lit(false);
        let (sum, cout) = b.add(&a, &c, zero);
        b.output("sum", &sum);
        b.output("cout", &[cout]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (13, 242)] {
            sim.set("a", x);
            sim.set("b", y);
            sim.eval();
            assert_eq!(sim.get("sum"), (x + y) & 0xFF);
            assert_eq!(sim.get("cout"), (x + y) >> 8);
        }
    }

    #[test]
    fn comparator_and_decoder() {
        let mut b = Builder::new("cmp");
        let a = b.input_bus("a", 8);
        let is_7e = b.eq_const(&a, 0x7E);
        let sel = b.input_bus("sel", 2);
        let hot = b.decode(&sel);
        b.output("is7e", &[is_7e]);
        b.output("hot", &hot);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        sim.set("a", 0x7E);
        sim.set("sel", 2);
        sim.eval();
        assert_eq!(sim.get("is7e"), 1);
        assert_eq!(sim.get("hot"), 0b0100);
        sim.set("a", 0x7D);
        sim.eval();
        assert_eq!(sim.get("is7e"), 0);
    }

    #[test]
    fn ge_comparison() {
        let mut b = Builder::new("ge");
        let a = b.input_bus("a", 5);
        let c = b.input_bus("b", 5);
        let ge = b.ge(&a, &c);
        b.output("ge", &[ge]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for (x, y) in [(0u64, 0u64), (5, 4), (4, 5), (31, 31), (16, 17)] {
            sim.set("a", x);
            sim.set("b", y);
            sim.eval();
            assert_eq!(sim.get("ge"), (x >= y) as u64, "{x} >= {y}");
        }
    }

    #[test]
    fn register_with_enable_holds() {
        let mut b = Builder::new("reg");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.reg_en(d, en, false);
        b.output("q", &[q]);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        sim.set("d", 1);
        sim.set("en", 0);
        sim.step();
        assert_eq!(sim.get("q"), 0, "disabled: holds reset value");
        sim.set("en", 1);
        sim.step();
        assert_eq!(sim.get("q"), 1);
        sim.set("d", 0);
        sim.set("en", 0);
        sim.step();
        assert_eq!(sim.get("q"), 1, "holds");
    }

    #[test]
    fn counter_via_state_word() {
        let mut b = Builder::new("ctr");
        let q = b.state_word(4, 0);
        let one_w = b.const_word(1, 4);
        let zero = b.lit(false);
        let (next, _) = b.add(&q, &one_w, zero);
        b.bind_word(&q, &next);
        b.output("count", &q);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for i in 0..20u64 {
            assert_eq!(sim.get("count"), i & 0xF);
            sim.step();
        }
    }

    #[test]
    fn onehot_mux_selects() {
        let mut b = Builder::new("ohm");
        let s = b.input_bus("s", 3);
        let w0 = b.const_word(0x11, 8);
        let w1 = b.const_word(0x22, 8);
        let w2 = b.const_word(0x33, 8);
        let out = b.onehot_mux_word(&s, &[w0, w1, w2]);
        b.output("o", &out);
        let n = b.finish();
        let mut sim = Sim::new(&n);
        for (sel, expect) in [(1u64, 0x11u64), (2, 0x22), (4, 0x33), (0, 0)] {
            sim.set("s", sel);
            sim.eval();
            assert_eq!(sim.get("o"), expect);
        }
    }
}
