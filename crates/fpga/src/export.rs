//! BLIF export of mapped netlists — so the P⁵ modules can be carried
//! into real open-source FPGA flows (ABC, VTR, nextpnr) for independent
//! verification of the resource numbers.
//!
//! The Berkeley Logic Interchange Format has no native CE/SR register
//! pins, so those are materialised as explicit mux logic around the
//! latch (which is what a BLIF consumer's own mapper would re-absorb).

pub mod vcd;

use crate::lutsim::LutNetwork;
use crate::netlist::{NodeKind, Sig};
use std::fmt::Write;

fn sig_name(net: &LutNetwork, s: Sig) -> String {
    // Prefer bus names for primary inputs/outputs.
    for b in net.n.inputs.iter().chain(net.n.outputs.iter()) {
        if let Some(i) = b.sigs.iter().position(|&x| x == s) {
            return format!("{}_{}", b.name.replace([' ', '-'], "_"), i);
        }
    }
    match net.n.nodes[s as usize] {
        NodeKind::FfOutput(i) => format!("ff{i}_q"),
        NodeKind::Const(false) => "const0".into(),
        NodeKind::Const(true) => "const1".into(),
        _ => format!("n{s}"),
    }
}

/// Render a mapped netlist (with truth tables) as a BLIF model.
pub fn to_blif(net: &LutNetwork) -> String {
    let mut out = String::new();
    let model = net.n.name.replace([' ', '-'], "_");
    writeln!(out, ".model {model}").unwrap();

    let inputs: Vec<String> = net
        .n
        .inputs
        .iter()
        .flat_map(|b| b.sigs.iter().map(|&s| sig_name(net, s)))
        .collect();
    writeln!(out, ".inputs {}", inputs.join(" ")).unwrap();
    let outputs: Vec<String> = net
        .n
        .outputs
        .iter()
        .flat_map(|b| b.sigs.iter().map(|&s| sig_name(net, s)))
        .collect();
    writeln!(out, ".outputs {}", outputs.join(" ")).unwrap();

    // Constants.
    writeln!(out, ".names const0").unwrap(); // empty cover = 0
    writeln!(out, ".names const1\n1").unwrap();

    // LUTs.
    for lut in &net.luts {
        let ins: Vec<String> = lut.leaves.iter().map(|&l| sig_name(net, l)).collect();
        writeln!(out, ".names {} {}", ins.join(" "), sig_name(net, lut.root)).unwrap();
        let k = lut.leaves.len();
        for idx in 0..(1u16 << k) {
            if (lut.truth >> idx) & 1 == 1 {
                let pattern: String = (0..k)
                    .map(|b| if (idx >> b) & 1 == 1 { '1' } else { '0' })
                    .collect();
                writeln!(out, "{pattern} 1").unwrap();
            }
        }
    }

    // Latches, with CE/SR materialised as muxes.
    for (i, dff) in net.n.dffs.iter().enumerate() {
        let q = format!("ff{i}_q");
        let mut d = sig_name(net, dff.d.expect("validated"));
        if let Some(en) = dff.en {
            let en_n = sig_name(net, en);
            let gated = format!("ff{i}_dce");
            // gated = en ? d : q
            writeln!(out, ".names {en_n} {d} {q} {gated}\n11- 1\n0-1 1").unwrap();
            d = gated;
        }
        if let Some(sr) = dff.sr {
            let sr_n = sig_name(net, sr);
            let gated = format!("ff{i}_dsr");
            if dff.init {
                // gated = sr | d
                writeln!(out, ".names {sr_n} {d} {gated}\n1- 1\n-1 1").unwrap();
            } else {
                // gated = !sr & d
                writeln!(out, ".names {sr_n} {d} {gated}\n01 1").unwrap();
            }
            d = gated;
        }
        writeln!(out, ".latch {d} {q} re clk {}", u8::from(dff.init)).unwrap();
    }

    // Outputs driven directly by leaves need buffers.
    for b in &net.n.outputs {
        for &s in &b.sigs {
            let name = sig_name(net, s);
            let is_lut_root = net.luts.iter().any(|l| l.root == s);
            let is_input = net.n.inputs.iter().any(|ib| ib.sigs.contains(&s));
            if !is_lut_root && !is_input {
                // FF output or constant feeding a primary output: alias.
                match net.n.nodes[s as usize] {
                    NodeKind::FfOutput(i) => writeln!(out, ".names ff{i}_q {name}\n1 1").unwrap(),
                    NodeKind::Const(v) => {
                        writeln!(out, ".names const{} {name}\n1 1", u8::from(v)).unwrap()
                    }
                    _ => {}
                }
            }
        }
    }

    writeln!(out, ".end").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::map::{map, MapMode};

    fn sample() -> crate::netlist::Netlist {
        let mut b = Builder::new("blif sample");
        let x = b.input_bus("x", 4);
        let en = b.input("en");
        let y = b.xor_many(&x);
        let q = b.reg_en(y, en, false);
        b.output("q", &[q]);
        b.finish()
    }

    #[test]
    fn blif_has_model_io_and_latch() {
        let n = sample();
        let m = map(&n, MapMode::Depth);
        let net = LutNetwork::new(&n, &m);
        let blif = to_blif(&net);
        assert!(blif.contains(".model blif_sample"));
        assert!(blif.contains(".inputs"));
        assert!(blif.contains(".outputs q_0"));
        assert!(blif.contains(".latch"));
        assert!(blif.contains(".end"));
        // The XOR4 LUT: 8 minterms with parity 1.
        let lut_lines = blif
            .lines()
            .skip_while(|l| !l.starts_with(".names x_"))
            .take_while(|l| !l.starts_with('.'))
            .count();
        let _ = lut_lines;
    }

    #[test]
    fn blif_ce_materialises_mux() {
        let n = sample();
        let m = map(&n, MapMode::Depth);
        let net = LutNetwork::new(&n, &m);
        let blif = to_blif(&net);
        assert!(blif.contains("ff0_dce"), "{blif}");
    }

    #[test]
    fn every_lut_root_has_a_names_block() {
        let n = sample();
        let m = map(&n, MapMode::Area);
        let net = LutNetwork::new(&n, &m);
        let blif = to_blif(&net);
        for lut in &net.luts {
            let name = super::sig_name(&net, lut.root);
            assert!(
                blif.contains(&format!(" {name}\n")),
                "missing driver for {name}"
            );
        }
    }
}
