//! Time-series primitives over the metrics registry: windowed readings
//! instead of run-lifetime aggregates.
//!
//! A [`Snapshot`] is monotone — every counter and histogram bucket only
//! grows — so the *difference* of two snapshots of the same component is
//! itself a well-formed reading covering just that window.
//! [`SnapshotDelta`] computes that difference and [`TimeSeries`] keeps a
//! fixed-capacity ring of them, which is what a live scraper wants:
//! "frames per second over the last window", "p99 latency of the frames
//! delivered since the previous sample", not "mean since boot".

use std::collections::VecDeque;

use crate::metrics::{Histogram, Snapshot};

impl Histogram {
    /// The histogram of observations made *after* `earlier` was taken,
    /// assuming `self` is a later reading of the same histogram
    /// (bucket-wise monotone).  Buckets subtract saturating, so a
    /// mismatched pair degrades to empty buckets instead of wrapping.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (idx, (a, b)) in self
            .buckets()
            .iter()
            .zip(earlier.buckets().iter())
            .enumerate()
        {
            out.add_bucket(idx, a.saturating_sub(*b));
        }
        out.set_sum(self.sum().saturating_sub(earlier.sum()));
        out
    }
}

/// The change between two snapshots of one component: counter deltas by
/// name and histogram bucket deltas, over `ticks` of elapsed link time.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDelta {
    /// Scope of the later snapshot.
    pub scope: String,
    /// Elapsed ticks (or cycles — the sampler's clock domain) covered.
    pub ticks: u64,
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, Histogram)>,
}

impl SnapshotDelta {
    /// `later - earlier`, matched by counter/histogram name.  Names only
    /// present in `later` are taken whole (a component that appeared
    /// mid-run); names only in `earlier` are dropped.  Counter deltas
    /// subtract saturating, so a reset component reads as zero, not as
    /// a wrap to 2⁶⁴.
    pub fn between(earlier: &Snapshot, later: &Snapshot, ticks: u64) -> Self {
        let counters = later
            .counters
            .iter()
            .map(|(name, v)| {
                let prev = earlier.get(name).unwrap_or(0);
                (name.clone(), v.saturating_sub(prev))
            })
            .collect();
        let histograms = later
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match earlier.histograms.iter().find(|(n, _)| n == name) {
                    Some((_, prev)) => h.diff(prev),
                    None => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        SnapshotDelta {
            scope: later.scope.clone(),
            ticks,
            counters,
            histograms,
        }
    }

    /// Look up a counter delta by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Counter delta divided by the window length, in events per tick.
    /// Zero-length windows read as a zero rate rather than a division.
    pub fn rate_per_tick(&self, name: &str) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.get(name).unwrap_or(0) as f64 / self.ticks as f64
    }

    /// Histogram delta by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// One retained sample: the tick it was taken at and the delta since the
/// previous sample.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    pub tick: u64,
    pub delta: SnapshotDelta,
}

/// A fixed-capacity ring of [`SeriesPoint`]s plus the last absolute
/// snapshot, so each [`TimeSeries::record`] call yields the windowed
/// delta.  Storage is bounded at construction: a collector sampling a
/// week-long soak holds the same memory as one sampling a smoke test.
#[derive(Debug)]
pub struct TimeSeries {
    cap: usize,
    points: VecDeque<SeriesPoint>,
    last: Option<(u64, Snapshot)>,
    /// Points evicted because the ring was full.
    evicted: u64,
}

impl TimeSeries {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        TimeSeries {
            cap,
            points: VecDeque::with_capacity(cap),
            last: None,
            evicted: 0,
        }
    }

    /// Record an absolute snapshot taken at `tick`.  The first call
    /// seeds the baseline and produces no point; every later call
    /// appends the delta window since the previous call (evicting the
    /// oldest point when full) and returns a reference to it.
    pub fn record(&mut self, tick: u64, snap: &Snapshot) -> Option<&SeriesPoint> {
        let point = self.last.as_ref().map(|(prev_tick, prev)| SeriesPoint {
            tick,
            delta: SnapshotDelta::between(prev, snap, tick.saturating_sub(*prev_tick)),
        });
        self.last = Some((tick, snap.clone()));
        let point = point?;
        if self.points.len() == self.cap {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back(point);
        self.points.back()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// The most recent point, if any.
    pub fn latest(&self) -> Option<&SeriesPoint> {
        self.points.back()
    }

    /// Sum of one counter's deltas over the most recent `window` points.
    pub fn window_total(&self, name: &str, window: usize) -> u64 {
        self.points
            .iter()
            .rev()
            .take(window)
            .map(|p| p.delta.get(name).unwrap_or(0))
            .sum()
    }

    /// Events per tick for `name` over the most recent `window` points
    /// (total delta / total ticks — a zero-tick window reads 0.0).
    pub fn window_rate_per_tick(&self, name: &str, window: usize) -> f64 {
        let ticks: u64 = self
            .points
            .iter()
            .rev()
            .take(window)
            .map(|p| p.delta.ticks)
            .sum();
        if ticks == 0 {
            return 0.0;
        }
        self.window_total(name, window) as f64 / ticks as f64
    }

    /// Bucket-merged histogram delta for `name` over the most recent
    /// `window` points — feed its `quantile_bound(0.99)` for a windowed
    /// p99 instead of a run-lifetime one.
    pub fn window_histogram(&self, name: &str, window: usize) -> Histogram {
        let mut out = Histogram::new();
        for p in self.points.iter().rev().take(window) {
            if let Some(h) = p.delta.histogram(name) {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(scope: &str, frames: u64, lat: &[u64]) -> Snapshot {
        let mut h = Histogram::new();
        for &v in lat {
            h.observe(v);
        }
        Snapshot::new(scope)
            .counter("frames", frames)
            .histogram("lat", h)
    }

    #[test]
    fn delta_subtracts_counters_and_buckets() {
        let a = snap("link", 10, &[4, 4, 100]);
        let b = snap("link", 25, &[4, 4, 4, 100, 3000]);
        let d = SnapshotDelta::between(&a, &b, 8);
        assert_eq!(d.get("frames"), Some(15));
        assert_eq!(d.ticks, 8);
        let lat = d.histogram("lat").unwrap();
        assert_eq!(lat.count(), 2);
        // One new observation in ≤7 (the third 4), one in ≤4095.
        assert_eq!(lat.nonzero_buckets(), vec![(7, 1), (4095, 1)]);
        assert!((d.rate_per_tick("frames") - 15.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn delta_tolerates_resets_and_new_names() {
        // A "reset" (later < earlier) saturates to zero, never wraps.
        let a = Snapshot::new("x").counter("c", 50);
        let b = Snapshot::new("x").counter("c", 10).counter("fresh", 3);
        let d = SnapshotDelta::between(&a, &b, 1);
        assert_eq!(d.get("c"), Some(0));
        assert_eq!(d.get("fresh"), Some(3));
        assert_eq!(d.get("gone"), None);
        assert_eq!(SnapshotDelta::between(&a, &b, 0).rate_per_tick("c"), 0.0);
    }

    #[test]
    fn histogram_diff_is_windowed() {
        let mut early = Histogram::new();
        early.observe(5);
        early.observe(200);
        let mut late = early.clone();
        late.observe(5);
        late.observe(70_000);
        let d = late.diff(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 70_005);
        assert_eq!(d.quantile_bound(1.0), Some(131_071));
        // Diffing against a *later* reading saturates empty.
        assert_eq!(early.diff(&late).count(), 0);
    }

    #[test]
    fn series_ring_is_bounded_and_windowed() {
        let mut ts = TimeSeries::with_capacity(3);
        assert!(ts.record(0, &snap("f", 0, &[])).is_none(), "baseline");
        for k in 1..=5u64 {
            // Snapshots are monotone: sample k has observed 1..=k.
            let lat: Vec<u64> = (1..=k).collect();
            let p = ts
                .record(k * 10, &snap("f", k * 7, &lat))
                .expect("delta point");
            assert_eq!(p.delta.get("frames"), Some(7));
            assert_eq!(p.delta.ticks, 10);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.evicted(), 2);
        assert_eq!(ts.latest().unwrap().tick, 50);
        assert_eq!(ts.window_total("frames", 2), 14);
        assert!((ts.window_rate_per_tick("frames", 3) - 21.0 / 30.0).abs() < 1e-12);
        // Windowed histogram merges the last two deltas (one obs each).
        assert_eq!(ts.window_histogram("lat", 2).count(), 2);
        assert_eq!(ts.window_rate_per_tick("missing", 2), 0.0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ts = TimeSeries::with_capacity(0);
        ts.record(0, &snap("f", 0, &[]));
        ts.record(1, &snap("f", 1, &[]));
        ts.record(2, &snap("f", 2, &[]));
        assert_eq!(ts.capacity(), 1);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.latest().unwrap().tick, 2);
    }
}
