//! Cycle-stamped trace events: the frame lifecycle the paper's OAM block
//! makes software-visible (Figure 2's status/interrupt path), extended
//! with per-boundary backpressure and the µP register-write bus.

/// Identifier threaded alongside a frame through `WireBuf` tags and the
/// device queues.  `0` means "untracked" (legacy producers that predate
/// tracing keep working); real ids start at 1 and are monotone per
/// direction.
pub type FrameId = u32;

/// What happened.  The first seven variants are the frame lifecycle in
/// pipeline order: submit → framed → stuffed → wire → delineated →
/// CRC verdict → delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Software handed a datagram to the transmit queue.
    Submit { id: FrameId, len: u32 },
    /// The TX control stage finished emitting the frame body (address,
    /// control, protocol, payload) into the CRC stage.
    Framed { id: FrameId },
    /// The escape-generate stage pushed the frame's closing flag into its
    /// staging buffer: the stuffed image is complete.
    Stuffed { id: FrameId },
    /// The last stuffed byte of the frame left the device for the wire.
    Wire { id: FrameId },
    /// The escape-detect stage saw the frame's closing flag: one
    /// delineated frame handed up for checking.
    Delineated { id: FrameId },
    /// The FCS comparison for a delineated frame.
    CrcVerdict { id: FrameId, ok: bool },
    /// The frame passed all checks and reached the receive queue.
    Delivered { id: FrameId, len: u32 },
    /// A `Stack` boundary refused an offered transfer this sweep.
    Backpressure { boundary: &'static str },
    /// The µP wrote an OAM register over the MMIO bus.
    OamWrite { addr: u32, value: u32 },
    /// A fault-injection stage perturbed the wire (`p5-fault`).  `kind`
    /// is the stable `FaultKind` name (e.g. `"bit_error"`, `"slip"`).
    Fault { kind: &'static str },
}

impl EventKind {
    /// Stable lowercase name for rendering and JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submit { .. } => "submit",
            EventKind::Framed { .. } => "framed",
            EventKind::Stuffed { .. } => "stuffed",
            EventKind::Wire { .. } => "wire",
            EventKind::Delineated { .. } => "delineated",
            EventKind::CrcVerdict { .. } => "crc_verdict",
            EventKind::Delivered { .. } => "delivered",
            EventKind::Backpressure { .. } => "backpressure",
            EventKind::OamWrite { .. } => "oam_write",
            EventKind::Fault { .. } => "fault",
        }
    }

    /// The frame this event belongs to, for lifecycle events.
    pub fn frame_id(&self) -> Option<FrameId> {
        match *self {
            EventKind::Submit { id, .. }
            | EventKind::Framed { id }
            | EventKind::Stuffed { id }
            | EventKind::Wire { id }
            | EventKind::Delineated { id }
            | EventKind::CrcVerdict { id, .. }
            | EventKind::Delivered { id, .. } => Some(id),
            EventKind::Backpressure { .. }
            | EventKind::OamWrite { .. }
            | EventKind::Fault { .. } => None,
        }
    }
}

/// One recorded observation: what happened and on which device cycle
/// (`Stack` sweep, line clock, or OAM regfile version — the recording
/// component documents which clock domain it stamps with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub cycle: u64,
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_events_carry_frame_ids() {
        assert_eq!(EventKind::Submit { id: 7, len: 40 }.frame_id(), Some(7));
        assert_eq!(
            EventKind::CrcVerdict { id: 9, ok: true }.frame_id(),
            Some(9)
        );
        assert_eq!(
            EventKind::Backpressure { boundary: "p5-tx" }.frame_id(),
            None
        );
        assert_eq!(EventKind::OamWrite { addr: 0, value: 1 }.frame_id(), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::Wire { id: 1 }.name(), "wire");
        assert_eq!(EventKind::Delivered { id: 1, len: 2 }.name(), "delivered");
    }
}
