//! `p5-trace`: the unified observability layer.
//!
//! The paper's P⁵ is debuggable because its OAM block exposes the framer's
//! internal state to software (counters, status registers, interrupts).
//! This crate generalises that idea across the whole reproduction:
//!
//! * [`Event`]/[`EventKind`] — cycle-stamped frame-lifecycle, backpressure
//!   and OAM-write events, recorded through a [`TraceSink`].
//! * [`RingRecorder`] — a preallocated event ring; zero allocation in the
//!   steady state.  [`NullSink`] is the free-when-disabled default.
//! * [`Snapshot`]/[`Observable`] — the metrics registry every stage,
//!   pipeline and device reports through, with log2-bucket [`Histogram`]s
//!   and JSON / Prometheus text exposition ([`PromFamily`] for labelled,
//!   bounded-cardinality families).
//! * [`SnapshotDelta`]/[`TimeSeries`] — windowed diffs of the monotone
//!   snapshots: rates and windowed quantiles over a fixed-capacity ring,
//!   the live-telemetry primitive `p5-obs` samples.
//!
//! The crate is dependency-free and sits below `p5-stream`, so every layer
//! of the stack (behavioural stages, WordStream stacks, the gate-level
//! simulators) can report through the same types.

pub mod event;
pub mod metrics;
pub mod series;
pub mod sink;

pub use event::{Event, EventKind, FrameId};
pub use metrics::{
    prom_escape_label, render_prometheus, render_table, snapshot_to_json, to_json, to_prometheus,
    Histogram, Observable, PromFamily, PromKind, PromSeries, Snapshot,
};
pub use series::{SeriesPoint, SnapshotDelta, TimeSeries};
pub use sink::{NullSink, RingRecorder, SharedRecorder, TraceSink};
