//! The metrics registry: log2-bucket histograms, per-component
//! [`Snapshot`]s of monotonic counters, and the [`Observable`] trait every
//! stage/device implements.  Snapshots export as JSON and as Prometheus
//! text exposition so a sweep harness or a scrape endpoint can consume
//! them unchanged.

use std::fmt::Write as _;

/// Power-of-two bucketed histogram for cycle counts and byte sizes.
/// Bucket 0 holds the value 0; bucket `k` (1..=64) holds values whose bit
/// length is `k`, i.e. the range `[2^(k-1), 2^k - 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_bound(idx: usize) -> u64 {
        match idx {
            0 => 0,
            64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Inclusive upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `[0, 1]`).  A log2 histogram cannot resolve
    /// positions inside a bucket, so this is the quantile's bucket
    /// ceiling — the conservative bound a latency gate wants.  Returns
    /// `None` on an empty histogram.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(Self::bucket_bound(idx));
            }
        }
        Some(u64::MAX)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }

    /// Compact one-line rendering: `count=12 mean=34.5 | ≤3:2 ≤7:10`.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "count=0".to_string();
        }
        let mut s = format!("count={} mean={:.1} |", self.count, self.mean());
        for (bound, c) in self.nonzero_buckets() {
            let _ = write!(s, " <={bound}:{c}");
        }
        s
    }
}

/// A named, point-in-time reading of one component: monotonic counters
/// plus histograms.  Names are stable strings — the metric schema
/// documented in DESIGN.md §13.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Component identity, e.g. `"p5-tx"` or `"oc-path"`.
    pub scope: String,
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    pub fn new(scope: impl Into<String>) -> Self {
        Snapshot {
            scope: scope.into(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Builder-style counter append.
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Builder-style histogram append.
    pub fn histogram(mut self, name: impl Into<String>, hist: Histogram) -> Self {
        self.histograms.push((name.into(), hist));
        self
    }

    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Look up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Exact fleet aggregation: counters summed by name (unknown names
    /// appended, order preserved), histograms bucket-added likewise.
    /// `other.scope` is ignored — the caller owns the merged identity —
    /// so N per-link snapshots fold into one fleet-level reading without
    /// export-side string concatenation.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
    }

    /// Fold another snapshot's counters into this one (matched by name;
    /// unknown names are appended), histograms merged likewise.
    /// Alias for [`Snapshot::merge`], kept for the pre-fleet callers.
    pub fn absorb(&mut self, other: &Snapshot) {
        self.merge(other);
    }
}

/// Anything that can report a [`Snapshot`] of itself: every stream stage,
/// pipeline, SONET path/channel, PPP endpoint, and the OAM regfile.
pub trait Observable {
    fn snapshot(&self) -> Snapshot;
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Lowercase, `[a-z0-9_]`-only identifier for Prometheus metric names.
fn prom_sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// One snapshot as a JSON object.
pub fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"scope\":\"{}\",\"counters\":{{",
        json_escape(&snap.scope)
    );
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", json_escape(name), value);
    }
    s.push_str("},\"histograms\":{");
    for (i, (name, hist)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            json_escape(name),
            hist.count(),
            hist.sum()
        );
        for (j, (bound, c)) in hist.nonzero_buckets().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{bound},{c}]");
        }
        s.push_str("]}");
    }
    s.push_str("}}");
    s
}

/// A snapshot set as a JSON array.
pub fn to_json(snaps: &[Snapshot]) -> String {
    let mut s = String::from("[");
    for (i, snap) in snaps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&snapshot_to_json(snap));
    }
    s.push(']');
    s
}

/// Prometheus text exposition: counters as
/// `p5_<scope>_<name> <value>`, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`.
pub fn to_prometheus(snaps: &[Snapshot]) -> String {
    let mut s = String::new();
    for snap in snaps {
        let scope = prom_sanitize(&snap.scope);
        for (name, value) in &snap.counters {
            let _ = writeln!(s, "p5_{scope}_{} {value}", prom_sanitize(name));
        }
        for (name, hist) in &snap.histograms {
            let metric = format!("p5_{scope}_{}", prom_sanitize(name));
            let mut cumulative = 0;
            for (bound, c) in hist.nonzero_buckets() {
                cumulative += c;
                let _ = writeln!(s, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(s, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(s, "{metric}_sum {}", hist.sum());
            let _ = writeln!(s, "{metric}_count {}", hist.count());
        }
    }
    s
}

/// Human-readable aligned table over a snapshot set: one row per counter,
/// then one line per histogram.
pub fn render_table(snaps: &[Snapshot]) -> String {
    let scope_w = snaps
        .iter()
        .map(|s| s.scope.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let name_w = snaps
        .iter()
        .flat_map(|s| s.counters.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(7)
        .max(7);
    let mut out = format!("{:<scope_w$}  {:<name_w$}  value\n", "scope", "counter");
    for snap in snaps {
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{:<scope_w$}  {name:<name_w$}  {value}", snap.scope);
        }
    }
    for snap in snaps {
        for (name, hist) in &snap.histograms {
            let _ = writeln!(out, "{}/{}: {}", snap.scope, name, hist.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let buckets = h.nonzero_buckets();
        // 0 → ≤0; 1 → ≤1; 2,3 → ≤3; 4,7 → ≤7; 8 → ≤15; MAX → ≤MAX.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn histogram_merge_and_mean() {
        let mut a = Histogram::new();
        a.observe(10);
        let mut b = Histogram::new();
        b.observe(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_lookup_and_absorb() {
        let mut a = Snapshot::new("tx")
            .counter("frames", 3)
            .counter("bytes", 100);
        let b = Snapshot::new("tx2")
            .counter("frames", 2)
            .counter("stalls", 7);
        a.absorb(&b);
        assert_eq!(a.get("frames"), Some(5));
        assert_eq!(a.get("stalls"), Some(7));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_buckets() {
        let mut h1 = Histogram::new();
        h1.observe(3);
        h1.observe(100);
        let mut h2 = Histogram::new();
        h2.observe(3);
        let mut a = Snapshot::new("fleet")
            .counter("frames", 3)
            .histogram("lat", h1);
        let b = Snapshot::new("link-42")
            .counter("frames", 2)
            .counter("sheds", 1)
            .histogram("lat", h2.clone())
            .histogram("size", h2);
        a.merge(&b);
        // Counters sum by name; unknown names append in order.
        assert_eq!(a.get("frames"), Some(5));
        assert_eq!(a.get("sheds"), Some(1));
        // Scope stays the merge target's identity.
        assert_eq!(a.scope, "fleet");
        // Histogram buckets add: two observations of 3 → count 2 at ≤3.
        let lat = &a.histograms.iter().find(|(n, _)| n == "lat").unwrap().1;
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.nonzero_buckets(), vec![(3, 2), (127, 1)]);
        // Unknown histogram appended whole.
        assert!(a.histograms.iter().any(|(n, _)| n == "size"));
    }

    #[test]
    fn merge_is_associative_over_counters() {
        let parts = [
            Snapshot::new("a").counter("x", 1).counter("y", 10),
            Snapshot::new("b").counter("x", 2),
            Snapshot::new("c").counter("y", 20).counter("z", 5),
        ];
        let mut left = Snapshot::new("fleet");
        for p in &parts {
            left.merge(p);
        }
        let mut pair = parts[1].clone();
        pair.merge(&parts[2]);
        let mut right = Snapshot::new("fleet");
        right.merge(&parts[0]);
        right.merge(&pair);
        assert_eq!(left.counters, right.counters);
    }

    #[test]
    fn quantile_bound_picks_bucket_ceilings() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_bound(0.99), None);
        for _ in 0..99 {
            h.observe(3); // bucket ≤3
        }
        h.observe(1000); // bucket ≤1023
        assert_eq!(h.quantile_bound(0.0), Some(3));
        assert_eq!(h.quantile_bound(0.5), Some(3));
        assert_eq!(h.quantile_bound(0.99), Some(3));
        // The 100th observation is the outlier.
        assert_eq!(h.quantile_bound(1.0), Some(1023));
        let mut single = Histogram::new();
        single.observe(0);
        assert_eq!(single.quantile_bound(0.99), Some(0));
    }

    #[test]
    fn json_shape() {
        let snap = Snapshot::new("p5-tx")
            .counter("frames", 3)
            .histogram("lat", {
                let mut h = Histogram::new();
                h.observe(5);
                h
            });
        let j = snapshot_to_json(&snap);
        assert!(j.contains("\"scope\":\"p5-tx\""));
        assert!(j.contains("\"frames\":3"));
        assert!(j.contains("\"buckets\":[[7,1]]"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn prometheus_shape() {
        let mut h = Histogram::new();
        h.observe(2);
        h.observe(100);
        let snap = Snapshot::new("oc-path")
            .counter("b1-errors", 4)
            .histogram("burst", h);
        let p = to_prometheus(&[snap]);
        assert!(p.contains("p5_oc_path_b1_errors 4\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"3\"} 1\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"127\"} 2\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"+Inf\"} 2\n"));
        assert!(p.contains("p5_oc_path_burst_count 2\n"));
    }

    #[test]
    fn table_renders_all_scopes() {
        let t = render_table(&[
            Snapshot::new("a").counter("x", 1),
            Snapshot::new("long-scope").counter("y", 2),
        ]);
        assert!(t.contains("long-scope"));
        assert!(t.lines().count() >= 3);
    }
}
