//! The metrics registry: log2-bucket histograms, per-component
//! [`Snapshot`]s of monotonic counters, and the [`Observable`] trait every
//! stage/device implements.  Snapshots export as JSON and as Prometheus
//! text exposition so a sweep harness or a scrape endpoint can consume
//! them unchanged.

use std::fmt::Write as _;

/// Power-of-two bucketed histogram for cycle counts and byte sizes.
/// Bucket 0 holds the value 0; bucket `k` (1..=64) holds values whose bit
/// length is `k`, i.e. the range `[2^(k-1), 2^k - 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_bound(idx: usize) -> u64 {
        match idx {
            0 => 0,
            64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Raw bucket counts (65 log2 buckets; index `k` holds the range
    /// documented on [`Histogram::bucket_bound`]).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Add `n` observations directly into bucket `idx` (the windowed
    /// diff path — `sum` must be fixed up separately via `set_sum`).
    pub(crate) fn add_bucket(&mut self, idx: usize, n: u64) {
        self.buckets[idx] += n;
        self.count += n;
    }

    pub(crate) fn set_sum(&mut self, sum: u64) {
        self.sum = sum;
    }

    /// Inclusive upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `[0, 1]`).  A log2 histogram cannot resolve
    /// positions inside a bucket, so this is the quantile's bucket
    /// ceiling — the conservative bound a latency gate wants.  Returns
    /// `None` on an empty histogram.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(Self::bucket_bound(idx));
            }
        }
        Some(u64::MAX)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }

    /// Compact one-line rendering: `count=12 mean=34.5 | ≤3:2 ≤7:10`.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "count=0".to_string();
        }
        let mut s = format!("count={} mean={:.1} |", self.count, self.mean());
        for (bound, c) in self.nonzero_buckets() {
            let _ = write!(s, " <={bound}:{c}");
        }
        s
    }
}

/// A named, point-in-time reading of one component: monotonic counters
/// plus histograms.  Names are stable strings — the metric schema
/// documented in DESIGN.md §13.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Component identity, e.g. `"p5-tx"` or `"oc-path"`.
    pub scope: String,
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    pub fn new(scope: impl Into<String>) -> Self {
        Snapshot {
            scope: scope.into(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Builder-style counter append.
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Builder-style histogram append.
    pub fn histogram(mut self, name: impl Into<String>, hist: Histogram) -> Self {
        self.histograms.push((name.into(), hist));
        self
    }

    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Look up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Exact fleet aggregation: counters summed by name (unknown names
    /// appended, order preserved), histograms bucket-added likewise.
    /// `other.scope` is ignored — the caller owns the merged identity —
    /// so N per-link snapshots fold into one fleet-level reading without
    /// export-side string concatenation.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
    }

    /// Fold another snapshot's counters into this one (matched by name;
    /// unknown names are appended), histograms merged likewise.
    /// Alias for [`Snapshot::merge`], kept for the pre-fleet callers.
    pub fn absorb(&mut self, other: &Snapshot) {
        self.merge(other);
    }
}

/// Anything that can report a [`Snapshot`] of itself: every stream stage,
/// pipeline, SONET path/channel, PPP endpoint, and the OAM regfile.
pub trait Observable {
    fn snapshot(&self) -> Snapshot;
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Lowercase, `[a-z0-9_]`-only identifier for Prometheus metric names.
fn prom_sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// One snapshot as a JSON object.
pub fn snapshot_to_json(snap: &Snapshot) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"scope\":\"{}\",\"counters\":{{",
        json_escape(&snap.scope)
    );
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{}", json_escape(name), value);
    }
    s.push_str("},\"histograms\":{");
    for (i, (name, hist)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            json_escape(name),
            hist.count(),
            hist.sum()
        );
        for (j, (bound, c)) in hist.nonzero_buckets().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{bound},{c}]");
        }
        s.push_str("]}");
    }
    s.push_str("}}");
    s
}

/// A snapshot set as a JSON array.
pub fn to_json(snaps: &[Snapshot]) -> String {
    let mut s = String::from("[");
    for (i, snap) in snaps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&snapshot_to_json(snap));
    }
    s.push(']');
    s
}

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double-quote and newline.
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline (quotes are legal).
fn prom_escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Exposition type of one metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    Counter,
    Gauge,
    Histogram,
}

impl PromKind {
    fn keyword(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// One labelled series inside a family: scalar for counter/gauge
/// families, a whole [`Histogram`] for histogram families.
#[derive(Debug, Clone)]
pub enum PromSeries {
    Value {
        labels: Vec<(String, String)>,
        value: u64,
    },
    Histogram {
        labels: Vec<(String, String)>,
        hist: Box<Histogram>,
    },
}

/// A metric family: one name, one `# HELP`/`# TYPE` header pair, any
/// number of labelled series.  Bounded-cardinality exports build these
/// directly; [`to_prometheus`] builds them from [`Snapshot`]s.
#[derive(Debug, Clone)]
pub struct PromFamily {
    /// Full family name (sanitized by the constructor).
    pub name: String,
    pub help: String,
    pub kind: PromKind,
    pub series: Vec<PromSeries>,
}

impl PromFamily {
    pub fn new(name: &str, kind: PromKind, help: impl Into<String>) -> Self {
        PromFamily {
            name: prom_sanitize(name),
            help: help.into(),
            kind,
            series: Vec::new(),
        }
    }

    /// Append one scalar sample; labels are `(name, value)` pairs,
    /// values escaped at render time.
    pub fn sample(
        mut self,
        labels: impl IntoIterator<Item = (&'static str, String)>,
        value: u64,
    ) -> Self {
        self.push_sample(labels, value);
        self
    }

    pub fn push_sample(
        &mut self,
        labels: impl IntoIterator<Item = (&'static str, String)>,
        value: u64,
    ) {
        self.series.push(PromSeries::Value {
            labels: labels
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            value,
        });
    }

    pub fn push_histogram(
        &mut self,
        labels: impl IntoIterator<Item = (&'static str, String)>,
        hist: Histogram,
    ) {
        self.series.push(PromSeries::Histogram {
            labels: labels
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            hist: Box::new(hist),
        });
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", prom_sanitize(k), prom_escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", prom_escape_label(v));
    }
    out.push('}');
}

/// Render families as Prometheus text exposition.  `# HELP`/`# TYPE`
/// appear exactly once per family (families are rendered as given —
/// callers merging fleet scopes must fold duplicates first, as
/// [`to_prometheus`] does), label values are escaped, and histogram
/// series expand to cumulative `_bucket{le=...}` + `_sum`/`_count`.
pub fn render_prometheus(families: &[PromFamily]) -> String {
    let mut s = String::new();
    for fam in families {
        let _ = writeln!(s, "# HELP {} {}", fam.name, prom_escape_help(&fam.help));
        let _ = writeln!(s, "# TYPE {} {}", fam.name, fam.kind.keyword());
        for series in &fam.series {
            match series {
                PromSeries::Value { labels, value } => {
                    s.push_str(&fam.name);
                    render_labels(&mut s, labels, None);
                    let _ = writeln!(s, " {value}");
                }
                PromSeries::Histogram { labels, hist } => {
                    let mut cumulative = 0;
                    for (bound, c) in hist.nonzero_buckets() {
                        cumulative += c;
                        let _ = write!(s, "{}_bucket", fam.name);
                        render_labels(&mut s, labels, Some(("le", &bound.to_string())));
                        let _ = writeln!(s, " {cumulative}");
                    }
                    let _ = write!(s, "{}_bucket", fam.name);
                    render_labels(&mut s, labels, Some(("le", "+Inf")));
                    let _ = writeln!(s, " {}", hist.count());
                    let _ = write!(s, "{}_sum", fam.name);
                    render_labels(&mut s, labels, None);
                    let _ = writeln!(s, " {}", hist.sum());
                    let _ = write!(s, "{}_count", fam.name);
                    render_labels(&mut s, labels, None);
                    let _ = writeln!(s, " {}", hist.count());
                }
            }
        }
    }
    s
}

/// Prometheus text exposition of a snapshot set: counters as
/// `p5_<scope>_<name>` counter families, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count` — each family headed
/// by exactly one `# HELP`/`# TYPE` pair.  Snapshots that map to the
/// same family name (e.g. per-link scopes folded to one fleet scope)
/// merge into it: counter values sum and histogram buckets add, so a
/// scrape never carries duplicate series.
pub fn to_prometheus(snaps: &[Snapshot]) -> String {
    let mut families: Vec<PromFamily> = Vec::new();
    let find =
        |families: &mut Vec<PromFamily>, name: String, kind: PromKind, help: String| match families
            .iter()
            .position(|f| f.name == name)
        {
            Some(i) => i,
            None => {
                families.push(PromFamily::new(&name, kind, help));
                families.len() - 1
            }
        };
    for snap in snaps {
        let scope = prom_sanitize(&snap.scope);
        for (name, value) in &snap.counters {
            let fname = format!("p5_{scope}_{}", prom_sanitize(name));
            let help = format!("{}/{} (monotonic)", snap.scope, name);
            let i = find(&mut families, fname, PromKind::Counter, help);
            match families[i].series.first_mut() {
                Some(PromSeries::Value { value: v, .. }) => *v += value,
                _ => families[i].push_sample([], *value),
            }
        }
        for (name, hist) in &snap.histograms {
            let fname = format!("p5_{scope}_{}", prom_sanitize(name));
            let help = format!("{}/{} (log2 buckets)", snap.scope, name);
            let i = find(&mut families, fname, PromKind::Histogram, help);
            match families[i].series.first_mut() {
                Some(PromSeries::Histogram { hist: h, .. }) => h.merge(hist),
                _ => families[i].push_histogram([], hist.clone()),
            }
        }
    }
    render_prometheus(&families)
}

/// Human-readable aligned table over a snapshot set: one row per counter,
/// then one line per histogram.
pub fn render_table(snaps: &[Snapshot]) -> String {
    let scope_w = snaps
        .iter()
        .map(|s| s.scope.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let name_w = snaps
        .iter()
        .flat_map(|s| s.counters.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(7)
        .max(7);
    let mut out = format!("{:<scope_w$}  {:<name_w$}  value\n", "scope", "counter");
    for snap in snaps {
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{:<scope_w$}  {name:<name_w$}  {value}", snap.scope);
        }
    }
    for snap in snaps {
        for (name, hist) in &snap.histograms {
            let _ = writeln!(out, "{}/{}: {}", snap.scope, name, hist.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        let buckets = h.nonzero_buckets();
        // 0 → ≤0; 1 → ≤1; 2,3 → ≤3; 4,7 → ≤7; 8 → ≤15; MAX → ≤MAX.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn histogram_merge_and_mean() {
        let mut a = Histogram::new();
        a.observe(10);
        let mut b = Histogram::new();
        b.observe(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_lookup_and_absorb() {
        let mut a = Snapshot::new("tx")
            .counter("frames", 3)
            .counter("bytes", 100);
        let b = Snapshot::new("tx2")
            .counter("frames", 2)
            .counter("stalls", 7);
        a.absorb(&b);
        assert_eq!(a.get("frames"), Some(5));
        assert_eq!(a.get("stalls"), Some(7));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_buckets() {
        let mut h1 = Histogram::new();
        h1.observe(3);
        h1.observe(100);
        let mut h2 = Histogram::new();
        h2.observe(3);
        let mut a = Snapshot::new("fleet")
            .counter("frames", 3)
            .histogram("lat", h1);
        let b = Snapshot::new("link-42")
            .counter("frames", 2)
            .counter("sheds", 1)
            .histogram("lat", h2.clone())
            .histogram("size", h2);
        a.merge(&b);
        // Counters sum by name; unknown names append in order.
        assert_eq!(a.get("frames"), Some(5));
        assert_eq!(a.get("sheds"), Some(1));
        // Scope stays the merge target's identity.
        assert_eq!(a.scope, "fleet");
        // Histogram buckets add: two observations of 3 → count 2 at ≤3.
        let lat = &a.histograms.iter().find(|(n, _)| n == "lat").unwrap().1;
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.nonzero_buckets(), vec![(3, 2), (127, 1)]);
        // Unknown histogram appended whole.
        assert!(a.histograms.iter().any(|(n, _)| n == "size"));
    }

    #[test]
    fn merge_is_associative_over_counters() {
        let parts = [
            Snapshot::new("a").counter("x", 1).counter("y", 10),
            Snapshot::new("b").counter("x", 2),
            Snapshot::new("c").counter("y", 20).counter("z", 5),
        ];
        let mut left = Snapshot::new("fleet");
        for p in &parts {
            left.merge(p);
        }
        let mut pair = parts[1].clone();
        pair.merge(&parts[2]);
        let mut right = Snapshot::new("fleet");
        right.merge(&parts[0]);
        right.merge(&pair);
        assert_eq!(left.counters, right.counters);
    }

    #[test]
    fn quantile_bound_picks_bucket_ceilings() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_bound(0.99), None);
        for _ in 0..99 {
            h.observe(3); // bucket ≤3
        }
        h.observe(1000); // bucket ≤1023
        assert_eq!(h.quantile_bound(0.0), Some(3));
        assert_eq!(h.quantile_bound(0.5), Some(3));
        assert_eq!(h.quantile_bound(0.99), Some(3));
        // The 100th observation is the outlier.
        assert_eq!(h.quantile_bound(1.0), Some(1023));
        let mut single = Histogram::new();
        single.observe(0);
        assert_eq!(single.quantile_bound(0.99), Some(0));
    }

    #[test]
    fn quantile_bound_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_bound(q), None);
        }
    }

    #[test]
    fn quantile_bound_single_bucket_returns_its_ceiling() {
        // Every observation in one bucket: every quantile is that
        // bucket's bound, including the out-of-range clamps.
        let mut h = Histogram::new();
        for _ in 0..17 {
            h.observe(9); // bucket ≤15
        }
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 7.5] {
            assert_eq!(h.quantile_bound(q), Some(15), "q={q}");
        }
    }

    #[test]
    fn quantile_bound_all_in_overflow_bucket() {
        // Values with bit length 64 land in the last bucket, whose
        // inclusive bound is u64::MAX — the conservative answer for
        // every quantile.
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(1u64 << 63);
        assert_eq!(h.quantile_bound(0.0), Some(u64::MAX));
        assert_eq!(h.quantile_bound(0.99), Some(u64::MAX));
        assert_eq!(h.quantile_bound(1.0), Some(u64::MAX));
    }

    #[test]
    fn snapshot_merge_disjoint_key_sets_appends_everything() {
        let mut h = Histogram::new();
        h.observe(12);
        let mut a = Snapshot::new("fleet").counter("tx_frames", 4);
        let b = Snapshot::new("link-9")
            .counter("rx_frames", 6)
            .counter("sheds", 2)
            .histogram("burst", h.clone());
        a.merge(&b);
        // Nothing shared: originals intact, all of `b` appended in order.
        assert_eq!(a.get("tx_frames"), Some(4));
        assert_eq!(a.get("rx_frames"), Some(6));
        assert_eq!(a.get("sheds"), Some(2));
        assert_eq!(
            a.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["tx_frames", "rx_frames", "sheds"]
        );
        assert_eq!(a.histograms.len(), 1);
        assert_eq!(a.histograms[0].1.count(), 1);
        // Merging the other way keeps `b`'s identity and order.
        let mut c = b.clone();
        c.merge(&Snapshot::new("x").counter("tx_frames", 4));
        assert_eq!(c.scope, "link-9");
        assert_eq!(c.get("tx_frames"), Some(4));
        assert_eq!(c.get("rx_frames"), Some(6));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let fam = PromFamily::new("p5 health!", PromKind::Gauge, "per-link\nstate")
            .sample([("link", "we\"ird\\name\nx".to_string())], 1);
        let text = render_prometheus(&[fam]);
        // Family name sanitized, help newline escaped, label escaped.
        assert!(text.contains("# HELP p5_health_ per-link\\nstate\n"));
        assert!(text.contains("# TYPE p5_health_ gauge\n"));
        assert!(text.contains("p5_health_{link=\"we\\\"ird\\\\name\\nx\"} 1\n"));
        assert_eq!(prom_escape_label("plain"), "plain");
    }

    #[test]
    fn merged_scopes_emit_type_and_help_once_per_family() {
        // Two snapshots with the same scope (per-link readings folded
        // into one fleet identity) must produce ONE family: one HELP,
        // one TYPE, one summed sample — never duplicate series.
        let mut h1 = Histogram::new();
        h1.observe(3);
        let mut h2 = Histogram::new();
        h2.observe(100);
        let snaps = vec![
            Snapshot::new("fleet")
                .counter("delivered", 5)
                .histogram("lat", h1),
            Snapshot::new("fleet")
                .counter("delivered", 7)
                .histogram("lat", h2),
        ];
        let text = to_prometheus(&snaps);
        assert_eq!(text.matches("# TYPE p5_fleet_delivered counter").count(), 1);
        assert_eq!(text.matches("# HELP p5_fleet_delivered ").count(), 1);
        assert_eq!(text.matches("# TYPE p5_fleet_lat histogram").count(), 1);
        assert!(text.contains("p5_fleet_delivered 12\n"), "summed: {text}");
        assert!(text.contains("p5_fleet_lat_count 2\n"));
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("p5_fleet_delivered "))
                .count(),
            1
        );
    }

    #[test]
    fn thousand_link_scrape_stays_under_line_budget() {
        // Bounded cardinality: 1000 per-link snapshots fold into one
        // fleet scope, so the scrape size is a function of the metric
        // schema, not the fleet size.  Budget documented in DESIGN.md
        // §17: ≤ 120 lines for the fleet counter/histogram schema.
        let mut fleet = Snapshot::new("fleet");
        for link in 0..1000u64 {
            let mut lat = Histogram::new();
            lat.observe(link % 61);
            let per_link = Snapshot::new(format!("link-{link}"))
                .counter("offered", 8)
                .counter("delivered", 8)
                .counter("shed", link % 2)
                .histogram("frame_latency_ticks", lat);
            let mut folded = per_link;
            folded.scope = "fleet".into();
            fleet.merge(&folded);
        }
        let text = to_prometheus(&[fleet]);
        let lines = text.lines().count();
        assert!(lines <= 120, "scrape blew the line budget: {lines} lines");
        assert!(text.contains("p5_fleet_delivered 8000\n"));
    }

    #[test]
    fn json_shape() {
        let snap = Snapshot::new("p5-tx")
            .counter("frames", 3)
            .histogram("lat", {
                let mut h = Histogram::new();
                h.observe(5);
                h
            });
        let j = snapshot_to_json(&snap);
        assert!(j.contains("\"scope\":\"p5-tx\""));
        assert!(j.contains("\"frames\":3"));
        assert!(j.contains("\"buckets\":[[7,1]]"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn prometheus_shape() {
        let mut h = Histogram::new();
        h.observe(2);
        h.observe(100);
        let snap = Snapshot::new("oc-path")
            .counter("b1-errors", 4)
            .histogram("burst", h);
        let p = to_prometheus(&[snap]);
        assert!(p.contains("p5_oc_path_b1_errors 4\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"3\"} 1\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"127\"} 2\n"));
        assert!(p.contains("p5_oc_path_burst_bucket{le=\"+Inf\"} 2\n"));
        assert!(p.contains("p5_oc_path_burst_count 2\n"));
    }

    #[test]
    fn table_renders_all_scopes() {
        let t = render_table(&[
            Snapshot::new("a").counter("x", 1),
            Snapshot::new("long-scope").counter("y", 2),
        ]);
        assert!(t.contains("long-scope"));
        assert!(t.lines().count() >= 3);
    }
}
