//! Where events go.  `NullSink` is the shipped default — recording
//! compiles down to a dead branch, so instrumented code paths cost
//! nothing when tracing is off (the check.sh throughput floors hold).

use crate::event::Event;
use std::sync::{Arc, Mutex};

/// A consumer of trace events.  Producers must check [`TraceSink::enabled`]
/// (or a cached copy of it) before doing any per-event work, so a disabled
/// sink never allocates and never formats.
pub trait TraceSink {
    /// Whether events are wanted at all.  Producers cache this: it is a
    /// configuration bit, not a per-event admission control.
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event);
}

/// Discards everything; `enabled()` is `false` so producers skip event
/// construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// A bounded ring of the most recent events.  Storage is allocated once at
/// construction; recording in the steady state is a slot overwrite — no
/// allocation, which keeps it safe to attach to the cycle-accurate model.
#[derive(Debug)]
pub struct RingRecorder {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        RingRecorder {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Owned copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// A cloneable handle over a shared [`RingRecorder`]: one clone is boxed
/// into the traced component, the other stays with the harness to read
/// events back out.
#[derive(Debug, Clone)]
pub struct SharedRecorder(Arc<Mutex<RingRecorder>>);

impl SharedRecorder {
    pub fn with_capacity(cap: usize) -> Self {
        SharedRecorder(Arc::new(Mutex::new(RingRecorder::with_capacity(cap))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingRecorder> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.lock().dropped()
    }

    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl TraceSink for SharedRecorder {
    fn record(&mut self, event: Event) {
        self.lock().record(event);
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            kind: EventKind::Framed { id: cycle as u32 },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(1));
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = RingRecorder::with_capacity(3);
        assert!(r.enabled());
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_before_wrap_is_in_order() {
        let mut r = RingRecorder::with_capacity(8);
        for c in 0..3 {
            r.record(ev(c));
        }
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn shared_recorder_reads_back_through_clone() {
        let handle = SharedRecorder::with_capacity(4);
        let mut sink = handle.clone();
        assert!(sink.enabled());
        sink.record(ev(5));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.events()[0].cycle, 5);
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = RingRecorder::with_capacity(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].cycle, 2);
    }
}
