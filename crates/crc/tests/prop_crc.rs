//! Property tests: all four CRC engines are the same function, for both
//! PPP FCS parameter sets and all hardware-relevant word widths.

use p5_crc::{
    check_fcs16, check_fcs32, fcs16, fcs16_wire_bytes, fcs32, fcs32_wire_bytes, BitwiseEngine,
    CrcEngine, EngineKind, FcsEngine, MatrixEngine, Slice8Engine, TableEngine, FCS16, FCS32,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn engines_agree_fcs32(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut bw = BitwiseEngine::new(FCS32);
        let mut tb = TableEngine::new(FCS32);
        let mut m1 = MatrixEngine::new(FCS32, 1);
        let mut m4 = MatrixEngine::new(FCS32, 4);
        for e in [&mut bw as &mut dyn CrcEngine, &mut tb, &mut m1, &mut m4] {
            e.update(&data);
        }
        prop_assert_eq!(bw.value(), tb.value());
        prop_assert_eq!(bw.value(), m1.value());
        prop_assert_eq!(bw.value(), m4.value());
        prop_assert_eq!(bw.residue(), m4.residue());
    }

    #[test]
    fn engines_agree_fcs16(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let mut bw = BitwiseEngine::new(FCS16);
        let mut tb = TableEngine::new(FCS16);
        let mut m2 = MatrixEngine::new(FCS16, 2);
        for e in [&mut bw as &mut dyn CrcEngine, &mut tb, &mut m2] {
            e.update(&data);
        }
        prop_assert_eq!(bw.value(), tb.value());
        prop_assert_eq!(bw.value(), m2.value());
    }

    #[test]
    fn split_points_do_not_matter(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let cut = cut.index(data.len());
        let mut a = MatrixEngine::new(FCS32, 4);
        a.update(&data[..cut]);
        a.update(&data[cut..]);
        let mut b = TableEngine::new(FCS32);
        b.update(&data);
        prop_assert_eq!(a.value(), b.value());
    }

    #[test]
    fn slicing_matches_matrix_byte_for_byte(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(1usize..64, 0..16),
    ) {
        // The datapath engine-swap contract: slicing-by-8 must agree
        // with the gate-model matrix walk on both FCS parameter sets and
        // both shipped word widths, under arbitrary stream chunkings.
        for params in [FCS16, FCS32] {
            for width in [1usize, 4] {
                let mut sl = Slice8Engine::new(params);
                let mut mx = MatrixEngine::new(params, width);
                let mut off = 0usize;
                for &cut in &cuts {
                    let end = (off + cut).min(data.len());
                    sl.update(&data[off..end]);
                    mx.update(&data[off..end]);
                    prop_assert_eq!(sl.residue(), mx.residue(),
                        "{} width {} mid-stream", params.name, width);
                    off = end;
                }
                sl.update(&data[off..]);
                mx.update(&data[off..]);
                prop_assert_eq!(sl.value(), mx.value(), "{} width {}", params.name, width);
                prop_assert_eq!(sl.residue(), mx.residue(), "{} width {}", params.name, width);
            }
        }
    }

    #[test]
    fn fcs_engine_kinds_are_interchangeable(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        word in 1usize..=4,
    ) {
        // The pipelines feed their engine word-at-a-time; both kinds
        // must agree with the one-shot reference under that feed.
        for params in [FCS16, FCS32] {
            let mut sl = FcsEngine::new(EngineKind::Slice, params, word);
            let mut mx = FcsEngine::new(EngineKind::Matrix, params, word);
            for chunk in data.chunks(word) {
                sl.update_word(chunk);
                mx.update_word(chunk);
            }
            let mut reference = TableEngine::new(params);
            reference.update(&data);
            prop_assert_eq!(sl.value(), reference.value(), "{} slice", params.name);
            prop_assert_eq!(mx.value(), reference.value(), "{} matrix", params.name);
            prop_assert_eq!(sl.residue(), mx.residue(), "{}", params.name);
        }
    }

    #[test]
    fn appended_fcs_always_verifies(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut f32 = data.clone();
        f32.extend_from_slice(&fcs32_wire_bytes(fcs32(&data)));
        prop_assert!(check_fcs32(&f32));

        let mut f16 = data.clone();
        f16.extend_from_slice(&fcs16_wire_bytes(fcs16(&data)));
        prop_assert!(check_fcs16(&f16));
    }

    #[test]
    fn corrupted_byte_fails_check(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut frame = data.clone();
        frame.extend_from_slice(&fcs32_wire_bytes(fcs32(&data)));
        let pos = pos.index(frame.len());
        frame[pos] ^= flip;
        prop_assert!(!check_fcs32(&frame));
    }
}
