//! Bit-serial reference CRC: one bit of input per shift, exactly the LFSR a
//! minimal hardware serial FCS circuit implements.  Slow, obviously correct,
//! and the golden model for the table and matrix engines.

use crate::{CrcEngine, CrcParams};

/// One-bit-at-a-time CRC engine.
#[derive(Debug, Clone)]
pub struct BitwiseEngine {
    params: CrcParams,
    state: u32,
}

impl BitwiseEngine {
    pub fn new(params: CrcParams) -> Self {
        Self {
            params,
            state: params.init,
        }
    }

    /// Advance the register by a single input bit (LSB-first order).
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let fb = (self.state ^ bit as u32) & 1;
        self.state >>= 1;
        if fb != 0 {
            self.state ^= self.params.poly;
        }
    }

    /// Stateless single-byte step used by the matrix prober.
    pub fn step_byte(params: &CrcParams, state: u32, byte: u8) -> u32 {
        let mut s = state;
        for i in 0..8 {
            let bit = (byte >> i) & 1;
            let fb = (s ^ bit as u32) & 1;
            s >>= 1;
            if fb != 0 {
                s ^= params.poly;
            }
        }
        s & params.mask()
    }

    /// Stateless multi-byte step.
    pub fn step_bytes(params: &CrcParams, mut state: u32, data: &[u8]) -> u32 {
        for &b in data {
            state = Self::step_byte(params, state, b);
        }
        state
    }
}

impl CrcEngine for BitwiseEngine {
    fn reset(&mut self) {
        self.state = self.params.init;
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            for i in 0..8 {
                self.push_bit((b >> i) & 1 != 0);
            }
        }
        self.state &= self.params.mask();
    }

    fn value(&self) -> u32 {
        (self.state ^ self.params.xorout) & self.params.mask()
    }

    fn residue(&self) -> u32 {
        self.state & self.params.mask()
    }

    fn params(&self) -> &CrcParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FCS16, FCS32};

    #[test]
    fn bitwise_crc32_check_value() {
        let mut e = BitwiseEngine::new(FCS32);
        e.update(b"123456789");
        assert_eq!(e.value(), 0xCBF43926);
    }

    #[test]
    fn bitwise_crc16_check_value() {
        let mut e = BitwiseEngine::new(FCS16);
        e.update(b"123456789");
        assert_eq!(e.value(), 0x906E);
    }

    #[test]
    fn step_bytes_agrees_with_update() {
        let data = b"the quick brown fox";
        let mut e = BitwiseEngine::new(FCS32);
        e.update(data);
        let s = BitwiseEngine::step_bytes(&FCS32, FCS32.init, data);
        assert_eq!(e.residue(), s);
    }

    #[test]
    fn reset_restores_preset() {
        let mut e = BitwiseEngine::new(FCS32);
        e.update(b"junk");
        e.reset();
        assert_eq!(e.residue(), FCS32.init);
        e.update(b"123456789");
        assert_eq!(e.value(), 0xCBF43926);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut a = BitwiseEngine::new(FCS32);
        a.update(b"hello ");
        a.update(b"world");
        let mut b = BitwiseEngine::new(FCS32);
        b.update(b"hello world");
        assert_eq!(a.value(), b.value());
    }
}
