//! The pipeline's pluggable FCS engine.
//!
//! The behavioural Tx/Rx pipelines used to hard-wire the paper's
//! parallel-matrix walk; since the line-rate datapath refactor they
//! dispatch through [`FcsEngine`] instead: slicing-by-8 by default (the
//! fastest software realisation), with the matrix walk selectable as
//! the gate-model reference the equivalence tests pin it against.  The
//! enum keeps dispatch static — no `Box<dyn CrcEngine>` in the per-word
//! hot path.

use crate::{CrcEngine, CrcParams, MatrixEngine, Slice8Engine};

/// Which realisation backs an [`FcsEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Slicing-by-8 — the fast software default.
    #[default]
    Slice,
    /// The paper's parallel-matrix walk — the gate-model reference.
    Matrix,
}

/// A running FCS computation backed by either shipped realisation.
///
/// `word_bytes` sizes the matrix step (the datapath word width); the
/// slicing engine ignores it — its inner loop is always 8 bytes wide.
#[derive(Debug, Clone)]
pub enum FcsEngine {
    Slice(Slice8Engine),
    Matrix(MatrixEngine),
}

impl FcsEngine {
    pub fn new(kind: EngineKind, params: CrcParams, word_bytes: usize) -> Self {
        match kind {
            EngineKind::Slice => FcsEngine::Slice(Slice8Engine::new(params)),
            EngineKind::Matrix => FcsEngine::Matrix(MatrixEngine::new(params, word_bytes)),
        }
    }

    pub fn kind(&self) -> EngineKind {
        match self {
            FcsEngine::Slice(_) => EngineKind::Slice,
            FcsEngine::Matrix(_) => EngineKind::Matrix,
        }
    }

    /// Advance by one (possibly partial) datapath word — the per-clock
    /// hot path of the cycle model.
    #[inline]
    pub fn update_word(&mut self, word: &[u8]) {
        match self {
            FcsEngine::Slice(e) => e.update(word),
            FcsEngine::Matrix(e) => e.update_word(word),
        }
    }
}

impl CrcEngine for FcsEngine {
    fn reset(&mut self) {
        match self {
            FcsEngine::Slice(e) => e.reset(),
            FcsEngine::Matrix(e) => e.reset(),
        }
    }

    fn update(&mut self, data: &[u8]) {
        match self {
            FcsEngine::Slice(e) => e.update(data),
            FcsEngine::Matrix(e) => e.update(data),
        }
    }

    fn value(&self) -> u32 {
        match self {
            FcsEngine::Slice(e) => e.value(),
            FcsEngine::Matrix(e) => e.value(),
        }
    }

    fn residue(&self) -> u32 {
        match self {
            FcsEngine::Slice(e) => e.residue(),
            FcsEngine::Matrix(e) => e.residue(),
        }
    }

    fn params(&self) -> &CrcParams {
        match self {
            FcsEngine::Slice(e) => e.params(),
            FcsEngine::Matrix(e) => e.params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FCS16, FCS32};

    #[test]
    fn both_kinds_reach_the_check_values() {
        for (params, want) in [(FCS32, 0xCBF4_3926u32), (FCS16, 0x906E)] {
            for kind in [EngineKind::Slice, EngineKind::Matrix] {
                let mut e = FcsEngine::new(kind, params, 4);
                e.update(b"123456789");
                assert_eq!(e.value(), want, "{:?} {}", kind, params.name);
            }
        }
    }

    #[test]
    fn default_kind_is_slice() {
        assert_eq!(EngineKind::default(), EngineKind::Slice);
        let e = FcsEngine::new(EngineKind::default(), FCS32, 4);
        assert_eq!(e.kind(), EngineKind::Slice);
    }

    #[test]
    fn update_word_handles_partial_words() {
        for kind in [EngineKind::Slice, EngineKind::Matrix] {
            let mut e = FcsEngine::new(kind, FCS32, 4);
            e.update_word(b"1234");
            e.update_word(b"5678");
            e.update_word(b"9");
            assert_eq!(e.value(), 0xCBF4_3926, "{kind:?}");
        }
    }
}
