//! Table-driven CRC, one byte per step.  The conventional software
//! realisation and the sequential baseline for the parallel-matrix benches.

use crate::{BitwiseEngine, CrcEngine, CrcParams};

/// 256-entry-table CRC engine.
#[derive(Debug, Clone)]
pub struct TableEngine {
    params: CrcParams,
    table: Box<[u32; 256]>,
    state: u32,
}

impl TableEngine {
    pub fn new(params: CrcParams) -> Self {
        let mut table = Box::new([0u32; 256]);
        for (b, slot) in table.iter_mut().enumerate() {
            // Table entry = effect of byte `b` on a zero register.
            *slot = BitwiseEngine::step_byte(&params, 0, b as u8);
        }
        Self {
            params,
            table,
            state: params.init,
        }
    }

    /// Advance an explicit state by one byte.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        (state >> 8) ^ self.table[((state ^ byte as u32) & 0xFF) as usize]
    }
}

impl CrcEngine for TableEngine {
    fn reset(&mut self) {
        self.state = self.params.init;
    }

    #[inline]
    fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ self.table[((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s & self.params.mask();
    }

    fn value(&self) -> u32 {
        (self.state ^ self.params.xorout) & self.params.mask()
    }

    fn residue(&self) -> u32 {
        self.state & self.params.mask()
    }

    fn params(&self) -> &CrcParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FCS16, FCS32};

    #[test]
    fn table_matches_bitwise_on_check_string() {
        for params in [FCS16, FCS32] {
            let mut t = TableEngine::new(params);
            let mut b = BitwiseEngine::new(params);
            t.update(b"123456789");
            b.update(b"123456789");
            assert_eq!(t.value(), b.value(), "{}", params.name);
            assert_eq!(t.residue(), b.residue(), "{}", params.name);
        }
    }

    #[test]
    fn table_matches_bitwise_on_all_single_bytes() {
        for params in [FCS16, FCS32] {
            for byte in 0..=255u8 {
                let mut t = TableEngine::new(params);
                let mut b = BitwiseEngine::new(params);
                t.update(&[byte]);
                b.update(&[byte]);
                assert_eq!(t.residue(), b.residue(), "{} byte {byte:#x}", params.name);
            }
        }
    }

    #[test]
    fn explicit_step_matches_update() {
        let t = TableEngine::new(FCS32);
        let mut s = FCS32.init;
        for &b in b"stepwise" {
            s = t.step(s, b);
        }
        let mut e = TableEngine::new(FCS32);
        e.update(b"stepwise");
        assert_eq!(e.residue(), s & FCS32.mask());
    }
}
