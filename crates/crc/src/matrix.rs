//! The paper's parallel CRC formulation.
//!
//! Advancing an HDLC CRC register by W input bytes is a *linear* map over
//! GF(2): `state' = F·state ⊕ G·data`, where `F` is width×width and `G` is
//! width×(8·W).  The paper instantiates this as an "8 × 32-bit parallel
//! matrix (for the 8-bit P⁵) or ... a 32 × 32-bit parallel matrix (for the
//! 32-bit P⁵)" following Pei & Zukowski.  Each output bit of the next state
//! is the XOR (even parity) of a fixed subset of current-state bits and
//! input-data bits — in hardware, one XOR tree per register bit.
//!
//! [`StepMatrix`] derives those matrices for *any* byte width by probing the
//! bit-serial reference with basis vectors, and exposes the raw XOR term
//! lists so `p5-rtl` can emit the identical XOR trees as netlist logic.
//! [`MatrixEngine`] evaluates the matrix in software using per-byte-lane
//! lookup tables (the software analogue of evaluating all trees at once).

use crate::{BitwiseEngine, CrcEngine, CrcParams};

/// A source term of one output-bit XOR tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// Current-state register bit `i` (0 = LSB).
    State(usize),
    /// Input-data bit: `byte * 8 + bit`, bytes in transmission order,
    /// bits LSB-first within each byte.
    Data(usize),
}

/// The GF(2) matrices advancing a CRC register by a fixed number of bytes.
#[derive(Debug, Clone)]
pub struct StepMatrix {
    params: CrcParams,
    /// Bytes consumed per application.
    pub nbytes: usize,
    /// `state_cols[i]` = next-state contribution of current-state bit `i`.
    pub state_cols: Vec<u32>,
    /// `data_cols[j]` = next-state contribution of input-data bit `j`
    /// (byte `j / 8`, bit `j % 8`).
    pub data_cols: Vec<u32>,
}

impl StepMatrix {
    /// Derive the matrices for a `nbytes`-wide step of `params` by probing
    /// the bit-serial reference with unit vectors.  Linearity of the LFSR
    /// step (no preset/xorout inside the step) makes this exact.
    pub fn for_bytes(params: CrcParams, nbytes: usize) -> Self {
        assert!(nbytes >= 1, "step must consume at least one byte");
        let zero_data = vec![0u8; nbytes];
        let width = params.width as usize;

        let mut state_cols = Vec::with_capacity(width);
        for i in 0..width {
            state_cols.push(BitwiseEngine::step_bytes(&params, 1 << i, &zero_data));
        }

        let mut data_cols = Vec::with_capacity(nbytes * 8);
        for j in 0..nbytes * 8 {
            let mut data = zero_data.clone();
            data[j / 8] = 1 << (j % 8);
            data_cols.push(BitwiseEngine::step_bytes(&params, 0, &data));
        }

        Self {
            params,
            nbytes,
            state_cols,
            data_cols,
        }
    }

    pub fn params(&self) -> &CrcParams {
        &self.params
    }

    /// Apply the matrices: `state' = F·state ⊕ G·data`.
    /// `data` must be exactly `nbytes` long.
    pub fn apply(&self, state: u32, data: &[u8]) -> u32 {
        assert_eq!(data.len(), self.nbytes);
        let mut next = 0u32;
        let mut s = state & self.params.mask();
        while s != 0 {
            let i = s.trailing_zeros() as usize;
            next ^= self.state_cols[i];
            s &= s - 1;
        }
        for (k, &byte) in data.iter().enumerate() {
            let mut b = byte;
            while b != 0 {
                let bit = b.trailing_zeros() as usize;
                next ^= self.data_cols[k * 8 + bit];
                b &= b - 1;
            }
        }
        next
    }

    /// The XOR tree feeding next-state bit `bit`: which current-state bits
    /// and which data bits participate.  This is the netlist the hardware
    /// CRC core instantiates.
    pub fn terms_for_output_bit(&self, bit: usize) -> Vec<Term> {
        assert!(bit < self.params.width as usize);
        let probe = 1u32 << bit;
        let mut terms = Vec::new();
        for (i, &col) in self.state_cols.iter().enumerate() {
            if col & probe != 0 {
                terms.push(Term::State(i));
            }
        }
        for (j, &col) in self.data_cols.iter().enumerate() {
            if col & probe != 0 {
                terms.push(Term::Data(j));
            }
        }
        terms
    }

    /// Total XOR terms across all output bits — a direct proxy for the
    /// 2-input-gate cost of the parallel CRC core.
    pub fn total_terms(&self) -> usize {
        (0..self.params.width as usize)
            .map(|b| self.terms_for_output_bit(b).len())
            .sum()
    }

    /// Largest XOR tree over all output bits (drives logic depth).
    pub fn max_terms(&self) -> usize {
        (0..self.params.width as usize)
            .map(|b| self.terms_for_output_bit(b).len())
            .max()
            .unwrap_or(0)
    }
}

/// Software evaluation of a [`StepMatrix`] at full speed: per input byte
/// lane and per state byte lane, a 256-entry table of next-state
/// contributions (table entries are XORs of matrix columns, so this is the
/// same linear map, factored).
#[derive(Debug, Clone)]
pub struct MatrixEngine {
    matrix: StepMatrix,
    /// `state_luts[lane][byte]` for state bytes (width/8 lanes).
    state_luts: Vec<[u32; 256]>,
    /// `data_luts[lane][byte]` for the `nbytes` data lanes.
    data_luts: Vec<[u32; 256]>,
    state: u32,
    /// Bytes awaiting a full word (the word-assembly the hardware CRC
    /// control performs for the partial word at end of frame).
    pending: Vec<u8>,
}

impl MatrixEngine {
    pub fn new(params: CrcParams, nbytes: usize) -> Self {
        Self::from_matrix(StepMatrix::for_bytes(params, nbytes))
    }

    pub fn from_matrix(matrix: StepMatrix) -> Self {
        let width_bytes = (matrix.params.width as usize) / 8;
        let mut state_luts = vec![[0u32; 256]; width_bytes];
        for (lane, lut) in state_luts.iter_mut().enumerate() {
            for byte in 0u32..256 {
                let mut acc = 0;
                for bit in 0..8 {
                    if byte & (1 << bit) != 0 {
                        acc ^= matrix.state_cols[lane * 8 + bit];
                    }
                }
                lut[byte as usize] = acc;
            }
        }
        let mut data_luts = vec![[0u32; 256]; matrix.nbytes];
        for (lane, lut) in data_luts.iter_mut().enumerate() {
            for byte in 0u32..256 {
                let mut acc = 0;
                for bit in 0..8 {
                    if byte & (1 << bit) != 0 {
                        acc ^= matrix.data_cols[lane * 8 + bit];
                    }
                }
                lut[byte as usize] = acc;
            }
        }
        let state = matrix.params.init;
        Self {
            matrix,
            state_luts,
            data_luts,
            state,
            pending: Vec::new(),
        }
    }

    /// Word width in bytes.
    pub fn width_bytes(&self) -> usize {
        self.matrix.nbytes
    }

    /// Advance by exactly one aligned word when possible, falling back
    /// to the general [`CrcEngine::update`] path for partial words or a
    /// non-empty pending buffer.  The hot per-clock path of the cycle
    /// model — skips the chunking wrapper entirely.
    #[inline]
    pub fn update_word(&mut self, word: &[u8]) {
        if self.pending.is_empty() && word.len() == self.matrix.nbytes {
            self.step_word(word);
        } else {
            self.update(word);
        }
    }

    /// Advance one full word.
    #[inline]
    pub fn step_word(&mut self, word: &[u8]) {
        debug_assert_eq!(word.len(), self.matrix.nbytes);
        let mut next = 0u32;
        for (lane, lut) in self.state_luts.iter().enumerate() {
            next ^= lut[((self.state >> (lane * 8)) & 0xFF) as usize];
        }
        for (lane, lut) in self.data_luts.iter().enumerate() {
            next ^= lut[word[lane] as usize];
        }
        self.state = next & self.matrix.params.mask();
    }

    /// Flush a trailing partial word byte-by-byte (what the hardware does
    /// with single-byte matrices under control of the CRC unit FSM).
    fn flush_pending(&mut self) {
        for i in 0..self.pending.len() {
            self.state = BitwiseEngine::step_byte(&self.matrix.params, self.state, self.pending[i]);
        }
        self.pending.clear();
    }
}

impl CrcEngine for MatrixEngine {
    fn reset(&mut self) {
        self.state = self.matrix.params.init;
        self.pending.clear();
    }

    fn update(&mut self, data: &[u8]) {
        let n = self.matrix.nbytes;
        let mut rest = data;
        // Top up a partial word first.
        if !self.pending.is_empty() {
            let need = n - self.pending.len();
            let take = need.min(rest.len());
            self.pending.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pending.len() == n {
                let word: Vec<u8> = std::mem::take(&mut self.pending);
                self.step_word(&word);
            }
        }
        let mut chunks = rest.chunks_exact(n);
        for word in &mut chunks {
            self.step_word(word);
        }
        self.pending.extend_from_slice(chunks.remainder());
    }

    fn value(&self) -> u32 {
        (self.residue() ^ self.matrix.params.xorout) & self.matrix.params.mask()
    }

    fn residue(&self) -> u32 {
        let mut tmp = self.clone();
        tmp.flush_pending();
        tmp.state & tmp.matrix.params.mask()
    }

    fn params(&self) -> &CrcParams {
        self.matrix.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FCS16, FCS32};
    use crate::TableEngine;

    #[test]
    fn matrix_step_equals_bitwise_for_widths_1_to_8() {
        let data = b"\x00\x7e\x7d\xff parallel crc words!";
        for params in [FCS16, FCS32] {
            for n in 1..=8usize {
                let m = StepMatrix::for_bytes(params, n);
                let mut state = params.init;
                for word in data.chunks_exact(n) {
                    state = m.apply(state, word);
                }
                let consumed = (data.len() / n) * n;
                let expect = BitwiseEngine::step_bytes(&params, params.init, &data[..consumed]);
                assert_eq!(state, expect, "{} width {n}", params.name);
            }
        }
    }

    #[test]
    fn engine_matches_table_with_partial_words() {
        let data: Vec<u8> = (0..=255u8).chain(0..=99).collect();
        for n in [1usize, 4] {
            let mut m = MatrixEngine::new(FCS32, n);
            let mut t = TableEngine::new(FCS32);
            // Irregular chunk sizes to exercise the pending path.
            let mut off = 0usize;
            for (i, sz) in [1usize, 3, 7, 2, 16, 5, 64, 1, 100].iter().enumerate() {
                let end = (off + sz).min(data.len());
                m.update(&data[off..end]);
                t.update(&data[off..end]);
                assert_eq!(m.value(), t.value(), "width {n} after chunk {i}");
                off = end;
            }
            m.update(&data[off..]);
            t.update(&data[off..]);
            assert_eq!(m.value(), t.value(), "width {n} final");
            assert_eq!(m.residue(), t.residue(), "width {n} residue");
        }
    }

    #[test]
    fn term_lists_reconstruct_the_matrix() {
        let m = StepMatrix::for_bytes(FCS32, 4);
        // Rebuild apply() from the per-bit term lists and compare.
        let state = 0xDEAD_BEEF;
        let data = [0x7E, 0x31, 0x7D, 0x96];
        let expect = m.apply(state, &data);
        let mut got = 0u32;
        for bit in 0..32 {
            let mut parity = false;
            for term in m.terms_for_output_bit(bit) {
                let v = match term {
                    Term::State(i) => (state >> i) & 1 != 0,
                    Term::Data(j) => (data[j / 8] >> (j % 8)) & 1 != 0,
                };
                parity ^= v;
            }
            if parity {
                got |= 1 << bit;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn fcs32_32bit_matrix_density_is_hardware_plausible() {
        // Sanity on the hardware cost model: the 32x32 matrix XOR trees
        // should average around half the inputs per output bit.
        let m = StepMatrix::for_bytes(FCS32, 4);
        let max = m.max_terms();
        assert!((16..=64).contains(&max), "max terms {max}");
        assert!(m.total_terms() > 32 * 8);
    }

    #[test]
    fn single_byte_matrix_is_the_table() {
        let m = StepMatrix::for_bytes(FCS32, 1);
        let t = TableEngine::new(FCS32);
        for byte in 0..=255u8 {
            assert_eq!(m.apply(0, &[byte]), t.step(0, byte));
        }
    }

    #[test]
    fn reset_clears_pending() {
        let mut m = MatrixEngine::new(FCS32, 4);
        m.update(b"abc"); // partial word pending
        m.reset();
        m.update(b"123456789");
        assert_eq!(m.value(), 0xCBF43926);
    }
}
