//! Slicing-by-8: the fastest table-driven software CRC, processing
//! eight bytes per iteration through eight derived tables.  This is the
//! strongest *software* baseline against which the paper's hardware
//! parallelism is judged in the benches — a general-purpose CPU's best
//! effort at the job the P⁵ does in one clock — and, since the
//! line-rate datapath refactor, the default FCS engine of the
//! behavioural Tx/Rx pipelines (the matrix walk stays as the gate-model
//! reference).
//!
//! Both shipped parameter sets are reflected CRCs whose register lives
//! in the low bits of the accumulator, so the identical table recurrence
//! and update loop serve FCS-16 and FCS-32: a 16-bit state simply never
//! populates the upper half, and XORs into only the first two bytes of
//! each 8-byte group.

use crate::{BitwiseEngine, CrcEngine, CrcParams};

/// Slicing-by-8 engine for the reflected PPP parameter sets (FCS-16 and
/// FCS-32).
#[derive(Clone)]
pub struct Slice8Engine {
    params: CrcParams,
    /// `tables[k][b]` = contribution of byte `b` processed `k` bytes
    /// before the end of an 8-byte group.
    tables: Box<[[u32; 256]; 8]>,
    state: u32,
}

impl std::fmt::Debug for Slice8Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slice8Engine")
            .field("params", &self.params)
            .field("state", &self.state)
            .finish()
    }
}

impl Slice8Engine {
    pub fn new(params: CrcParams) -> Self {
        assert!(
            params.width == 16 || params.width == 32,
            "slicing-by-8 supports the 16- and 32-bit FCS parameter sets"
        );
        let mut t0 = [0u32; 256];
        for (b, slot) in t0.iter_mut().enumerate() {
            *slot = BitwiseEngine::step_byte(&params, 0, b as u8);
        }
        let mut tables = Box::new([[0u32; 256]; 8]);
        tables[0] = t0;
        for k in 1..8 {
            for b in 0..256 {
                let prev = tables[k - 1][b];
                tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            }
        }
        Self {
            params,
            tables,
            state: params.init,
        }
    }
}

impl CrcEngine for Slice8Engine {
    fn reset(&mut self) {
        self.state = self.params.init;
    }

    fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        let mut chunks = data.chunks_exact(8);
        let t = &self.tables;
        for c in &mut chunks {
            let lo = s ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            s = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][((lo >> 24) & 0xFF) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ self.tables[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    fn value(&self) -> u32 {
        (self.state ^ self.params.xorout) & self.params.mask()
    }

    fn residue(&self) -> u32 {
        self.state & self.params.mask()
    }

    fn params(&self) -> &CrcParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TableEngine, FCS16, FCS32};

    #[test]
    fn check_value() {
        let mut e = Slice8Engine::new(FCS32);
        e.update(b"123456789");
        assert_eq!(e.value(), 0xCBF43926);
    }

    #[test]
    fn check_value_16() {
        let mut e = Slice8Engine::new(FCS16);
        e.update(b"123456789");
        assert_eq!(e.value(), 0x906E);
    }

    #[test]
    fn matches_table_engine_on_many_lengths() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        for params in [FCS16, FCS32] {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 999, 1000] {
                let mut a = Slice8Engine::new(params);
                let mut b = TableEngine::new(params);
                a.update(&data[..len]);
                b.update(&data[..len]);
                assert_eq!(a.value(), b.value(), "{} len {len}", params.name);
                assert_eq!(a.residue(), b.residue(), "{} len {len}", params.name);
            }
        }
    }

    #[test]
    fn incremental_split_points() {
        let data: Vec<u8> = (0..=255).collect();
        for params in [FCS16, FCS32] {
            for cut in [1usize, 3, 8, 13, 100] {
                let mut a = Slice8Engine::new(params);
                a.update(&data[..cut]);
                a.update(&data[cut..]);
                let mut b = Slice8Engine::new(params);
                b.update(&data);
                assert_eq!(a.value(), b.value(), "{} cut {cut}", params.name);
            }
        }
    }

    #[test]
    fn sixteen_bit_round_trip_lands_on_good_residue() {
        let mut body = b"slice by eight, sixteen wide".to_vec();
        let mut e = Slice8Engine::new(FCS16);
        e.update(&body);
        let fcs = e.value() as u16;
        body.extend_from_slice(&crate::fcs16_wire_bytes(fcs));
        let mut check = Slice8Engine::new(FCS16);
        check.update(&body);
        assert_eq!(check.residue(), FCS16.good_residue);
    }

    #[test]
    #[should_panic(expected = "16- and 32-bit")]
    fn rejects_unsupported_widths() {
        let mut odd = FCS32;
        odd.width = 8;
        odd.name = "crc-8";
        Slice8Engine::new(odd);
    }
}
