//! Slicing-by-8: the fastest table-driven software CRC-32, processing
//! eight bytes per iteration through eight derived tables.  This is the
//! strongest *software* baseline against which the paper's hardware
//! parallelism is judged in the benches — a general-purpose CPU's best
//! effort at the job the P⁵ does in one clock.

use crate::{BitwiseEngine, CrcEngine, CrcParams};

/// Slicing-by-8 engine (32-bit parameter sets).
#[derive(Clone)]
pub struct Slice8Engine {
    params: CrcParams,
    /// `tables[k][b]` = contribution of byte `b` processed `k` bytes
    /// before the end of an 8-byte group.
    tables: Box<[[u32; 256]; 8]>,
    state: u32,
}

impl std::fmt::Debug for Slice8Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slice8Engine")
            .field("params", &self.params)
            .field("state", &self.state)
            .finish()
    }
}

impl Slice8Engine {
    pub fn new(params: CrcParams) -> Self {
        assert_eq!(params.width, 32, "slicing-by-8 is built for 32-bit CRCs");
        let mut t0 = [0u32; 256];
        for (b, slot) in t0.iter_mut().enumerate() {
            *slot = BitwiseEngine::step_byte(&params, 0, b as u8);
        }
        let mut tables = Box::new([[0u32; 256]; 8]);
        tables[0] = t0;
        for k in 1..8 {
            for b in 0..256 {
                let prev = tables[k - 1][b];
                tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            }
        }
        Self {
            params,
            tables,
            state: params.init,
        }
    }
}

impl CrcEngine for Slice8Engine {
    fn reset(&mut self) {
        self.state = self.params.init;
    }

    fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        let mut chunks = data.chunks_exact(8);
        let t = &self.tables;
        for c in &mut chunks {
            let lo = s ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            s = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][((lo >> 24) & 0xFF) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ self.tables[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    fn value(&self) -> u32 {
        self.state ^ self.params.xorout
    }

    fn residue(&self) -> u32 {
        self.state
    }

    fn params(&self) -> &CrcParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TableEngine, FCS32};

    #[test]
    fn check_value() {
        let mut e = Slice8Engine::new(FCS32);
        e.update(b"123456789");
        assert_eq!(e.value(), 0xCBF43926);
    }

    #[test]
    fn matches_table_engine_on_many_lengths() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 999, 1000] {
            let mut a = Slice8Engine::new(FCS32);
            let mut b = TableEngine::new(FCS32);
            a.update(&data[..len]);
            b.update(&data[..len]);
            assert_eq!(a.value(), b.value(), "len {len}");
            assert_eq!(a.residue(), b.residue(), "len {len}");
        }
    }

    #[test]
    fn incremental_split_points() {
        let data: Vec<u8> = (0..=255).collect();
        for cut in [1usize, 3, 8, 13, 100] {
            let mut a = Slice8Engine::new(FCS32);
            a.update(&data[..cut]);
            a.update(&data[cut..]);
            let mut b = Slice8Engine::new(FCS32);
            b.update(&data);
            assert_eq!(a.value(), b.value(), "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "32-bit")]
    fn rejects_16_bit_params() {
        Slice8Engine::new(crate::FCS16);
    }
}
