//! Parallel CRC engines for the P⁵ PPP packet processor.
//!
//! The paper's CRC unit computes a 32-bit frame check sequence (FCS) via an
//! "8 x 32-bit parallel matrix (for the 8-bit P⁵) or via a 32 x 32-bit
//! parallel matrix (for the 32-bit P⁵)", following the high-speed parallel
//! CRC formulation of Pei & Zukowski (IEEE Trans. Comm., 1992).
//!
//! This crate provides four interchangeable realisations of the two PPP
//! frame check sequences (FCS-16 per RFC 1662 appendix C.1, FCS-32 per
//! appendix C.2):
//!
//! * [`bitwise`] — the 1-bit-per-step reference implementation, the golden
//!   model everything else is verified against;
//! * [`table`] — classic 256-entry table lookup, one byte per step (what a
//!   software PPP stack would do and the software baseline in the benches);
//! * [`mod@slice`] — slicing-by-8: eight bytes per iteration through eight
//!   derived tables, the fastest software realisation and the default
//!   engine of the behavioural Tx/Rx pipelines;
//! * [`matrix`] — the paper's parallel formulation: the CRC step over a
//!   W-byte word is a linear map over GF(2), captured as a boolean matrix
//!   `state' = F·state ⊕ G·data`.  [`matrix::StepMatrix`] exposes the raw
//!   XOR terms per output bit (consumed by `p5-rtl` to build the hardware
//!   XOR trees) and [`matrix::MatrixEngine`] evaluates the same matrix in
//!   software via per-byte-lane tables.
//!
//! All engines share the [`CrcEngine`] trait so they can be swapped in the
//! datapath and cross-checked property-style; [`FcsEngine`] is the
//! static-dispatch pair (slice | matrix) the pipelines instantiate.
//!
//! ```
//! use p5_crc::{fcs32, fcs32_wire_bytes, check_fcs32};
//!
//! let mut frame = b"ip datagram".to_vec();
//! let fcs = fcs32(&frame);
//! frame.extend_from_slice(&fcs32_wire_bytes(fcs));
//! assert!(check_fcs32(&frame));          // magic residue reached
//! frame[0] ^= 1;
//! assert!(!check_fcs32(&frame));         // any corruption is caught
//! ```

pub mod bitwise;
pub mod engine;
pub mod matrix;
pub mod params;
pub mod slice;
pub mod table;

pub use bitwise::BitwiseEngine;
pub use engine::{EngineKind, FcsEngine};
pub use matrix::{MatrixEngine, StepMatrix, Term};
pub use params::{CrcParams, FCS16, FCS32};
pub use slice::Slice8Engine;
pub use table::TableEngine;

/// A running CRC computation over a byte stream.
///
/// `value()` returns the *finalised* FCS (init/xorout applied); `residue()`
/// returns the raw shift-register state, which is what the hardware check
/// compares against the magic "good FCS" residue after the received FCS
/// bytes have passed through the checker.
pub trait CrcEngine {
    /// Reset the shift register to the preset value.
    fn reset(&mut self);
    /// Feed bytes through the register, least-significant bit first
    /// (PPP/HDLC bit ordering).
    fn update(&mut self, data: &[u8]);
    /// The finalised FCS over everything fed since the last reset.
    fn value(&self) -> u32;
    /// The raw (non-complemented) register contents.
    fn residue(&self) -> u32;
    /// The parameter set this engine computes.
    fn params(&self) -> &CrcParams;
}

/// One-shot FCS-32 of a buffer (complemented, ready for transmission).
pub fn fcs32(data: &[u8]) -> u32 {
    let mut e = TableEngine::new(FCS32);
    e.update(data);
    e.value()
}

/// One-shot FCS-16 of a buffer (complemented, ready for transmission).
pub fn fcs16(data: &[u8]) -> u16 {
    let mut e = TableEngine::new(FCS16);
    e.update(data);
    e.value() as u16
}

/// Serialise an FCS-32 for the wire: PPP transmits the FCS least
/// significant octet first (RFC 1662 §C.2).
pub fn fcs32_wire_bytes(fcs: u32) -> [u8; 4] {
    fcs.to_le_bytes()
}

/// Serialise an FCS-16 for the wire (least significant octet first).
pub fn fcs16_wire_bytes(fcs: u16) -> [u8; 2] {
    fcs.to_le_bytes()
}

/// Verify a frame body whose trailing bytes are its FCS-32: running the CRC
/// over data *and* FCS must land on the magic residue.
pub fn check_fcs32(frame_with_fcs: &[u8]) -> bool {
    if frame_with_fcs.len() < 4 {
        return false;
    }
    let mut e = TableEngine::new(FCS32);
    e.update(frame_with_fcs);
    e.residue() == FCS32.good_residue
}

/// Verify a frame body whose trailing bytes are its FCS-16.
pub fn check_fcs16(frame_with_fcs: &[u8]) -> bool {
    if frame_with_fcs.len() < 2 {
        return false;
    }
    let mut e = TableEngine::new(FCS16);
    e.update(frame_with_fcs);
    e.residue() == FCS16.good_residue
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn fcs32_check_value() {
        // CRC-32/ISO-HDLC check value.
        assert_eq!(fcs32(CHECK), 0xCBF4_3926);
    }

    #[test]
    fn fcs16_check_value() {
        // CRC-16/X-25 check value.
        assert_eq!(fcs16(CHECK), 0x906E);
    }

    #[test]
    fn fcs32_round_trip_lands_on_good_residue() {
        let mut frame = b"hello, sonet".to_vec();
        let fcs = fcs32(&frame);
        frame.extend_from_slice(&fcs32_wire_bytes(fcs));
        assert!(check_fcs32(&frame));
    }

    #[test]
    fn fcs16_round_trip_lands_on_good_residue() {
        let mut frame = b"hello, sonet".to_vec();
        let fcs = fcs16(&frame);
        frame.extend_from_slice(&fcs16_wire_bytes(fcs));
        assert!(check_fcs16(&frame));
    }

    #[test]
    fn fcs32_detects_single_bit_flip() {
        let mut frame = b"some payload bytes".to_vec();
        let fcs = fcs32(&frame);
        frame.extend_from_slice(&fcs32_wire_bytes(fcs));
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(!check_fcs32(&bad), "flip of bit {bit} went undetected");
        }
    }

    #[test]
    fn empty_and_short_frames_fail_check() {
        assert!(!check_fcs32(&[]));
        assert!(!check_fcs32(&[1, 2, 3]));
        assert!(!check_fcs16(&[]));
        assert!(!check_fcs16(&[1]));
    }
}
