//! CRC parameter sets for the two PPP frame check sequences.
//!
//! Both PPP FCSes are *reflected* CRCs: bits enter the register least
//! significant first, matching HDLC serial transmission order, so the
//! polynomial constants below are the bit-reversed ("reflected") forms.

/// A reflected CRC parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcParams {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Register width in bits (16 or 32 for PPP).
    pub width: u32,
    /// Reflected generator polynomial.
    pub poly: u32,
    /// Register preset (all ones for both PPP FCSes).
    pub init: u32,
    /// Final XOR (ones complement for both PPP FCSes).
    pub xorout: u32,
    /// The magic residue left in the register after a good frame *and its
    /// FCS* have been clocked through the checker.
    pub good_residue: u32,
}

impl CrcParams {
    /// Mask covering `width` bits.
    #[inline]
    pub const fn mask(&self) -> u32 {
        if self.width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }
}

/// FCS-16 (RFC 1662 appendix C.1): CRC-16/X-25.
/// Polynomial x^16 + x^12 + x^5 + 1.
pub const FCS16: CrcParams = CrcParams {
    name: "FCS-16",
    width: 16,
    poly: 0x8408,
    init: 0xFFFF,
    xorout: 0xFFFF,
    good_residue: 0xF0B8,
};

/// FCS-32 (RFC 1662 appendix C.2): CRC-32/ISO-HDLC, the FCS the paper's P⁵
/// computes ("for accuracy purposes the system will incorporate 32-bit CRC
/// checking").
/// Polynomial x^32+x^26+x^23+x^22+x^16+x^12+x^11+x^10+x^8+x^7+x^5+x^4+x^2+x+1.
pub const FCS32: CrcParams = CrcParams {
    name: "FCS-32",
    width: 32,
    poly: 0xEDB8_8320,
    init: 0xFFFF_FFFF,
    xorout: 0xFFFF_FFFF,
    good_residue: 0xDEBB_20E3,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(FCS16.mask(), 0xFFFF);
        assert_eq!(FCS32.mask(), 0xFFFF_FFFF);
    }

    #[test]
    fn good_residues_match_rfc1662() {
        // RFC 1662 quotes 0xF0B8 and 0xDEBB20E3 as the "good FCS" values.
        assert_eq!(FCS16.good_residue, 0xF0B8);
        assert_eq!(FCS32.good_residue, 0xDEBB20E3);
    }
}
