//! Recycled frame-buffer pool — the zero-copy backbone of the line-rate
//! datapath.
//!
//! Every stage boundary in the staged pipeline used to allocate a fresh
//! `Vec` per frame (submit payloads, reassembled Rx bodies, framer
//! scratch).  [`BufPool`] replaces those with a shared shelf of cleared,
//! capacity-retaining buffers: lease one, fill it, hand it downstream,
//! and the consumer recycles the storage when the bytes have moved on.
//! The pool is `Clone` (handles share one shelf) and `Send`, so the two
//! halves of a duplex link can share storage across threads.
//!
//! The shelf applies the scratch high-water policy on every recycle, so
//! a single jumbo frame cannot pin megabytes of capacity for the rest of
//! the run (see [`shrink_scratch`]).
//!
//! [`alloc_count`] rides along: a process-wide counter of per-frame heap
//! allocations the datapath could not avoid.  It is compiled to a no-op
//! unless the `alloc-count` cargo feature is enabled (the bench harness
//! turns it on to gate `allocs_per_frame` in the smoke report).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Scratch buffers shrink back to this capacity after servicing a jumbo
/// frame.  Comfortably above every normal MTU (a stuffed worst-case
/// 9 KiB jumbo doubles to ~18 KiB), far below pathological growth.
pub const SCRATCH_HIGH_WATER: usize = 64 * 1024;

/// Apply the high-water policy to a long-lived scratch `Vec`: capacity
/// above [`SCRATCH_HIGH_WATER`] is released (down to the live length if
/// the buffer is currently holding more).  Cheap no-op in steady state.
pub fn shrink_scratch(v: &mut Vec<u8>) {
    if v.capacity() > SCRATCH_HIGH_WATER {
        v.shrink_to(SCRATCH_HIGH_WATER.max(v.len()));
    }
}

/// Heap-allocation event accounting for the datapath.
///
/// Call [`alloc_count::note_alloc`] wherever the datapath falls back to
/// a fresh heap allocation (pool miss, cold scratch).  With the
/// `alloc-count` feature off (the default) every call compiles to
/// nothing; the bench harness enables it and reads [`alloc_count::events`]
/// around a steady-state window to compute `allocs_per_frame`.
pub mod alloc_count {
    #[cfg(feature = "alloc-count")]
    mod imp {
        use std::sync::atomic::{AtomicU64, Ordering};

        static EVENTS: AtomicU64 = AtomicU64::new(0);

        pub const ENABLED: bool = true;

        #[inline]
        pub fn note_alloc() {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }

        #[inline]
        pub fn events() -> u64 {
            EVENTS.load(Ordering::Relaxed)
        }
    }

    #[cfg(not(feature = "alloc-count"))]
    mod imp {
        pub const ENABLED: bool = false;

        #[inline]
        pub fn note_alloc() {}

        #[inline]
        pub fn events() -> u64 {
            0
        }
    }

    pub use imp::{events, note_alloc, ENABLED};
}

#[derive(Debug, Default)]
struct Inner {
    shelf: Mutex<Vec<Vec<u8>>>,
    leases: AtomicU64,
    misses: AtomicU64,
    recycles: AtomicU64,
}

/// A shared shelf of recycled byte buffers.  Cloning the handle shares
/// the shelf; the last handle dropped frees the storage.
#[derive(Debug, Clone, Default)]
pub struct BufPool {
    inner: Arc<Inner>,
}

/// Snapshot of a pool's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (hits + misses).
    pub leases: u64,
    /// Leases that had to allocate because the shelf was empty.
    pub misses: u64,
    /// Buffers returned to the shelf.
    pub recycles: u64,
    /// Buffers currently resting on the shelf.
    pub shelved: usize,
}

impl BufPool {
    /// Shelf depth cap: beyond this, recycled buffers are simply dropped
    /// rather than hoarded.
    pub const MAX_SHELVED: usize = 64;

    pub fn new() -> Self {
        Self::default()
    }

    /// Lease a cleared buffer, reusing shelved capacity when available.
    /// A shelf miss allocates (and is counted as an allocation event).
    pub fn lease_vec(&self) -> Vec<u8> {
        self.inner.leases.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.inner.shelf.lock().expect("buffer pool poisoned").pop() {
            return v;
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        alloc_count::note_alloc();
        Vec::new()
    }

    /// Return storage to the shelf (cleared, high-water-shrunk).  Buffers
    /// with no capacity and overflow beyond [`BufPool::MAX_SHELVED`] are
    /// dropped instead.
    pub fn recycle_vec(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        shrink_scratch(&mut v);
        let mut shelf = self.inner.shelf.lock().expect("buffer pool poisoned");
        if shelf.len() < Self::MAX_SHELVED {
            self.inner.recycles.fetch_add(1, Ordering::Relaxed);
            shelf.push(v);
        }
    }

    /// Lease a buffer behind a guard that recycles on drop.  Call
    /// [`Lease::detach`] to keep the storage and skip the return trip.
    pub fn lease(&self) -> Lease {
        Lease {
            buf: self.lease_vec(),
            pool: self.clone(),
        }
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            leases: self.inner.leases.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            recycles: self.inner.recycles.load(Ordering::Relaxed),
            shelved: self.inner.shelf.lock().expect("buffer pool poisoned").len(),
        }
    }
}

/// A leased buffer that returns itself to the pool when dropped.
/// Dereferences to the underlying `Vec<u8>`.
#[derive(Debug)]
pub struct Lease {
    buf: Vec<u8>,
    pool: BufPool,
}

impl Lease {
    /// Take the storage out of the guard; the pool sees nothing back
    /// (the eventual owner is expected to recycle it by hand).
    pub fn detach(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for Lease {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for Lease {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        // After `detach` the guard holds a zero-capacity Vec, which
        // `recycle_vec` discards without touching the shelf.
        self.pool.recycle_vec(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_capacity() {
        let pool = BufPool::new();
        let mut a = pool.lease_vec();
        a.extend_from_slice(&[7u8; 1500]);
        let cap = a.capacity();
        pool.recycle_vec(a);
        let b = pool.lease_vec();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "shelved storage is reused");
        let s = pool.stats();
        assert_eq!((s.leases, s.misses, s.recycles), (2, 1, 1));
    }

    #[test]
    fn drop_returns_lease_to_shelf_and_detach_does_not() {
        let pool = BufPool::new();
        {
            let mut l = pool.lease();
            l.extend_from_slice(b"frame bytes");
        }
        assert_eq!(pool.stats().shelved, 1);
        let taken = pool.lease().detach();
        assert_eq!(pool.stats().shelved, 0);
        drop(taken);
        assert_eq!(pool.stats().shelved, 0, "detached storage never returns");
    }

    #[test]
    fn recycle_applies_high_water_shrink() {
        let pool = BufPool::new();
        let mut jumbo = pool.lease_vec();
        jumbo.reserve(4 * SCRATCH_HIGH_WATER);
        pool.recycle_vec(jumbo);
        let back = pool.lease_vec();
        assert!(
            back.capacity() <= SCRATCH_HIGH_WATER,
            "jumbo capacity {} must shrink to the high-water mark",
            back.capacity()
        );
    }

    #[test]
    fn shrink_scratch_respects_live_length() {
        let mut v = vec![0u8; 2 * SCRATCH_HIGH_WATER];
        v.reserve(2 * SCRATCH_HIGH_WATER);
        shrink_scratch(&mut v);
        assert_eq!(v.len(), 2 * SCRATCH_HIGH_WATER, "contents untouched");
        assert!(v.capacity() >= v.len());
        v.clear();
        shrink_scratch(&mut v);
        assert!(v.capacity() <= SCRATCH_HIGH_WATER);
        let mut small = Vec::with_capacity(128);
        shrink_scratch(&mut small);
        assert_eq!(small.capacity(), 128, "small scratch is left alone");
    }

    #[test]
    fn shelf_depth_is_bounded() {
        let pool = BufPool::new();
        for _ in 0..2 * BufPool::MAX_SHELVED {
            pool.recycle_vec(Vec::with_capacity(64));
        }
        assert_eq!(pool.stats().shelved, BufPool::MAX_SHELVED);
    }

    #[test]
    fn handles_share_one_shelf() {
        let pool = BufPool::new();
        let other = pool.clone();
        other.recycle_vec(Vec::with_capacity(256));
        assert_eq!(pool.stats().shelved, 1);
        let v = pool.lease_vec();
        assert_eq!(v.capacity(), 256);
        assert_eq!(other.stats().shelved, 0);
    }

    #[test]
    fn alloc_count_is_wired() {
        // With the feature off this is the no-op shim; either way the
        // calls must be safe and monotone.
        let before = alloc_count::events();
        alloc_count::note_alloc();
        let after = alloc_count::events();
        if alloc_count::ENABLED {
            assert!(after > before);
        } else {
            assert_eq!(after, 0);
        }
    }
}
