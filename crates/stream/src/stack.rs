//! `Chain` and `Stack`: generic composition of [`StreamStage`]s with an
//! elastic `WireBuf` at every boundary.
//!
//! `Stack::step` sweeps the stages **sink→source**, the same evaluation
//! order the cycle model uses inside `TxPipeline::clock`: the downstream
//! stage drains (freeing space / deciding its ready) before the upstream
//! boundary offers, so backpressure propagates backwards through the whole
//! stack within one step, exactly like the combinational `ready` chain of
//! the RTL (lint rules P5L008–P5L010 police the same property in netlists).

use crate::buf::WireBuf;
use crate::stage::{Poll, StreamStage, WordStream};
use crate::stats::StageStats;

/// Static two-stage composition.  `Chain` is itself a [`StreamStage`], so
/// arbitrary trees compose without boxing.
#[derive(Debug)]
pub struct Chain<A, B> {
    pub first: A,
    pub second: B,
    mid: WireBuf,
}

impl<A: StreamStage, B: StreamStage> Chain<A, B> {
    pub fn new(first: A, second: B) -> Self {
        Chain {
            first,
            second,
            mid: WireBuf::new(),
        }
    }

    fn shuttle(&mut self) {
        self.first.drain(&mut self.mid);
        self.second.offer(&mut self.mid);
    }
}

impl<A: StreamStage, B: StreamStage> WordStream for Chain<A, B> {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let r = self.first.offer(input);
        self.shuttle();
        r
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        self.shuttle();
        self.second.drain(output)
    }
}

impl<A: StreamStage, B: StreamStage> StreamStage for Chain<A, B> {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn is_idle(&self) -> bool {
        self.first.is_idle() && self.second.is_idle() && self.mid.is_empty()
    }

    fn finish(&mut self) {
        self.first.finish();
        self.shuttle();
        self.second.finish();
    }

    fn stats(&self) -> StageStats {
        let mut s = self.first.stats();
        s.absorb(&self.second.stats());
        s
    }
}

/// Dynamic N-stage composition: any sequence of boxed stages joined by
/// elastic `WireBuf`s, with a [`StageStats`] hook per boundary.
pub struct Stack {
    stages: Vec<Box<dyn StreamStage>>,
    /// `stages.len() + 1` buffers; `bufs[i]` feeds `stages[i]`, the last is
    /// the stack output.
    bufs: Vec<WireBuf>,
    /// `boundary[i]` instruments the interface in front of `stages[i]`
    /// (`bytes_out` = bytes delivered *into* that buffer by the upstream
    /// stage, `stall_cycles` = sweeps in which `stages[i]` blocked,
    /// `bubble_cycles` = sweeps it was starved).  `boundary[len]` is the
    /// stack output.
    boundary: Vec<StageStats>,
    steps: u64,
}

impl Stack {
    /// Compose stages source→sink.  See also the [`crate::stack!`] macro.
    ///
    /// # Panics
    /// Panics if `stages` is empty.
    pub fn compose(stages: Vec<Box<dyn StreamStage>>) -> Self {
        assert!(
            !stages.is_empty(),
            "Stack::compose needs at least one stage"
        );
        let n = stages.len();
        Stack {
            stages,
            bufs: (0..=n).map(|_| WireBuf::new()).collect(),
            boundary: vec![StageStats::default(); n + 1],
            steps: 0,
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The buffer feeding the first stage — push frames/bytes here.
    pub fn input(&mut self) -> &mut WireBuf {
        self.bufs.first_mut().expect("stack has >= 1 stage")
    }

    /// The buffer the last stage drains into — pop results here.
    pub fn output(&mut self) -> &mut WireBuf {
        self.bufs.last_mut().expect("stack has >= 1 stage")
    }

    /// One sink→source sweep.  Every stage first drains into its output
    /// boundary, then consumes from its input boundary.  Returns the total
    /// bytes that crossed any boundary this sweep.
    pub fn step(&mut self) -> usize {
        self.steps += 1;
        let n = self.stages.len();
        let mut moved = 0;
        for i in (0..n).rev() {
            let (left, right) = self.bufs.split_at_mut(i + 1);
            let inb = &mut left[i];
            let outb = &mut right[0];
            let stage = &mut self.stages[i];
            match stage.drain(outb) {
                Poll::Ready(k) => {
                    moved += k;
                    self.boundary[i + 1].bytes_out += k as u64;
                    self.boundary[i + 1].words_out += u64::from(k > 0);
                }
                Poll::Blocked => self.boundary[i + 1].stall_cycles += 1,
            }
            self.boundary[i + 1].note_occupancy(outb.len());
            let starved = inb.is_empty();
            match stage.offer(inb) {
                Poll::Ready(k) => {
                    moved += k;
                    self.boundary[i].words_in += u64::from(k > 0);
                    if k == 0 && starved {
                        self.boundary[i].bubble_cycles += 1;
                    }
                }
                Poll::Blocked => self.boundary[i].stall_cycles += 1,
            }
        }
        for b in &mut self.boundary {
            b.cycles += 1;
        }
        moved
    }

    /// Step until every stage is idle and every internal boundary is empty
    /// (the output boundary may hold results).  Returns `true` if idle was
    /// reached within `max_steps`.
    pub fn run_until_idle(&mut self, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            self.step();
            if self.is_idle() {
                return true;
            }
        }
        self.is_idle()
    }

    pub fn is_idle(&self) -> bool {
        let n = self.stages.len();
        self.stages.iter().all(|s| s.is_idle()) && self.bufs[..n].iter().all(|b| b.is_empty())
    }

    /// Signal end-of-input source→sink, sweeping between stages so each
    /// stage's flush reaches the next before it is finished in turn.
    pub fn finish(&mut self) {
        for i in 0..self.stages.len() {
            self.stages[i].finish();
            self.step();
            self.step();
        }
    }

    /// Sweeps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Per-stage `(name, stats)` as reported by the stages themselves.
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        self.stages.iter().map(|s| (s.name(), s.stats())).collect()
    }

    /// Per-boundary flow counters (see the field docs on `boundary`).
    pub fn boundary_stats(&self) -> &[StageStats] {
        &self.boundary
    }
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("steps", &self.steps)
            .finish()
    }
}

/// Compose a [`Stack`] from stage expressions:
/// `let mut s = stack![FramerStage::new(..), ChannelStage::new(..)];`
#[macro_export]
macro_rules! stack {
    ($($stage:expr),+ $(,)?) => {
        $crate::Stack::compose(vec![
            $(Box::new($stage) as Box<dyn $crate::StreamStage>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Pipe, Throttle};

    #[test]
    fn stack_of_pipes_is_identity_on_frames() {
        let mut s = stack![
            Pipe::with_max_per_call(3),
            Pipe::new(),
            Pipe::with_max_per_call(1)
        ];
        s.input().push_frame(&[1, 2, 3, 4, 5]);
        s.input().push_frame(&[6]);
        assert!(s.run_until_idle(100));
        let out = s.output();
        assert_eq!(out.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5]);
        assert_eq!(out.pop_frame().unwrap().0, vec![6]);
        assert!(out.is_empty());
    }

    #[test]
    fn throttled_stack_still_delivers_in_order() {
        let mut s = stack![
            Throttle::new(Pipe::with_max_per_call(2), vec![true, false, false]),
            // Odd pattern length so the two gate draws per sweep (drain,
            // offer) walk the whole pattern instead of phase-locking.
            Throttle::new(Pipe::with_max_per_call(5), vec![false, true, true]),
        ];
        let payload: Vec<u8> = (0..64).collect();
        s.input().push_slice(&payload);
        assert!(s.run_until_idle(500));
        assert_eq!(s.output().as_slice(), payload.as_slice());
    }

    #[test]
    fn boundary_stats_account_for_flow() {
        let mut s = stack![Pipe::new()];
        s.input().push_slice(&[0; 10]);
        assert!(s.run_until_idle(10));
        let b = s.boundary_stats();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].bytes_out, 10, "output boundary saw all bytes");
        assert!(b[0].cycles > 0);
    }

    #[test]
    fn chain_composes_statically() {
        let mut c = Chain::new(Pipe::with_max_per_call(2), Pipe::new());
        let mut input = WireBuf::new();
        let mut output = WireBuf::new();
        input.push_frame(&[9, 8, 7]);
        let mut guard = 0;
        while !(input.is_empty() && c.is_idle()) {
            c.offer(&mut input);
            c.drain(&mut output);
            guard += 1;
            assert!(guard < 100);
        }
        c.finish();
        c.drain(&mut output);
        assert_eq!(output.pop_frame().unwrap().0, vec![9, 8, 7]);
    }
}
