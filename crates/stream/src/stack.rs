//! `Chain` and `Stack`: generic composition of [`StreamStage`]s with an
//! elastic `WireBuf` at every boundary.
//!
//! `Stack::step` sweeps the stages **sink→source**, the same evaluation
//! order the cycle model uses inside `TxPipeline::clock`: the downstream
//! stage drains (freeing space / deciding its ready) before the upstream
//! boundary offers, so backpressure propagates backwards through the whole
//! stack within one step, exactly like the combinational `ready` chain of
//! the RTL (lint rules P5L008–P5L010 police the same property in netlists).

use crate::buf::WireBuf;
use crate::stage::{Poll, StreamStage, WordStream};
use crate::stats::StageStats;
use p5_trace::{Event, EventKind, Histogram, NullSink, Observable, Snapshot, TraceSink};
use std::fmt::Write as _;

/// Static two-stage composition.  `Chain` is itself a [`StreamStage`], so
/// arbitrary trees compose without boxing.
#[derive(Debug)]
pub struct Chain<A, B> {
    pub first: A,
    pub second: B,
    mid: WireBuf,
}

impl<A: StreamStage, B: StreamStage> Chain<A, B> {
    pub fn new(first: A, second: B) -> Self {
        Chain {
            first,
            second,
            mid: WireBuf::new(),
        }
    }

    fn shuttle(&mut self) {
        self.first.drain(&mut self.mid);
        self.second.offer(&mut self.mid);
    }
}

impl<A: StreamStage, B: StreamStage> WordStream for Chain<A, B> {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let r = self.first.offer(input);
        self.shuttle();
        r
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        self.shuttle();
        self.second.drain(output)
    }
}

impl<A: StreamStage, B: StreamStage> StreamStage for Chain<A, B> {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn is_idle(&self) -> bool {
        self.first.is_idle() && self.second.is_idle() && self.mid.is_empty()
    }

    fn finish(&mut self) {
        self.first.finish();
        self.shuttle();
        self.second.finish();
    }

    fn stats(&self) -> StageStats {
        let mut s = self.first.stats();
        s.absorb(&self.second.stats());
        s
    }
}

impl<A: Observable, B: Observable> Observable for Chain<A, B> {
    fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("chain");
        s.absorb(&self.first.snapshot());
        s.absorb(&self.second.snapshot());
        s
    }
}

/// Dynamic N-stage composition: any sequence of boxed stages joined by
/// elastic `WireBuf`s, with a [`StageStats`] hook per boundary.
pub struct Stack {
    stages: Vec<Box<dyn StreamStage>>,
    /// `stages.len() + 1` buffers; `bufs[i]` feeds `stages[i]`, the last is
    /// the stack output.
    bufs: Vec<WireBuf>,
    /// `boundary[i]` instruments the interface in front of `stages[i]`
    /// (`bytes_out` = bytes delivered *into* that buffer by the upstream
    /// stage, `stall_cycles` = sweeps in which `stages[i]` blocked,
    /// `bubble_cycles` = sweeps it was starved).  `boundary[len]` is the
    /// stack output.
    boundary: Vec<StageStats>,
    /// Per-boundary histogram state: burst sizes delivered into the
    /// boundary buffer and the lengths of consecutive-blocked runs.
    traces: Vec<BoundaryTrace>,
    steps: u64,
    /// Backpressure events go here when the sink is enabled.
    sink: Box<dyn TraceSink>,
    trace_enabled: bool,
}

#[derive(Debug, Default, Clone)]
struct BoundaryTrace {
    /// Length of the blocked-offer run currently in progress.
    stall_run: u64,
    stall_runs: Histogram,
    burst_bytes: Histogram,
}

impl Stack {
    /// Compose stages source→sink.  See also the [`crate::stack!`] macro.
    ///
    /// # Panics
    /// Panics if `stages` is empty.
    pub fn compose(stages: Vec<Box<dyn StreamStage>>) -> Self {
        assert!(
            !stages.is_empty(),
            "Stack::compose needs at least one stage"
        );
        let n = stages.len();
        Stack {
            stages,
            bufs: (0..=n).map(|_| WireBuf::new()).collect(),
            boundary: vec![StageStats::default(); n + 1],
            traces: vec![BoundaryTrace::default(); n + 1],
            steps: 0,
            sink: Box::new(NullSink),
            trace_enabled: false,
        }
    }

    /// Attach a [`TraceSink`]; boundary backpressure events are recorded
    /// into it (stamped with the sweep number) while it reports enabled.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_enabled = sink.enabled();
        self.sink = sink;
    }

    /// Detach and return the current sink, restoring the free `NullSink`.
    pub fn take_sink(&mut self) -> Box<dyn TraceSink> {
        self.trace_enabled = false;
        std::mem::replace(&mut self.sink, Box::new(NullSink))
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// The stage topology of this stack: a linear source→sink chain of
    /// the composed stage names, for link-level static analysis.
    pub fn topology(&self) -> crate::Topology {
        crate::Topology::chain(
            "stack",
            self.stages.iter().map(|s| s.name().to_string()).collect(),
        )
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The buffer feeding the first stage — push frames/bytes here.
    pub fn input(&mut self) -> &mut WireBuf {
        self.bufs.first_mut().expect("stack has >= 1 stage")
    }

    /// The buffer the last stage drains into — pop results here.
    pub fn output(&mut self) -> &mut WireBuf {
        self.bufs.last_mut().expect("stack has >= 1 stage")
    }

    /// One sink→source sweep.  Every stage first drains into its output
    /// boundary, then consumes from its input boundary.  Returns the total
    /// bytes that crossed any boundary this sweep.
    pub fn step(&mut self) -> usize {
        self.steps += 1;
        let n = self.stages.len();
        let mut moved = 0;
        for i in (0..n).rev() {
            let (left, right) = self.bufs.split_at_mut(i + 1);
            let inb = &mut left[i];
            let outb = &mut right[0];
            let stage = &mut self.stages[i];
            match stage.drain(outb) {
                Poll::Ready(k) => {
                    moved += k;
                    self.boundary[i + 1].bytes_out += k as u64;
                    self.boundary[i + 1].words_out += u64::from(k > 0);
                    if k > 0 {
                        self.traces[i + 1].burst_bytes.observe(k as u64);
                    }
                }
                Poll::Blocked => self.boundary[i + 1].stall_cycles += 1,
            }
            self.boundary[i + 1].note_occupancy(outb.len());
            // Stall attribution: every sweep in which data was on offer
            // resolves to exactly one of accepted/rejected/blocked, so
            // `offered == accepted + rejected + blocked` holds per boundary
            // by construction (proptested in tests/stream_stack.rs).
            let starved = inb.is_empty();
            if !starved {
                self.boundary[i].offered += 1;
            }
            match stage.offer(inb) {
                Poll::Ready(k) => {
                    moved += k;
                    self.boundary[i].words_in += u64::from(k > 0);
                    if !starved {
                        if k > 0 {
                            self.boundary[i].accepted += 1;
                        } else {
                            self.boundary[i].rejected += 1;
                        }
                    }
                    if k == 0 && starved {
                        self.boundary[i].bubble_cycles += 1;
                    }
                    let t = &mut self.traces[i];
                    if t.stall_run > 0 {
                        t.stall_runs.observe(t.stall_run);
                        t.stall_run = 0;
                    }
                }
                Poll::Blocked => {
                    self.boundary[i].stall_cycles += 1;
                    if !starved {
                        self.boundary[i].blocked += 1;
                    }
                    self.traces[i].stall_run += 1;
                    if self.trace_enabled {
                        self.sink.record(Event {
                            cycle: self.steps,
                            kind: EventKind::Backpressure {
                                boundary: self.stages[i].name(),
                            },
                        });
                    }
                }
            }
        }
        for b in &mut self.boundary {
            b.cycles += 1;
        }
        moved
    }

    /// Step until every stage is idle and every internal boundary is empty
    /// (the output boundary may hold results).  Returns `true` if idle was
    /// reached within `max_steps`.
    pub fn run_until_idle(&mut self, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            self.step();
            if self.is_idle() {
                return true;
            }
        }
        self.is_idle()
    }

    pub fn is_idle(&self) -> bool {
        let n = self.stages.len();
        self.stages.iter().all(|s| s.is_idle()) && self.bufs[..n].iter().all(|b| b.is_empty())
    }

    /// Signal end-of-input source→sink, sweeping between stages so each
    /// stage's flush reaches the next before it is finished in turn.
    pub fn finish(&mut self) {
        for i in 0..self.stages.len() {
            self.stages[i].finish();
            self.step();
            self.step();
        }
    }

    /// Sweeps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Per-stage `(name, stats)` as reported by the stages themselves.
    pub fn stage_stats(&self) -> Vec<(&'static str, StageStats)> {
        self.stages.iter().map(|s| (s.name(), s.stats())).collect()
    }

    /// Per-boundary flow counters (see the field docs on `boundary`).
    pub fn boundary_stats(&self) -> &[StageStats] {
        &self.boundary
    }

    /// Label for boundary `i`: the stage it feeds, or `output`.
    fn boundary_label(&self, i: usize) -> String {
        if i < self.stages.len() {
            format!("boundary->{}", self.stages[i].name())
        } else {
            "boundary->output".to_string()
        }
    }

    /// Metrics snapshots of every stage, in pipeline order.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.stages.iter().map(|s| s.snapshot()).collect()
    }

    /// Per-boundary snapshots: the flow counters plus the burst-size and
    /// stall-run histograms.
    pub fn boundary_snapshots(&self) -> Vec<Snapshot> {
        self.boundary
            .iter()
            .zip(self.traces.iter())
            .enumerate()
            .map(|(i, (stats, trace))| {
                stats
                    .snapshot(&self.boundary_label(i))
                    .histogram("burst_bytes", trace.burst_bytes.clone())
                    .histogram("stall_runs", trace.stall_runs.clone())
            })
            .collect()
    }

    /// The per-boundary stall-attribution table: for each boundary, how
    /// many offered sweeps were accepted, refused (`Ready(0)`) or blocked,
    /// and the share of all sweeps spent stalled — the view that names
    /// which stage bounds throughput.
    pub fn stall_table(&self) -> String {
        let labels: Vec<String> = (0..self.boundary.len())
            .map(|i| self.boundary_label(i))
            .collect();
        let w = labels.iter().map(|l| l.len()).max().unwrap_or(8).max(8);
        let mut out = format!(
            "{:<w$} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12}\n",
            "boundary", "offered", "accepted", "rejected", "blocked", "stall%", "bytes"
        );
        for (label, b) in labels.iter().zip(self.boundary.iter()) {
            let _ = writeln!(
                out,
                "{label:<w$} {:>9} {:>9} {:>9} {:>9} {:>6.1}% {:>12}",
                b.offered,
                b.accepted,
                b.rejected,
                b.blocked,
                100.0 * b.stall_rate(),
                b.bytes_out,
            );
        }
        out
    }
}

impl Observable for Stack {
    /// Aggregate of every stage snapshot plus the stack's own sweep count.
    fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("stack").counter("steps", self.steps);
        for stage in &self.stages {
            s.absorb(&stage.snapshot());
        }
        s
    }
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("steps", &self.steps)
            .finish()
    }
}

/// Compose a [`Stack`] from stage expressions:
/// `let mut s = stack![FramerStage::new(..), ChannelStage::new(..)];`
#[macro_export]
macro_rules! stack {
    ($($stage:expr),+ $(,)?) => {
        $crate::Stack::compose(vec![
            $(Box::new($stage) as Box<dyn $crate::StreamStage>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Pipe, Throttle};

    #[test]
    fn stack_of_pipes_is_identity_on_frames() {
        let mut s = stack![
            Pipe::with_max_per_call(3),
            Pipe::new(),
            Pipe::with_max_per_call(1)
        ];
        s.input().push_frame(&[1, 2, 3, 4, 5]);
        s.input().push_frame(&[6]);
        assert!(s.run_until_idle(100));
        let out = s.output();
        assert_eq!(out.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5]);
        assert_eq!(out.pop_frame().unwrap().0, vec![6]);
        assert!(out.is_empty());
    }

    #[test]
    fn throttled_stack_still_delivers_in_order() {
        let mut s = stack![
            Throttle::new(Pipe::with_max_per_call(2), vec![true, false, false]),
            // Odd pattern length so the two gate draws per sweep (drain,
            // offer) walk the whole pattern instead of phase-locking.
            Throttle::new(Pipe::with_max_per_call(5), vec![false, true, true]),
        ];
        let payload: Vec<u8> = (0..64).collect();
        s.input().push_slice(&payload);
        assert!(s.run_until_idle(500));
        assert_eq!(s.output().as_slice(), payload.as_slice());
    }

    #[test]
    fn boundary_stats_account_for_flow() {
        let mut s = stack![Pipe::new()];
        s.input().push_slice(&[0; 10]);
        assert!(s.run_until_idle(10));
        let b = s.boundary_stats();
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].bytes_out, 10, "output boundary saw all bytes");
        assert!(b[0].cycles > 0);
    }

    #[test]
    fn attribution_invariant_holds_under_throttling() {
        let mut s = stack![
            Throttle::new(Pipe::with_max_per_call(2), vec![true, false, false]),
            Throttle::new(Pipe::with_max_per_call(5), vec![false, true, true]),
        ];
        let payload: Vec<u8> = (0..64).collect();
        s.input().push_slice(&payload);
        assert!(s.run_until_idle(500));
        s.finish();
        for b in s.boundary_stats() {
            assert_eq!(b.offered, b.accepted + b.rejected + b.blocked);
        }
        // The first boundary definitely saw backpressure: its throttle
        // blocks two sweeps in three.
        assert!(s.boundary_stats()[0].blocked > 0);
    }

    #[test]
    fn backpressure_events_reach_the_sink() {
        use p5_trace::{EventKind, SharedRecorder};
        let handle = SharedRecorder::with_capacity(256);
        // Odd pattern length: the two gate draws per sweep (drain, offer)
        // walk the whole pattern instead of phase-locking.
        let mut s = stack![Throttle::new(Pipe::new(), vec![false, true, true])];
        s.set_sink(Box::new(handle.clone()));
        s.input().push_slice(&[7; 16]);
        assert!(s.run_until_idle(50));
        let events = handle.events();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| matches!(e.kind, EventKind::Backpressure { boundary: "pipe" })));
        // Cycle stamps are the sweep numbers: monotone non-decreasing.
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Detaching restores the free null sink.
        let _ = s.take_sink();
        s.input().push_slice(&[7; 4]);
        s.run_until_idle(50);
        assert_eq!(handle.len(), events.len());
    }

    #[test]
    fn stall_table_and_snapshots_cover_every_boundary() {
        let mut s = stack![
            Pipe::with_max_per_call(3),
            Throttle::new(Pipe::new(), vec![false, true, true])
        ];
        s.input().push_slice(&[1; 32]);
        assert!(s.run_until_idle(200));
        let table = s.stall_table();
        assert!(table.contains("boundary->pipe"));
        assert!(table.contains("boundary->output"));
        assert!(table.contains("offered"));
        let bs = s.boundary_snapshots();
        assert_eq!(bs.len(), 3);
        assert!(bs[2].get("bytes_out").unwrap() >= 32);
        assert!(bs
            .iter()
            .all(|b| b.histograms.iter().any(|(n, _)| n == "burst_bytes")));
        let agg = s.snapshot();
        assert_eq!(agg.scope, "stack");
        assert!(agg.get("steps").unwrap() > 0);
    }

    #[test]
    fn chain_composes_statically() {
        let mut c = Chain::new(Pipe::with_max_per_call(2), Pipe::new());
        let mut input = WireBuf::new();
        let mut output = WireBuf::new();
        input.push_frame(&[9, 8, 7]);
        let mut guard = 0;
        while !(input.is_empty() && c.is_idle()) {
            c.offer(&mut input);
            c.drain(&mut output);
            guard += 1;
            assert!(guard < 100);
        }
        c.finish();
        c.drain(&mut output);
        assert_eq!(output.pop_frame().unwrap().0, vec![9, 8, 7]);
    }
}
