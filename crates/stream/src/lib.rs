//! p5-stream — the behavioural counterpart of the RTL handshake convention.
//!
//! The P5 netlists wire every stage together with the same four-signal
//! interface (`in_data`/`in_valid`/`in_ready`, `out_*`), and p5-lint rules
//! P5L008–P5L010 hold RTL to that discipline.  This crate is the software
//! analogue: a [`WordStream`] moves bytes in *batches* through a [`WireBuf`]
//! (tagged SOF/EOF/abort word lanes ride alongside the data, like the
//! sideband strobes of the hardware bus), [`Poll::Blocked`] is the
//! deasserted `ready`, and [`Stack`] sweeps stages sink→source each step so
//! backpressure propagates combinationally backwards exactly as in the RTL
//! pipeline of the paper's Figure 3/4.
//!
//! Protocol crates implement [`StreamStage`] for their framers, channels and
//! devices; [`Stack::compose`] (or the [`stack!`] macro) then chains any
//! sequence of them with elastic buffers at each boundary and per-boundary
//! [`StageStats`] hooks.

pub mod buf;
pub mod offer;
pub mod pool;
pub mod stack;
pub mod stage;
pub mod stats;
pub mod topology;

pub use buf::{FrameMeta, WireBuf};
pub use offer::Offer;
pub use pool::{shrink_scratch, BufPool, Lease, PoolStats, SCRATCH_HIGH_WATER};
pub use stack::{Chain, Stack};
pub use stage::{Pipe, Poll, StreamStage, Throttle, WordStream};
pub use stats::StageStats;
pub use topology::Topology;

// Re-exported so downstream crates implement `Observable` (a `StreamStage`
// supertrait) and emit trace events without naming `p5-trace` in their
// manifests.
pub use p5_trace::{
    render_table, snapshot_to_json, to_json, to_prometheus, Event, EventKind, FrameId, Histogram,
    NullSink, Observable, RingRecorder, SharedRecorder, Snapshot, TraceSink,
};
