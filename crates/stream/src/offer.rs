//! [`Offer`]: the one backpressure vocabulary for frame admission.
//!
//! Every bounded ingress boundary in the workspace — a device's TX
//! queue, a fleet link's ingress ring, a transport session's staging
//! queue — answers the same question when handed a frame: did it go in,
//! and if not, why.  Historically each layer answered in its own
//! dialect (`Result<(), TxQueueFull>` at the device, a three-variant
//! `OfferOutcome` at the fleet); `Offer` is the union, defined here in
//! the lowest common crate so `p5-link`, `p5-runtime` and `p5-xport`
//! all speak it.
//!
//! The variants map onto the conservation law the stats layer already
//! enforces (`offered == accepted + shed + rejected + queued`): exactly
//! one variant is returned per offered frame, so summing outcomes
//! reproduces the flow accounting.

/// What happened to one frame offered across a bounded ingress
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Offer {
    /// Went straight into the device (fused fast path or an empty
    /// staged queue): the frame is in flight now.
    Accepted,
    /// Admitted to a bounded staging queue; a later tick moves it into
    /// the device.  The frame is safe but not yet in flight.
    Queued,
    /// Refused at admission: the staging queue is at its configured
    /// depth.  The frame is dropped here — graceful shedding, counted
    /// by the owner.
    Shed,
    /// Refused by the device itself (its bounded TX queue is full).
    /// Counted by the device in `TX_REJECTS`.
    Rejected,
}

impl Offer {
    /// The frame made it past admission (it will be transmitted unless
    /// the wire eats it).
    pub fn is_admitted(self) -> bool {
        matches!(self, Offer::Accepted | Offer::Queued)
    }

    /// The frame was dropped at this boundary (shed or rejected) and
    /// the caller still owns retrying it.
    pub fn is_dropped(self) -> bool {
        !self.is_admitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_partitions_the_variants() {
        assert!(Offer::Accepted.is_admitted());
        assert!(Offer::Queued.is_admitted());
        assert!(Offer::Shed.is_dropped());
        assert!(Offer::Rejected.is_dropped());
        for o in [Offer::Accepted, Offer::Queued, Offer::Shed, Offer::Rejected] {
            assert_ne!(o.is_admitted(), o.is_dropped());
        }
    }
}
