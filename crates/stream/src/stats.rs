//! Per-stage instrumentation: the observables behind the paper's
//! Figure 5/6 discussion (stalls, buffer occupancy, backpressure).
//!
//! `StageStats` started life inside `p5-core`; it now lives here so every
//! crate that implements [`crate::StreamStage`] can report through the same
//! counters, and so [`crate::Stack`] can keep a `StageStats` per boundary.

use p5_trace::Snapshot;

/// Counters every pipeline stage (and every `Stack` boundary) maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Clock cycles (or `Stack` sweeps) seen.
    pub cycles: u64,
    /// Cycles in which the stage refused input (backpressure asserted
    /// upstream).
    pub stall_cycles: u64,
    /// Words accepted.
    pub words_in: u64,
    /// Words emitted.
    pub words_out: u64,
    /// Payload bytes emitted.
    pub bytes_out: u64,
    /// High-water mark of the internal staging/resynchronisation buffer,
    /// in bytes (or items).
    pub max_occupancy: usize,
    /// Cycles in which the output was starved (nothing to emit while the
    /// sink was ready) — the receive-side "bubbles" of Figure 6.
    pub bubble_cycles: u64,
    /// Submissions refused outright because a bounded queue was full (the
    /// shared-memory transmit queue's drop counter).
    pub rejects: u64,
    /// Handshake attempts in which data was actually on offer (`offer`
    /// called with a non-empty buffer).  Every such attempt resolves to
    /// exactly one of `accepted`/`rejected`/`blocked`:
    /// `offered == accepted + rejected + blocked` is the stall-attribution
    /// invariant `Stack` maintains per boundary.
    pub offered: u64,
    /// Offered attempts in which at least one byte crossed.
    pub accepted: u64,
    /// Offered attempts the stage answered `Ready(0)` to — ready was up
    /// but the stage took nothing (word-alignment or quota refusals).
    pub rejected: u64,
    /// Offered attempts the stage answered `Blocked` to — backpressure.
    pub blocked: u64,
}

impl StageStats {
    pub fn note_occupancy(&mut self, occ: usize) {
        if occ > self.max_occupancy {
            self.max_occupancy = occ;
        }
    }

    /// Fraction of cycles spent refusing input.
    pub fn stall_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean output bytes per cycle — the throughput the paper quotes as
    /// "able to process 32 bits every clock cycle".
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes_out as f64 / self.cycles as f64
        }
    }

    /// Fold another stage's counters into this one (used by combinators
    /// that report a single aggregate for several inner stages).
    pub fn absorb(&mut self, other: &StageStats) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.words_in += other.words_in;
        self.words_out += other.words_out;
        self.bytes_out += other.bytes_out;
        self.bubble_cycles += other.bubble_cycles;
        self.rejects += other.rejects;
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.blocked += other.blocked;
        self.note_occupancy(other.max_occupancy);
    }

    /// Export as a [`Snapshot`] under the given scope — the standard
    /// `Observable` body for a stage whose only state is a `StageStats`.
    pub fn snapshot(&self, scope: &str) -> Snapshot {
        Snapshot::new(scope)
            .counter("cycles", self.cycles)
            .counter("stall_cycles", self.stall_cycles)
            .counter("bubble_cycles", self.bubble_cycles)
            .counter("words_in", self.words_in)
            .counter("words_out", self.words_out)
            .counter("bytes_out", self.bytes_out)
            .counter("max_occupancy", self.max_occupancy as u64)
            .counter("rejects", self.rejects)
            .counter("offered", self.offered)
            .counter("accepted", self.accepted)
            .counter("rejected", self.rejected)
            .counter("blocked", self.blocked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = StageStats {
            cycles: 100,
            stall_cycles: 25,
            bytes_out: 320,
            ..Default::default()
        };
        assert!((s.stall_rate() - 0.25).abs() < 1e-12);
        assert!((s.bytes_per_cycle() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = StageStats::default();
        assert_eq!(s.stall_rate(), 0.0);
        assert_eq!(s.bytes_per_cycle(), 0.0);
    }

    #[test]
    fn occupancy_high_water() {
        let mut s = StageStats::default();
        s.note_occupancy(3);
        s.note_occupancy(9);
        s.note_occupancy(5);
        assert_eq!(s.max_occupancy, 9);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = StageStats {
            cycles: 10,
            bytes_out: 100,
            max_occupancy: 4,
            rejects: 1,
            ..Default::default()
        };
        let b = StageStats {
            cycles: 5,
            bytes_out: 50,
            max_occupancy: 9,
            rejects: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.bytes_out, 150);
        assert_eq!(a.max_occupancy, 9);
        assert_eq!(a.rejects, 3);
    }

    #[test]
    fn absorb_sums_attribution_counters() {
        let mut a = StageStats {
            offered: 10,
            accepted: 7,
            rejected: 1,
            blocked: 2,
            ..Default::default()
        };
        a.absorb(&a.clone());
        assert_eq!(a.offered, 20);
        assert_eq!(a.accepted + a.rejected + a.blocked, 20);
    }

    #[test]
    fn snapshot_exports_every_counter() {
        let s = StageStats {
            cycles: 4,
            offered: 3,
            accepted: 2,
            blocked: 1,
            bytes_out: 99,
            ..Default::default()
        };
        let snap = s.snapshot("stage");
        assert_eq!(snap.scope, "stage");
        assert_eq!(snap.get("offered"), Some(3));
        assert_eq!(snap.get("accepted"), Some(2));
        assert_eq!(snap.get("blocked"), Some(1));
        assert_eq!(snap.get("bytes_out"), Some(99));
    }
}
