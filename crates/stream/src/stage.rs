//! The `WordStream`/`StreamStage` traits — the valid/ready handshake as a
//! pair of batched transfer calls — plus two small generic stages
//! ([`Pipe`], [`Throttle`]) used for composition and stall testing.

use crate::buf::WireBuf;
use crate::stats::StageStats;
use p5_trace::{Observable, Snapshot};

/// Outcome of one handshake attempt, the software image of the RTL
/// `valid`/`ready` pair for a whole batch of beats:
///
/// * `Ready(n)` — the interface was ready; `n` bytes crossed it.  `Ready(0)`
///   means *starved* (ready asserted, nothing valid to move), the Figure 6
///   "bubble".
/// * `Blocked` — ready was deasserted: the stage is applying backpressure
///   and the caller must retry later without losing the data it offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    Ready(usize),
    Blocked,
}

impl Poll {
    /// Bytes transferred (0 when blocked).
    pub fn bytes(self) -> usize {
        match self {
            Poll::Ready(n) => n,
            Poll::Blocked => 0,
        }
    }

    pub fn is_blocked(self) -> bool {
        matches!(self, Poll::Blocked)
    }
}

/// A directional byte/word stream end.  `offer` drives the stage's `in_*`
/// bus (the stage consumes from `input` while its `in_ready` holds);
/// `drain` services its `out_*` bus (the stage appends to `output` while
/// the caller's ready — the elastic `WireBuf` — holds).
///
/// Both calls are batched: a stage consumes/produces as much as its
/// internal state allows per call, using slice operations on the
/// [`WireBuf`], never per-byte queue traffic.
pub trait WordStream {
    fn offer(&mut self, input: &mut WireBuf) -> Poll;
    fn drain(&mut self, output: &mut WireBuf) -> Poll;
}

/// A composable pipeline stage: a [`WordStream`] with identity, idleness
/// (for run-to-completion loops), an end-of-input hook and instrumentation.
///
/// Every stage is [`Observable`]: it must report a metrics [`Snapshot`].
/// Stages whose only state is a [`StageStats`] implement it in one line
/// with [`StageStats::snapshot`]; richer stages (devices, paths) fold in
/// their own counters.
pub trait StreamStage: WordStream + Observable {
    fn name(&self) -> &'static str;

    /// No input pending, no state in flight, nothing left to emit.
    fn is_idle(&self) -> bool;

    /// Upstream signalled end-of-input: flush anything held back (partial
    /// frames, channel backlogs).  Stages with nothing to flush keep the
    /// default no-op.
    fn finish(&mut self) {}

    fn stats(&self) -> StageStats {
        StageStats::default()
    }
}

/// An elastic FIFO stage: stores what it is offered, emits it unchanged.
/// `max_per_call` caps the batch size per handshake, which makes `Pipe` the
/// reference "registered stage" for word-granularity stall tests.
#[derive(Debug, Default)]
pub struct Pipe {
    buf: WireBuf,
    max_per_call: usize,
    stats: StageStats,
}

impl Pipe {
    pub fn new() -> Self {
        Pipe {
            max_per_call: usize::MAX,
            ..Default::default()
        }
    }

    /// A pipe that moves at most `max` bytes per `offer`/`drain` call.
    pub fn with_max_per_call(max: usize) -> Self {
        Pipe {
            max_per_call: max.max(1),
            ..Default::default()
        }
    }
}

impl WordStream for Pipe {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        let n = self.buf.move_from(input, self.max_per_call);
        self.stats.cycles += 1;
        self.stats.words_in += u64::from(n > 0);
        self.stats.note_occupancy(self.buf.len());
        Poll::Ready(n)
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        let n = output.move_from(&mut self.buf, self.max_per_call);
        self.stats.words_out += u64::from(n > 0);
        self.stats.bytes_out += n as u64;
        Poll::Ready(n)
    }
}

impl Observable for Pipe {
    fn snapshot(&self) -> Snapshot {
        self.stats.snapshot("pipe")
    }
}

impl StreamStage for Pipe {
    fn name(&self) -> &'static str {
        "pipe"
    }

    fn is_idle(&self) -> bool {
        self.buf.is_empty()
    }

    fn stats(&self) -> StageStats {
        self.stats
    }
}

/// Wraps a stage and deasserts its ready according to a repeating pattern —
/// the software analogue of the stall injection p5-lint's P5L010 applies to
/// RTL stages.  Each handshake call consumes one pattern bit; a `false` bit
/// blocks `offer` (backpressure) and starves `drain` (no output beat).
#[derive(Debug)]
pub struct Throttle<S> {
    pub inner: S,
    pattern: Vec<bool>,
    tick: usize,
}

impl<S> Throttle<S> {
    /// An empty pattern means "always ready".
    pub fn new(inner: S, pattern: Vec<bool>) -> Self {
        Throttle {
            inner,
            pattern,
            tick: 0,
        }
    }

    fn gate(&mut self) -> bool {
        if self.pattern.is_empty() {
            return true;
        }
        let g = self.pattern[self.tick % self.pattern.len()];
        self.tick += 1;
        g
    }
}

impl<S: WordStream> WordStream for Throttle<S> {
    fn offer(&mut self, input: &mut WireBuf) -> Poll {
        if self.gate() {
            self.inner.offer(input)
        } else {
            Poll::Blocked
        }
    }

    fn drain(&mut self, output: &mut WireBuf) -> Poll {
        if self.gate() {
            self.inner.drain(output)
        } else {
            Poll::Ready(0)
        }
    }
}

impl<S: Observable> Observable for Throttle<S> {
    fn snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }
}

impl<S: StreamStage> StreamStage for Throttle<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    fn finish(&mut self) {
        self.inner.finish();
    }

    fn stats(&self) -> StageStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_passes_frames_through() {
        let mut p = Pipe::new();
        let mut input = WireBuf::new();
        let mut output = WireBuf::new();
        input.push_frame(&[1, 2, 3]);
        assert_eq!(p.offer(&mut input), Poll::Ready(3));
        assert!(!p.is_idle());
        assert_eq!(p.drain(&mut output), Poll::Ready(3));
        assert!(p.is_idle());
        assert_eq!(output.pop_frame().unwrap().0, vec![1, 2, 3]);
    }

    #[test]
    fn narrow_pipe_still_delivers_everything() {
        let mut p = Pipe::with_max_per_call(2);
        let mut input = WireBuf::new();
        let mut output = WireBuf::new();
        input.push_frame(&[1, 2, 3, 4, 5]);
        let mut guard = 0;
        while !(input.is_empty() && p.is_idle()) {
            p.offer(&mut input);
            p.drain(&mut output);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(output.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn throttle_blocks_then_admits() {
        let mut t = Throttle::new(Pipe::new(), vec![false, true]);
        let mut input = WireBuf::new();
        input.push_slice(&[7; 8]);
        assert!(t.offer(&mut input).is_blocked());
        assert_eq!(input.len(), 8, "blocked offer must not consume");
        assert_eq!(t.offer(&mut input), Poll::Ready(8));
    }
}
