//! `WireBuf`: the batched transfer unit that moves between stages.
//!
//! A `WireBuf` is contiguous byte storage with a read cursor (so consumers
//! see one zero-copy `&[u8]` slice, not per-byte `pop_front`s) plus a small
//! run-length list of *segments* carrying the hardware sideband tags
//! (SOF/EOF/abort).  Untagged segments model the raw wire — octets with no
//! delineation, exactly what travels between the escape stage and the PHY.
//! Tagged segments model delineated frames — what travels between packet
//! stages, where the RTL would assert `sof`/`eof` strobes alongside the
//! data lanes.
//!
//! All mutation is batched: `push_slice`/`extend_frame` are single
//! `extend_from_slice` calls, `consume` is a cursor bump with amortised
//! compaction, and [`WireBuf::move_from`] transfers any prefix between two
//! buffers while preserving tags (splitting a frame across the boundary
//! keeps it reassemblable: the continuation merges back on arrival).

use std::collections::VecDeque;

/// Compact when at least this much dead prefix has accumulated…
const COMPACT_MIN_DEAD: usize = 4096;

/// Delineation metadata returned when a complete frame is popped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Frame length in bytes.
    pub len: usize,
    /// The frame was aborted by the sender / on the wire.
    pub abort: bool,
    /// Trace id riding alongside the frame (see `p5_trace::FrameId`);
    /// `0` when the producer did not assign one.
    pub id: u32,
}

/// One tagged run of bytes.  Invariant: `len > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Seg {
    len: usize,
    /// Untagged segments are raw wire octets; tagged segments belong to a
    /// delineated frame.
    tagged: bool,
    sof: bool,
    eof: bool,
    abort: bool,
    /// Trace id of the frame this run belongs to (0 = untracked).
    id: u32,
}

/// Batched, tagged byte buffer — the software wire between two stages.
#[derive(Debug, Default)]
pub struct WireBuf {
    data: Vec<u8>,
    read: usize,
    segs: VecDeque<Seg>,
    /// `begin_frame` was called and no bytes have been pushed yet, so the
    /// next `extend_frame` must raise SOF.
    building_sof: bool,
    /// Trace id of the frame currently being built (0 = untracked).
    building_id: u32,
    /// Recycled storage handed back via [`WireBuf::recycle`].
    spare: Vec<u8>,
}

impl WireBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        WireBuf {
            data: Vec::with_capacity(cap),
            ..Default::default()
        }
    }

    /// Unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.read == self.data.len()
    }

    /// Zero-copy view of every unconsumed byte.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.read..]
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
        self.segs.clear();
        self.building_sof = false;
        self.building_id = 0;
    }

    fn merge_or_push(&mut self, seg: Seg) {
        if seg.len == 0 {
            // Only an EOF/abort strobe can be empty: it closes the open
            // frame segment if there is one, otherwise there is nothing it
            // can delimit and it is dropped (zero-length frames are not
            // representable — no stage in this stack produces one).
            if seg.eof {
                if let Some(back) = self.segs.back_mut() {
                    if back.tagged && !back.eof && !seg.sof {
                        back.eof = true;
                        back.abort |= seg.abort;
                        if back.id == 0 {
                            back.id = seg.id;
                        }
                    }
                }
            }
            return;
        }
        if let Some(back) = self.segs.back_mut() {
            if !back.tagged && !seg.tagged {
                back.len += seg.len;
                return;
            }
            if back.tagged && !back.eof && seg.tagged && !seg.sof {
                back.len += seg.len;
                back.eof = seg.eof;
                back.abort |= seg.abort;
                // A continuation inherits the open frame's id; an id
                // arriving on the continuation (e.g. the tail of a frame
                // split by `move_from`) fills in an untracked head.
                if back.id == 0 {
                    back.id = seg.id;
                }
                return;
            }
        }
        self.segs.push_back(seg);
    }

    /// Append raw (untagged) wire octets in one batched copy.
    pub fn push_slice(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.data.extend_from_slice(bytes);
        self.merge_or_push(Seg {
            len: bytes.len(),
            tagged: false,
            sof: false,
            eof: false,
            abort: false,
            id: 0,
        });
    }

    /// Append one tagged word/run — the software image of driving the data
    /// lanes with `sof`/`eof`/`abort` strobes for one or more beats.
    pub fn push_tagged(&mut self, bytes: &[u8], sof: bool, eof: bool, abort: bool) {
        self.push_tagged_id(bytes, sof, eof, abort, 0);
    }

    /// [`WireBuf::push_tagged`] with an explicit trace id riding the run.
    pub fn push_tagged_id(&mut self, bytes: &[u8], sof: bool, eof: bool, abort: bool, id: u32) {
        self.data.extend_from_slice(bytes);
        self.merge_or_push(Seg {
            len: bytes.len(),
            tagged: true,
            sof,
            eof,
            abort,
            id,
        });
    }

    /// Append one complete frame (SOF+EOF in a single call).
    pub fn push_frame(&mut self, bytes: &[u8]) {
        self.push_frame_with_id(bytes, 0);
    }

    /// Append one complete frame carrying a trace id.
    pub fn push_frame_with_id(&mut self, bytes: &[u8], id: u32) {
        debug_assert!(
            !bytes.is_empty(),
            "zero-length frames are not representable"
        );
        self.push_tagged_id(bytes, true, true, false, id);
    }

    /// Open a frame to be built incrementally with [`WireBuf::extend_frame`]
    /// and closed by [`WireBuf::end_frame`].
    pub fn begin_frame(&mut self) {
        self.begin_frame_with_id(0);
    }

    /// [`WireBuf::begin_frame`] with a trace id that will tag every run of
    /// the frame until [`WireBuf::end_frame`].
    pub fn begin_frame_with_id(&mut self, id: u32) {
        self.building_sof = true;
        self.building_id = id;
    }

    pub fn extend_frame(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let sof = self.building_sof;
        self.building_sof = false;
        self.push_tagged_id(bytes, sof, false, false, self.building_id);
    }

    pub fn end_frame(&mut self, abort: bool) {
        self.building_sof = false;
        let id = self.building_id;
        self.building_id = 0;
        self.push_tagged_id(&[], false, true, abort, id);
    }

    /// Discard `n` unconsumed bytes from the front (cursor bump; the
    /// backing storage is compacted amortised, never per byte).
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume past end of WireBuf");
        self.read += n;
        let mut rem = n;
        while rem > 0 {
            let front = self
                .segs
                .front_mut()
                .expect("WireBuf segment accounting out of sync");
            if front.len <= rem {
                rem -= front.len;
                self.segs.pop_front();
            } else {
                front.len -= rem;
                // A partially consumed frame no longer starts here.
                front.sof = false;
                rem = 0;
            }
        }
        if self.read == self.data.len() {
            self.data.clear();
            self.read = 0;
        } else if self.read >= COMPACT_MIN_DEAD && self.read >= self.data.len() / 2 {
            self.data.drain(..self.read);
            self.read = 0;
        }
    }

    /// Does the front of the buffer hold a complete (EOF-terminated) frame?
    pub fn frame_ready(&self) -> bool {
        matches!(self.segs.front(), Some(s) if s.tagged && s.eof)
    }

    /// Number of complete frames currently delineated in the buffer.
    pub fn frames_ready(&self) -> usize {
        self.segs.iter().filter(|s| s.tagged && s.eof).count()
    }

    /// Borrow the front frame without consuming it.
    pub fn peek_frame(&self) -> Option<(&[u8], FrameMeta)> {
        let seg = self.segs.front()?;
        if !seg.tagged || !seg.eof {
            return None;
        }
        Some((
            &self.as_slice()[..seg.len],
            FrameMeta {
                len: seg.len,
                abort: seg.abort,
                id: seg.id,
            },
        ))
    }

    /// Pop the front frame into a caller-provided buffer (cleared first),
    /// or return `None` if the front of the stream is not a complete frame.
    pub fn pop_frame_into(&mut self, out: &mut Vec<u8>) -> Option<FrameMeta> {
        let seg = *self.segs.front()?;
        if !seg.tagged || !seg.eof {
            return None;
        }
        out.clear();
        out.extend_from_slice(&self.as_slice()[..seg.len]);
        self.consume(seg.len);
        Some(FrameMeta {
            len: seg.len,
            abort: seg.abort,
            id: seg.id,
        })
    }

    /// Pop the front frame, allocating (convenience for tests).
    pub fn pop_frame(&mut self) -> Option<(Vec<u8>, FrameMeta)> {
        let mut v = Vec::new();
        let meta = self.pop_frame_into(&mut v)?;
        Some((v, meta))
    }

    /// Move up to `max` bytes from `src` into `self`, preserving tags.  A
    /// frame split by the byte budget stays reassemblable: the head arrives
    /// with SOF but no EOF, and the continuation merges into it on the next
    /// call.  Returns the number of bytes moved.
    pub fn move_from(&mut self, src: &mut WireBuf, max: usize) -> usize {
        let total = src.len().min(max);
        if total == 0 {
            return 0;
        }
        let bytes = &src.data[src.read..src.read + total];
        let mut moved = 0;
        for seg in src.segs.iter() {
            if moved == total {
                break;
            }
            let take = seg.len.min(total - moved);
            let whole = take == seg.len;
            self.data.extend_from_slice(&bytes[moved..moved + take]);
            self.merge_or_push(Seg {
                len: take,
                tagged: seg.tagged,
                sof: seg.sof,
                eof: seg.eof && whole,
                abort: seg.abort && whole,
                id: seg.id,
            });
            moved += take;
        }
        src.consume(total);
        total
    }

    /// Append untagged wire octets produced directly into the backing
    /// storage — the zero-copy sibling of [`WireBuf::push_slice`] for
    /// producers that assemble bytes in place (the fused Tx fast path
    /// stuffs a whole frame straight into the wire buffer this way).
    /// `f` may only append to the `Vec`; returns the number of bytes
    /// appended.
    pub fn extend_untagged_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) -> usize {
        let before = self.data.len();
        f(&mut self.data);
        assert!(
            self.data.len() >= before,
            "extend_untagged_with must only append"
        );
        let added = self.data.len() - before;
        self.merge_or_push(Seg {
            len: added,
            tagged: false,
            sof: false,
            eof: false,
            abort: false,
            id: 0,
        });
        added
    }

    /// Take every unconsumed byte as an owned `Vec`, leaving the buffer
    /// empty.  Returns without allocating when empty; otherwise hands out
    /// the backing storage and swaps in recycled capacity (see
    /// [`WireBuf::recycle`]).
    pub fn take_vec(&mut self) -> Vec<u8> {
        if self.is_empty() {
            self.clear();
            return Vec::new();
        }
        if self.read > 0 {
            self.data.drain(..self.read);
            self.read = 0;
        }
        self.segs.clear();
        self.building_sof = false;
        self.building_id = 0;
        std::mem::replace(&mut self.data, std::mem::take(&mut self.spare))
    }

    /// Hand storage back for the next [`WireBuf::take_vec`] to reuse.
    pub fn recycle(&mut self, mut v: Vec<u8>) {
        v.clear();
        if v.capacity() > self.spare.capacity() {
            self.spare = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_pushes_merge_and_consume_batches() {
        let mut b = WireBuf::new();
        b.push_slice(&[1, 2, 3]);
        b.push_slice(&[4, 5]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.segs.len(), 1);
        b.consume(2);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
        b.consume(3);
        assert!(b.is_empty());
        assert_eq!(b.segs.len(), 0);
    }

    #[test]
    fn extend_untagged_with_appends_in_place_and_merges() {
        let mut b = WireBuf::new();
        b.push_slice(&[0x7e]);
        let n = b.extend_untagged_with(|v| v.extend_from_slice(&[1, 2, 3]));
        assert_eq!(n, 3);
        assert_eq!(b.as_slice(), &[0x7e, 1, 2, 3]);
        assert_eq!(b.segs.len(), 1, "untagged runs merge");
        assert_eq!(b.extend_untagged_with(|_| {}), 0);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn frames_round_trip() {
        let mut b = WireBuf::new();
        b.push_frame(&[0x00, 0x21, 9, 9]);
        b.begin_frame();
        b.extend_frame(&[0xc0]);
        b.extend_frame(&[0x21, 1]);
        b.end_frame(false);
        assert_eq!(b.frames_ready(), 2);
        let (f1, m1) = b.pop_frame().unwrap();
        assert_eq!(f1, vec![0x00, 0x21, 9, 9]);
        assert!(!m1.abort);
        let (f2, m2) = b.pop_frame().unwrap();
        assert_eq!(f2, vec![0xc0, 0x21, 1]);
        assert_eq!(m2.len, 3);
        assert!(b.pop_frame().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn abort_strobe_marks_open_frame() {
        let mut b = WireBuf::new();
        b.begin_frame();
        b.extend_frame(&[1, 2, 3]);
        b.end_frame(true);
        let (_, meta) = b.pop_frame().unwrap();
        assert!(meta.abort);
    }

    #[test]
    fn incomplete_frame_is_not_poppable() {
        let mut b = WireBuf::new();
        b.begin_frame();
        b.extend_frame(&[1, 2]);
        assert!(!b.frame_ready());
        assert!(b.pop_frame().is_none());
        b.end_frame(false);
        assert!(b.frame_ready());
    }

    #[test]
    fn tagged_words_coalesce_into_one_frame() {
        // The way a word-at-a-time producer (the ByteStager) drives it.
        let mut b = WireBuf::new();
        b.push_tagged(&[1, 2, 3, 4], true, false, false);
        b.push_tagged(&[5, 6, 7, 8], false, false, false);
        b.push_tagged(&[9], false, true, false);
        assert_eq!(b.frames_ready(), 1);
        let (f, _) = b.pop_frame().unwrap();
        assert_eq!(f, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn empty_eof_strobe_closes_frame() {
        let mut b = WireBuf::new();
        b.push_tagged(&[1, 2, 3, 4], true, false, false);
        b.push_tagged(&[], false, true, false);
        assert_eq!(b.frames_ready(), 1);
        assert_eq!(b.pop_frame().unwrap().0, vec![1, 2, 3, 4]);
    }

    #[test]
    fn move_from_preserves_frame_boundaries() {
        let mut src = WireBuf::new();
        src.push_frame(&[1, 2, 3]);
        src.push_frame(&[4, 5]);
        let mut dst = WireBuf::new();
        let n = dst.move_from(&mut src, usize::MAX);
        assert_eq!(n, 5);
        assert!(src.is_empty());
        assert_eq!(dst.frames_ready(), 2);
        assert_eq!(dst.pop_frame().unwrap().0, vec![1, 2, 3]);
        assert_eq!(dst.pop_frame().unwrap().0, vec![4, 5]);
    }

    #[test]
    fn move_from_split_frame_reassembles() {
        let mut src = WireBuf::new();
        src.push_frame(&[1, 2, 3, 4, 5, 6]);
        let mut dst = WireBuf::new();
        assert_eq!(dst.move_from(&mut src, 4), 4);
        // Head arrived but is not yet a complete frame.
        assert_eq!(dst.frames_ready(), 0);
        assert!(dst.pop_frame().is_none());
        assert_eq!(dst.move_from(&mut src, usize::MAX), 2);
        assert_eq!(dst.frames_ready(), 1);
        assert_eq!(dst.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn producer_keeps_extending_after_partial_move() {
        // A frame still being built can be moved downstream; later pushes
        // continue it in the source and merge on the next move.
        let mut src = WireBuf::new();
        src.begin_frame();
        src.extend_frame(&[1, 2, 3]);
        let mut dst = WireBuf::new();
        assert_eq!(dst.move_from(&mut src, usize::MAX), 3);
        src.extend_frame(&[4, 5]);
        src.end_frame(false);
        assert_eq!(dst.move_from(&mut src, usize::MAX), 2);
        assert_eq!(dst.pop_frame().unwrap().0, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn take_vec_is_cheap_when_empty_and_reuses_capacity() {
        let mut b = WireBuf::new();
        let v = b.take_vec();
        assert!(v.is_empty() && v.capacity() == 0);
        b.push_slice(&[1, 2, 3]);
        let v = b.take_vec();
        assert_eq!(v, vec![1, 2, 3]);
        let cap = v.capacity();
        b.recycle(v);
        b.push_slice(&[9]);
        let v2 = b.take_vec();
        assert_eq!(v2, vec![9]);
        assert!(v2.capacity() >= cap);
    }

    #[test]
    fn take_vec_respects_consumed_prefix() {
        let mut b = WireBuf::new();
        b.push_slice(&[1, 2, 3, 4]);
        b.consume(2);
        assert_eq!(b.take_vec(), vec![3, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn compaction_keeps_contents_intact() {
        let mut b = WireBuf::new();
        let payload: Vec<u8> = (0..32u32).flat_map(|i| [i as u8; 1024]).collect();
        b.push_slice(&payload);
        let mut seen = Vec::new();
        while !b.is_empty() {
            let take = b.len().min(700);
            seen.extend_from_slice(&b.as_slice()[..take]);
            b.consume(take);
        }
        assert_eq!(seen, payload);
    }

    #[test]
    fn frame_ids_ride_the_tags() {
        let mut b = WireBuf::new();
        b.push_frame_with_id(&[1, 2, 3], 41);
        b.begin_frame_with_id(42);
        b.extend_frame(&[4]);
        b.extend_frame(&[5, 6]);
        b.end_frame(false);
        b.push_frame(&[7]);
        assert_eq!(b.pop_frame().unwrap().1.id, 41);
        assert_eq!(b.pop_frame().unwrap().1.id, 42);
        assert_eq!(b.pop_frame().unwrap().1.id, 0, "untracked stays 0");
    }

    #[test]
    fn frame_id_survives_split_move() {
        let mut src = WireBuf::new();
        src.push_frame_with_id(&[1, 2, 3, 4, 5, 6], 9);
        let mut dst = WireBuf::new();
        assert_eq!(dst.move_from(&mut src, 4), 4);
        assert_eq!(dst.move_from(&mut src, usize::MAX), 2);
        let (frame, meta) = dst.pop_frame().unwrap();
        assert_eq!(frame, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(meta.id, 9);
    }

    #[test]
    fn word_at_a_time_producer_keeps_the_id() {
        // The way the rx side tags a delineated frame: id on every word.
        let mut b = WireBuf::new();
        b.push_tagged_id(&[1, 2], true, false, false, 5);
        b.push_tagged_id(&[3], false, false, false, 5);
        b.push_tagged_id(&[], false, true, false, 5);
        assert_eq!(b.pop_frame().unwrap().1.id, 5);
    }

    #[test]
    fn partial_consume_clears_sof_but_keeps_eof() {
        let mut b = WireBuf::new();
        b.push_frame(&[1, 2, 3, 4]);
        b.consume(1);
        // The remainder is a frame tail: complete (EOF) but headless.
        assert!(b.frame_ready());
        let (f, _) = b.pop_frame().unwrap();
        assert_eq!(f, vec![2, 3, 4]);
    }
}
