//! Stage topology export — the composed pipeline as an analyzable
//! graph.
//!
//! A [`crate::Stack`] knows which stages it chains and in what order;
//! static analysis (p5-lint's link-composition pass) wants exactly that
//! shape, without holding the live stages themselves.  [`Topology`] is
//! the value-type answer: stage names plus directed `upstream →
//! downstream` edges.  Linear stacks export a chain; duplex links (two
//! directions through shared devices) export rings by combining
//! topologies with [`Topology::connect`].

/// A pipeline's shape: named stages and directed edges between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Graph name, used as the module name of composition reports.
    pub name: String,
    /// Stage names, in source→sink order for linear pipelines.
    pub stages: Vec<String>,
    /// Directed `(upstream, downstream)` stage-index pairs.
    pub edges: Vec<(usize, usize)>,
}

impl Topology {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// A linear source→sink chain.
    pub fn chain(name: impl Into<String>, stages: Vec<String>) -> Self {
        let edges = (1..stages.len()).map(|i| (i - 1, i)).collect();
        Self {
            name: name.into(),
            stages,
            edges,
        }
    }

    /// Append a stage, returning its index.
    pub fn push_stage(&mut self, name: impl Into<String>) -> usize {
        self.stages.push(name.into());
        self.stages.len() - 1
    }

    /// Add a directed edge.  Out-of-range indices are ignored rather
    /// than panicking — the analysis side validates shape.
    pub fn connect(&mut self, upstream: usize, downstream: usize) {
        if upstream < self.stages.len() && downstream < self.stages.len() {
            self.edges.push((upstream, downstream));
        }
    }

    /// Splice another topology in, returning the index offset its
    /// stages received.
    pub fn extend_with(&mut self, other: &Topology) -> usize {
        let offset = self.stages.len();
        self.stages.extend(other.stages.iter().cloned());
        self.edges
            .extend(other.edges.iter().map(|&(a, b)| (a + offset, b + offset)));
        offset
    }

    /// Is this a simple source→sink chain?
    pub fn is_linear(&self) -> bool {
        self.edges.len() + 1 == self.stages.len().max(1)
            && self
                .edges
                .iter()
                .enumerate()
                .all(|(i, &(a, b))| a == i && b == i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_linear() {
        let t = Topology::chain("c", vec!["a".into(), "b".into(), "c".into()]);
        assert!(t.is_linear());
        assert_eq!(t.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn rings_are_not_linear() {
        let mut t = Topology::chain("r", vec!["a".into(), "b".into()]);
        t.connect(1, 0);
        assert!(!t.is_linear());
    }

    #[test]
    fn extend_offsets_edges() {
        let mut t = Topology::chain("x", vec!["a".into(), "b".into()]);
        let other = Topology::chain("y", vec!["c".into(), "d".into()]);
        let off = t.extend_with(&other);
        assert_eq!(off, 2);
        assert_eq!(t.edges, vec![(0, 1), (2, 3)]);
        t.connect(1, 2);
        t.connect(3, 0);
        assert!(!t.is_linear());
        assert_eq!(t.stages.len(), 4);
    }

    #[test]
    fn out_of_range_connects_are_dropped() {
        let mut t = Topology::new("empty");
        t.connect(0, 1);
        assert!(t.edges.is_empty());
    }
}
