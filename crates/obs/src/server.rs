//! The scrape endpoint: a dependency-free HTTP/1.1 server over
//! `std::net::TcpListener`, serving the [`ObsHub`]'s pre-rendered
//! payloads from one dedicated thread.
//!
//! Routes (DESIGN.md §17 documents the wire format):
//!
//! * `GET /metrics` — Prometheus text exposition
//!   (`text/plain; version=0.0.4`).
//! * `GET /health`  — fleet health summary JSON.
//! * `GET /flight`  — triggered flight-recorder post-mortems JSON.
//!
//! No async runtime, no keep-alive, no TLS: a scrape is one short-lived
//! connection, which `std::net` handles fine.  The socket plumbing —
//! nonblocking listener on a dedicated thread, bounded request read —
//! is `p5_xport::net`'s [`accept_loop`]/[`read_head`]; this module
//! only owns the HTTP routing.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use p5_xport::net::{accept_loop, read_head, AcceptLoop};

use crate::collector::ObsHub;

/// How long one scrape may take to send its request / drain the
/// response.
const SCRAPE_TIMEOUT: Duration = Duration::from_millis(500);

/// A running endpoint.  Dropping it stops the serving thread.
pub struct ObsServer {
    inner: AcceptLoop,
}

/// Bind `addr` (e.g. `"127.0.0.1:9595"`, or port `0` for an ephemeral
/// port) and serve `hub` until the returned [`ObsServer`] is dropped.
pub fn serve(hub: ObsHub, addr: &str) -> std::io::Result<ObsServer> {
    let inner = accept_loop(addr, "p5-obs-http", move |stream| {
        // Per-connection errors (client hung up, slow reader) only
        // cost that scrape.
        let _ = handle_conn(stream, &hub);
    })?;
    Ok(ObsServer { inner })
}

impl ObsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stop the serving thread and wait for it to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

fn handle_conn(mut stream: TcpStream, hub: &ObsHub) -> std::io::Result<()> {
    // One bounded read is enough for any real scrape request line; we
    // only need the method and path.
    let req = read_head(&mut stream, 1024, SCRAPE_TIMEOUT)?;
    let path = parse_path(&req);
    let (status, content_type, body) = route(path.as_deref(), hub);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Extract the request path from `GET <path> HTTP/1.1`; `None` for
/// anything that isn't a GET.
fn parse_path(req: &str) -> Option<String> {
    let line = req.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    // Strip any query string: scrapers sometimes append one.
    let path = parts.next()?;
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn route(path: Option<&str>, hub: &ObsHub) -> (&'static str, &'static str, String) {
    match path {
        Some("/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            hub.metrics(),
        ),
        Some("/health") => ("200 OK", "application/json", hub.health()),
        Some("/flight") => ("200 OK", "application/json", hub.flight()),
        Some(_) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /health or /flight\n".to_string(),
        ),
        None => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "GET only\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn parses_paths_and_routes() {
        assert_eq!(
            parse_path("GET /metrics HTTP/1.1\r\n"),
            Some("/metrics".into())
        );
        assert_eq!(
            parse_path("GET /health?x=1 HTTP/1.1\r\n"),
            Some("/health".into())
        );
        assert_eq!(parse_path("POST /metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_path(""), None);

        let hub = ObsHub::new();
        hub.update(7, "m".into(), "h".into(), "f".into());
        assert_eq!(route(Some("/metrics"), &hub).2, "m");
        assert_eq!(route(Some("/health"), &hub).2, "h");
        assert_eq!(route(Some("/flight"), &hub).2, "f");
        assert_eq!(route(Some("/nope"), &hub).0, "404 Not Found");
        assert_eq!(route(None, &hub).0, "405 Method Not Allowed");
    }

    #[test]
    fn serves_real_tcp_scrapes() {
        let hub = ObsHub::new();
        hub.update(
            3,
            "p5_fleet_delivered 12\n".into(),
            "{\"tick\":3}".into(),
            "[]".into(),
        );
        let server = serve(hub, "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let get = |path: &str| {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let m = get("/metrics");
        assert!(m.starts_with("HTTP/1.1 200 OK\r\n"), "{m}");
        assert!(m.contains("text/plain; version=0.0.4"));
        assert!(m.ends_with("p5_fleet_delivered 12\n"));
        let h = get("/health");
        assert!(h.contains("application/json"));
        assert!(h.ends_with("{\"tick\":3}"));
        assert!(get("/bogus").starts_with("HTTP/1.1 404"));
        server.stop();
    }
}
