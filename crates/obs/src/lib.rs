//! `p5-obs`: live observability over a running fleet.
//!
//! The paper's OAM block exposes per-link health (FCS errors, sync
//! state, LQR quality) while the link runs, because a carrier
//! deployment is judged live, not post-mortem.  `p5-runtime` (PR 8)
//! drives thousands of links but only reported end-of-run snapshots;
//! this crate closes that gap in four pieces:
//!
//! * **Time-series telemetry** — a [`Collector`] samples the fleet
//!   every N ticks through `Fleet::run_sampled`, diffing the monotone
//!   snapshots (`p5_trace::SnapshotDelta`) into a bounded
//!   `p5_trace::TimeSeries`: windowed frames/s, shed/s, Gbps and a
//!   windowed p99 latency bound instead of run-lifetime aggregates.
//! * **Per-link health scoring** — a hysteresis state machine
//!   ([`LinkHealth`]: [`HealthState::Healthy`] / `Degraded` / `Down`)
//!   fed by FCS-error rate, resync cost, shed rate and LQR verdicts,
//!   rolled up into a bounded-cardinality [`HealthSummary`].
//! * **Flight recorder** — a per-link bounded ring
//!   ([`FlightRecorder`]) that freezes shortly after a trigger (error
//!   burst, health transition) and dumps a JSON post-mortem, so one
//!   bad link in a 10k fleet is debuggable without tracing everything.
//! * **The scrape endpoint** — [`serve`] publishes the collector's
//!   [`ObsHub`] over plain `std::net` HTTP: `/metrics` (Prometheus),
//!   `/health` and `/flight` (JSON).  No async runtime.
//!
//! ```no_run
//! use p5_obs::{Collector, CollectorConfig, serve};
//! use p5_runtime::{Fleet, FleetConfig, TrafficSpec};
//!
//! let mut fleet = Fleet::new(FleetConfig {
//!     links: 256,
//!     traffic: Some(TrafficSpec { ticks: 100_000, ..TrafficSpec::default() }),
//!     ..FleetConfig::default()
//! }).unwrap();
//! let mut collector = Collector::new(CollectorConfig::default());
//! let server = serve(collector.hub(), "127.0.0.1:9595").unwrap();
//! collector.watch(&mut fleet, 200_000); // scrape /metrics while this runs
//! drop(server);
//! ```

pub mod collector;
pub mod flight;
pub mod health;
pub mod server;

pub use collector::{Collector, CollectorConfig, ObsHub, TransitionRecord};
pub use flight::{FlightConfig, FlightEntry, FlightKind, FlightRecorder};
pub use health::{
    HealthPolicy, HealthSample, HealthState, HealthSummary, HealthTransition, LinkHealth,
};
pub use server::{serve, ObsServer};
