//! The fleet-driven collector: samples a running [`Fleet`] every N
//! ticks, maintains the fleet time series, scores every link's health,
//! drives the flight recorders, and publishes pre-rendered scrape
//! payloads through an [`ObsHub`].
//!
//! The collector piggybacks on [`Fleet::run_sampled`]: between tick
//! batches no worker holds a cohort, so sampling reads stats, link
//! reports and trace rings without contending with the data path — and
//! with no collector attached the fleet pays nothing (the ≤3% overhead
//! gate in `trace_report` pins this).

use std::sync::{Arc, Mutex};

use p5_runtime::Fleet;
use p5_trace::{render_prometheus, PromFamily, PromKind, TimeSeries};

use crate::flight::{esc, FlightConfig, FlightKind, FlightRecorder};
use crate::health::{HealthPolicy, HealthSample, HealthState, HealthSummary, LinkHealth};

/// Collector tuning.  Defaults suit a smoke-scale fleet; DESIGN.md §17
/// documents the sampling model.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Sample interval in fleet ticks.
    pub every: u64,
    /// Retained [`TimeSeries`] points (fleet scope).
    pub series_capacity: usize,
    /// Points per windowed rate / windowed p99 reading.
    pub window: usize,
    /// Health thresholds and hysteresis.
    pub policy: HealthPolicy,
    /// Per-link flight-recorder sizing.
    pub flight: FlightConfig,
    /// Receive errors in a single window that fire the flight recorder
    /// on their own (error burst), regardless of health state.
    pub burst_errors: u64,
    /// Wall-clock calibration for Gbps readings; `0.0` = unknown
    /// (rates stay per-tick).
    pub ticks_per_second: f64,
    /// At most this many unhealthy links are listed individually in
    /// exports — the bounded-cardinality cap (the summary always
    /// counts all of them).
    pub max_listed: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            every: 64,
            series_capacity: 256,
            window: 8,
            policy: HealthPolicy::default(),
            flight: FlightConfig::default(),
            burst_errors: 16,
            ticks_per_second: 0.0,
            max_listed: 16,
        }
    }
}

/// One recorded health transition (for detection-latency measurement
/// and the `/health` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    pub link: usize,
    pub tick: u64,
    pub from: HealthState,
    pub to: HealthState,
}

/// Per-link absolute counters as of the previous sample.
#[derive(Debug, Clone, Copy, Default)]
struct PrevCounts {
    delivered: u64,
    offered: u64,
    errors: u64,
    resync_bytes: u64,
    shed: u64,
}

struct LinkTrack {
    prev: PrevCounts,
    health: LinkHealth,
    flight: FlightRecorder,
    /// Tick of the last state change (0 = never changed).
    since_tick: u64,
}

/// The shared, pre-rendered scrape state: the bridge between the
/// collector (writer) and the HTTP endpoint (reader).  Cloning shares
/// the same state.
#[derive(Clone)]
pub struct ObsHub(Arc<Mutex<HubState>>);

struct HubState {
    tick: u64,
    metrics: String,
    health: String,
    flight: String,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub(Arc::new(Mutex::new(HubState {
            tick: 0,
            metrics: String::new(),
            health: "{}".to_string(),
            flight: "[]".to_string(),
        })))
    }
}

impl ObsHub {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn update(&self, tick: u64, metrics: String, health: String, flight: String) {
        let mut g = self.lock();
        g.tick = tick;
        g.metrics = metrics;
        g.health = health;
        g.flight = flight;
    }

    /// Fleet tick of the last published sample.
    pub fn tick(&self) -> u64 {
        self.lock().tick
    }

    /// The `/metrics` Prometheus payload.
    pub fn metrics(&self) -> String {
        self.lock().metrics.clone()
    }

    /// The `/health` JSON payload.
    pub fn health(&self) -> String {
        self.lock().health.clone()
    }

    /// The `/flight` JSON payload (triggered post-mortems).
    pub fn flight(&self) -> String {
        self.lock().flight.clone()
    }
}

/// The sampling engine.  Attach one to a fleet via
/// [`Collector::watch`], or call [`Collector::sample`] yourself from a
/// custom drive loop.
pub struct Collector {
    cfg: CollectorConfig,
    series: TimeSeries,
    links: Vec<LinkTrack>,
    samples: u64,
    transitions: Vec<TransitionRecord>,
    hub: ObsHub,
}

/// Retained transition records (enough for any plausible fleet run;
/// beyond this only the counters advance).
const MAX_TRANSITIONS: usize = 4096;

impl Collector {
    pub fn new(cfg: CollectorConfig) -> Self {
        Collector {
            cfg,
            series: TimeSeries::with_capacity(cfg.series_capacity),
            links: Vec::new(),
            samples: 0,
            transitions: Vec::new(),
            hub: ObsHub::new(),
        }
    }

    /// The hub this collector publishes to — hand a clone to
    /// [`crate::serve`].
    pub fn hub(&self) -> ObsHub {
        self.hub.clone()
    }

    pub fn config(&self) -> &CollectorConfig {
        &self.cfg
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The fleet-scope time series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Current health state of one link (None before the first sample).
    pub fn link_state(&self, link: usize) -> Option<HealthState> {
        self.links.get(link).map(|t| t.health.state())
    }

    /// Fleet health roll-up.
    pub fn summary(&self) -> HealthSummary {
        let mut s = HealthSummary::default();
        for t in &self.links {
            match t.health.state() {
                HealthState::Healthy => s.healthy += 1,
                HealthState::Degraded => s.degraded += 1,
                HealthState::Down => s.down += 1,
            }
        }
        s
    }

    /// Every recorded health transition, in order.
    pub fn transitions(&self) -> &[TransitionRecord] {
        &self.transitions
    }

    /// The flight-recorder post-mortem for one link, if it triggered.
    pub fn postmortem(&self, link: usize) -> Option<String> {
        let t = self.links.get(link)?;
        t.flight.is_triggered().then(|| t.flight.to_json(link))
    }

    /// JSON array of every triggered link's post-mortem.
    pub fn flight_json(&self) -> String {
        let mut s = String::from("[");
        let mut first = true;
        for (i, t) in self.links.iter().enumerate() {
            if !t.flight.is_triggered() {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&t.flight.to_json(i));
        }
        s.push(']');
        s
    }

    /// Drive `fleet` for up to `max_ticks`, sampling every
    /// `cfg.every` ticks.  Returns the ticks granted (stops early once
    /// the fleet drains).
    pub fn watch(&mut self, fleet: &mut Fleet, max_ticks: u64) -> u64 {
        let every = self.cfg.every;
        fleet.run_sampled(max_ticks, every, |f| self.sample(f))
    }

    /// Take one sample of a quiesced fleet (no worker may hold a
    /// cohort — [`Fleet::run_sampled`] guarantees this between
    /// batches).
    pub fn sample(&mut self, fleet: &Fleet) {
        let tick = fleet.ticks_run();
        if self.links.len() != fleet.links() {
            self.links = (0..fleet.links())
                .map(|_| LinkTrack {
                    prev: PrevCounts::default(),
                    health: LinkHealth::new(self.cfg.policy),
                    flight: FlightRecorder::new(self.cfg.flight),
                    since_tick: 0,
                })
                .collect();
        }
        let snaps = fleet.snapshots();
        if let Some(fs) = snaps.iter().find(|s| s.scope == "fleet") {
            self.series.record(tick, fs);
        }
        for r in fleet.link_reports() {
            let t = &mut self.links[r.link];
            let errors = r.rx.fcs_errors
                + r.rx.aborts
                + r.rx.runts
                + r.rx.giants
                + r.rx.header_errors
                + r.rx.address_mismatches;
            let cur = PrevCounts {
                delivered: r.flow.delivered,
                offered: r.flow.offered,
                errors,
                resync_bytes: r.resync_bytes,
                shed: r.flow.shed,
            };
            let win = HealthSample {
                delivered: cur.delivered.saturating_sub(t.prev.delivered),
                offered: cur.offered.saturating_sub(t.prev.offered),
                errors: cur.errors.saturating_sub(t.prev.errors),
                resync_bytes: cur.resync_bytes.saturating_sub(t.prev.resync_bytes),
                shed: cur.shed.saturating_sub(t.prev.shed),
                lqr_tripped: false,
            };
            t.prev = cur;
            t.flight.record(
                tick,
                FlightKind::Sample {
                    delivered: win.delivered,
                    errors: win.errors,
                    resync_bytes: win.resync_bytes,
                    shed: win.shed,
                },
            );
            if win.errors >= self.cfg.burst_errors {
                t.flight.fire(
                    tick,
                    format!("error burst: {} errors in one window", win.errors),
                );
            }
            if let Some(tr) = t.health.update(&win) {
                t.since_tick = tick;
                t.flight.record(
                    tick,
                    FlightKind::Transition {
                        from: tr.from,
                        to: tr.to,
                    },
                );
                if tr.to > tr.from {
                    t.flight
                        .fire(tick, format!("health {}->{}", tr.from, tr.to));
                }
                if self.transitions.len() < MAX_TRANSITIONS {
                    self.transitions.push(TransitionRecord {
                        link: r.link,
                        tick,
                        from: tr.from,
                        to: tr.to,
                    });
                }
            }
        }
        // Device taps: a traced link can emit hundreds of events per
        // window; keep the first few per end verbatim and fold the rest
        // into one summary entry so a flood can never crowd samples and
        // transitions out of a triggered flight window.
        const DEVICE_EVENTS_PER_END: usize = 4;
        for (id, ra, rb) in fleet.recorders() {
            let t = &mut self.links[*id];
            for (end, rec) in [("a", ra), ("b", rb)] {
                if rec.is_empty() {
                    continue;
                }
                let events = rec.events();
                for e in events.iter().take(DEVICE_EVENTS_PER_END) {
                    t.flight.record(
                        tick,
                        FlightKind::Device {
                            summary: format!("{end}:{}@{}", e.kind.name(), e.cycle),
                        },
                    );
                }
                if events.len() > DEVICE_EVENTS_PER_END {
                    let last = events.last().expect("non-empty");
                    t.flight.record(
                        tick,
                        FlightKind::Device {
                            summary: format!(
                                "{end}:+{} more, last {}@{}",
                                events.len() - DEVICE_EVENTS_PER_END,
                                last.kind.name(),
                                last.cycle
                            ),
                        },
                    );
                }
                rec.clear();
            }
        }
        self.samples += 1;
        let metrics = self.render_metrics(fleet);
        let health = self.render_health(tick, fleet);
        let flight = self.flight_json();
        self.hub.update(tick, metrics, health, flight);
    }

    /// Windowed per-tick delivery/shed rates plus the windowed p99
    /// latency bound, from the fleet time series.
    fn window_readings(&self) -> (f64, f64, f64, u64) {
        let w = self.cfg.window;
        let frames = self.series.window_rate_per_tick("delivered", w);
        let shed = self.series.window_rate_per_tick("shed", w);
        let bytes = self.series.window_rate_per_tick("delivered_bytes", w);
        let p99 = self
            .series
            .window_histogram("frame_latency_ticks", w)
            .quantile_bound(0.99)
            .unwrap_or(0);
        (frames, shed, bytes, p99)
    }

    fn render_metrics(&self, fleet: &Fleet) -> String {
        let (frames, shed, bytes, p99) = self.window_readings();
        let sum = self.summary();
        let mut health = PromFamily::new(
            "p5_obs_health_links",
            PromKind::Gauge,
            "links per health state (bounded: three series)",
        );
        for (state, n) in [
            ("healthy", sum.healthy),
            ("degraded", sum.degraded),
            ("down", sum.down),
        ] {
            health.push_sample([("state", state.to_string())], n as u64);
        }
        let mut unhealthy = PromFamily::new(
            "p5_obs_link_health",
            PromKind::Gauge,
            "per-link state for unhealthy links only (1=degraded 2=down), capped",
        );
        let mut listed = 0usize;
        for (i, t) in self.links.iter().enumerate() {
            if listed >= self.cfg.max_listed {
                break;
            }
            let v = match t.health.state() {
                HealthState::Healthy => continue,
                HealthState::Degraded => 1,
                HealthState::Down => 2,
            };
            unhealthy.push_sample([("link", i.to_string())], v);
            listed += 1;
        }
        let triggered = self
            .links
            .iter()
            .filter(|t| t.flight.is_triggered())
            .count();
        let families = [
            PromFamily::new(
                "p5_obs_samples",
                PromKind::Counter,
                "collector samples taken",
            )
            .sample([], self.samples),
            health,
            unhealthy,
            PromFamily::new(
                "p5_obs_window_frames_per_ktick",
                PromKind::Gauge,
                "windowed delivery rate, frames per 1000 ticks",
            )
            .sample([], (frames * 1000.0).round() as u64),
            PromFamily::new(
                "p5_obs_window_shed_per_ktick",
                PromKind::Gauge,
                "windowed shed rate, frames per 1000 ticks",
            )
            .sample([], (shed * 1000.0).round() as u64),
            PromFamily::new(
                "p5_obs_window_bytes_per_tick",
                PromKind::Gauge,
                "windowed delivered payload octets per tick",
            )
            .sample([], bytes.round() as u64),
            PromFamily::new(
                "p5_obs_window_p99_latency_ticks",
                PromKind::Gauge,
                "windowed p99 frame latency bound, ticks",
            )
            .sample([], p99),
            PromFamily::new(
                "p5_obs_flight_triggered",
                PromKind::Gauge,
                "links whose flight recorder has fired",
            )
            .sample([], triggered as u64),
        ];
        let mut out = fleet.prometheus();
        out.push_str(&render_prometheus(&families));
        out
    }

    fn render_health(&self, tick: u64, fleet: &Fleet) -> String {
        use std::fmt::Write as _;
        let (frames, shed, bytes, p99) = self.window_readings();
        let bits_per_tick = bytes * 8.0;
        let gbps = if self.cfg.ticks_per_second > 0.0 {
            bits_per_tick * self.cfg.ticks_per_second / 1e9
        } else {
            0.0
        };
        let sum = self.summary();
        let mut s = format!(
            "{{\"tick\":{tick},\"links\":{},\"samples\":{},\
             \"healthy\":{},\"degraded\":{},\"down\":{},",
            fleet.links(),
            self.samples,
            sum.healthy,
            sum.degraded,
            sum.down,
        );
        let _ = write!(
            s,
            "\"window\":{{\"frames_per_tick\":{frames:.6},\"shed_per_tick\":{shed:.6},\
             \"bits_per_tick\":{bits_per_tick:.3},\"gbps\":{gbps:.6},\
             \"p99_latency_ticks\":{p99}}},\"unhealthy\":["
        );
        let mut first = true;
        let mut listed = 0usize;
        for (i, t) in self.links.iter().enumerate() {
            if listed >= self.cfg.max_listed {
                break;
            }
            if t.health.state() == HealthState::Healthy {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            listed += 1;
            let _ = write!(
                s,
                "{{\"link\":{i},\"state\":\"{}\",\"since_tick\":{}}}",
                esc(t.health.state().name()),
                t.since_tick
            );
        }
        let _ = write!(s, "],\"transitions\":{}}}", self.transitions.len());
        s
    }
}
