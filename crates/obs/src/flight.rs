//! The flight recorder: a bounded per-link ring of observations that
//! *freezes* shortly after a trigger, preserving the window around the
//! event instead of letting it scroll out.
//!
//! A 10k-link fleet cannot afford full tracing everywhere; it can
//! afford a small ring per link of interest.  While untriggered, the
//! ring evicts its oldest entry like any bounded buffer.  On a trigger
//! (error burst, health transition — the collector decides), the ring
//! keeps recording for `post_trigger` more entries and then freezes:
//! the post-mortem holds what led up to the event plus its immediate
//! aftermath, dumpable as JSON (DESIGN.md §17 documents the wire
//! shape).

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::health::HealthState;

/// Sizing for one recorder.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Entries retained while untriggered (the pre-trigger window).
    pub capacity: usize,
    /// *Sample windows* recorded after the trigger before freezing.
    /// Transitions and device events inside those windows ride along
    /// (bounded by a hard entry cap), so a burst of device events
    /// cannot starve the transition out of the post-mortem.
    pub post_trigger: u32,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 64,
            post_trigger: 8,
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightKind {
    /// A periodic windowed reading (deltas over one sample interval).
    Sample {
        delivered: u64,
        errors: u64,
        resync_bytes: u64,
        shed: u64,
    },
    /// A health state change.
    Transition { from: HealthState, to: HealthState },
    /// The trigger itself (first trigger wins; later ones are ignored).
    Trigger { reason: String },
    /// A device-level trace event (from a `SharedRecorder` tap),
    /// pre-rendered to its stable name plus detail.
    Device { summary: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Fleet tick the entry was recorded at.
    pub tick: u64,
    pub kind: FlightKind,
}

/// The freezing ring.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    entries: VecDeque<FlightEntry>,
    /// `(tick, reason)` of the first trigger.
    trigger: Option<(u64, String)>,
    /// Post-trigger sample windows still to record before freezing.
    remaining: u32,
    frozen: bool,
    /// Entries evicted (pre-trigger) or refused (post-freeze / over
    /// the hard cap).
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            cfg: FlightConfig {
                capacity: cfg.capacity.max(1),
                post_trigger: cfg.post_trigger,
            },
            entries: VecDeque::new(),
            trigger: None,
            remaining: 0,
            frozen: false,
            dropped: 0,
        }
    }

    pub fn is_triggered(&self) -> bool {
        self.trigger.is_some()
    }

    /// Triggered and the post-trigger window is exhausted: nothing more
    /// will be recorded.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Absolute entry ceiling once triggered: the pre-trigger window
    /// plus room for each post-trigger sample window's transition and
    /// a capped burst of device events.
    fn hard_cap(&self) -> usize {
        self.cfg.capacity + (self.cfg.post_trigger as usize + 1) * 24
    }

    /// `(tick, reason)` of the first trigger.
    pub fn trigger(&self) -> Option<(u64, &str)> {
        self.trigger.as_ref().map(|(t, r)| (*t, r.as_str()))
    }

    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one observation.  While untriggered this is a plain
    /// bounded ring; after a trigger the pre-trigger window stops
    /// evicting and `post_trigger` more *sample windows* are accepted
    /// (their transitions and device events riding along under the
    /// hard cap) before the recorder freezes.
    pub fn record(&mut self, tick: u64, kind: FlightKind) {
        if self.frozen {
            self.dropped += 1;
            return;
        }
        if self.trigger.is_some() {
            if matches!(kind, FlightKind::Sample { .. }) {
                if self.remaining == 0 {
                    self.frozen = true;
                    self.dropped += 1;
                    return;
                }
                self.remaining -= 1;
            }
            if self.entries.len() >= self.hard_cap() {
                self.dropped += 1;
                return;
            }
        } else if self.entries.len() == self.cfg.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(FlightEntry { tick, kind });
    }

    /// Fire the trigger.  The first one wins; its reason is recorded
    /// in-band so the post-mortem shows it in sequence.
    pub fn fire(&mut self, tick: u64, reason: impl Into<String>) {
        if self.trigger.is_some() {
            return;
        }
        let reason = reason.into();
        self.trigger = Some((tick, reason.clone()));
        self.remaining = self.cfg.post_trigger;
        self.record(tick, FlightKind::Trigger { reason });
    }

    /// The JSON post-mortem for `link` — self-contained: trigger,
    /// freeze state, drop count and the retained window in order.
    pub fn to_json(&self, link: usize) -> String {
        let mut s = format!("{{\"link\":{link},");
        match &self.trigger {
            Some((tick, reason)) => {
                let _ = write!(
                    s,
                    "\"trigger\":{{\"tick\":{tick},\"reason\":\"{}\"}},",
                    esc(reason)
                );
            }
            None => s.push_str("\"trigger\":null,"),
        }
        let _ = write!(
            s,
            "\"frozen\":{},\"dropped\":{},\"events\":[",
            self.is_frozen(),
            self.dropped
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"tick\":{},", e.tick);
            match &e.kind {
                FlightKind::Sample {
                    delivered,
                    errors,
                    resync_bytes,
                    shed,
                } => {
                    let _ = write!(
                        s,
                        "\"kind\":\"sample\",\"delivered\":{delivered},\"errors\":{errors},\
                         \"resync_bytes\":{resync_bytes},\"shed\":{shed}}}"
                    );
                }
                FlightKind::Transition { from, to } => {
                    let _ = write!(
                        s,
                        "\"kind\":\"transition\",\"from\":\"{}\",\"to\":\"{}\"}}",
                        from.name(),
                        to.name()
                    );
                }
                FlightKind::Trigger { reason } => {
                    let _ = write!(s, "\"kind\":\"trigger\",\"reason\":\"{}\"}}", esc(reason));
                }
                FlightKind::Device { summary } => {
                    let _ = write!(s, "\"kind\":\"device\",\"summary\":\"{}\"}}", esc(summary));
                }
            }
        }
        s.push_str("]}");
        s
    }
}

/// Minimal JSON string escape (quote, backslash, control chars).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> FlightKind {
        FlightKind::Sample {
            delivered: n,
            errors: 0,
            resync_bytes: 0,
            shed: 0,
        }
    }

    #[test]
    fn untriggered_ring_evicts_oldest() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 3,
            post_trigger: 2,
        });
        for i in 0..5 {
            fr.record(i, sample(i));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.entries().next().unwrap().tick, 2);
        assert!(!fr.is_triggered());
        assert!(!fr.is_frozen());
    }

    #[test]
    fn trigger_keeps_window_then_freezes() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 4,
            post_trigger: 2,
        });
        for i in 0..4 {
            fr.record(i, sample(i));
        }
        fr.fire(4, "error burst");
        assert!(fr.is_triggered());
        assert!(!fr.is_frozen());
        fr.record(5, sample(5));
        // Non-sample entries ride along without consuming the window.
        fr.record(
            5,
            FlightKind::Transition {
                from: HealthState::Healthy,
                to: HealthState::Degraded,
            },
        );
        fr.record(6, sample(6));
        assert!(!fr.is_frozen(), "window exhausts on the NEXT sample");
        // The third post-trigger sample freezes the recorder.
        fr.record(7, sample(7));
        assert!(fr.is_frozen());
        fr.record(8, sample(8));
        assert_eq!(fr.dropped(), 2);
        // Pre-trigger window + trigger + 2 samples + 1 transition.
        assert_eq!(fr.len(), 4 + 1 + 2 + 1);
        assert_eq!(
            fr.entries().next().unwrap().tick,
            0,
            "no post-trigger eviction"
        );
        // Second trigger is ignored.
        fr.fire(8, "late");
        assert_eq!(fr.trigger(), Some((4, "error burst")));
    }

    #[test]
    fn postmortem_json_shape() {
        let mut fr = FlightRecorder::new(FlightConfig::default());
        fr.record(1, sample(9));
        fr.record(
            2,
            FlightKind::Transition {
                from: HealthState::Healthy,
                to: HealthState::Degraded,
            },
        );
        fr.fire(2, "health healthy->degraded \"x\"");
        let j = fr.to_json(17);
        assert!(j.contains("\"link\":17"));
        assert!(j.contains("\"reason\":\"health healthy->degraded \\\"x\\\"\""));
        assert!(j.contains("\"kind\":\"sample\",\"delivered\":9"));
        assert!(j.contains("\"from\":\"healthy\",\"to\":\"degraded\""));
        assert!(j.contains("\"frozen\":false"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
